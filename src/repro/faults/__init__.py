"""Fault injection + resilience primitives (``repro.faults``).

Two halves, deliberately in one package:

:mod:`repro.faults.plan`
    The deterministic, seedable fault-injection framework.  Boundaries
    across the codebase declare named injection sites
    (:func:`fault_point` / :func:`mangle`); a :class:`FaultPlan` makes
    chosen sites raise, tear bytes, hang, stop, or crash — zero overhead
    when no plan is installed.
:mod:`repro.faults.retry`
    :func:`retry_call`, the shared bounded-retry primitive (exponential
    backoff, full jitter, deadline) the injected faults exercise.

``tests/test_chaos.py`` is the consumer contract: every tier-1 serving/
streaming/runtime invariant replayed under every injected fault class.
See DESIGN.md ("Failure model & recovery") for the site catalog and the
recovery semantics each site is guarded by.  The work-queue executor
adds the ``queue.claim`` / ``queue.heartbeat`` / ``queue.reclaim``
sites (lease acquisition, keep-alive, and stale-lease takeover), whose
guarded invariant is the queue's purity contract: a fired fault may
duplicate or delay a job, never lose or corrupt its cache record.
"""
from repro.faults.plan import (
    ENV_VAR,
    FaultPlan,
    FaultRule,
    active,
    clear,
    fault_point,
    injected,
    install,
    install_from_env,
    mangle,
    plan_from_arg,
)
from repro.faults.retry import retry_call

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "active",
    "clear",
    "fault_point",
    "injected",
    "install",
    "install_from_env",
    "mangle",
    "plan_from_arg",
    "retry_call",
]

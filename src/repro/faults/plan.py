"""Deterministic, seedable fault injection (the chaos layer).

Production systems fail at boundaries — a blob write hits a full disk, a
manifest lands half-written, a worker wedges, a refit diverges.  The
resilience machinery guarding those boundaries (retries, watchdogs,
fallbacks, degradation) is exactly the code ordinary tests never
execute, so this module makes every failure *injectable*: load-bearing
boundaries declare a **named injection site** (:func:`fault_point` for
control-flow sites, :func:`mangle` for byte-stream sites) and a test
installs a :class:`FaultPlan` saying which sites misbehave, how, and
when.

Design constraints, in order:

Zero overhead when disabled
    A site is one function call plus one module-global ``None`` check.
    No plan installed (the production state) means no locks, no dict
    lookups, no RNG — the serving and kernel hot paths pay nothing
    measurable (the bench gate enforces this).
Deterministic
    Firing decisions depend only on the plan (seed, per-site hit
    counters, rule parameters) — never on wall clock or global RNG
    state.  Probabilistic rules draw from a per-site generator seeded by
    ``sha256(seed:site)``, so one site's draws are independent of how
    often any other site is hit.  The same plan against the same
    workload injects the same faults.
Cross-process
    The plan is module state, so ``fork``-based children (fleet workers,
    runtime pool workers) inherit it — with counters *as of the fork*,
    and independently thereafter (each forked worker makes its own
    firing decisions, which is what per-worker faults need).  For
    non-inheriting processes, :data:`ENV_VAR` carries the plan as JSON
    and :func:`install_from_env` activates it (both CLIs expose
    ``--fault-plan`` on top of this).

See DESIGN.md ("Failure model & recovery") for the site catalog.
"""
from __future__ import annotations

import hashlib
import json
import os
import random
import signal
import threading
import time
from contextlib import contextmanager

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "active",
    "clear",
    "fault_point",
    "injected",
    "install",
    "install_from_env",
    "mangle",
    "plan_from_arg",
]

#: Environment variable carrying a JSON plan into child processes.
ENV_VAR = "REPRO_FAULTS"

#: Exception classes a rule may raise, by JSON-safe name.  Real types —
#: not a private ``InjectedFault`` — so the production ``except`` clauses
#: under test catch injected faults exactly as they would catch real ones.
EXCEPTIONS = {
    "os": OSError,
    "file_not_found": FileNotFoundError,
    "connection": ConnectionError,
    "timeout": TimeoutError,
    "runtime": RuntimeError,
    "value": ValueError,
}

_KINDS = ("error", "torn", "hang", "crash", "stop")


class FaultRule:
    """One site's misbehavior: what fires, when, and how often.

    Parameters
    ----------
    site
        Injection-site name (see the catalog in DESIGN.md).
    kind
        ``"error"`` raises ``EXCEPTIONS[error]``; ``"torn"`` truncates
        the bytes at a :func:`mangle` site to ``keep_fraction`` (a torn
        write); ``"hang"`` sleeps ``delay_s`` (a wedged dependency);
        ``"crash"`` calls ``os._exit(exit_code)`` (SIGKILL-equivalent);
        ``"stop"`` sends the process ``SIGSTOP`` (a livelocked/paged-out
        worker — every thread freezes, including heartbeats).
    prob
        Firing probability per eligible hit (after ``after``, below
        ``max_fires``).  ``1.0`` makes the rule a deterministic schedule.
    after
        Skip this many hits before the rule becomes eligible.
    max_fires
        Total firing budget (``None`` = unlimited).  The default ``1``
        models a *transient* fault: fire once, then heal — which is what
        retry/fallback paths need to be provable against.
    """

    __slots__ = (
        "site", "kind", "prob", "after", "max_fires",
        "error", "message", "delay_s", "keep_fraction", "exit_code",
    )

    def __init__(
        self,
        site: str,
        kind: str = "error",
        *,
        prob: float = 1.0,
        after: int = 0,
        max_fires: int | None = 1,
        error: str = "os",
        message: str | None = None,
        delay_s: float = 5.0,
        keep_fraction: float = 0.5,
        exit_code: int = 3,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r}: want one of {_KINDS}")
        if error not in EXCEPTIONS:
            raise ValueError(
                f"unknown error class {error!r}: want one of {sorted(EXCEPTIONS)}"
            )
        if not 0.0 <= float(prob) <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        if not 0.0 <= float(keep_fraction) < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")
        self.site = str(site)
        self.kind = kind
        self.prob = float(prob)
        self.after = max(int(after), 0)
        self.max_fires = None if max_fires is None else max(int(max_fires), 0)
        self.error = error
        self.message = message
        self.delay_s = max(float(delay_s), 0.0)
        self.keep_fraction = float(keep_fraction)
        self.exit_code = int(exit_code)

    def to_record(self) -> dict:
        """JSON form (the :data:`ENV_VAR` / ``--fault-plan`` transport)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self):
        return (
            f"FaultRule({self.site!r}, {self.kind!r}, prob={self.prob}, "
            f"after={self.after}, max_fires={self.max_fires})"
        )


def _site_rng(seed: int, site: str) -> random.Random:
    # PYTHONHASHSEED randomizes ``hash(str)`` per process; a sha256-based
    # seed keeps per-site streams identical across processes and runs.
    digest = hashlib.sha256(f"{seed}:{site}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))


class FaultPlan:
    """A set of :class:`FaultRule`\\ s plus per-site hit/fire accounting.

    Build one fluently and install it::

        plan = FaultPlan(seed=7).on("registry.write", "error", max_fires=2)
        with faults.injected(plan):
            registry.publish("m", model)   # first two blob writes fail
        assert plan.fires("registry.write") == 2

    Thread-safe; counters are per-process (a forked worker accounts its
    own hits from its copy of the plan).
    """

    def __init__(self, seed: int = 0, rules=()):
        self.seed = int(seed)
        self._rules: dict[str, FaultRule] = {}
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fires: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        for rule in rules:
            self._rules[rule.site] = rule

    # -- construction ----------------------------------------------------------

    def on(self, site: str, kind: str = "error", **kwargs) -> "FaultPlan":
        """Add (or replace) the rule for ``site``; chainable."""
        self._rules[site] = FaultRule(site, kind, **kwargs)
        return self

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [r.to_record() for r in self._rules.values()],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        record = json.loads(text)
        rules = []
        for entry in record.get("rules", []):
            entry = dict(entry)
            site = entry.pop("site")
            kind = entry.pop("kind", "error")
            rules.append(FaultRule(site, kind, **entry))
        return cls(seed=record.get("seed", 0), rules=rules)

    # -- accounting ------------------------------------------------------------

    def sites(self) -> list[str]:
        return sorted(self._rules)

    def hits(self, site: str | None = None):
        with self._lock:
            return dict(self._hits) if site is None else self._hits.get(site, 0)

    def fires(self, site: str | None = None):
        with self._lock:
            return dict(self._fires) if site is None else self._fires.get(site, 0)

    # -- firing ----------------------------------------------------------------

    def _decide(self, site: str) -> FaultRule | None:
        """Count one hit at ``site``; return the rule iff it fires."""
        rule = self._rules.get(site)
        if rule is None:
            return None
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            if hit < rule.after:
                return None
            if rule.max_fires is not None and (
                self._fires.get(site, 0) >= rule.max_fires
            ):
                return None
            if rule.prob < 1.0:
                rng = self._rngs.get(site)
                if rng is None:
                    rng = self._rngs[site] = _site_rng(self.seed, site)
                if rng.random() >= rule.prob:
                    return None
            self._fires[site] = self._fires.get(site, 0) + 1
        return rule

    def _act(self, rule: FaultRule) -> None:
        if rule.kind == "error":
            raise EXCEPTIONS[rule.error](
                rule.message or f"injected fault at {rule.site}"
            )
        if rule.kind == "hang":
            time.sleep(rule.delay_s)
        elif rule.kind == "crash":
            os._exit(rule.exit_code)
        elif rule.kind == "stop":
            os.kill(os.getpid(), signal.SIGSTOP)
        # "torn" at a control-flow site has no bytes to tear: no-op.

    def check(self, site: str) -> None:
        """One hit at a control-flow site (may raise / sleep / kill)."""
        rule = self._decide(site)
        if rule is not None:
            self._act(rule)

    def corrupt(self, site: str, data: bytes) -> bytes:
        """One hit at a byte-stream site; may return truncated bytes."""
        rule = self._decide(site)
        if rule is None:
            return data
        if rule.kind == "torn":
            return data[: max(int(len(data) * rule.keep_fraction), 1)]
        self._act(rule)
        return data

    def __repr__(self):
        return f"FaultPlan(seed={self.seed}, sites={self.sites()})"


# -- module-level installation (the production fast path) ----------------------

_PLAN: FaultPlan | None = None


def install(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` process-wide (and in later-forked children)."""
    global _PLAN
    _PLAN = plan
    return plan


def clear() -> None:
    """Deactivate fault injection (the default, zero-overhead state)."""
    global _PLAN
    _PLAN = None


def active() -> FaultPlan | None:
    return _PLAN


@contextmanager
def injected(plan: FaultPlan):
    """Scoped installation for tests; restores the previous plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def fault_point(site: str) -> None:
    """Declare a control-flow injection site.

    With no plan installed this is one global read — the hot-path cost
    of being injectable.  With a plan, the site's rule may raise, sleep,
    or kill the process.
    """
    plan = _PLAN
    if plan is not None:
        plan.check(site)


def mangle(site: str, data: bytes) -> bytes:
    """Declare a byte-stream injection site; returns (possibly torn) data."""
    plan = _PLAN
    if plan is None:
        return data
    return plan.corrupt(site, data)


def install_from_env(environ=None) -> FaultPlan | None:
    """Install the plan serialized in :data:`ENV_VAR`, if any.

    Called by the CLIs and the fleet worker entry point so chaos runs
    can reach processes that were not forked from an installed plan.
    """
    text = (os.environ if environ is None else environ).get(ENV_VAR)
    if not text:
        return None
    return install(FaultPlan.from_json(text))


def plan_from_arg(text: str) -> FaultPlan:
    """Parse a ``--fault-plan`` argument: inline JSON or ``@path/to.json``."""
    if text.startswith("@"):
        with open(text[1:]) as fh:
            text = fh.read()
    return FaultPlan.from_json(text)

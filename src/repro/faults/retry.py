"""Bounded retries: exponential backoff, full jitter, and a deadline.

The single retry primitive every layer shares (registry I/O, stream
publishes, runtime jobs), so the backoff policy is uniform and testable
in one place.  Full jitter — each delay is drawn uniformly from
``[0, min(max_delay, base * 2^attempt)]`` — because synchronized
retries from a fleet of workers against one registry are a thundering
herd, and full jitter is the standard fix (decorrelates retry storms at
the cost of occasionally retrying immediately, which is fine).
"""
from __future__ import annotations

import random
import time

__all__ = ["retry_call"]


def retry_call(
    fn,
    *,
    attempts: int = 3,
    base_delay_s: float = 0.05,
    max_delay_s: float = 2.0,
    deadline_s: float | None = None,
    retry_on: tuple = (OSError,),
    seed: int | None = None,
    on_retry=None,
):
    """Call ``fn()``; on a ``retry_on`` failure, back off and try again.

    Parameters
    ----------
    fn
        Zero-argument callable (wrap arguments in a lambda/partial).
    attempts
        Total call budget (``1`` = no retries).
    base_delay_s, max_delay_s
        Backoff envelope: the delay before attempt ``i+1`` is uniform in
        ``[0, min(max_delay_s, base_delay_s * 2**i)]`` (full jitter).
    deadline_s
        Overall wall-clock budget from the first call.  A retry whose
        backoff would land past the deadline is not attempted — the last
        failure propagates instead of blocking the caller indefinitely.
    retry_on
        Exception classes considered transient.  Anything else
        propagates immediately (a deterministic bug is not worth
        retrying — that is what quarantine/degradation paths are for).
    seed
        Seeds a private jitter RNG for reproducible schedules (tests);
        ``None`` uses the process-global generator.
    on_retry
        Optional observer ``(attempt_index, exception, delay_s)`` called
        before each backoff sleep.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    rng = random.Random(seed) if seed is not None else random
    start = time.monotonic()
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts - 1:
                raise
            delay = rng.uniform(
                0.0, min(max_delay_s, base_delay_s * (2.0 ** attempt))
            )
            if (
                deadline_s is not None
                and time.monotonic() + delay - start > deadline_s
            ):
                raise
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            time.sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover

"""Regular-grid discretization of the modeling domain (paper Section 5.1).

Each benchmark parameter maps to one tensor *mode*.  Numerical parameters
are discretized into ``I_j`` sub-intervals with uniform or logarithmic
spacing; each tensor element is associated with the cell's mid-point
(geometric mid-point under log spacing).  Categorical parameters index their
choices directly and never interpolate.

The paper's convention (Section 6.0.4): input and architectural parameters
get log spacing, configuration parameters get linear spacing — implemented
in :meth:`TensorGrid.from_space`.

Note on integer mid-points: the paper rounds log-space mid-points up
(``ceil``) because it re-executes applications at mid-point configurations.
We keep exact geometric mid-points since interpolation weights live in the
transformed (log) coordinate where exactness matters; the simulators accept
real-valued inputs.
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import ParameterSpace

__all__ = ["Mode", "UniformMode", "LogMode", "CategoricalMode", "TensorGrid"]


class Mode:
    """One tensor mode: a discretization of a single parameter's range.

    Attributes
    ----------
    n_cells
        Number of sub-intervals (the tensor dimension ``I_j``).
    midpoints
        Cell mid-points in original parameter units, shape ``(n_cells,)``.
    interpolates
        Whether Eq. 5 interpolation applies along this mode (False for
        categorical modes).
    """

    name: str = ""
    n_cells: int = 0
    interpolates: bool = True

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Map parameter values to the coordinate ``h_j`` used by Eq. 5."""
        raise NotImplementedError

    def cell_of(self, values: np.ndarray) -> np.ndarray:
        """Cell index of each value, clipped into ``[0, n_cells - 1]``."""
        raise NotImplementedError

    def in_domain(self, values: np.ndarray) -> np.ndarray:
        """Mask of values inside ``[X_0, X_I]`` (the modeling domain)."""
        raise NotImplementedError

    @property
    def midpoints_h(self) -> np.ndarray:
        """Mid-points in transformed coordinates (cached)."""
        if not hasattr(self, "_midpoints_h"):
            self._midpoints_h = self.transform(self.midpoints)
        return self._midpoints_h

    def __getstate__(self):
        # Drop the lazy transform cache: pickled size must not depend on
        # whether the mode has served a prediction yet (size accounting
        # and persistence share the pickled representation).  Arrays are
        # rebound to canonical dtype instances so the pickled bytes — and
        # hence the registry's content digest — are identical whether this
        # grid was just built or itself restored from a payload.
        from repro.utils.serialization import canonical_array

        state = dict(self.__dict__)
        state.pop("_midpoints_h", None)
        for key, value in state.items():
            if isinstance(value, np.ndarray):
                state[key] = canonical_array(value)
        return state

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r}, n_cells={self.n_cells})"


class _EdgeMode(Mode):
    """Shared implementation for modes defined by a sorted edge array."""

    def __init__(self, name: str, edges: np.ndarray):
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or len(edges) < 2:
            raise ValueError("need at least two edges")
        if np.any(np.diff(edges) <= 0):
            raise ValueError(f"edges must be strictly increasing for {name!r}")
        self.name = name
        self.edges = edges
        self.n_cells = len(edges) - 1

    @property
    def low(self) -> float:
        return float(self.edges[0])

    @property
    def high(self) -> float:
        return float(self.edges[-1])

    def cell_of(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        idx = np.searchsorted(self.edges, values, side="right") - 1
        return np.clip(idx, 0, self.n_cells - 1)

    def in_domain(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        return (values >= self.edges[0]) & (values <= self.edges[-1])


class UniformMode(_EdgeMode):
    """Uniformly spaced sub-intervals; ``h_j(x) = x`` (identity)."""

    def __init__(self, name: str, low: float, high: float, n_cells: int):
        if n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        super().__init__(name, np.linspace(low, high, n_cells + 1))
        self.midpoints = 0.5 * (self.edges[:-1] + self.edges[1:])

    def transform(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float)


class LogMode(_EdgeMode):
    """Logarithmically spaced sub-intervals; ``h_j(x) = log(x)``.

    Mid-points are geometric means of cell edges, the paper's
    ``exp((log X_i + log X_{i+1}) / 2)``.
    """

    def __init__(self, name: str, low: float, high: float, n_cells: int):
        if n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        if low <= 0:
            raise ValueError(f"log spacing requires positive range, got low={low}")
        super().__init__(name, np.geomspace(low, high, n_cells + 1))
        self.midpoints = np.sqrt(self.edges[:-1] * self.edges[1:])

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if np.any(values <= 0):
            raise ValueError(f"mode {self.name!r}: log transform needs positive values")
        return np.log(values)


class CategoricalMode(Mode):
    """One tensor index per category; no interpolation along this mode."""

    interpolates = False

    def __init__(self, name: str, n_categories: int):
        if n_categories < 1:
            raise ValueError("need at least one category")
        self.name = name
        self.n_cells = int(n_categories)
        self.midpoints = np.arange(self.n_cells, dtype=float)

    def transform(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float)

    def cell_of(self, values: np.ndarray) -> np.ndarray:
        idx = np.rint(np.asarray(values, dtype=float)).astype(np.intp)
        if np.any((idx < 0) | (idx >= self.n_cells)):
            raise ValueError(
                f"mode {self.name!r}: category index out of range [0, {self.n_cells})"
            )
        return idx

    def in_domain(self, values: np.ndarray) -> np.ndarray:
        idx = np.rint(np.asarray(values, dtype=float))
        return (idx >= 0) & (idx < self.n_cells)


class TensorGrid:
    """A tensor-product grid over a full parameter space.

    Rows of a configuration matrix ``X`` map to multi-indices via
    :meth:`cell_indices`; ``shape`` is the tensor shape the CP model is
    fitted to.
    """

    def __init__(self, modes):
        self.modes = tuple(modes)
        if not self.modes:
            raise ValueError("need at least one mode")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_space(
        cls,
        space: ParameterSpace,
        cells: int | dict | list = 16,
        X: np.ndarray | None = None,
    ) -> "TensorGrid":
        """Build a grid following the paper's discretization conventions.

        Parameters
        ----------
        space
            The benchmark parameter space (one mode per parameter).
        cells
            Target sub-interval count per numerical mode: an int (same for
            every mode), a dict ``{name: int}``, or a list in parameter
            order.  Integer parameters are capped at their number of
            distinct values; categorical modes always get one index per
            category.
        X
            Optional training configurations; when given, numeric mode
            ranges shrink to the observed data range (the modeling domain
            is "ascertained from the training set", Section 2.1).
        """
        if isinstance(cells, int):
            cells_for = {p.name: cells for p in space}
        elif isinstance(cells, dict):
            cells_for = {p.name: cells.get(p.name, 16) for p in space}
        else:
            cells_list = list(cells)
            if len(cells_list) != space.dimension:
                raise ValueError("cells list length must equal space dimension")
            cells_for = {p.name: c for p, c in zip(space, cells_list)}

        modes = []
        for j, p in enumerate(space):
            if p.is_categorical:
                modes.append(CategoricalMode(p.name, p.n_categories))
                continue
            low, high = float(p.low), float(p.high)
            if X is not None:
                col = np.asarray(X, dtype=float)[:, j]
                low, high = float(col.min()), float(col.max())
                if low == high:
                    # Degenerate column: widen minimally.  The widening must
                    # be symmetric in |low| — a relative bump in the signed
                    # value would land *below* low for negative constants.
                    high = low + max(abs(low) * 1e-9, 1e-12)
            n = int(cells_for[p.name])
            if p.integer:
                n = min(n, max(int(np.floor(high) - np.ceil(low)) + 1, 1))
            n = max(n, 1)
            if p.resolved_scale == "log":
                modes.append(LogMode(p.name, low, high, n))
            else:
                modes.append(UniformMode(p.name, low, high, n))
        return cls(modes)

    # -- introspection --------------------------------------------------------

    @property
    def order(self) -> int:
        """Tensor order ``d`` (number of parameters)."""
        return len(self.modes)

    @property
    def shape(self) -> tuple:
        return tuple(m.n_cells for m in self.modes)

    @property
    def n_elements(self) -> int:
        return int(np.prod([m.n_cells for m in self.modes], dtype=np.int64))

    def __repr__(self):
        return f"TensorGrid(shape={self.shape})"

    # -- mapping configurations to cells --------------------------------------

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2 or X.shape[1] != self.order:
            raise ValueError(f"X must be (n, {self.order}), got {X.shape}")
        return X

    def cell_indices(self, X: np.ndarray) -> np.ndarray:
        """Multi-index of the cell containing each configuration row."""
        X = self._check(X)
        out = np.empty(X.shape, dtype=np.intp)
        for j, m in enumerate(self.modes):
            out[:, j] = m.cell_of(X[:, j])
        return out

    def in_domain(self, X: np.ndarray) -> np.ndarray:
        """Per-mode domain mask, shape ``(n, d)`` of bools."""
        X = self._check(X)
        out = np.empty(X.shape, dtype=bool)
        for j, m in enumerate(self.modes):
            out[:, j] = m.in_domain(X[:, j])
        return out

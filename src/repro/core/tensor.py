"""Observed-tensor assembly (paper Section 5.1).

Given a :class:`~repro.core.grid.TensorGrid` and a training set, each tensor
element stores the *mean* execution time of the configurations mapped into
its cell.  Only cells containing at least one observation are "observed";
their multi-indices form the index set Ω of the completion problem.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import TensorGrid
from repro.utils.validation import check_1d, check_positive

__all__ = ["ObservedTensor"]


@dataclass(frozen=True)
class ObservedTensor:
    """A partially observed tensor of per-cell mean execution times.

    Attributes
    ----------
    grid
        The discretization that defines cell membership.
    indices
        Observed multi-indices, shape ``(nnz, d)`` (the set Ω).
    values
        Per-cell mean execution times, shape ``(nnz,)``, strictly positive.
    counts
        Number of training observations averaged into each cell.
    """

    grid: TensorGrid
    indices: np.ndarray
    values: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_data(cls, grid: TensorGrid, X: np.ndarray, y: np.ndarray) -> "ObservedTensor":
        """Bin configurations into cells and average execution times.

        Vectorized: raveled multi-indices are deduplicated with
        :func:`numpy.unique` and per-cell sums accumulated with
        :func:`numpy.bincount`.
        """
        y = check_positive(check_1d(y, "y"), "y")
        idx = grid.cell_indices(X)
        if len(idx) != len(y):
            raise ValueError(f"X has {len(idx)} rows but y has {len(y)}")
        if len(y) == 0:
            raise ValueError("cannot build an observed tensor from zero samples")
        flat = np.ravel_multi_index(idx.T, grid.shape)
        uniq, inverse = np.unique(flat, return_inverse=True)
        sums = np.bincount(inverse, weights=y, minlength=len(uniq))
        counts = np.bincount(inverse, minlength=len(uniq))
        means = sums / counts
        indices = np.stack(np.unravel_index(uniq, grid.shape), axis=1).astype(np.intp)
        return cls(grid=grid, indices=indices, values=means, counts=counts)

    # -- properties -----------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of observed cells ``|Ω|``."""
        return len(self.values)

    @property
    def density(self) -> float:
        """Fraction of tensor elements observed (Figure 5's x-axis note)."""
        return self.nnz / self.grid.n_elements

    @property
    def shape(self) -> tuple:
        return self.grid.shape

    def log_values(self) -> np.ndarray:
        """Log-transformed cell means (the ALS model's training targets)."""
        return np.log(self.values)

    def merge(self, other: "ObservedTensor") -> "ObservedTensor":
        """Combine two observed tensors over the same grid (streaming path).

        Cell means are merged counts-weighted, so the result is identical
        to having binned the union of the underlying measurements.
        """
        if other.grid is not self.grid and other.grid.shape != self.grid.shape:
            raise ValueError("cannot merge tensors over different grids")
        flat_a = np.ravel_multi_index(self.indices.T, self.shape)
        flat_b = np.ravel_multi_index(other.indices.T, other.shape)
        flat = np.concatenate([flat_a, flat_b])
        sums = np.concatenate(
            [self.values * self.counts, other.values * other.counts]
        )
        counts = np.concatenate([self.counts, other.counts])
        uniq, inverse = np.unique(flat, return_inverse=True)
        merged_sums = np.bincount(inverse, weights=sums, minlength=len(uniq))
        merged_counts = np.bincount(inverse, weights=counts, minlength=len(uniq))
        indices = np.stack(np.unravel_index(uniq, self.shape), axis=1).astype(np.intp)
        return ObservedTensor(
            grid=self.grid,
            indices=indices,
            values=merged_sums / merged_counts,
            counts=merged_counts,
        )

    def dense(self, fill=np.nan) -> np.ndarray:
        """Materialize the full tensor with ``fill`` in unobserved cells.

        Intended for tests and small grids; raises when the tensor exceeds
        ~64M elements to avoid accidental memory blow-ups.
        """
        if self.grid.n_elements > 64 * 1024 * 1024:
            raise MemoryError(
                f"refusing to materialize {self.grid.n_elements} elements"
            )
        out = np.full(self.shape, fill, dtype=float)
        out[tuple(self.indices.T)] = self.values
        return out

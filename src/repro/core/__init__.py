"""CPR — the paper's contribution: CP tensor completion performance models.

Submodules
----------
``grid``
    Regular-grid discretization of the modeling domain (paper Section 5.1).
``tensor``
    Observed-tensor assembly: per-cell mean execution times and index sets.
``completion``
    Tensor-completion optimizers: ALS, CCD, SGD (least-squares losses) and
    AMN (interior-point Newton for the positive MLogQ2 model).
``interp``
    Multilinear inter/extrapolation of tensor elements (paper Eq. 5).
``extrap``
    Out-of-domain extrapolation via Perron rank-1 factors + MARS splines
    (paper Section 5.3).
``model``
    :class:`CPRModel`, the public fit/predict API.
"""
from repro.core.grid import (
    CategoricalMode,
    LogMode,
    Mode,
    TensorGrid,
    UniformMode,
)
from repro.core.model import CPRModel, TuckerModel
from repro.core.tensor import ObservedTensor

__all__ = [
    "Mode",
    "UniformMode",
    "LogMode",
    "CategoricalMode",
    "TensorGrid",
    "ObservedTensor",
    "CPRModel",
    "TuckerModel",
]

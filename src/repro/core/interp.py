"""Multilinear interpolation of tensor elements (paper Eq. 5).

A configuration ``x`` falls between cell mid-points along each numerical
mode; its prediction is the multilinear blend of the ``2^q`` neighbouring
tensor-element estimates (``q`` = number of interpolating modes), with
weights computed in the transformed coordinate ``h_j`` (identity for
uniform spacing, log for logarithmic spacing).

Fringe rule (Section 5.1): when ``x_j`` lies between the domain edge and
the first/last mid-point, Eq. 5's weights are extended *signed* —
``w_lo = 1 - tau``, ``w_hi = tau`` with ``tau = (h - h_lo) / (h_hi - h_lo)``
— which is exactly linear extrapolation from the two nearest mid-points
(the absolute-value form in the paper's display equals this on the
interior and is replaced by linear extrapolation at the fringe, as the
paper prescribes).

Categorical modes never interpolate: the cell index is used directly.
"""
from __future__ import annotations

import numpy as np

from repro.core.grid import TensorGrid

__all__ = ["interpolation_weights", "corner_stack", "interpolate"]


def interpolation_weights(grid: TensorGrid, X: np.ndarray, active=None):
    """Per-mode corner indices and weights for each configuration row.

    Parameters
    ----------
    grid
        The discretization.
    X
        Configurations, shape ``(n, d)``.
    active
        Optional boolean mask of modes to interpolate along; defaults to
        every mode that ``interpolates`` and has at least two cells.

    Returns
    -------
    lo, hi : (n, d) int arrays
        Lower/upper corner cell indices per mode (equal where inactive).
    w_lo, w_hi : (n, d) float arrays
        Corner weights (``w_hi = 0`` where inactive); signed at the fringe.
    active : (d,) bool array
        The resolved active-mode mask.
    """
    X = grid._check(X)
    n, d = X.shape
    if active is None:
        active = np.array(
            [m.interpolates and m.n_cells > 1 for m in grid.modes], dtype=bool
        )
    else:
        active = np.asarray(active, dtype=bool)
        if active.shape != (d,):
            raise ValueError(f"active must have shape ({d},)")
        for j, m in enumerate(grid.modes):
            if active[j] and (not m.interpolates or m.n_cells < 2):
                raise ValueError(f"mode {m.name!r} cannot interpolate")

    lo = np.empty((n, d), dtype=np.intp)
    hi = np.empty((n, d), dtype=np.intp)
    w_lo = np.ones((n, d))
    w_hi = np.zeros((n, d))
    for j, m in enumerate(grid.modes):
        if not active[j]:
            lo[:, j] = hi[:, j] = m.cell_of(X[:, j])
            continue
        mids = m.midpoints_h
        h = m.transform(X[:, j])
        i = np.clip(np.searchsorted(mids, h, side="right") - 1, 0, m.n_cells - 2)
        delta = mids[i + 1] - mids[i]
        tau = (h - mids[i]) / delta
        lo[:, j] = i
        hi[:, j] = i + 1
        w_lo[:, j] = 1.0 - tau
        w_hi[:, j] = tau
    return lo, hi, w_lo, w_hi, active


def corner_stack(grid: TensorGrid, X: np.ndarray, active=None):
    """All ``2^q`` corner multi-indices and weights, stacked corner-major.

    Returns
    -------
    idx : (2^q * n, d) int array
        Corner ``c``'s multi-indices occupy rows ``c*n : (c+1)*n`` (binary
        counting over the active modes, bit ``b`` selecting ``hi`` for
        active mode ``b``).
    w : (2^q, n) float array
        Matching Eq. 5 weight products (signed at the fringe).
    active : (d,) bool array
        The resolved active-mode mask.
    """
    lo, hi, w_lo, w_hi, active = interpolation_weights(grid, X, active)
    n, d = lo.shape
    act = np.flatnonzero(active)
    C = 1 << len(act)
    idx = np.broadcast_to(lo, (C, n, d)).copy()
    w = np.ones((C, n))
    corners = np.arange(C)
    for b, j in enumerate(act):
        up = ((corners >> b) & 1).astype(bool)
        idx[up, :, j] = hi[:, j]
        w[up] *= w_hi[:, j]
        w[~up] *= w_lo[:, j]
    return idx.reshape(C * n, d), w, active


def interpolate(grid: TensorGrid, corner_eval, X: np.ndarray, active=None) -> np.ndarray:
    """Evaluate Eq. 5: blend ``corner_eval`` over the neighbouring corners.

    The ``2^q`` corner lattices are stacked into one ``(2^q * n, d)`` index
    array and ``corner_eval`` is invoked exactly *once*; the blend is then
    a single weighted reduction.  This keeps the whole prediction path
    inside vectorized kernels instead of ``2^q`` Python-level callback
    round-trips (see DESIGN.md).

    Parameters
    ----------
    corner_eval
        Callable mapping multi-indices ``(m, d)`` to tensor-element
        estimates ``(m,)`` — e.g. ``exp`` of a CP evaluation for the
        interpolation model, or the raw positive CP evaluation for the
        extrapolation model.  Must be a pure element-wise map: it is called
        with all corners of all configurations stacked along axis 0, and
        must return finite values (zero-weight corners are no longer
        skipped, so a non-finite estimate would poison the blend).
    active
        Optional per-mode interpolation mask (see
        :func:`interpolation_weights`); Section 5.3 disables interpolation
        along extrapolated modes by passing ``False`` there.
    """
    X = grid._check(X)
    if len(X) == 0:
        # Empty batches are legal (a serving microbatch can flush empty on
        # shutdown); never invoke ``corner_eval`` on zero corners, since
        # extrapolating corner evaluators assume at least one row.
        return np.zeros(0)
    idx, w, _ = corner_stack(grid, X, active)
    C, n = w.shape
    vals = np.asarray(corner_eval(idx), dtype=float).reshape(C, n)
    return np.einsum("cn,cn->n", w, vals)

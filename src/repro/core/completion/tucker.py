"""Tucker-decomposition tensor completion (the paper's named future work).

Section 4.1 notes that low-rank structure can also be captured "using other
tensor factorizations such as Tucker"; Section 5.1 leaves their evaluation
to future work.  This module provides that evaluation path: a Tucker model

    t_{i_1..i_d} ~= sum_{r_1..r_d} g_{r_1..r_d} * prod_j U_j[i_j, r_j]

with core ``G`` of shape ``(R_1, ..., R_d)`` and orthonormal-ish factor
matrices, fitted to observed entries by alternating ridge least squares:

* each factor update solves, per row, a least-squares problem against the
  "contracted design" ``K_k = G x_{j' != j} U_{j'}[i_{j'k}]`` (an ``R_j``
  vector per observation) — identical bookkeeping to CP-ALS with the core
  contraction replacing the Khatri-Rao product;
* the core update is one global ridge least-squares in ``prod_j R_j``
  unknowns, whose design rows are outer products of the factor rows —
  solved via normal equations (the core is small by construction).

Model size is ``prod_j R_j + sum_j I_j R_j`` — the exponential core term is
exactly why the paper prefers CP for high-dimensional spaces; the ablation
benchmark quantifies that trade-off.
"""
from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.core.completion.state import (
    CompletionResult,
    ObservationPlan,
    solve_batched_spd,
)
from repro.utils.rng import as_generator

__all__ = ["complete_tucker", "tucker_eval", "TuckerFactors"]


class TuckerFactors:
    """A fitted Tucker model: core tensor + per-mode factor matrices.

    Quacks like the CP factor list where the code needs evaluation
    (``eval_at`` mirrors :func:`repro.core.completion.state.cp_eval`).
    """

    def __init__(self, core: np.ndarray, factors: list):
        if core.ndim != len(factors):
            raise ValueError("core order must match number of factors")
        for j, U in enumerate(factors):
            if U.shape[1] != core.shape[j]:
                raise ValueError(f"factor {j} rank mismatch with core")
        self.core = core
        self.factors = factors

    @property
    def ranks(self) -> tuple:
        return self.core.shape

    def eval_at(self, indices: np.ndarray) -> np.ndarray:
        """Model values at multi-indices ``(m, d)`` -> ``(m,)``."""
        indices = np.asarray(indices)
        d = len(self.factors)
        if indices.ndim != 2 or indices.shape[1] != d:
            raise ValueError(f"indices must be (m, {d})")
        # Contract the core with each observation's factor rows, one mode
        # at a time: acc has shape (m, R_j, ..., R_d) flattened on the fly.
        acc = np.broadcast_to(
            self.core.reshape(1, -1), (len(indices), self.core.size)
        ).copy()
        shape = list(self.core.shape)
        for j in range(d):
            rows = self.factors[j][indices[:, j]]  # (m, R_j)
            acc = acc.reshape(len(indices), shape[0], -1)
            acc = np.einsum("mr,mrk->mk", rows, acc)
            shape = shape[1:]
        return acc[:, 0]

    def size_bytes(self) -> int:
        return 8 * (self.core.size + sum(U.size for U in self.factors))


def _contracted_rows(model: TuckerFactors, indices: np.ndarray, skip: int) -> np.ndarray:
    """Design rows for mode ``skip``: core contracted with all other rows.

    Returns ``(m, R_skip)`` such that the model value is ``row . U_skip[i]``.
    """
    d = len(model.factors)
    m = len(indices)
    # Move mode `skip` to the front of the core, contract the rest.
    order = [skip] + [j for j in range(d) if j != skip]
    core = np.transpose(model.core, order)
    acc = np.broadcast_to(
        core.reshape(1, core.shape[0], -1), (m, core.shape[0], core[0].size)
    ).copy()
    shape = list(core.shape[1:])
    for j in order[1:]:
        rows = model.factors[j][indices[:, j]]  # (m, R_j)
        acc = acc.reshape(m, core.shape[0], shape[0], -1)
        acc = np.einsum("mr,msrk->msk", rows, acc)
        shape = shape[1:]
    return acc[:, :, 0]


def tucker_eval(model: TuckerFactors, indices: np.ndarray) -> np.ndarray:
    """Functional alias for :meth:`TuckerFactors.eval_at`."""
    return model.eval_at(indices)


def complete_tucker(
    shape,
    indices,
    values,
    rank: int | tuple = 4,
    regularization: float = 1e-5,
    max_sweeps: int = 50,
    tol: float = 1e-5,
    seed=None,
    max_core_size: int = 65536,
) -> CompletionResult:
    """Fit a Tucker decomposition to observed entries by alternating ridge LS.

    Parameters
    ----------
    rank
        Per-mode Tucker rank(s); an int is broadcast to every mode and
        capped at each mode's dimension.
    max_core_size
        Guard on ``prod(ranks)`` — the exponential core is Tucker's known
        scaling failure for high-order tensors (why the paper picks CP).

    Returns
    -------
    CompletionResult
        ``factors`` holds a single :class:`TuckerFactors`; ``history`` is
        the per-sweep regularized mean-squared objective.
    """
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    d = len(shape)
    if d < 2:
        raise ValueError("tensor completion needs order >= 2")
    if isinstance(rank, int):
        ranks = tuple(min(rank, int(I)) for I in shape)
    else:
        ranks = tuple(min(int(r), int(I)) for r, I in zip(rank, shape))
        if len(ranks) != d:
            raise ValueError("rank tuple length must match tensor order")
    core_size = int(np.prod(ranks, dtype=np.int64))
    if core_size > max_core_size:
        raise MemoryError(
            f"Tucker core would hold {core_size} entries (> {max_core_size}); "
            "use CP for this order/rank (the paper's point)"
        )
    rng = as_generator(seed)
    lam = float(regularization)

    factors = [
        (np.eye(int(I), R) + 0.01 * rng.standard_normal((int(I), R)))
        for I, R in zip(shape, ranks)
    ]
    core = rng.standard_normal(ranks) * 0.1
    # Seed the core's leading entry with the data scale so the first sweep
    # starts near the mean surface rather than at zero.
    core.flat[0] = float(np.mean(values))
    model = TuckerFactors(core, factors)

    def objective():
        r = model.eval_at(indices) - values
        pen = lam * (
            float(np.sum(core * core))
            + sum(float(np.sum(U * U)) for U in factors)
        )
        return float((r @ r + pen) / len(values))

    history = [objective()]
    converged = False
    sweeps = 0
    # Fit-wide sorted observation layout shared by every sweep (one stable
    # argsort per mode), with targets pre-sorted once per mode.
    plan = ObservationPlan(shape, indices)
    t_sorted = [plan.sorted_values(values, j) for j in range(d)]
    for sweep in range(max_sweeps):
        # --- factor updates (batched ridge LS over all rows of a mode) ----
        for j in range(d):
            mp = plan.mode(j)
            if mp.n_obs == 0:
                continue
            K = _contracted_rows(model, mp.sorted_indices, skip=j)
            R = ranks[j]
            if not mp.pad_feasible:
                # Heavily skewed multiplicities: padding would dwarf
                # O(nnz); solve per row on the sorted segments instead.
                U = factors[j]
                eye = np.eye(R)
                ts = t_sorted[j]
                for lo, hi, i in zip(
                    mp.starts_obs,
                    mp.starts_obs + mp.counts[mp.obs_rows],
                    mp.obs_rows,
                ):
                    Ki, ti = K[lo:hi], ts[lo:hi]
                    G = Ki.T @ Ki + lam * eye
                    try:
                        U[i] = scipy.linalg.solve(G, Ki.T @ ti, assume_a="pos")
                    except np.linalg.LinAlgError:
                        U[i] = np.linalg.lstsq(G, Ki.T @ ti, rcond=None)[0]
                continue
            G = mp.gram(K)
            b = mp.seg_sum(K * t_sorted[j][:, None])
            G[:, np.arange(R), np.arange(R)] += lam
            factors[j][mp.obs_rows] = solve_batched_spd(G, b)
        # --- core update (global ridge LS over prod(ranks) unknowns) ------
        # Design row k = outer product of the factor rows of observation k.
        D = factors[0][indices[:, 0]]
        for j in range(1, d):
            rows = factors[j][indices[:, j]]
            D = (D[:, :, None] * rows[:, None, :]).reshape(len(values), -1)
        G = D.T @ D + lam * np.eye(core_size)
        try:
            flat = scipy.linalg.solve(G, D.T @ values, assume_a="pos")
        except np.linalg.LinAlgError:
            flat = np.linalg.lstsq(G, D.T @ values, rcond=None)[0]
        core[...] = flat.reshape(ranks)

        sweeps = sweep + 1
        history.append(objective())
        prev, cur = history[-2], history[-1]
        if prev - cur <= tol * max(prev, 1e-30):
            converged = True
            break
    return CompletionResult(
        factors=[model], history=history, converged=converged, n_sweeps=sweeps
    )

"""Rank-adaptive and regularized ALS completion kernels.

The paper fixes the CP rank per fit and tunes it by grid search; its
hardest regimes (figure5/figure6 low observation density, figure7
model-size tradeoffs) are exactly where that is wasteful — the right rank
depends on how much of the tensor was observed.  Two directions from
PAPERS.md are implemented here as first-class completion optimizers that
dispatch through the kernel-backend registry like ``complete_als`` does:

:func:`complete_als_regularized`
    ALS with *column-wise* L2 penalties threaded through the per-mode
    normal equations (``lam`` becomes a vector ``(R,)`` — see
    ``_solve_rows``/``_solve_rows_batched`` in ``als.py``) and an
    optional nonnegativity projection after each mode solve.  Graded
    penalties (the default) implement the "practical regularization" of
    Jiang et al. (arXiv:2103.16852): trailing components face stiffer
    shrinkage, biasing the fit toward low effective rank.  Projected
    nonnegative ALS is the relaxation baseline of the integer-programming
    completion line (arXiv:2211.15770).

:func:`complete_als_adaptive`
    A grow/prune loop around the fixed-rank kernels.  The fit starts at a
    small rank, *grows* (appending jittered low-magnitude columns, then
    warm-starting more sweeps) while a validation window improves by a
    relative margin, and *prunes* components whose column-norm product
    falls below a threshold fraction of the largest component.  Offline
    fits hold out a seeded slice of the observed entries Ω as the window;
    streaming callers already maintain a prequential window (the
    ``DriftMonitor``) that decides *when* to refit, and every adaptive
    refit re-selects the rank against a fresh holdout.  The degenerate
    configuration (``rank_init == cap``, no validation, no pruning)
    delegates verbatim to ``complete_als`` — the fixed-rank path is
    bit-identical, adaptivity is strictly opt-in.

Both optimizers accept ``kernel=``/``plan=`` (``accepts_kernel`` is set),
so the model layer's capability gating, plan caching, and backend
attribution apply unchanged.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.completion.als import _rebalance, complete_als
from repro.core.completion.backends import resolve_backend
from repro.core.completion.objectives import columnwise_penalty
from repro.core.completion.state import (
    CompletionResult,
    cp_component_norms,
    cp_eval,
    init_factors,
)
from repro.utils.rng import as_generator

__all__ = [
    "AdaptiveCompletionResult",
    "complete_als_regularized",
    "complete_als_adaptive",
]

#: Below this many observations no holdout is carved out (the slice would
#: be too small to rank ranks against); the fit stays at ``rank_init``
#: modulo pruning rather than growing against training error.
_MIN_HOLDOUT_NNZ = 20


@dataclass
class AdaptiveCompletionResult(CompletionResult):
    """`CompletionResult` plus the rank-adaptation audit trail.

    Attributes
    ----------
    rank_trajectory
        Ranks visited by the grow/prune loop, in order; the last entry is
        the served rank (``== self.rank``).
    validation_history
        Holdout MSE after each accepted trajectory step (empty when no
        validation window existed).
    requested_rank
        What the caller asked for: ``"auto"`` or the integer cap.
    """

    rank_trajectory: list = field(default_factory=list)
    validation_history: list = field(default_factory=list)
    requested_rank: object = None


def _resolve_penalties(rank: int, regularization: float, column_penalties):
    """Per-column penalty vector ``lam`` of shape ``(rank,)``.

    ``column_penalties`` is either ``None`` (uniform — plain ridge),
    ``"graded"`` (multiplier ``r`` on column ``r``, 1-based: the
    practical-regularization ramp), or an explicit array of nonnegative
    multipliers applied to ``regularization``.
    """
    lam = np.full(rank, float(regularization))
    if column_penalties is None:
        return lam
    if isinstance(column_penalties, str):
        if column_penalties != "graded":
            raise ValueError(
                f"column_penalties must be None, 'graded', or an array of "
                f"{rank} multipliers, got {column_penalties!r}"
            )
        return lam * np.arange(1, rank + 1, dtype=float)
    w = np.asarray(column_penalties, dtype=float)
    if w.shape != (rank,):
        raise ValueError(
            f"column_penalties must have shape ({rank},), got {w.shape}"
        )
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValueError("column_penalties must be finite and nonnegative")
    return lam * w


def complete_als_regularized(
    shape,
    indices,
    values,
    rank: int,
    regularization: float = 1e-5,
    max_sweeps: int = 100,
    tol: float = 1e-5,
    seed=None,
    factors: list | None = None,
    scale_rows: bool = True,
    kernel=None,
    plan=None,
    column_penalties="graded",
    nonnegative: bool = False,
) -> CompletionResult:
    """ALS with column-wise L2 penalties and optional nonnegativity.

    Identical sweep structure to :func:`complete_als` (per-mode normal
    equations, gauge rebalancing, relative-decrease stopping), with two
    extensions threaded through the backend's ``als_update``:

    * the regularization diagonal is a per-column vector (see
      :func:`_resolve_penalties`), so trailing components can be
      penalized harder than leading ones, and
    * with ``nonnegative=True`` each mode solve is followed by a
      projection onto the nonnegative orthant (projected ALS) — the
      relaxation baseline for nonnegative completion.  Projection is a
      backend-independent step, so the 1e-8 cross-backend equivalence
      contract holds for this variant too.  Note the ``history`` is not
      guaranteed monotone under projection.

    ``column_penalties=None`` with ``nonnegative=False`` is numerically
    plain ALS and delegates to :func:`complete_als` verbatim.
    """
    if column_penalties is None and not nonnegative:
        return complete_als(
            shape, indices, values, rank, regularization=regularization,
            max_sweeps=max_sweeps, tol=tol, seed=seed, factors=factors,
            scale_rows=scale_rows, kernel=kernel, plan=plan,
        )
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    d = len(shape)
    if d < 2:
        raise ValueError("tensor completion needs order >= 2")
    backend = resolve_backend(kernel)
    if not backend.supports_column_penalties:
        raise ValueError(
            f"kernel backend {backend.name!r} does not support column-wise "
            "penalties (supports_column_penalties=False)"
        )
    if factors is None:
        factors = init_factors(shape, rank, rng=as_generator(seed))
    else:
        factors = [np.asarray(U, dtype=float) for U in factors]
    if nonnegative:
        for U in factors:
            np.maximum(U, 0.0, out=U)
    lam = _resolve_penalties(factors[0].shape[1], regularization,
                             column_penalties)
    ctx = backend.prepare_als(shape, indices, values, plan=plan)
    indices = ctx.indices

    def objective() -> float:
        resid = cp_eval(factors, indices) - values
        pen = columnwise_penalty(factors, lam)
        return float((np.sum(resid**2) + pen) / len(values))

    history = [objective()]
    converged = False
    sweeps = 0
    for sweep in range(max_sweeps):
        for j in range(d):
            backend.als_update(ctx, factors, j, lam, scale_rows)
            if nonnegative:
                np.maximum(factors[j], 0.0, out=factors[j])
        _rebalance(factors)
        sweeps = sweep + 1
        history.append(objective())
        prev, cur = history[-2], history[-1]
        # abs(): the nonnegative projection can locally increase the
        # objective; a tiny oscillation should stop the sweep loop just
        # like a tiny decrease does.
        if abs(prev - cur) <= tol * max(prev, 1e-30):
            converged = True
            break
    return CompletionResult(
        factors=factors, history=history, converged=converged, n_sweeps=sweeps
    )


complete_als_regularized.accepts_kernel = True


def _holdout_split(indices, values, val_fraction, rng):
    """Seeded holdout slice of Ω; ``None`` when too small to be useful."""
    nnz = len(values)
    if val_fraction <= 0 or nnz < _MIN_HOLDOUT_NNZ:
        return None
    n_val = max(1, int(round(val_fraction * nnz)))
    n_val = min(n_val, nnz // 2)
    perm = rng.permutation(nnz)
    val_sel = np.sort(perm[:n_val])
    train_sel = np.sort(perm[n_val:])
    return (
        indices[train_sel], values[train_sel],
        indices[val_sel], values[val_sel],
    )


def _grown_factors(factors, step: int, rng, nonnegative: bool) -> list:
    """Append ``step`` fresh low-magnitude columns to every mode (copies).

    New columns start at a quarter of the fresh-init magnitude for the
    grown rank: large enough for ALS to pick them up in a few sweeps,
    small enough not to perturb the already-fitted components.
    """
    d = len(factors)
    r_new = factors[0].shape[1] + step
    base = 0.25 * float(r_new) ** (-1.0 / max(d, 1))
    grown = []
    for U in factors:
        cols = base * (1.0 + 0.3 * rng.standard_normal((U.shape[0], step)))
        if nonnegative:
            np.abs(cols, out=cols)
        grown.append(np.concatenate([U, cols], axis=1))
    return grown


def complete_als_adaptive(
    shape,
    indices,
    values,
    rank="auto",
    regularization: float = 1e-5,
    max_sweeps: int = 100,
    tol: float = 1e-5,
    seed=None,
    factors: list | None = None,
    scale_rows: bool = True,
    kernel=None,
    plan=None,
    rank_init: int = 2,
    max_rank: int = 16,
    grow_step: int = 2,
    grow_margin: float = 0.02,
    prune_threshold: float = 0.05,
    val_fraction: float = 0.1,
    search_sweeps: int | None = None,
    validation=None,
    column_penalties=None,
    nonnegative: bool = False,
) -> AdaptiveCompletionResult:
    """Rank-adaptive ALS: grow while validation improves, prune dead columns.

    Parameters beyond :func:`complete_als`'s
    ------------------------------------------
    rank
        ``"auto"`` (cap at ``max_rank``) or an integer rank *cap*.
    rank_init, grow_step
        Starting rank and how many columns each growth step appends.
    grow_margin
        Relative holdout-MSE improvement a growth step must deliver to be
        accepted; the first rejected step ends the search.
    prune_threshold
        Components whose column-norm product falls below this fraction of
        the largest component's are dropped after the full-data fit
        (``0`` disables pruning).
    val_fraction
        Fraction of Ω held out as the validation window (seeded split).
        Without a usable window — fewer than 20 observations, or
        ``val_fraction=0`` and no explicit ``validation`` — the loop
        does not grow (training error always rewards more rank), it only
        prunes.
    search_sweeps
        Sweep budget for each search-phase fit (default
        ``max(4, max_sweeps // 4)``); the final full-data polish gets the
        full ``max_sweeps``.
    validation
        Optional explicit ``(indices, values)`` window used instead of
        holding out a slice — e.g. a streaming caller scoring against its
        drift-monitor window.  With this, all of Ω is used for training.
    column_penalties, nonnegative
        Forwarded to :func:`complete_als_regularized`; ``None``/``False``
        runs plain ALS fits.

    Warm starts (``factors`` given — the ``partial_fit`` path) skip the
    search entirely and run fixed-rank sweeps at the warm factors' rank:
    rank re-selection is a *refit* decision, which is exactly when the
    streaming trainer rebuilds the model from scratch.
    """
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    backend = resolve_backend(kernel)

    if isinstance(rank, str):
        if rank != "auto":
            raise ValueError(f"rank must be an int or 'auto', got {rank!r}")
        cap = int(max_rank)
    else:
        cap = int(rank)
    if cap < 1:
        raise ValueError(f"rank cap must be >= 1, got {cap}")
    r0 = max(1, min(int(rank_init), cap))
    grow_step = max(1, int(grow_step))

    def _fit(idx, vals, warm, r, sweeps, pl):
        return complete_als_regularized(
            shape, idx, vals, r, regularization=regularization,
            max_sweeps=sweeps, tol=tol, seed=seed, factors=warm,
            scale_rows=scale_rows, kernel=backend, plan=pl,
            column_penalties=column_penalties, nonnegative=nonnegative,
        )

    if factors is not None:
        # Warm start: fixed-rank update at the current adapted rank.
        r = factors[0].shape[1]
        res = _fit(indices, values, factors, r, max_sweeps, plan)
        return AdaptiveCompletionResult(
            factors=res.factors, history=res.history, converged=res.converged,
            n_sweeps=res.n_sweeps, rank_trajectory=[r],
            requested_rank=rank,
        )

    rng = as_generator(seed)
    if validation is not None:
        val_idx = np.asarray(validation[0], dtype=np.intp)
        val_vals = np.asarray(validation[1], dtype=float)
        split = (indices, values, val_idx, val_vals)
    else:
        split = _holdout_split(indices, values, val_fraction, rng)

    trajectory: list[int] = []
    val_history: list[float] = []
    r = r0
    warm = None

    if split is not None and cap > r0:
        train_idx, train_vals, val_idx, val_vals = split
        n_search = (
            search_sweeps if search_sweeps is not None
            else max(4, max_sweeps // 4)
        )

        def val_err(f) -> float:
            resid = cp_eval(f, val_idx) - val_vals
            return float(np.mean(resid**2))

        cur = _fit(train_idx, train_vals, None, r, n_search, None)
        cur_factors, cur_err = cur.factors, val_err(cur.factors)
        trajectory.append(r)
        val_history.append(cur_err)
        while r < cap:
            step = min(grow_step, cap - r)
            cand_warm = _grown_factors(cur_factors, step, rng, nonnegative)
            cand = _fit(train_idx, train_vals, cand_warm, r + step,
                        n_search, None)
            cand_err = val_err(cand.factors)
            if cur_err - cand_err <= grow_margin * max(cur_err, 1e-30):
                break  # not enough generalization gain: stop growing
            r += step
            cur_factors, cur_err = cand.factors, cand_err
            trajectory.append(r)
            val_history.append(cand_err)
        warm = cur_factors
    else:
        trajectory.append(r)

    # Full-data fit at the selected rank (warm from the search winner when
    # a search ran).  When no search and no pruning can happen this IS the
    # whole fit: one plain delegate, bit-identical to the fixed-rank path.
    res = _fit(indices, values, warm, r, max_sweeps, plan)
    fitted = res.factors

    if prune_threshold > 0:
        weights = cp_component_norms(fitted)
        keep = weights >= prune_threshold * float(weights.max())
        if not keep.any():  # pragma: no cover - max always keeps itself
            keep[int(np.argmax(weights))] = True
        if not keep.all():
            fitted = [np.ascontiguousarray(U[:, keep]) for U in fitted]
            r = int(keep.sum())
            trajectory.append(r)
            res = _fit(indices, values, fitted, r, max_sweeps, plan)
            fitted = res.factors
    if split is not None:
        resid = cp_eval(fitted, split[2]) - split[3]
        val_history.append(float(np.mean(resid**2)))

    return AdaptiveCompletionResult(
        factors=fitted, history=res.history, converged=res.converged,
        n_sweeps=res.n_sweeps, rank_trajectory=trajectory,
        validation_history=val_history, requested_rank=rank,
    )


complete_als_adaptive.accepts_kernel = True

"""Alternating minimization via Newton's method with log barriers (AMN).

The paper's extrapolation model (Sections 4.2.2 and 5.3) minimizes Eq. 3
with the MLogQ2 loss ``phi(t, that) = (log t - log that)^2`` subject to
*strictly positive* factor matrices, enforced with element-wise log-barrier
terms scaled by a barrier parameter ``eta``.  Following the interior-point
recipe of Section 6.0.4:

* ``eta`` starts at 10 and decreases geometrically by a factor of 8 until it
  drops below a floor (the paper uses 1e-11; we also stop at the
  regularization magnitude, Section 4.2.2);
* for each ``eta``, alternating sweeps solve row-wise subproblems with (at
  most 40) damped Newton iterations.

The row subproblem for row ``u`` of mode ``j`` (observations ``Omega_i``,
design rows ``K`` from the Khatri-Rao product, ``s = K u > 0``) is

    g(u) = (1/n_i) sum_k (log s_k - log t_k)^2 + lam ||u||^2
           - eta * sum_r log(u_r).

We use the Gauss-Newton Hessian approximation
``H = (2/n_i) K^T diag(1/s^2) K + 2 lam I + eta diag(1/u^2)``, which is
positive definite everywhere in the interior (the exact Hessian loses
definiteness when residuals are large), plus a fraction-to-the-boundary
step rule and Armijo backtracking — the standard safeguards of
interior-point practice (Nocedal & Wright).

Implementation notes (hot path):

* Mode updates are dispatched through the kernel-backend registry
  (:mod:`repro.core.completion.backends`).  The ``numpy_batched``
  backend runs the damped Gauss-Newton iterations for *all* rows of a
  mode simultaneously: residuals, gradients and the stacked Gauss-Newton
  Hessians are segment reductions over the mode's sorted observation
  block (one fit-wide
  :class:`~repro.core.completion.state.ObservationPlan`, replacing the
  seed's per-mode argsort on every sweep of every barrier level), the
  ``(n_rows, R, R)`` systems are solved by one batched LAPACK call, and
  the fraction-to-the-boundary rule plus Armijo backtracking run under
  per-row masks that freeze rows as they converge or fail to improve.
* The ``reference`` backend retains the seed's per-row Newton loop for
  equivalence testing and benchmarking.
"""
from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.core.completion.backends import resolve_backend
from repro.core.completion.objectives import logq_objective
from repro.core.completion.state import (
    CompletionResult,
    ObservationPlan,
    init_positive_factors,
    solve_batched_spd,
)
from repro.utils.rng import as_generator

__all__ = ["complete_amn"]

_POS_FLOOR = 1e-12  # numerical floor keeping iterates strictly interior


def _row_objective(K, logt, u, lam, eta, n_inv):
    s = K @ u
    if np.any(s <= 0) or np.any(u <= 0):
        return np.inf
    r = np.log(s) - logt
    return (
        n_inv * float(r @ r)
        + lam * float(u @ u)
        - eta * float(np.sum(np.log(u)))
    )


def _newton_row(K, logt, u, lam, eta, max_iter, tol):
    """Damped Gauss-Newton iterations on one row subproblem (in place)."""
    n_inv = 1.0 / len(logt)
    R = len(u)
    eye2lam = 2.0 * lam * np.eye(R)
    f = _row_objective(K, logt, u, lam, eta, n_inv)
    for _ in range(max_iter):
        s = K @ u
        r = np.log(s) - logt
        Ks = K / s[:, None]
        grad = 2.0 * n_inv * (Ks.T @ r) + 2.0 * lam * u - eta / u
        H = 2.0 * n_inv * (Ks.T @ Ks) + eye2lam + np.diag(eta / (u * u))
        try:
            step = scipy.linalg.solve(H, -grad, assume_a="pos")
        except np.linalg.LinAlgError:
            step = -grad / (np.diag(H) + 1e-12)
        # Fraction-to-the-boundary: keep the iterate strictly positive.
        neg = step < 0
        if np.any(neg):
            alpha_max = float(np.min(-0.995 * u[neg] / step[neg]))
            alpha = min(1.0, alpha_max)
        else:
            alpha = 1.0
        # Armijo backtracking on the barrier objective.
        g_dot_step = float(grad @ step)
        improved = False
        for _bt in range(30):
            trial = u + alpha * step
            f_trial = _row_objective(K, logt, trial, lam, eta, n_inv)
            if f_trial <= f + 1e-4 * alpha * g_dot_step:
                u = trial
                f = f_trial
                improved = True
                break
            alpha *= 0.5
        if not improved:
            break
        if np.linalg.norm(alpha * step) <= tol * (np.linalg.norm(u) + 1e-30):
            break
    return np.maximum(u, _POS_FLOOR), f


def _row_objectives_batched(mp, K, logt_s, U, n_inv, lam, eta):
    """Barrier objective of every observed row at once.

    ``U`` is ``(n_obs, R)`` candidate rows; returns ``(n_obs,)`` with
    ``inf`` for rows that left the interior (any ``s <= 0`` or ``u <= 0``),
    mirroring :func:`_row_objective`.
    """
    s = np.einsum("kr,kr->k", K, U[mp.seg])
    interior = (mp.seg_min(s) > 0) & (U.min(axis=1) > 0)
    r = np.log(np.where(s > 0, s, 1.0)) - logt_s
    rss = mp.seg_sum(r * r)
    with np.errstate(invalid="ignore", divide="ignore"):
        f = (
            n_inv * rss
            + lam * np.einsum("nr,nr->n", U, U)
            - eta * np.sum(np.log(np.where(U > 0, U, 1.0)), axis=1)
        )
    return np.where(interior, f, np.inf)


def _newton_rows_batched(plan, j, factors, logt_s, lam, eta, max_iter, tol):
    """Damped Gauss-Newton on *all* rows of mode ``j`` simultaneously.

    Batched counterpart of :func:`_newton_row`: every per-row scalar of the
    reference loop (objective, step, boundary fraction, Armijo state,
    convergence) becomes an array over the mode's observed rows, and rows
    drop out of the ``alive`` mask exactly where the reference loop would
    ``break``.  Results overwrite ``factors[j]`` in place.
    """
    mp = plan.mode(j)
    if mp.n_obs == 0:
        return
    if not mp.pad_feasible:
        # Heavily skewed multiplicities: the padded Hessian batch would
        # dwarf O(nnz); run the per-row reference loop on the (already
        # sorted) segments instead.
        K = plan.khatri_rao(factors, j)
        U = factors[j]
        for lo, hi, i in zip(mp.starts_obs,
                             mp.starts_obs + mp.counts_obs.astype(int),
                             mp.obs_rows):
            U[i], _ = _newton_row(
                K[lo:hi], logt_s[lo:hi], U[i].copy(), lam, eta, max_iter, tol
            )
        return
    R = factors[j].shape[1]
    K = plan.khatri_rao(factors, j)         # sorted design rows, (nnz, R)
    n_inv = 1.0 / mp.counts_obs
    U = factors[j][mp.obs_rows].copy()      # (n_obs, R)
    f = _row_objectives_batched(mp, K, logt_s, U, n_inv, lam, eta)
    alive = np.ones(mp.n_obs, dtype=bool)
    diag = np.arange(R)
    # Frozen rows still ride along in the full-stack computations below
    # (their updates are masked out).  Compacting the observation set to
    # the alive rows mid-loop would save straggler iterations but reorder
    # the segment reductions, breaking bit-level agreement with the
    # reference trajectory; rows converge at similar rates in practice, so
    # the waste is bounded and the loop exits as soon as none are alive.
    for _ in range(max_iter):
        s = np.einsum("kr,kr->k", K, U[mp.seg])
        r = np.log(s) - logt_s
        Ksw = K / s[:, None]
        grad = (
            2.0 * n_inv[:, None] * mp.seg_sum(Ksw * r[:, None])
            + 2.0 * lam * U
            - eta / U
        )
        H = mp.gram(Ksw)
        H *= 2.0 * n_inv[:, None, None]
        H[:, diag, diag] += 2.0 * lam + eta / (U * U)
        step = solve_batched_spd(H, -grad)
        # Fraction-to-the-boundary: keep every iterate strictly positive.
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(step < 0, -0.995 * U / step, np.inf)
        alpha = np.minimum(1.0, ratio.min(axis=1))
        g_dot_step = np.einsum("nr,nr->n", grad, step)
        # Armijo backtracking under per-row masks.
        accepted = np.zeros(mp.n_obs, dtype=bool)
        for _bt in range(30):
            need = alive & ~accepted
            if not need.any():
                break
            trial = U + alpha[:, None] * step
            f_trial = _row_objectives_batched(
                mp, K, logt_s, trial, n_inv, lam, eta
            )
            ok = need & (f_trial <= f + 1e-4 * alpha * g_dot_step)
            U[ok] = trial[ok]
            f[ok] = f_trial[ok]
            accepted |= ok
            alpha[need & ~ok] *= 0.5
        # Rows whose backtracking failed freeze at their current iterate;
        # accepted rows with a negligible move are converged.
        step_norm = np.linalg.norm(alpha[:, None] * step, axis=1)
        small = step_norm <= tol * (np.linalg.norm(U, axis=1) + 1e-30)
        alive &= accepted & ~small
        if not alive.any():
            break
    factors[j][mp.obs_rows] = np.maximum(U, _POS_FLOOR)


def complete_amn(
    shape,
    indices,
    values,
    rank: int,
    regularization: float = 1e-5,
    max_sweeps: int = 4,
    tol: float = 1e-6,
    seed=None,
    factors: list | None = None,
    barrier_start: float = 10.0,
    barrier_reduction: float = 8.0,
    barrier_min: float = 1e-11,
    newton_iters: int = 40,
    kernel=None,
    plan: ObservationPlan | None = None,
) -> CompletionResult:
    """Fit a strictly positive CP model by interior-point AMN.

    Parameters
    ----------
    values
        Observed cell means, strictly positive (times, not log-times).
    max_sweeps
        Alternating sweeps per barrier value.
    barrier_start, barrier_reduction, barrier_min
        The paper's schedule: ``eta = 10, 10/8, 10/64, ...`` until
        ``eta <= max(barrier_min, regularization)``.
    newton_iters
        Newton iteration cap per row subproblem (paper: 40).
    kernel
        Backend name or :class:`KernelBackend` instance; ``None``
        resolves through the registry policy (``REPRO_KERNEL_BACKEND``
        env, else the calibrated best — see
        :mod:`repro.core.completion.backends`).
    plan
        Optional pre-built :class:`ObservationPlan` (honoured by
        plan-reuse backends) for streaming warm starts over an unchanged
        observation set; a plan for different observations raises.

    Returns
    -------
    CompletionResult
        ``history`` holds the MLogQ2 objective (no barrier term) after each
        sweep; all returned factors are strictly positive, so the Perron
        rank-1 extrapolation of Section 5.3 applies.
    """
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    if np.any(values <= 0):
        raise ValueError("AMN requires strictly positive observed values")
    d = len(shape)
    if d < 2:
        raise ValueError("tensor completion needs order >= 2")
    backend = resolve_backend(kernel)
    lam = float(regularization)
    if factors is None:
        gmean = float(np.exp(np.mean(np.log(values))))
        factors = init_positive_factors(
            shape, rank, rng=as_generator(seed), mean=gmean
        )
    else:
        # The buffered gathers require float64; coerce warm starts.
        factors = [np.asarray(U, dtype=float) for U in factors]
    logt = np.log(values)
    # Plan-reuse backends build (or validate) one argsort per mode for the
    # whole fit, shared by every sweep of every barrier level (the seed
    # re-sorted per mode per sweep).
    ctx = backend.prepare_amn(shape, indices, logt, plan=plan)
    indices = ctx.indices
    history = [logq_objective(factors, indices, values, lam)]
    eta = float(barrier_start)
    eta_floor = max(float(barrier_min), lam)
    sweeps = 0
    converged = False
    while True:
        for _sweep in range(max_sweeps):
            for j in range(d):
                backend.amn_update(
                    ctx, factors, j, lam, eta, newton_iters, tol
                )
            sweeps += 1
            history.append(logq_objective(factors, indices, values, lam))
        if eta <= eta_floor:
            prev = history[-1 - max_sweeps] if len(history) > max_sweeps else history[0]
            converged = abs(prev - history[-1]) <= tol * max(abs(prev), 1e-30)
            break
        eta /= barrier_reduction
    return CompletionResult(
        factors=factors, history=history, converged=converged, n_sweeps=sweeps
    )


#: Plan-gating metadata the model layer consults (see
#: ``CPRModel._run_completion``): this optimizer takes ``kernel``/``plan``.
complete_amn.accepts_kernel = True

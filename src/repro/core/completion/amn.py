"""Alternating minimization via Newton's method with log barriers (AMN).

The paper's extrapolation model (Sections 4.2.2 and 5.3) minimizes Eq. 3
with the MLogQ2 loss ``phi(t, that) = (log t - log that)^2`` subject to
*strictly positive* factor matrices, enforced with element-wise log-barrier
terms scaled by a barrier parameter ``eta``.  Following the interior-point
recipe of Section 6.0.4:

* ``eta`` starts at 10 and decreases geometrically by a factor of 8 until it
  drops below a floor (the paper uses 1e-11; we also stop at the
  regularization magnitude, Section 4.2.2);
* for each ``eta``, alternating sweeps solve row-wise subproblems with (at
  most 40) damped Newton iterations.

The row subproblem for row ``u`` of mode ``j`` (observations ``Omega_i``,
design rows ``K`` from the Khatri-Rao product, ``s = K u > 0``) is

    g(u) = (1/n_i) sum_k (log s_k - log t_k)^2 + lam ||u||^2
           - eta * sum_r log(u_r).

We use the Gauss-Newton Hessian approximation
``H = (2/n_i) K^T diag(1/s^2) K + 2 lam I + eta diag(1/u^2)``, which is
positive definite everywhere in the interior (the exact Hessian loses
definiteness when residuals are large), plus a fraction-to-the-boundary
step rule and Armijo backtracking — the standard safeguards of
interior-point practice (Nocedal & Wright).
"""
from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.core.completion.objectives import logq_objective
from repro.core.completion.state import (
    CompletionResult,
    init_positive_factors,
    khatri_rao_rows,
)
from repro.utils.rng import as_generator

__all__ = ["complete_amn"]

_POS_FLOOR = 1e-12  # numerical floor keeping iterates strictly interior


def _row_objective(K, logt, u, lam, eta, n_inv):
    s = K @ u
    if np.any(s <= 0) or np.any(u <= 0):
        return np.inf
    r = np.log(s) - logt
    return (
        n_inv * float(r @ r)
        + lam * float(u @ u)
        - eta * float(np.sum(np.log(u)))
    )


def _newton_row(K, logt, u, lam, eta, max_iter, tol):
    """Damped Gauss-Newton iterations on one row subproblem (in place)."""
    n_inv = 1.0 / len(logt)
    R = len(u)
    eye2lam = 2.0 * lam * np.eye(R)
    f = _row_objective(K, logt, u, lam, eta, n_inv)
    for _ in range(max_iter):
        s = K @ u
        r = np.log(s) - logt
        Ks = K / s[:, None]
        grad = 2.0 * n_inv * (Ks.T @ r) + 2.0 * lam * u - eta / u
        H = 2.0 * n_inv * (Ks.T @ Ks) + eye2lam + np.diag(eta / (u * u))
        try:
            step = scipy.linalg.solve(H, -grad, assume_a="pos")
        except np.linalg.LinAlgError:
            step = -grad / (np.diag(H) + 1e-12)
        # Fraction-to-the-boundary: keep the iterate strictly positive.
        neg = step < 0
        if np.any(neg):
            alpha_max = float(np.min(-0.995 * u[neg] / step[neg]))
            alpha = min(1.0, alpha_max)
        else:
            alpha = 1.0
        # Armijo backtracking on the barrier objective.
        g_dot_step = float(grad @ step)
        improved = False
        for _bt in range(30):
            trial = u + alpha * step
            f_trial = _row_objective(K, logt, trial, lam, eta, n_inv)
            if f_trial <= f + 1e-4 * alpha * g_dot_step:
                u = trial
                f = f_trial
                improved = True
                break
            alpha *= 0.5
        if not improved:
            break
        if np.linalg.norm(alpha * step) <= tol * (np.linalg.norm(u) + 1e-30):
            break
    return np.maximum(u, _POS_FLOOR), f


def complete_amn(
    shape,
    indices,
    values,
    rank: int,
    regularization: float = 1e-5,
    max_sweeps: int = 4,
    tol: float = 1e-6,
    seed=None,
    factors: list | None = None,
    barrier_start: float = 10.0,
    barrier_reduction: float = 8.0,
    barrier_min: float = 1e-11,
    newton_iters: int = 40,
) -> CompletionResult:
    """Fit a strictly positive CP model by interior-point AMN.

    Parameters
    ----------
    values
        Observed cell means, strictly positive (times, not log-times).
    max_sweeps
        Alternating sweeps per barrier value.
    barrier_start, barrier_reduction, barrier_min
        The paper's schedule: ``eta = 10, 10/8, 10/64, ...`` until
        ``eta <= max(barrier_min, regularization)``.
    newton_iters
        Newton iteration cap per row subproblem (paper: 40).

    Returns
    -------
    CompletionResult
        ``history`` holds the MLogQ2 objective (no barrier term) after each
        sweep; all returned factors are strictly positive, so the Perron
        rank-1 extrapolation of Section 5.3 applies.
    """
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    if np.any(values <= 0):
        raise ValueError("AMN requires strictly positive observed values")
    d = len(shape)
    if d < 2:
        raise ValueError("tensor completion needs order >= 2")
    lam = float(regularization)
    if factors is None:
        gmean = float(np.exp(np.mean(np.log(values))))
        factors = init_positive_factors(
            shape, rank, rng=as_generator(seed), mean=gmean
        )
    logt = np.log(values)

    history = [logq_objective(factors, indices, values, lam)]
    eta = float(barrier_start)
    eta_floor = max(float(barrier_min), lam)
    sweeps = 0
    converged = False
    while True:
        for _sweep in range(max_sweeps):
            for j in range(d):
                K = khatri_rao_rows(factors, indices, skip=j)
                row_idx = indices[:, j]
                order = np.argsort(row_idx, kind="stable")
                sorted_rows = row_idx[order]
                Ks = K[order]
                ls = logt[order]
                bounds = np.searchsorted(sorted_rows, np.arange(shape[j] + 1))
                U = factors[j]
                for i in range(shape[j]):
                    lo, hi = bounds[i], bounds[i + 1]
                    if lo == hi:
                        continue
                    U[i], _ = _newton_row(
                        Ks[lo:hi], ls[lo:hi], U[i].copy(), lam, eta,
                        newton_iters, tol,
                    )
            sweeps += 1
            history.append(logq_objective(factors, indices, values, lam))
        if eta <= eta_floor:
            prev = history[-1 - max_sweeps] if len(history) > max_sweeps else history[0]
            converged = abs(prev - history[-1]) <= tol * max(abs(prev), 1e-30)
            break
        eta /= barrier_reduction
    return CompletionResult(
        factors=factors, history=history, converged=converged, n_sweeps=sweeps
    )

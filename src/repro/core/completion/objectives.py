"""Objective functions for completion monitoring (paper Eq. 3).

The regularized objective is

    g(U_1..U_d) = lam * sum_j ||U_j||_F^2 + sum_{i in Omega} phi(t_i, that_i)

with ``phi`` the element-wise loss: squared error for ALS/CCD/SGD (applied
to log-transformed values by the interpolation model) or squared log ratio
``(log t - log that)^2`` for the AMN extrapolation model.
"""
from __future__ import annotations

import numpy as np

from repro.core.completion.state import cp_eval

__all__ = [
    "ls_objective",
    "logq_objective",
    "frobenius_penalty",
    "columnwise_penalty",
]


def frobenius_penalty(factors: list, lam: float) -> float:
    """Regularization term ``lam * sum_j ||U_j||_F^2``."""
    return float(lam * sum(float(np.sum(U * U)) for U in factors))


def columnwise_penalty(factors: list, lam) -> float:
    """Per-component regularization ``sum_j sum_r lam_r ||U_j[:, r]||^2``.

    ``lam`` is a per-column vector of shape ``(R,)`` (a uniform vector
    reproduces :func:`frobenius_penalty` exactly).  Graded penalties —
    weights growing with the column index — bias ALS toward low effective
    rank: trailing components must earn their residual reduction against
    a stiffer shrinkage, which is the "practical regularization" recipe of
    Jiang et al. (arXiv:2103.16852) the adaptive kernel's pruning exploits.
    """
    lam = np.asarray(lam, dtype=float)
    return float(
        sum(float(np.sum(lam * np.sum(U * U, axis=0))) for U in factors)
    )


def ls_objective(factors, indices, values, lam: float) -> float:
    """Eq. 3 with least-squares loss, scaled by ``1/|Omega|``.

    Returns ``(sum_Omega (t - that)^2 + lam * sum_j ||U_j||_F^2) / |Omega|``.
    The uniform ``1/|Omega|`` scaling keeps histories comparable across
    observation sets while preserving exact monotonicity of block
    coordinate descent (ALS with ``scale_rows=False``, CCD), since a
    positive constant scaling cannot change the ordering of values.
    """
    resid = cp_eval(factors, indices) - values
    n = len(values)
    return float((np.sum(resid**2) + frobenius_penalty(factors, lam)) / n)


def logq_objective(factors, indices, values, lam: float) -> float:
    """Eq. 3 with MLogQ2 loss, scaled by ``1/|Omega|``.

    Requires a strictly positive model; non-positive predictions are
    clipped to a tiny constant, making the objective finite but terrible —
    useful for detecting interior-point violations in tests.
    """
    pred = np.maximum(cp_eval(factors, indices), 1e-300)
    q = np.log(pred) - np.log(values)
    n = len(values)
    return float((np.sum(q**2) + frobenius_penalty(factors, lam)) / n)

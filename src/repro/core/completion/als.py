"""Alternating least squares for tensor completion (paper Section 4.2.1).

ALS sweeps over modes; for mode ``j`` it fixes all other factors and solves,
independently for every row ``i`` of ``U_j``, the regularized linear
least-squares problem

    min_u  (1/|Omega_i|) * sum_{k in Omega_i} (t_k - K_k . u)^2 + lam ||u||^2

where ``K_k`` is the Khatri-Rao design row of observation ``k`` (the
element-wise product of the other factors' rows).  Each row solve is an
``R x R`` positive-definite system.

Implementation notes (hot path, vectorized per the hpc-parallel guides):

* The full Khatri-Rao row block ``K`` (``nnz x R``) is formed once per mode
  per sweep with fancy-indexed gathers and in-place products.
* Observations are grouped by their mode-``j`` index with one ``argsort``;
  each row's normal equations are then two BLAS calls on a contiguous slice
  (``K_i^T K_i`` and ``K_i^T t_i``), avoiding an ``nnz x R^2`` intermediate.
* Rows with no observations are left at their current value (they are
  determined only by the prior/initialization, as in the paper's setup).
"""
from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.core.completion.objectives import ls_objective
from repro.core.completion.state import (
    CompletionResult,
    init_factors,
    khatri_rao_rows,
)
from repro.utils.rng import as_generator

__all__ = ["complete_als", "als_update_mode"]


def _solve_rows(K, t, row_idx, n_rows, lam, out, scale_rows):
    """Solve the per-row regularized normal equations for one mode.

    ``K`` (m, R) and ``t`` (m,) are the design rows / targets, ``row_idx``
    the mode index of each observation.  Results are written into ``out``
    (the factor matrix) in place for rows that have observations.

    With ``scale_rows=True`` the data term is averaged over the row's
    observation set (the paper's row objective); with ``False`` it is the
    plain sum, making every mode update an exact block-coordinate-descent
    step on the global objective of Eq. 3 (hence provably monotone).
    """
    R = K.shape[1]
    order = np.argsort(row_idx, kind="stable")
    sorted_rows = row_idx[order]
    Ks = K[order]
    ts = t[order]
    # Segment boundaries of each distinct row.
    bounds = np.searchsorted(sorted_rows, np.arange(n_rows + 1))
    eye = np.eye(R)
    for i in range(n_rows):
        lo, hi = bounds[i], bounds[i + 1]
        if lo == hi:
            continue  # unobserved row: keep current value
        Ki = Ks[lo:hi]
        ti = ts[lo:hi]
        ni = (hi - lo) if scale_rows else 1.0
        G = (Ki.T @ Ki) / ni + lam * eye
        b = (Ki.T @ ti) / ni
        try:
            out[i] = scipy.linalg.solve(G, b, assume_a="pos")
        except np.linalg.LinAlgError:
            out[i] = np.linalg.lstsq(G, b, rcond=None)[0]


def _rebalance(factors) -> None:
    """Equalize per-component column norms across modes (in place).

    A CP tensor is invariant to rescaling a component's column in one mode
    and inversely in another; ALS drifts toward unbalanced factors, which
    hurts conditioning and makes unobserved-cell products extreme.  Each
    component's columns are rescaled to share the geometric-mean norm.
    """
    d = len(factors)
    norms = np.stack([np.linalg.norm(U, axis=0) for U in factors])  # (d, R)
    norms = np.maximum(norms, 1e-300)
    target = np.exp(np.log(norms).mean(axis=0))  # geometric mean per component
    for j, U in enumerate(factors):
        U *= target / norms[j]


def als_update_mode(factors, indices, values, j: int, lam: float, scale_rows: bool = True) -> None:
    """One ALS mode update (in place): re-solve every row of ``U_j``."""
    K = khatri_rao_rows(factors, indices, skip=j)
    _solve_rows(
        K, values, indices[:, j], factors[j].shape[0], lam, factors[j], scale_rows
    )


def complete_als(
    shape,
    indices,
    values,
    rank: int,
    regularization: float = 1e-5,
    max_sweeps: int = 100,
    tol: float = 1e-5,
    seed=None,
    factors: list | None = None,
    scale_rows: bool = True,
) -> CompletionResult:
    """Fit a rank-``rank`` CP decomposition to observed entries with ALS.

    Parameters
    ----------
    shape
        Tensor shape ``(I_1, ..., I_d)``.
    indices, values
        Observed multi-indices ``(nnz, d)`` and their values ``(nnz,)``.
        For the paper's interpolation model the values are log-transformed
        cell means; this routine is agnostic to the transformation.
    regularization
        ``lam`` in Eq. 3 (paper sweeps ``1e-6 .. 1e-3``).
    max_sweeps, tol
        Sweep limit (paper: 100) and relative-decrease stopping tolerance.
    factors
        Warm-start factors (mutated); fresh Gaussian init when ``None``.
    scale_rows
        ``True`` (paper): per-row objectives average over the row's
        observations, which rescales the effective regularization per row.
        ``False``: plain block coordinate descent on Eq. 3, whose
        ``history`` is then monotonically non-increasing.

    Returns
    -------
    CompletionResult
        ``history[k]`` is the Eq. 3 objective (mean data term) after sweep
        ``k``; monotone non-increasing when ``scale_rows=False``.
    """
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    d = len(shape)
    if d < 2:
        raise ValueError("tensor completion needs order >= 2")
    if factors is None:
        factors = init_factors(shape, rank, rng=as_generator(seed))
    history = [ls_objective(factors, indices, values, regularization)]
    converged = False
    sweeps = 0
    for sweep in range(max_sweeps):
        for j in range(d):
            als_update_mode(factors, indices, values, j, regularization, scale_rows)
        # Gauge fix: balancing column norms leaves the CP tensor unchanged
        # and weakly decreases the Frobenius penalty, so monotonicity of the
        # scale_rows=False history is preserved.
        _rebalance(factors)
        sweeps = sweep + 1
        history.append(ls_objective(factors, indices, values, regularization))
        prev, cur = history[-2], history[-1]
        if prev - cur <= tol * max(prev, 1e-30):
            converged = True
            break
    return CompletionResult(
        factors=factors, history=history, converged=converged, n_sweeps=sweeps
    )

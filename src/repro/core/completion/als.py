"""Alternating least squares for tensor completion (paper Section 4.2.1).

ALS sweeps over modes; for mode ``j`` it fixes all other factors and solves,
independently for every row ``i`` of ``U_j``, the regularized linear
least-squares problem

    min_u  (1/|Omega_i|) * sum_{k in Omega_i} (t_k - K_k . u)^2 + lam ||u||^2

where ``K_k`` is the Khatri-Rao design row of observation ``k`` (the
element-wise product of the other factors' rows).  Each row solve is an
``R x R`` positive-definite system.

Implementation notes (hot path, vectorized per the hpc-parallel guides):

* Mode updates are dispatched through the kernel-backend registry
  (:mod:`repro.core.completion.backends`).  The default resolution picks
  the fastest available backend; ``numpy_batched`` assembles *all* of a
  mode's regularized normal systems at once (observations grouped per
  row by the fit-wide :class:`~repro.core.completion.state.ObservationPlan`,
  ragged per-row Gram matrices reduced with one zero-padded batched GEMM,
  the ``(n_rows, R, R)`` stack solved by a single batched LAPACK call).
* The ``reference`` backend retains the seed's per-row loop (one
  ``argsort`` and one small solve per row per sweep) — the ground truth
  the equivalence tests compare against, and the slow baseline the
  throughput benchmark measures speedups over.
* Rows with no observations are left at their current value (they are
  determined only by the prior/initialization, as in the paper's setup).
"""
from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.core.completion.backends import resolve_backend
from repro.core.completion.objectives import ls_objective
from repro.core.completion.state import (
    CompletionResult,
    ObservationPlan,
    init_factors,
)
from repro.utils.rng import as_generator

__all__ = ["complete_als", "als_update_mode"]


def _solve_rows(K, t, row_idx, n_rows, lam, out, scale_rows):
    """Solve the per-row regularized normal equations for one mode.

    ``K`` (m, R) and ``t`` (m,) are the design rows / targets, ``row_idx``
    the mode index of each observation.  Results are written into ``out``
    (the factor matrix) in place for rows that have observations.

    With ``scale_rows=True`` the data term is averaged over the row's
    observation set (the paper's row objective); with ``False`` it is the
    plain sum, making every mode update an exact block-coordinate-descent
    step on the global objective of Eq. 3 (hence provably monotone).

    ``lam`` may be a scalar or a per-column vector of shape ``(R,)``
    (column-wise penalties): ``lam * eye`` broadcasts to ``diag(lam)``.
    """
    R = K.shape[1]
    order = np.argsort(row_idx, kind="stable")
    sorted_rows = row_idx[order]
    Ks = K[order]
    ts = t[order]
    # Segment boundaries of each distinct row.
    bounds = np.searchsorted(sorted_rows, np.arange(n_rows + 1))
    eye = np.eye(R)
    for i in range(n_rows):
        lo, hi = bounds[i], bounds[i + 1]
        if lo == hi:
            continue  # unobserved row: keep current value
        Ki = Ks[lo:hi]
        ti = ts[lo:hi]
        ni = (hi - lo) if scale_rows else 1.0
        G = (Ki.T @ Ki) / ni + lam * eye
        b = (Ki.T @ ti) / ni
        try:
            out[i] = scipy.linalg.solve(G, b, assume_a="pos")
        except np.linalg.LinAlgError:
            out[i] = np.linalg.lstsq(G, b, rcond=None)[0]


def _solve_rows_batched(plan, j, factors, t_sorted, lam, out, scale_rows):
    """Batched equivalent of :func:`_solve_rows` for one mode.

    Builds every observed row's ``R x R`` normal system in one shot from
    the plan's sorted layout and solves the whole stack with one batched
    LAPACK call; results overwrite the observed rows of ``out`` in place.
    """
    from repro.core.completion.state import solve_batched_spd

    mp = plan.mode(j)
    if mp.n_obs == 0:
        return
    if not mp.pad_feasible:
        # Heavily skewed multiplicities: zero-padding would dwarf O(nnz).
        # Solve per row on the (already sorted) segments instead.
        K = plan.khatri_rao(factors, j)
        _solve_rows(
            K, t_sorted, mp.sorted_indices[:, j], mp.n_rows, lam, out,
            scale_rows,
        )
        return
    R = factors[j].shape[1]
    K = plan.khatri_rao(factors, j)
    G = mp.gram(K)                              # (n_obs, R, R)
    b = mp.seg_sum(K * t_sorted[:, None])       # (n_obs, R)
    # scale_rows divides the data term by the row's observation count;
    # scaling the whole system by ``n_i`` instead folds that into the
    # regularization diagonal (identical solution, two fewer full-stack
    # passes): (G/n + lam I) u = b/n  <=>  (G + n lam I) u = b.
    # ``lam`` may be a per-column vector (shape (R,)) — the column-wise
    # penalties of the regularized variant — in which case the diagonal
    # add is ``n_i * lam_r`` per (row, column).
    if np.ndim(lam) > 0:
        lam_vec = np.asarray(lam, dtype=float)
        diag = (
            mp.counts_obs[:, None] * lam_vec[None, :] if scale_rows else lam_vec
        )
    else:
        diag = np.asarray(
            lam * mp.counts_obs if scale_rows else lam
        ).reshape(-1, 1)
    G[:, np.arange(R), np.arange(R)] += diag
    out[mp.obs_rows] = solve_batched_spd(G, b)


def _rebalance(factors) -> None:
    """Equalize per-component column norms across modes (in place).

    A CP tensor is invariant to rescaling a component's column in one mode
    and inversely in another; ALS drifts toward unbalanced factors, which
    hurts conditioning and makes unobserved-cell products extreme.  Each
    component's columns are rescaled to share the geometric-mean norm.
    """
    d = len(factors)
    norms = np.stack([np.linalg.norm(U, axis=0) for U in factors])  # (d, R)
    norms = np.maximum(norms, 1e-300)
    target = np.exp(np.log(norms).mean(axis=0))  # geometric mean per component
    for j, U in enumerate(factors):
        U *= target / norms[j]


def als_update_mode(
    factors,
    indices,
    values,
    j: int,
    lam: float,
    scale_rows: bool = True,
    kernel=None,
    plan: ObservationPlan | None = None,
) -> None:
    """One ALS mode update (in place): re-solve every row of ``U_j``.

    ``kernel`` is a backend name or :class:`KernelBackend` resolved
    through :func:`repro.core.completion.backends.resolve_backend`
    (``None`` picks the default).  ``plan`` lets plan-reuse backends
    share a fit-wide :class:`ObservationPlan` (built on the fly when
    omitted).
    """
    backend = resolve_backend(kernel)
    shape = [U.shape[0] for U in factors]
    ctx = backend.prepare_als(shape, indices, values, plan=plan)
    backend.als_update(ctx, factors, j, lam, scale_rows)


def complete_als(
    shape,
    indices,
    values,
    rank: int,
    regularization: float = 1e-5,
    max_sweeps: int = 100,
    tol: float = 1e-5,
    seed=None,
    factors: list | None = None,
    scale_rows: bool = True,
    kernel=None,
    plan: ObservationPlan | None = None,
) -> CompletionResult:
    """Fit a rank-``rank`` CP decomposition to observed entries with ALS.

    Parameters
    ----------
    shape
        Tensor shape ``(I_1, ..., I_d)``.
    indices, values
        Observed multi-indices ``(nnz, d)`` and their values ``(nnz,)``.
        For the paper's interpolation model the values are log-transformed
        cell means; this routine is agnostic to the transformation.
    regularization
        ``lam`` in Eq. 3 (paper sweeps ``1e-6 .. 1e-3``).
    max_sweeps, tol
        Sweep limit (paper: 100) and relative-decrease stopping tolerance.
    factors
        Warm-start factors (mutated); fresh Gaussian init when ``None``.
    scale_rows
        ``True`` (paper): per-row objectives average over the row's
        observations, which rescales the effective regularization per row.
        ``False``: plain block coordinate descent on Eq. 3, whose
        ``history`` is then monotonically non-increasing.
    kernel
        Backend name or :class:`KernelBackend` instance; ``None``
        resolves through the registry policy (``REPRO_KERNEL_BACKEND``
        env, else the calibrated best — see
        :mod:`repro.core.completion.backends`).
    plan
        Optional pre-built :class:`ObservationPlan` for ``(shape,
        indices)``; honoured by backends with ``supports_plan_reuse``.
        Streaming callers whose new observations landed in
        already-observed cells pass the previous fit's plan so the
        warm-start sweep reuses its argsorts and buffers; a plan for a
        different observation set raises.

    Returns
    -------
    CompletionResult
        ``history[k]`` is the Eq. 3 objective (mean data term) after sweep
        ``k``; monotone non-increasing when ``scale_rows=False``.
    """
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    d = len(shape)
    if d < 2:
        raise ValueError("tensor completion needs order >= 2")
    backend = resolve_backend(kernel)
    if factors is None:
        factors = init_factors(shape, rank, rng=as_generator(seed))
    else:
        # The buffered gathers require float64; coerce warm starts.
        factors = [np.asarray(U, dtype=float) for U in factors]
    ctx = backend.prepare_als(shape, indices, values, plan=plan)
    indices = ctx.indices
    history = [ls_objective(factors, indices, values, regularization)]
    converged = False
    sweeps = 0
    for sweep in range(max_sweeps):
        for j in range(d):
            backend.als_update(ctx, factors, j, regularization, scale_rows)
        # Gauge fix: balancing column norms leaves the CP tensor unchanged
        # and weakly decreases the Frobenius penalty, so monotonicity of the
        # scale_rows=False history is preserved.
        _rebalance(factors)
        sweeps = sweep + 1
        history.append(ls_objective(factors, indices, values, regularization))
        prev, cur = history[-2], history[-1]
        if prev - cur <= tol * max(prev, 1e-30):
            converged = True
            break
    return CompletionResult(
        factors=factors, history=history, converged=converged, n_sweeps=sweeps
    )


#: Plan-gating metadata the model layer consults (see
#: ``CPRModel._run_completion``): this optimizer takes ``kernel``/``plan``.
complete_als.accepts_kernel = True

"""Shared CP-decomposition state: initialization, evaluation, bookkeeping.

A rank-``R`` CP decomposition of an order-``d`` tensor is a list of ``d``
factor matrices ``U_j`` of shape ``(I_j, R)``; element ``(i_1, ..., i_d)``
is modeled as ``sum_r prod_j U_j[i_j, r]`` (paper Eq. 2).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.utils.rng import as_generator

__all__ = [
    "init_factors",
    "init_positive_factors",
    "cp_eval",
    "cp_full",
    "cp_size_bytes",
    "khatri_rao_rows",
    "CompletionResult",
    "ObservationPlan",
    "ModePlan",
    "solve_batched_spd",
]


def init_factors(shape, rank: int, rng=None, noise: float = 0.3) -> list:
    """Near-constant factor matrices for least-squares completion.

    Entries are ``rank**(-1/d) * (1 + noise * N(0, 1))``: every rank-1
    component's ``d``-factor product is O(1/R) with O(noise) relative
    jitter, so the CP sum starts O(1) for any order and rank.

    Why not plain Gaussians: (a) zero-mean entries make ``d``-factor
    products vanish for large ``d``, so the ridge term collapses ALS onto
    the constant model; (b) log execution-time tensors are dominantly
    *additive* (multiplicative times), and additive structure lives in the
    near-constant-factor region of CP space — starting there avoids the
    poor local minima random init falls into on high-order tensors (in our
    AMG reproduction this init cuts the converged ALS objective by ~30x).
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    rng = as_generator(rng)
    base = float(rank) ** (-1.0 / max(len(shape), 1))
    return [
        base * (1.0 + noise * rng.standard_normal((int(I), rank))) for I in shape
    ]


def init_positive_factors(shape, rank: int, rng=None, mean: float = 1.0) -> list:
    """Strictly positive factors for the interior-point (AMN) model.

    Entries are lognormal with small dispersion around
    ``(mean / rank)**(1/d)`` so the initial CP model output is close to
    ``mean`` — used with times normalized by their geometric mean.
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    if mean <= 0:
        raise ValueError("mean must be positive")
    rng = as_generator(rng)
    d = len(shape)
    base = (mean / rank) ** (1.0 / d)
    return [
        base * np.exp(rng.normal(0.0, 0.1, size=(int(I), rank)))
        for I in shape
    ]


def cp_eval(factors: list, indices: np.ndarray) -> np.ndarray:
    """Evaluate the CP model at multi-indices, shape ``(m, d)`` -> ``(m,)``.

    Vectorized gather-and-product: O(m * d * R) with no Python-level loop
    over observations.
    """
    indices = np.asarray(indices)
    if indices.ndim != 2 or indices.shape[1] != len(factors):
        raise ValueError(
            f"indices must be (m, {len(factors)}), got {indices.shape}"
        )
    prod = factors[0][indices[:, 0]].copy()
    for j in range(1, len(factors)):
        prod *= factors[j][indices[:, j]]
    return prod.sum(axis=1)


def khatri_rao_rows(
    factors: list, indices: np.ndarray, skip: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Rows of the Khatri-Rao product excluding mode ``skip``.

    Row ``k`` is ``prod_{j != skip} U_j[indices[k, j], :]`` — the design
    matrix row of observation ``k`` in the mode-``skip`` least-squares
    subproblem.  Shape ``(m, R)``.  ``out``, when given, receives the result
    in place (hot-path buffer reuse; must be ``(m, R)`` float64).
    """
    first = 0 if skip != 0 else 1
    if first >= len(factors):
        raise ValueError("need at least two modes")
    if out is None:
        K = factors[first][indices[:, first]].copy()
    else:
        K = np.take(factors[first], indices[:, first], axis=0, out=out)
    for j in range(len(factors)):
        if j == skip or j == first:
            continue
        K *= factors[j][indices[:, j]]
    return K


def solve_batched_spd(G: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve the stacked SPD systems ``G[i] @ x[i] = b[i]``.

    ``G`` is ``(n, R, R)``, ``b`` is ``(n, R)``.  One LAPACK round-trip for
    the whole stack; a (rare) singular member triggers a per-system
    fallback mirroring the reference row solver: ``scipy`` positive solve,
    then least squares.
    """
    try:
        return np.linalg.solve(G, b[..., None])[..., 0]
    except np.linalg.LinAlgError:
        out = np.empty_like(b)
        for i in range(len(b)):
            try:
                out[i] = scipy.linalg.solve(G[i], b[i], assume_a="pos")
            except np.linalg.LinAlgError:
                out[i] = np.linalg.lstsq(G[i], b[i], rcond=None)[0]
        return out


class ModePlan:
    """Sorted-observation layout of one tensor mode (see ObservationPlan).

    All per-observation arrays handed to the segment reductions must be in
    *sorted order* (``arr[order]`` of the original observation order); the
    Khatri-Rao rows produced by :meth:`ObservationPlan.khatri_rao` already
    are.  Rows with no observations are excluded from every compacted
    array — results index the ``obs_rows`` subset.

    Attributes
    ----------
    order
        Stable argsort of the mode's observation indices, ``(nnz,)``.
    sorted_indices
        ``indices[order]`` — full multi-indices in segment-contiguous
        order, ``(nnz, d)``.
    bounds, counts
        Segment bounds ``(n_rows + 1,)`` and per-row observation counts.
    observed, obs_rows
        Boolean mask / compacted index list of rows with >= 1 observation.
    counts_obs
        ``counts[obs_rows]`` as float (per-row averaging divisors).
    seg, offsets
        For each sorted observation: its row's position in ``obs_rows``
        and its position within its segment (padding scatter coordinates).
    """

    def __init__(self, indices: np.ndarray, j: int, n_rows: int):
        row_idx = indices[:, j]
        self.n_rows = int(n_rows)
        self.order = np.argsort(row_idx, kind="stable")
        self.sorted_indices = indices[self.order]
        sorted_rows = self.sorted_indices[:, j]
        self.bounds = np.searchsorted(sorted_rows, np.arange(n_rows + 1))
        self.counts = np.diff(self.bounds)
        self.observed = self.counts > 0
        self.obs_rows = np.flatnonzero(self.observed)
        self.n_obs = len(self.obs_rows)
        self.counts_obs = self.counts[self.obs_rows].astype(float)
        self.starts_obs = self.bounds[:-1][self.obs_rows]
        self.max_count = int(self.counts_obs.max()) if self.n_obs else 0
        self.seg = np.repeat(np.arange(self.n_obs), self.counts[self.obs_rows])
        self.offsets = np.arange(len(row_idx)) - self.bounds[:-1][sorted_rows]
        self._pad_buffers: dict = {}
        # Zero-padding costs O(n_obs * max_count); with heavily skewed
        # multiplicities (one row owning most observations) that can dwarf
        # O(nnz) and exhaust memory.  Callers consult this flag and fall
        # back to per-row segment solves when padding is wasteful.
        nnz = len(row_idx)
        self.pad_feasible = (
            self.n_obs * self.max_count <= max(8 * nnz, 1 << 16)
        )

    # -- segment reductions (ragged rows, no Python loop over rows) --------

    def seg_sum(self, arr: np.ndarray) -> np.ndarray:
        """Per-row sums of a sorted per-observation array ``(nnz, ...)``."""
        return np.add.reduceat(arr, self.starts_obs, axis=0)

    def seg_min(self, arr: np.ndarray) -> np.ndarray:
        """Per-row minima of a sorted per-observation array ``(nnz,)``."""
        return np.minimum.reduceat(arr, self.starts_obs, axis=0)

    def pad(self, arr: np.ndarray, slot: str = "a") -> np.ndarray:
        """Scatter a sorted per-observation array into padded segments.

        ``(nnz, R)`` -> ``(n_obs, max_count, R)`` with zero padding.  The
        buffer is cached per (slot, trailing shape) and only zeroed at
        creation: segment lengths are fixed for the plan's lifetime, so
        every scatter overwrites exactly the same positions and padding
        stays zero.  Distinct ``slot`` names yield distinct buffers for
        callers that need two padded arrays alive at once.
        """
        key = (slot,) + arr.shape[1:]
        buf = self._pad_buffers.get(key)
        if buf is None:
            buf = np.zeros((self.n_obs, self.max_count) + arr.shape[1:])
            self._pad_buffers[key] = buf
        buf[self.seg, self.offsets] = arr
        return buf

    def gram(self, K: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        """Stacked per-row normal matrices ``G[i] = K_i^T diag(w_i) K_i``.

        ``K`` is the sorted design block ``(nnz, R)``; the ragged segments
        are zero-padded to ``(n_obs, max_count, R)`` and reduced with one
        batched GEMM — orders of magnitude less Python/dispatch overhead
        than a per-row loop, and far less memory traffic than an
        ``(nnz, R, R)`` outer-product intermediate.
        """
        P = self.pad(K)
        if weights is None:
            return np.matmul(P.transpose(0, 2, 1), P)
        Pw = self.pad(K * weights[:, None], slot="b")
        return np.matmul(P.transpose(0, 2, 1), Pw)


class ObservationPlan:
    """Per-fit cache of mode-sorted observation layouts and work buffers.

    The completion optimizers repeatedly need, for every mode ``j``, the
    observations grouped by their mode-``j`` index.  The seed implementation
    re-ran an ``argsort`` per mode per sweep (and per barrier level in AMN);
    the plan computes one stable argsort + segment bounds per mode *once*
    and shares them across ALS/CCD/SGD/AMN sweeps.  It also owns reusable
    Khatri-Rao buffers so the hot loops allocate nothing per sweep.
    """

    def __init__(self, shape, indices: np.ndarray):
        indices = np.asarray(indices, dtype=np.intp)
        if indices.ndim != 2 or indices.shape[1] != len(shape):
            raise ValueError(
                f"indices must be (nnz, {len(shape)}), got {indices.shape}"
            )
        self.shape = tuple(int(I) for I in shape)
        self.indices = indices
        self.d = len(self.shape)
        self.nnz = len(indices)
        self._modes: list[ModePlan | None] = [None] * self.d
        self._kr_buffers: dict = {}
        self._observed_masks: dict = {}

    def observed_mask(self, j: int) -> np.ndarray:
        """Boolean mask of mode-``j`` rows with >= 1 observation.

        One O(nnz) bincount, cached; cheaper than :meth:`mode` for callers
        (CCD) that need only the mask, not the sorted layout.
        """
        mp = self._modes[j]
        if mp is not None:
            return mp.observed
        mask = self._observed_masks.get(j)
        if mask is None:
            mask = (
                np.bincount(self.indices[:, j], minlength=self.shape[j]) > 0
            )
            self._observed_masks[j] = mask
        return mask

    def mode(self, j: int) -> ModePlan:
        """The (lazily built) sorted layout of mode ``j``."""
        mp = self._modes[j]
        if mp is None:
            mp = ModePlan(self.indices, j, self.shape[j])
            self._modes[j] = mp
        return mp

    def _buffer(self, name: str, rank: int) -> np.ndarray:
        buf = self._kr_buffers.get((name, rank))
        if buf is None:
            buf = np.empty((self.nnz, rank))
            self._kr_buffers[(name, rank)] = buf
        return buf

    def khatri_rao(self, factors: list, j: int) -> np.ndarray:
        """Khatri-Rao design rows of mode ``j`` in *sorted* order.

        Equivalent to ``khatri_rao_rows(factors, indices, j)[order]`` but
        gathers directly on the pre-sorted multi-indices (no reorder pass)
        into a plan-owned buffer (no per-sweep allocation).
        """
        mp = self.mode(j)
        idx = mp.sorted_indices
        rank = factors[0].shape[1]
        K = self._buffer("kr", rank)
        scratch = self._buffer("kr_scratch", rank)
        first = 0 if j != 0 else 1
        np.take(factors[first], idx[:, first], axis=0, out=K)
        for j2 in range(self.d):
            if j2 == j or j2 == first:
                continue
            np.take(factors[j2], idx[:, j2], axis=0, out=scratch)
            K *= scratch
        return K

    def sorted_values(self, values: np.ndarray, j: int) -> np.ndarray:
        """``values[order_j]`` — targets in mode-``j`` segment order."""
        return values[self.mode(j).order]

    # -- streaming reuse (incremental refits) ------------------------------

    def matches(self, shape, indices: np.ndarray) -> bool:
        """Whether this plan describes exactly ``(shape, indices)``.

        A plan depends only on the observation *index set*, never on the
        observed values, so a streaming update whose new measurements all
        land in already-observed cells can reuse the plan (argsorts,
        segment bounds, Khatri-Rao and padding buffers) verbatim.
        """
        indices = np.asarray(indices)
        if tuple(int(I) for I in shape) != self.shape:
            return False
        if indices.shape != self.indices.shape:
            return False
        return indices is self.indices or bool(
            np.array_equal(indices, self.indices)
        )

    def extended(self, shape, indices: np.ndarray) -> "ObservationPlan":
        """This plan when the observation set is unchanged, else a fresh one.

        The invalidation point of the streaming path: new observed cells
        (or a widened grid) change segment bounds and buffer sizes, so
        everything is rebuilt; an unchanged index set returns ``self`` and
        the warm-start sweep allocates nothing.
        """
        if self.matches(shape, indices):
            return self
        return ObservationPlan(shape, np.asarray(indices, dtype=np.intp))


def cp_full(factors: list) -> np.ndarray:
    """Materialize the dense tensor represented by ``factors`` (tests only)."""
    shape = tuple(U.shape[0] for U in factors)
    n = int(np.prod(shape, dtype=np.int64))
    if n > 16 * 1024 * 1024:
        raise MemoryError(f"refusing to materialize {n} elements")
    rank = factors[0].shape[1]
    out = np.zeros(shape)
    for r in range(rank):
        term = factors[0][:, r]
        for U in factors[1:]:
            term = np.multiply.outer(term, U[:, r])
        out += term
    return out


def cp_size_bytes(factors: list) -> int:
    """Model size in bytes: ``8 * R * sum_j I_j`` (paper Section 3.2)."""
    return int(sum(U.size for U in factors) * 8)


def cp_component_norms(factors: list) -> np.ndarray:
    """Magnitude of each rank-1 component: ``prod_j ||U_j[:, r]||_2``.

    The pruning signal of the adaptive ALS variant: a component whose
    column-norm product is negligible relative to the largest component
    contributes nothing to the CP sum and only inflates the served model
    (Figure 7's size metric).  After gauge rebalancing (``_rebalance`` in
    ``als.py``) every mode shares the same per-component column norm, so
    this is that norm to the ``d``-th power.
    """
    norms = np.stack([np.linalg.norm(U, axis=0) for U in factors])  # (d, R)
    return norms.prod(axis=0)


@dataclass
class CompletionResult:
    """Output of a completion optimizer.

    Attributes
    ----------
    factors
        The optimized factor matrices.
    history
        Objective value after each sweep/epoch (for convergence tests:
        ALS/CCD histories are monotonically non-increasing).
    converged
        Whether the relative objective decrease fell below the tolerance
        before the sweep limit.
    n_sweeps
        Number of sweeps/epochs executed.
    """

    factors: list
    history: list = field(default_factory=list)
    converged: bool = False
    n_sweeps: int = 0

    @property
    def rank(self) -> int:
        return self.factors[0].shape[1]

"""Shared CP-decomposition state: initialization, evaluation, bookkeeping.

A rank-``R`` CP decomposition of an order-``d`` tensor is a list of ``d``
factor matrices ``U_j`` of shape ``(I_j, R)``; element ``(i_1, ..., i_d)``
is modeled as ``sum_r prod_j U_j[i_j, r]`` (paper Eq. 2).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "init_factors",
    "init_positive_factors",
    "cp_eval",
    "cp_full",
    "cp_size_bytes",
    "khatri_rao_rows",
    "CompletionResult",
]


def init_factors(shape, rank: int, rng=None, noise: float = 0.3) -> list:
    """Near-constant factor matrices for least-squares completion.

    Entries are ``rank**(-1/d) * (1 + noise * N(0, 1))``: every rank-1
    component's ``d``-factor product is O(1/R) with O(noise) relative
    jitter, so the CP sum starts O(1) for any order and rank.

    Why not plain Gaussians: (a) zero-mean entries make ``d``-factor
    products vanish for large ``d``, so the ridge term collapses ALS onto
    the constant model; (b) log execution-time tensors are dominantly
    *additive* (multiplicative times), and additive structure lives in the
    near-constant-factor region of CP space — starting there avoids the
    poor local minima random init falls into on high-order tensors (in our
    AMG reproduction this init cuts the converged ALS objective by ~30x).
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    rng = as_generator(rng)
    base = float(rank) ** (-1.0 / max(len(shape), 1))
    return [
        base * (1.0 + noise * rng.standard_normal((int(I), rank))) for I in shape
    ]


def init_positive_factors(shape, rank: int, rng=None, mean: float = 1.0) -> list:
    """Strictly positive factors for the interior-point (AMN) model.

    Entries are lognormal with small dispersion around
    ``(mean / rank)**(1/d)`` so the initial CP model output is close to
    ``mean`` — used with times normalized by their geometric mean.
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    if mean <= 0:
        raise ValueError("mean must be positive")
    rng = as_generator(rng)
    d = len(shape)
    base = (mean / rank) ** (1.0 / d)
    return [
        base * np.exp(rng.normal(0.0, 0.1, size=(int(I), rank)))
        for I in shape
    ]


def cp_eval(factors: list, indices: np.ndarray) -> np.ndarray:
    """Evaluate the CP model at multi-indices, shape ``(m, d)`` -> ``(m,)``.

    Vectorized gather-and-product: O(m * d * R) with no Python-level loop
    over observations.
    """
    indices = np.asarray(indices)
    if indices.ndim != 2 or indices.shape[1] != len(factors):
        raise ValueError(
            f"indices must be (m, {len(factors)}), got {indices.shape}"
        )
    prod = factors[0][indices[:, 0]].copy()
    for j in range(1, len(factors)):
        prod *= factors[j][indices[:, j]]
    return prod.sum(axis=1)


def khatri_rao_rows(factors: list, indices: np.ndarray, skip: int) -> np.ndarray:
    """Rows of the Khatri-Rao product excluding mode ``skip``.

    Row ``k`` is ``prod_{j != skip} U_j[indices[k, j], :]`` — the design
    matrix row of observation ``k`` in the mode-``skip`` least-squares
    subproblem.  Shape ``(m, R)``.
    """
    first = 0 if skip != 0 else 1
    if first >= len(factors):
        raise ValueError("need at least two modes")
    K = factors[first][indices[:, first]].copy()
    for j in range(len(factors)):
        if j == skip or j == first:
            continue
        K *= factors[j][indices[:, j]]
    return K


def cp_full(factors: list) -> np.ndarray:
    """Materialize the dense tensor represented by ``factors`` (tests only)."""
    shape = tuple(U.shape[0] for U in factors)
    n = int(np.prod(shape, dtype=np.int64))
    if n > 16 * 1024 * 1024:
        raise MemoryError(f"refusing to materialize {n} elements")
    rank = factors[0].shape[1]
    out = np.zeros(shape)
    for r in range(rank):
        term = factors[0][:, r]
        for U in factors[1:]:
            term = np.multiply.outer(term, U[:, r])
        out += term
    return out


def cp_size_bytes(factors: list) -> int:
    """Model size in bytes: ``8 * R * sum_j I_j`` (paper Section 3.2)."""
    return int(sum(U.size for U in factors) * 8)


@dataclass
class CompletionResult:
    """Output of a completion optimizer.

    Attributes
    ----------
    factors
        The optimized factor matrices.
    history
        Objective value after each sweep/epoch (for convergence tests:
        ALS/CCD histories are monotonically non-increasing).
    converged
        Whether the relative objective decrease fell below the tolerance
        before the sweep limit.
    n_sweeps
        Number of sweeps/epochs executed.
    """

    factors: list
    history: list = field(default_factory=list)
    converged: bool = False
    n_sweeps: int = 0

    @property
    def rank(self) -> int:
        return self.factors[0].shape[1]

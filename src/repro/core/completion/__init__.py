"""Tensor-completion optimizers for CP decomposition (paper Section 4.2).

* :func:`complete_als` — alternating least squares on a (log-transformed)
  least-squares loss; the paper's interpolation workhorse (Section 5.2).
* :func:`complete_ccd` — cyclic coordinate descent; ALS with per-column
  scalar updates (factor-``R`` cheaper per sweep, slower convergence).
* :func:`complete_sgd` — minibatch stochastic gradient descent.
* :func:`complete_amn` — alternating minimization via (Gauss-)Newton with a
  log-barrier interior-point scheme, minimizing the MLogQ2 loss under
  strictly positive factors; the paper's extrapolation model (Section 5.3).
* :func:`complete_lm` — Levenberg-Marquardt over all factors at once, the
  historically first completion method the paper cites (Tomasi & Bro).

The ALS/AMN hot loops dispatch their per-mode solves through the
kernel-backend registry (:mod:`repro.core.completion.backends`):
``reference`` (per-row loops), ``numpy_batched`` (vectorized plan-sharing
path, alias ``"batched"``) and the optional JIT-compiled ``numba_jit``.
"""
from repro.core.completion.backends import (
    KernelBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    select_best,
)
from repro.core.completion.state import (
    CompletionResult,
    ModePlan,
    ObservationPlan,
    cp_component_norms,
    cp_eval,
    cp_full,
    cp_size_bytes,
    init_factors,
    init_positive_factors,
    khatri_rao_rows,
    solve_batched_spd,
)
from repro.core.completion.adaptive import (
    AdaptiveCompletionResult,
    complete_als_adaptive,
    complete_als_regularized,
)
from repro.core.completion.als import complete_als
from repro.core.completion.amn import complete_amn
from repro.core.completion.ccd import complete_ccd
from repro.core.completion.lm import complete_lm
from repro.core.completion.sgd import complete_sgd

OPTIMIZERS = {
    "als": complete_als,
    "als_adaptive": complete_als_adaptive,
    "als_reg": complete_als_regularized,
    "ccd": complete_ccd,
    "sgd": complete_sgd,
    "amn": complete_amn,
    "lm": complete_lm,
}

__all__ = [
    "init_factors",
    "init_positive_factors",
    "cp_component_norms",
    "cp_eval",
    "cp_full",
    "cp_size_bytes",
    "khatri_rao_rows",
    "CompletionResult",
    "AdaptiveCompletionResult",
    "ModePlan",
    "ObservationPlan",
    "solve_batched_spd",
    "complete_als",
    "complete_als_adaptive",
    "complete_als_regularized",
    "complete_ccd",
    "complete_sgd",
    "complete_amn",
    "OPTIMIZERS",
    "KernelBackend",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "select_best",
    "backend_names",
    "registered_backends",
    "available_backends",
]

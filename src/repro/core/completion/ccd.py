"""Cyclic coordinate descent for tensor completion (paper Section 4.2.1).

CCD optimizes one factor-matrix *column* at a time: for mode ``j`` and rank
component ``r``, all entries ``U_j[:, r]`` are updated simultaneously (they
appear in disjoint observation sets), each minimizing the scalar objective

    g(u_{i,r}) = sum_{k in Omega_i} (res_k - w_k u_{i,r})^2 + lam u_{i,r}^2

where ``w_k = prod_{j' != j} U_{j'}[idx_{j'k}, r]`` and ``res_k`` is the
residual excluding component ``r``'s mode-``j`` contribution.  The closed
form is ``u_{i,r} = sum(res * w) / (sum(w^2) + lam)``.

This reduces ALS's ``R^3`` row-solve cost to ``R`` scalar updates per entry
per sweep (a factor-``R`` cheaper sweep), at the price of slower convergence
from decoupled updates — exactly the trade-off the paper describes.  Every
scalar update exactly minimizes a convex 1-D restriction of Eq. 3, so the
objective history is monotonically non-increasing.

Implementation: residuals are maintained incrementally; per-row reductions
use :func:`numpy.bincount` (segmented sums), so a full sweep is
``O(nnz * d * R)`` with no Python loop over observations.
"""
from __future__ import annotations

import numpy as np

from repro.core.completion.objectives import ls_objective
from repro.core.completion.state import (
    CompletionResult,
    ObservationPlan,
    cp_eval,
    init_factors,
)
from repro.utils.rng import as_generator

__all__ = ["complete_ccd"]


def complete_ccd(
    shape,
    indices,
    values,
    rank: int,
    regularization: float = 1e-5,
    max_sweeps: int = 200,
    tol: float = 1e-6,
    seed=None,
    factors: list | None = None,
    plan: ObservationPlan | None = None,
) -> CompletionResult:
    """Fit a CP decomposition by cyclic coordinate descent.

    Arguments mirror :func:`repro.core.completion.als.complete_als`; CCD
    typically needs more sweeps (hence the larger default) but each sweep
    is a factor ``R`` cheaper.  ``plan`` optionally reuses a fit-wide
    :class:`ObservationPlan` (CCD only needs its observed-row masks, but
    a warm-start caller avoids rebuilding them per update).
    """
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    d = len(shape)
    if d < 2:
        raise ValueError("tensor completion needs order >= 2")
    if factors is None:
        factors = init_factors(shape, rank, rng=as_generator(seed))
    lam = float(regularization)

    # Fit-wide observation bookkeeping: per-mode observed-row masks come
    # from the shared plan instead of a bincount per (sweep, mode, rank).
    # (CCD's segmented sums are bincounts over *unsorted* indices, so only
    # the masks are needed — not the plan's sorted layouts.)
    if plan is None:
        plan = ObservationPlan(shape, indices)
    elif not plan.matches(shape, indices):
        raise ValueError(
            "plan does not describe these observations; rebuild it "
            "(ObservationPlan.extended) when the index set changes"
        )
    observed = [plan.observed_mask(j) for j in range(d)]

    # Per-component contribution cache: comp[r] over observations.
    # pred = sum_r comp_r where comp_r = prod_j U_j[idx_j, r].
    cols = [indices[:, j] for j in range(d)]
    comp = np.ones((rank, len(values)))
    for r in range(rank):
        for j in range(d):
            comp[r] *= factors[j][cols[j], r]
    pred = comp.sum(axis=0)

    history = [ls_objective(factors, indices, values, lam)]
    converged = False
    sweeps = 0
    for sweep in range(max_sweeps):
        for j in range(d):
            idx_j = cols[j]
            n_rows = shape[j]
            for r in range(rank):
                u_rows = factors[j][idx_j, r]
                # w: component value with mode-j's contribution divided out.
                # Computed as a product over other modes to avoid dividing
                # by (possibly zero) u_rows.
                w = np.ones(len(values))
                for jj in range(d):
                    if jj != j:
                        w *= factors[jj][cols[jj], r]
                res = values - pred + w * u_rows
                num = np.bincount(idx_j, weights=res * w, minlength=n_rows)
                den = np.bincount(idx_j, weights=w * w, minlength=n_rows) + lam
                u_new = num / den
                # Unobserved rows: bincount gives 0/lam = 0; keep old value.
                u_new = np.where(observed[j], u_new, factors[j][:, r])
                # Incremental prediction update.
                new_comp_r = w * u_new[idx_j]
                pred += new_comp_r - comp[r]
                comp[r] = new_comp_r
                factors[j][:, r] = u_new
        sweeps = sweep + 1
        history.append(ls_objective(factors, indices, values, lam))
        prev, cur = history[-2], history[-1]
        if prev - cur <= tol * max(prev, 1e-30):
            converged = True
            break
        # Guard against drift in the incremental prediction.
        if sweep % 32 == 31:
            pred = cp_eval(factors, indices)
            for r in range(rank):
                comp[r] = np.ones(len(values))
                for j in range(d):
                    comp[r] *= factors[j][cols[j], r]
    return CompletionResult(
        factors=factors, history=history, converged=converged, n_sweeps=sweeps
    )


# CCD has no pluggable kernel backends, but it can reuse the fit-wide
# observation plan (see CPRModel._run_completion's capability gates).
complete_ccd.accepts_plan = True

"""Pluggable completion-kernel backends behind a strategy registry.

The ALS and AMN optimizers are the hot path of every subsystem (runtime
sweeps, serve republish, stream refits).  Historically the kernel choice
was a hard-coded ``kernel="batched"|"reference"`` string compared in
``als.py``, ``amn.py`` and ``model.py``; this module replaces those
literals with *registered strategy objects* (the pattern of the batpred
optimizer-strategy table in SNIPPETS.md):

* :class:`KernelBackend` — the protocol: per-fit ``prepare_als`` /
  ``prepare_amn`` setup hooks, per-mode ``als_update`` / ``amn_update``
  solves, capability flags (``supports_plan_reuse``,
  ``supports_partial_fit``) and an availability probe.
* :func:`register_backend` — class decorator adding an implementation to
  the registry; new completion algorithms become one more entry instead
  of another fork of the dispatch code.
* :func:`get_backend` — direct lookup by name or alias; unknown names
  raise listing every registered backend.
* :func:`resolve_backend` — the selection *policy*:
  ``REPRO_KERNEL_BACKEND`` env override > explicit argument >
  :func:`select_best` (a tiny calibration fit at first use, cached per
  process).  Already-resolved :class:`KernelBackend` objects pass
  through untouched, so a fit resolves the policy exactly once.

Registered backends:

``reference``
    The seed's per-row loops — the ground truth the equivalence tests
    compare against.  Never auto-selected (``selectable=False``).
``numpy_batched`` (alias ``"batched"``)
    The vectorized plan-sharing path: one fit-wide
    :class:`~repro.core.completion.state.ObservationPlan`, zero-padded
    batched GEMM Grams, one batched LAPACK solve per mode.
``numba_jit``
    Optional: JIT-compiled segment-Gram ALS assembly and AMN
    Gauss-Newton inner loop.  Registered unconditionally so listings,
    tests and benchmarks can report it as *unavailable* rather than
    silently dropping it; usable only where :mod:`numba` imports
    (parity-checked at 1e-8 against ``numpy_batched`` in CI).
"""
from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

__all__ = [
    "ENV_VAR",
    "CALIBRATION_ENV_VAR",
    "KernelBackend",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "select_best",
    "backend_names",
    "registered_backends",
    "available_backends",
]

#: Environment variable forcing one backend through every subsystem
#: (fit, serve republish, stream refits, forked fleet workers).
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Environment variable overriding where :func:`select_best` persists its
#: calibration verdict (a small JSON sidecar).  Set to an empty string to
#: disable persistence entirely (the in-process cache still applies).
CALIBRATION_ENV_VAR = "REPRO_KERNEL_CALIBRATION"


class _FitContext:
    """Opaque per-fit state a backend's prepare hook hands its updates."""

    def __init__(self, **attrs):
        self.__dict__.update(attrs)


class KernelBackend:
    """One completion-kernel strategy (ALS mode solve + AMN mode Newton).

    Subclasses plug in at the per-mode update level; the optimizer loops
    in :mod:`~repro.core.completion.als` / ``amn`` keep ownership of
    everything algorithmic that is backend-independent (sweep order,
    gauge rebalancing, objective history, the barrier schedule), which is
    what makes the 1e-8 equivalence contract between backends testable.

    Class attributes
    ----------------
    name
        Registry key (also what manifests/stats record).
    aliases
        Extra lookup names (``numpy_batched`` keeps the historical
        ``"batched"`` spelling working for callers and old pickles).
    supports_plan_reuse
        Whether the backend consumes a fit-wide
        :class:`~repro.core.completion.state.ObservationPlan` — the
        capability :meth:`repro.core.model.CPRModel._run_completion`
        gates plan caching on (previously a ``== "batched"`` literal).
    supports_partial_fit
        Whether warm-start factors are honoured; a backend without it is
        refit cold by ``partial_fit`` and skipped by the warm-start
        parity tests.
    supports_column_penalties
        Whether ``als_update`` accepts a per-column regularization
        *vector* (shape ``(R,)``) in place of the scalar ``lam`` — the
        capability the regularized/adaptive ALS variants gate on.
    selectable
        Whether :func:`select_best` may auto-pick it.  The reference
        loops are correct but deliberately slow, so they are excluded.
    """

    name: str = ""
    aliases: tuple = ()
    supports_plan_reuse: bool = False
    supports_partial_fit: bool = True
    supports_column_penalties: bool = False
    selectable: bool = True

    # -- availability ----------------------------------------------------------

    def available(self) -> bool:
        """Probe whether this backend can run on this host."""
        return True

    def unavailable_reason(self) -> str | None:
        """Human-readable reason when :meth:`available` is ``False``."""
        return None

    # -- ALS -------------------------------------------------------------------

    def prepare_als(self, shape, indices, values, plan=None):
        """Per-fit setup; returns the context ``als_update`` consumes.

        The returned context exposes ``.indices`` (the index array the
        caller should evaluate objectives against) so plan-canonical and
        as-given layouts stay interchangeable.  ``plan`` is honoured
        only by plan-reuse backends; others ignore it.
        """
        raise NotImplementedError

    def als_update(self, ctx, factors, j, lam, scale_rows) -> None:
        """One ALS mode update: re-solve every observed row of ``U_j``."""
        raise NotImplementedError

    # -- AMN -------------------------------------------------------------------

    def prepare_amn(self, shape, indices, logt, plan=None):
        """Per-fit setup for the interior-point solver (cf. ``prepare_als``)."""
        raise NotImplementedError

    def amn_update(self, ctx, factors, j, lam, eta, max_iter, tol) -> None:
        """Damped Gauss-Newton on every observed row of mode ``j``."""
        raise NotImplementedError

    # -- introspection ---------------------------------------------------------

    def describe(self) -> dict:
        """JSON-serializable capability/availability record."""
        return {
            "name": self.name,
            "aliases": list(self.aliases),
            "available": self.available(),
            "unavailable_reason": self.unavailable_reason(),
            "supports_plan_reuse": self.supports_plan_reuse,
            "supports_partial_fit": self.supports_partial_fit,
            "supports_column_penalties": self.supports_column_penalties,
            "selectable": self.selectable,
        }

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"


# -- registry ------------------------------------------------------------------

_REGISTRY: dict[str, KernelBackend] = {}
_ALIASES: dict[str, str] = {}
_SELECTED: KernelBackend | None = None


def register_backend(cls):
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    backend = cls()
    if not backend.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    if backend.name in _REGISTRY or backend.name in _ALIASES:
        raise ValueError(f"kernel backend {backend.name!r} already registered")
    for alias in backend.aliases:
        if alias in _REGISTRY or alias in _ALIASES:
            raise ValueError(f"kernel backend alias {alias!r} already taken")
    _REGISTRY[backend.name] = backend
    for alias in backend.aliases:
        _ALIASES[alias] = backend.name
    return cls


def backend_names() -> tuple:
    """Registered backend names (the single source of kernel truth)."""
    return tuple(_REGISTRY)


def registered_backends() -> list:
    """Every registered backend object, available or not."""
    return list(_REGISTRY.values())


def available_backends() -> list:
    """The registered backends whose availability probe passes."""
    return [b for b in _REGISTRY.values() if b.available()]


def get_backend(spec, require_available: bool = True) -> KernelBackend:
    """Direct lookup by name/alias (no selection policy).

    Accepts an already-resolved :class:`KernelBackend` and returns it
    unchanged.  Unknown names raise a ``ValueError`` listing every
    registered backend; known-but-unavailable ones raise with the
    probe's reason unless ``require_available=False``.
    """
    if isinstance(spec, KernelBackend):
        return spec
    name = _ALIASES.get(spec, spec)
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {spec!r}; registered backends: "
            f"{', '.join(backend_names())}"
        )
    if require_available and not backend.available():
        raise ValueError(
            f"kernel backend {backend.name!r} is not available on this host"
            f" ({backend.unavailable_reason()})"
        )
    return backend


def resolve_backend(preferred=None) -> KernelBackend:
    """Apply the selection policy: env > explicit > calibrated best.

    ``REPRO_KERNEL_BACKEND`` outranks the explicit argument by design:
    it is the single operator knob that forces one backend through every
    layer (CLI entry points, stream refits, forked fleet workers) in one
    place.  Callers holding an already-resolved :class:`KernelBackend`
    object (the model resolves once per fit; tests pin backends under
    comparison) bypass the policy entirely.
    """
    if isinstance(preferred, KernelBackend):
        return preferred
    env = os.environ.get(ENV_VAR)
    if env:
        return get_backend(env)
    if preferred is not None:
        return get_backend(preferred)
    return select_best()


def _calibration_problem(rng):
    """A tiny deterministic completion problem for timing backends."""
    shape = (12, 10, 8)
    nnz = 400
    indices = np.stack(
        [rng.integers(0, n, size=nnz) for n in shape], axis=1
    ).astype(np.intp)
    values = np.exp(rng.standard_normal(nnz) * 0.25)
    return shape, indices, values


def _calibration_time(backend) -> float:
    """Wall-clock of one tiny ALS + AMN fit on ``backend`` (post-warmup)."""
    from repro.core.completion.als import complete_als
    from repro.core.completion.amn import complete_amn

    shape, indices, values = _calibration_problem(np.random.default_rng(0))

    def run():
        complete_als(
            shape, indices, np.log(values), rank=3, max_sweeps=2, tol=0.0,
            seed=0, kernel=backend,
        )
        complete_amn(
            shape, indices, values, rank=3, max_sweeps=1, tol=1e-6, seed=0,
            newton_iters=4, barrier_min=1.0, kernel=backend,
        )

    run()  # warmup: JIT compilation / first-touch allocations don't count
    t0 = time.perf_counter()
    run()
    return time.perf_counter() - t0


def _calibration_path() -> Path | None:
    """Where the calibration sidecar lives (``None`` disables persistence)."""
    env = os.environ.get(CALIBRATION_ENV_VAR)
    if env is not None:
        return Path(env) if env else None
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro" / "kernel_calibration.json"


def _calibration_key(candidates) -> str:
    """Sidecar key: one verdict per (host, candidate backend set).

    Keying on the candidate set means installing/removing an accelerated
    backend (e.g. numba appearing in a new venv) naturally invalidates
    the stored verdict instead of silently pinning a stale winner.
    """
    names = ",".join(sorted(b.name for b in candidates))
    return f"{platform.node() or 'unknown-host'}|{names}"


def _load_calibration(key: str) -> str | None:
    """Read the persisted winner for ``key``; any I/O problem reads as miss."""
    path = _calibration_path()
    if path is None:
        return None
    try:
        entry = json.loads(path.read_text()).get(key)
    except (OSError, ValueError):
        return None
    if isinstance(entry, dict):
        name = entry.get("backend")
        return name if isinstance(name, str) else None
    return None


def _store_calibration(key: str, backend: KernelBackend) -> None:
    """Merge the verdict into the sidecar; failures are non-fatal.

    Read-merge-replace so concurrent writers for *different* keys (e.g.
    two hosts sharing a home directory) at worst lose one another's
    update, never corrupt the file: the final rename is atomic.
    """
    path = _calibration_path()
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            data = json.loads(path.read_text())
            if not isinstance(data, dict):
                data = {}
        except (OSError, ValueError):
            data = {}
        data[key] = {"backend": backend.name, "calibrated_at": time.time()}
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True))
        os.replace(tmp, path)
    except OSError:  # read-only FS, permission, quota... calibration is a cache
        return


def select_best(force: bool = False) -> KernelBackend:
    """The fastest available selectable backend (calibrated, cached).

    With a single candidate (the common case: ``numpy_batched`` on hosts
    without numba) no calibration runs at all.  Otherwise each candidate
    fits the same tiny ALS + AMN problem once after a warmup pass and
    the fastest wins; the choice is cached for the process *and*
    persisted to a small JSON sidecar keyed by (host, candidate set) —
    see :data:`CALIBRATION_ENV_VAR` — so forked fleet/queue/stream
    workers calibrate once per host instead of once per process.
    ``force=True`` bypasses both caches, recalibrates, and rewrites the
    sidecar; the ``REPRO_KERNEL_BACKEND`` env override bypasses
    selection entirely (see :func:`resolve_backend`).
    """
    global _SELECTED
    if _SELECTED is not None and not force:
        return _SELECTED
    candidates = [b for b in available_backends() if b.selectable]
    if not candidates:
        candidates = available_backends()
    if not candidates:  # pragma: no cover - reference is always available
        raise RuntimeError("no kernel backend is available")
    if len(candidates) == 1:
        _SELECTED = candidates[0]
        return _SELECTED
    key = _calibration_key(candidates)
    if not force:
        stored = _load_calibration(key)
        if stored is not None:
            by_name = {b.name: b for b in candidates}
            if stored in by_name:
                _SELECTED = by_name[stored]
                return _SELECTED
    _SELECTED = min(candidates, key=_calibration_time)
    _store_calibration(key, _SELECTED)
    return _SELECTED


# -- the reference backend (the seed's per-row loops) --------------------------


@register_backend
class ReferenceBackend(KernelBackend):
    """Per-row loops: one argsort and one small solve per row per sweep.

    The ground truth the equivalence suite compares every other backend
    against, and the slow baseline the throughput benchmark measures
    speedups over.  Excluded from auto-selection.
    """

    name = "reference"
    supports_plan_reuse = False
    supports_column_penalties = True
    selectable = False

    def prepare_als(self, shape, indices, values, plan=None):
        # ``plan`` is a plan-reuse capability; the per-row loop has no
        # use for it and ignores it (the model never passes one here).
        return _FitContext(shape=shape, indices=indices, values=values)

    def als_update(self, ctx, factors, j, lam, scale_rows):
        from repro.core.completion.als import _solve_rows
        from repro.core.completion.state import khatri_rao_rows

        K = khatri_rao_rows(factors, ctx.indices, skip=j)
        _solve_rows(
            K, ctx.values, ctx.indices[:, j], factors[j].shape[0], lam,
            factors[j], scale_rows,
        )

    def prepare_amn(self, shape, indices, logt, plan=None):
        return _FitContext(shape=shape, indices=indices, logt=logt)

    def amn_update(self, ctx, factors, j, lam, eta, max_iter, tol):
        from repro.core.completion.amn import _newton_row
        from repro.core.completion.state import khatri_rao_rows

        indices, logt = ctx.indices, ctx.logt
        K = khatri_rao_rows(factors, indices, skip=j)
        row_idx = indices[:, j]
        order = np.argsort(row_idx, kind="stable")
        sorted_rows = row_idx[order]
        Ks = K[order]
        ls = logt[order]
        n_rows = factors[j].shape[0]
        bounds = np.searchsorted(sorted_rows, np.arange(n_rows + 1))
        U = factors[j]
        for i in range(n_rows):
            lo, hi = bounds[i], bounds[i + 1]
            if lo == hi:
                continue
            U[i], _ = _newton_row(
                Ks[lo:hi], ls[lo:hi], U[i].copy(), lam, eta, max_iter, tol
            )


# -- the vectorized numpy backend ----------------------------------------------


@register_backend
class NumpyBatchedBackend(KernelBackend):
    """Plan-sharing vectorized path (the previous ``kernel="batched"``).

    One fit-wide :class:`~repro.core.completion.state.ObservationPlan`
    supplies per-mode sorted layouts; mode updates are segment
    reductions plus one batched LAPACK solve.  Keeps the historical
    ``"batched"`` name as an alias so existing call sites and persisted
    model configs resolve here.
    """

    name = "numpy_batched"
    aliases = ("batched",)
    supports_plan_reuse = True
    supports_column_penalties = True

    def _plan_for(self, shape, indices, plan):
        from repro.core.completion.state import ObservationPlan

        if plan is None:
            return ObservationPlan(shape, indices)
        if not plan.matches(shape, indices):
            raise ValueError(
                "plan does not describe these observations; rebuild it "
                "(ObservationPlan.extended) when the index set changes"
            )
        return plan

    def prepare_als(self, shape, indices, values, plan=None):
        plan = self._plan_for(shape, indices, plan)
        d = len(shape)
        return _FitContext(
            plan=plan,
            indices=plan.indices,
            t_sorted=[plan.sorted_values(values, j) for j in range(d)],
        )

    def als_update(self, ctx, factors, j, lam, scale_rows):
        from repro.core.completion.als import _solve_rows_batched

        _solve_rows_batched(
            ctx.plan, j, factors, ctx.t_sorted[j], lam, factors[j], scale_rows
        )

    def prepare_amn(self, shape, indices, logt, plan=None):
        plan = self._plan_for(shape, indices, plan)
        d = len(shape)
        return _FitContext(
            plan=plan,
            indices=plan.indices,
            logt_sorted=[plan.sorted_values(logt, j) for j in range(d)],
        )

    def amn_update(self, ctx, factors, j, lam, eta, max_iter, tol):
        from repro.core.completion.amn import _newton_rows_batched

        _newton_rows_batched(
            ctx.plan, j, factors, ctx.logt_sorted[j], lam, eta, max_iter, tol
        )


# -- the optional numba backend ------------------------------------------------

_NUMBA_KERNELS = None


def _load_numba_kernels():
    """Compile (once) and return the JIT kernels; raises without numba."""
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is not None:
        return _NUMBA_KERNELS
    import numba

    @numba.njit(cache=True)
    def als_systems(K, t, starts, counts, lam, scale_rows, G, b):
        # Segment-Gram assembly of every observed row's regularized
        # normal system, without zero padding: for segment i,
        # G_i = K_i^T K_i + diag, b_i = K_i^T t_i (the same n-fold as the
        # numpy path: (G/n + lam I) u = b/n  <=>  (G + n lam I) u = b).
        n_obs = starts.shape[0]
        R = K.shape[1]
        for i in range(n_obs):
            lo = starts[i]
            hi = lo + counts[i]
            for r in range(R):
                acc_b = 0.0
                for k in range(lo, hi):
                    acc_b += K[k, r] * t[k]
                b[i, r] = acc_b
                for c in range(r, R):
                    acc = 0.0
                    for k in range(lo, hi):
                        acc += K[k, r] * K[k, c]
                    G[i, r, c] = acc
                    G[i, c, r] = acc
            diag = lam * counts[i] if scale_rows else lam
            for r in range(R):
                G[i, r, r] += diag

    @numba.njit(cache=True)
    def amn_row_objective(K, logt, u, lam, eta, n_inv, lo, hi):
        R = u.shape[0]
        for r in range(R):
            if u[r] <= 0.0:
                return np.inf
        acc = 0.0
        for k in range(lo, hi):
            s = 0.0
            for r in range(R):
                s += K[k, r] * u[r]
            if s <= 0.0:
                return np.inf
            dlt = np.log(s) - logt[k]
            acc += dlt * dlt
        f = n_inv * acc
        for r in range(R):
            f += lam * u[r] * u[r] - eta * np.log(u[r])
        return f

    @numba.njit(cache=True)
    def amn_newton(K, logt, U, starts, counts, lam, eta, max_iter, tol,
                   pos_floor):
        # The reference per-row damped Gauss-Newton loop (_newton_row),
        # compiled: same Hessian model, fraction-to-the-boundary rule,
        # Armijo backtracking and stopping tests, so the trajectory
        # agrees with the reference/batched paths to rounding error.
        n_obs = starts.shape[0]
        R = U.shape[1]
        grad = np.empty(R)
        H = np.empty((R, R))
        trial = np.empty(R)
        for i in range(n_obs):
            lo = starts[i]
            hi = lo + counts[i]
            n_inv = 1.0 / counts[i]
            u = U[i].copy()
            f = amn_row_objective(K, logt, u, lam, eta, n_inv, lo, hi)
            for _it in range(max_iter):
                for r in range(R):
                    grad[r] = 0.0
                    for c in range(R):
                        H[r, c] = 0.0
                for k in range(lo, hi):
                    s = 0.0
                    for r in range(R):
                        s += K[k, r] * u[r]
                    rres = np.log(s) - logt[k]
                    for r in range(R):
                        ksr = K[k, r] / s
                        grad[r] += 2.0 * n_inv * ksr * rres
                        for c in range(r, R):
                            H[r, c] += 2.0 * n_inv * ksr * (K[k, c] / s)
                for r in range(R):
                    for c in range(r):
                        H[r, c] = H[c, r]
                for r in range(R):
                    grad[r] += 2.0 * lam * u[r] - eta / u[r]
                    H[r, r] += 2.0 * lam + eta / (u[r] * u[r])
                solved = True
                step = np.empty(R)
                try:
                    step = np.linalg.solve(H, -grad)
                except Exception:
                    solved = False
                if not solved:
                    for r in range(R):
                        step[r] = -grad[r] / (H[r, r] + 1e-12)
                # Fraction-to-the-boundary: stay strictly positive.
                alpha = 1.0
                for r in range(R):
                    if step[r] < 0.0:
                        bound = -0.995 * u[r] / step[r]
                        if bound < alpha:
                            alpha = bound
                g_dot_step = 0.0
                for r in range(R):
                    g_dot_step += grad[r] * step[r]
                improved = False
                for _bt in range(30):
                    for r in range(R):
                        trial[r] = u[r] + alpha * step[r]
                    f_trial = amn_row_objective(
                        K, logt, trial, lam, eta, n_inv, lo, hi
                    )
                    if f_trial <= f + 1e-4 * alpha * g_dot_step:
                        for r in range(R):
                            u[r] = trial[r]
                        f = f_trial
                        improved = True
                        break
                    alpha *= 0.5
                if not improved:
                    break
                step_sq = 0.0
                u_sq = 0.0
                for r in range(R):
                    step_sq += (alpha * step[r]) ** 2
                    u_sq += u[r] * u[r]
                if np.sqrt(step_sq) <= tol * (np.sqrt(u_sq) + 1e-30):
                    break
            for r in range(R):
                U[i, r] = u[r] if u[r] > pos_floor else pos_floor

    _NUMBA_KERNELS = (als_systems, amn_newton)
    return _NUMBA_KERNELS


@register_backend
class NumbaJITBackend(NumpyBatchedBackend):
    """JIT-compiled segment loops over the shared observation plan.

    Inherits the plan handling (and hence plan-reuse capability) of the
    numpy backend but replaces its padded-GEMM Gram assembly and masked
    batched Newton with compiled per-segment loops: no padding memory
    traffic for ALS, no frozen-row waste for AMN.  Only available where
    :mod:`numba` imports; the probe never imports numba at registry
    load time.
    """

    name = "numba_jit"
    aliases = ()

    def __init__(self):
        self._available: bool | None = None
        self._reason: str | None = None

    def available(self) -> bool:
        if self._available is None:
            try:
                import numba  # noqa: F401

                self._available = True
            except Exception as exc:  # ImportError, broken install, ...
                self._available = False
                self._reason = f"numba import failed: {exc}"
        return self._available

    def unavailable_reason(self) -> str | None:
        self.available()
        return self._reason

    @staticmethod
    def _segments(mp):
        starts = np.ascontiguousarray(mp.starts_obs, dtype=np.int64)
        counts = np.ascontiguousarray(mp.counts_obs, dtype=np.int64)
        return starts, counts

    def als_update(self, ctx, factors, j, lam, scale_rows):
        from repro.core.completion.state import solve_batched_spd

        if np.ndim(lam) > 0:
            # Column-wise penalty vectors: the compiled kernel takes a
            # scalar ``lam``; delegate to the (exactly equivalent) numpy
            # batched assembly rather than maintaining a second JIT
            # signature for the rare regularized path.
            NumpyBatchedBackend.als_update(self, ctx, factors, j, lam,
                                           scale_rows)
            return
        mp = ctx.plan.mode(j)
        if mp.n_obs == 0:
            return
        als_systems, _ = _load_numba_kernels()
        K = np.ascontiguousarray(ctx.plan.khatri_rao(factors, j))
        R = K.shape[1]
        starts, counts = self._segments(mp)
        G = np.empty((mp.n_obs, R, R))
        b = np.empty((mp.n_obs, R))
        als_systems(
            K, ctx.t_sorted[j], starts, counts, float(lam), bool(scale_rows),
            G, b,
        )
        factors[j][mp.obs_rows] = solve_batched_spd(G, b)

    def amn_update(self, ctx, factors, j, lam, eta, max_iter, tol):
        from repro.core.completion.amn import _POS_FLOOR

        mp = ctx.plan.mode(j)
        if mp.n_obs == 0:
            return
        _, amn_newton = _load_numba_kernels()
        K = np.ascontiguousarray(ctx.plan.khatri_rao(factors, j))
        starts, counts = self._segments(mp)
        U = np.ascontiguousarray(factors[j][mp.obs_rows])
        amn_newton(
            K, ctx.logt_sorted[j], U, starts, counts, float(lam), float(eta),
            int(max_iter), float(tol), _POS_FLOOR,
        )
        factors[j][mp.obs_rows] = U

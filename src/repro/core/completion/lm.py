"""Levenberg-Marquardt tensor completion (Tomasi & Bro 2005).

The paper's Section 4.2.1 credits Levenberg-Marquardt as the first method
proposed for least-squares CP completion [67].  Unlike ALS, LM updates
*all* factor matrices simultaneously: with residuals
``r_k = that_k - t_k`` over the observed set and the stacked parameter
vector ``theta = vec(U_1), ..., vec(U_d)``, each iteration solves the
damped normal equations

    (J^T J + mu * diag(J^T J) + 2 lam I) delta = -(J^T r + 2 lam theta)

and adapts the damping ``mu`` by the usual accept/reject rule (divide by
``nu`` on improvement, multiply on failure).  The Jacobian row of
observation ``k`` with respect to ``U_j[i_jk, :]`` is the Khatri-Rao row
``prod_{j' != j} U_{j'}[i_{j'k}, :]`` — assembled sparsely since each
observation touches exactly ``d * R`` parameters.

Practical only while ``R * sum_j I_j`` stays in the low thousands (the
normal matrix is dense); that covers every grid in the paper's sweeps.
LM's simultaneous updates avoid ALS's zig-zagging on ill-conditioned
problems at a higher per-iteration cost — the optimizer ablation bench
lets users compare directly.
"""
from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.core.completion.objectives import ls_objective
from repro.core.completion.state import (
    CompletionResult,
    cp_eval,
    init_factors,
    khatri_rao_rows,
)
from repro.utils.rng import as_generator

__all__ = ["complete_lm"]


def _pack(factors):
    return np.concatenate([U.ravel() for U in factors])


def _unpack(theta, shape, rank):
    factors = []
    pos = 0
    for I in shape:
        n = int(I) * rank
        factors.append(theta[pos : pos + n].reshape(int(I), rank))
        pos += n
    return factors


def _assemble_normal(factors, indices, values, lam):
    """Return (JtJ, Jtr, r) for the current iterate (dense normal matrix)."""
    d = len(factors)
    rank = factors[0].shape[1]
    sizes = [U.shape[0] * rank for U in factors]
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    P = int(offsets[-1])
    m = len(values)
    r = cp_eval(factors, indices) - values

    # Per-observation Jacobian blocks: K_j = khatri_rao_rows(skip=j).
    Ks = [khatri_rao_rows(factors, indices, skip=j) for j in range(d)]
    # Column index of parameter (j, row i, component c): offset_j + i*R + c.
    cols = [
        offsets[j] + indices[:, j][:, None] * rank + np.arange(rank)[None, :]
        for j in range(d)
    ]

    JtJ = np.zeros((P, P))
    Jtr = np.zeros(P)
    for j in range(d):
        np.add.at(Jtr, cols[j], Ks[j] * r[:, None])
        for j2 in range(j, d):
            # Outer products of the two blocks, accumulated per (row, row').
            contrib = Ks[j][:, :, None] * Ks[j2][:, None, :]
            flat_rows = cols[j][:, :, None] + np.zeros((1, 1, rank), dtype=np.intp)
            flat_cols = cols[j2][:, None, :] + np.zeros((1, rank, 1), dtype=np.intp)
            np.add.at(JtJ, (flat_rows.ravel(), flat_cols.ravel()), contrib.ravel())
            if j2 != j:
                np.add.at(
                    JtJ, (flat_cols.ravel(), flat_rows.ravel()), contrib.ravel()
                )
    theta = _pack(factors)
    JtJ[np.diag_indices_from(JtJ)] += 2.0 * lam
    Jtr += 2.0 * lam * theta
    return JtJ, Jtr, r


def complete_lm(
    shape,
    indices,
    values,
    rank: int,
    regularization: float = 1e-5,
    max_sweeps: int = 50,
    tol: float = 1e-7,
    seed=None,
    factors: list | None = None,
    mu0: float = 1e-2,
    nu: float = 3.0,
    max_params: int = 4096,
) -> CompletionResult:
    """Fit a CP decomposition with damped Gauss-Newton (LM) iterations.

    One "sweep" is one accepted LM step (all factors updated at once).
    ``max_params`` guards the dense ``P x P`` normal matrix.
    """
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    d = len(shape)
    if d < 2:
        raise ValueError("tensor completion needs order >= 2")
    P = rank * int(np.sum(shape))
    if P > max_params:
        raise MemoryError(
            f"LM normal matrix would be {P}x{P} (> max_params={max_params}); "
            "use ALS/CCD for grids this large"
        )
    if factors is None:
        factors = init_factors(shape, rank, rng=as_generator(seed))
    lam = float(regularization)

    history = [ls_objective(factors, indices, values, lam)]
    mu = float(mu0)
    converged = False
    sweeps = 0
    attempts = 0
    while sweeps < max_sweeps and attempts < 8 * max_sweeps:
        JtJ, Jtr, _r = _assemble_normal(factors, indices, values, lam)
        diag = np.diag(JtJ).copy()
        accepted = False
        for _try in range(25):
            attempts += 1
            A = JtJ.copy()
            A[np.diag_indices_from(A)] += mu * np.maximum(diag, 1e-12)
            try:
                delta = scipy.linalg.solve(A, -Jtr, assume_a="pos")
            except np.linalg.LinAlgError:
                mu *= nu
                continue
            theta_new = _pack(factors) + delta
            trial = _unpack(theta_new, shape, rank)
            obj_new = ls_objective(trial, indices, values, lam)
            if obj_new < history[-1]:
                factors = trial
                history.append(obj_new)
                mu = max(mu / nu, 1e-12)
                accepted = True
                break
            mu *= nu
        if not accepted:
            break
        sweeps += 1
        prev, cur = history[-2], history[-1]
        if prev - cur <= tol * max(prev, 1e-30):
            converged = True
            break
    return CompletionResult(
        factors=factors, history=history, converged=converged, n_sweeps=sweeps
    )

"""Minibatch stochastic gradient descent for tensor completion.

The paper lists SGD among the standard optimizers for Eq. 3 (Section 4.2.1):
each step samples a random subset of Ω, computes the residual of the current
CP model on it, and updates *all* factor matrices at once along the negative
gradient.  For observation ``k`` and mode ``j`` the gradient contribution to
row ``indices[k, j]`` is ``2 * resid_k * prod_{j' != j} U_{j'}[idx_{j'k}]``;
contributions from a minibatch are scatter-added with :func:`numpy.add.at`.

SGD is the least sweep-efficient of the three least-squares optimizers but
the cheapest per update and the natural choice for streaming settings (the
paper's future-work discussion); it is exercised by the optimizer-ablation
benchmark.
"""
from __future__ import annotations

import numpy as np

from repro.core.completion.objectives import ls_objective
from repro.core.completion.state import (
    CompletionResult,
    init_factors,
    khatri_rao_rows,
)
from repro.utils.rng import as_generator

__all__ = ["complete_sgd"]


def complete_sgd(
    shape,
    indices,
    values,
    rank: int,
    regularization: float = 1e-5,
    max_sweeps: int = 500,
    tol: float = 1e-7,
    seed=None,
    factors: list | None = None,
    learning_rate: float = 0.1,
    batch_size: int = 256,
    decay: float = 0.002,
    momentum: float = 0.9,
    patience: int = 25,
) -> CompletionResult:
    """Fit a CP decomposition with minibatch SGD (heavy-ball momentum).

    One "sweep" is an epoch over a random permutation of Ω.  The step size
    follows an inverse-decay schedule ``lr / (1 + decay * epoch)``; the
    momentum term is essential on CP landscapes (orders-of-magnitude
    faster convergence in our ablations).  ``history`` records the full
    objective per epoch; convergence stops after ``patience`` consecutive
    epochs without a new best objective (momentum makes single-epoch
    non-improvement routine, so the window must be generous).
    """
    indices = np.asarray(indices, dtype=np.intp)
    values = np.asarray(values, dtype=float)
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(values) == 0:
        raise ValueError("cannot complete a tensor with zero observations")
    d = len(shape)
    if d < 2:
        raise ValueError("tensor completion needs order >= 2")
    rng = as_generator(seed)
    if factors is None:
        factors = init_factors(shape, rank, rng=rng)
    else:
        # The buffered gathers require float64; coerce warm starts.
        factors = [np.asarray(U, dtype=float) for U in factors]
    lam = float(regularization)
    n = len(values)
    batch_size = min(batch_size, n)

    history = [ls_objective(factors, indices, values, lam)]
    best = history[0]
    stall = 0
    converged = False
    sweeps = 0
    velocity = [np.zeros_like(U) for U in factors]
    # Reusable minibatch work buffers (hot loop: no per-batch allocation of
    # the Khatri-Rao block or the residual product).  Sized from the actual
    # factor rank: a warm start may carry a different rank than ``rank``.
    R = factors[0].shape[1]
    kr_buf = np.empty((batch_size, R))
    prod_buf = np.empty((batch_size, R))
    for epoch in range(max_sweeps):
        lr = learning_rate / (1.0 + decay * epoch)
        perm = rng.permutation(n)
        for start in range(0, n, batch_size):
            batch = perm[start : start + batch_size]
            idx_b = indices[batch]
            m = len(batch)
            # Residual on the batch under the current factors.
            prod = np.take(factors[0], idx_b[:, 0], axis=0, out=prod_buf[:m])
            for j in range(1, d):
                prod *= factors[j][idx_b[:, j]]
            resid = prod.sum(axis=1) - values[batch]
            scale = 2.0 * lr / m
            for j in range(d):
                K = khatri_rao_rows(factors, idx_b, skip=j, out=kr_buf[:m])
                g = np.zeros_like(factors[j])
                np.add.at(g, idx_b[:, j], scale * (K * resid[:, None]))
                velocity[j] = momentum * velocity[j] - g
                factors[j] += velocity[j]
            if lam > 0:
                for j in range(d):
                    factors[j] *= 1.0 - 2.0 * lr * lam / n
        sweeps = epoch + 1
        history.append(ls_objective(factors, indices, values, lam))
        cur = history[-1]
        if not np.isfinite(cur):
            # Divergence: halve the step and restart from fresh factors.
            learning_rate *= 0.5
            factors = init_factors(shape, rank, rng=rng)
            velocity = [np.zeros_like(U) for U in factors]
            if rank != R:  # warm start carried a different rank
                R = rank
                kr_buf = np.empty((batch_size, R))
                prod_buf = np.empty((batch_size, R))
            history[-1] = ls_objective(factors, indices, values, lam)
            continue
        if best - cur <= tol * max(best, 1e-30):
            stall += 1
            if stall >= patience:
                converged = True
                break
        else:
            stall = 0
        best = min(best, cur)
    return CompletionResult(
        factors=factors, history=history, converged=converged, n_sweeps=sweeps
    )

"""Out-of-domain extrapolation via Perron rank-1 factors (paper Section 5.3).

For a CP model with strictly positive factor matrices (the AMN model), each
factor ``U_j`` is compressed to its best rank-1 approximation
``U_j ~= u sigma v^T``.  By Perron-Frobenius, the leading singular vectors
of a strictly positive matrix are strictly positive (after sign
normalization), so ``log u`` is well defined.  A univariate MARS spline is
fitted to ``(h_j(midpoints), log u)`` and evaluated beyond the modeling
domain; the extrapolated row of ``U_j`` is then

    exp(spline(h_j(x))) * sigma * v    (an R-vector, paper's Eq. in 5.3).

Modes with very few grid points fall back to an ordinary least-squares line
in ``h`` — the limit behaviour of MARS with a single (degree-1) basis pair
and the only sensible choice below ~4 points.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import Mode

__all__ = ["ModeExtrapolator", "perron_rank1"]


def perron_rank1(U: np.ndarray) -> tuple[np.ndarray, float, np.ndarray]:
    """Best rank-1 factors ``(u, sigma, v)`` of a positive matrix.

    Signs are normalized so both vectors are non-negative; tiny negative
    round-off is clipped.  Raises when the input is not strictly positive
    (the Perron guarantee does not apply then).
    """
    U = np.asarray(U, dtype=float)
    if U.ndim != 2:
        raise ValueError("factor matrix must be 2-D")
    if np.any(U <= 0):
        raise ValueError("Perron rank-1 extraction requires a positive matrix")
    uu, ss, vvt = np.linalg.svd(U, full_matrices=False)
    u, sigma, v = uu[:, 0], float(ss[0]), vvt[0]
    if u.sum() < 0:
        u, v = -u, -v
    # Perron-Frobenius: exact leading vectors are positive; clip round-off.
    u = np.maximum(u, 1e-300)
    v = np.maximum(v, 0.0)
    return u, sigma, v


def _fit_line(x: np.ndarray, y: np.ndarray):
    """OLS line fit returning a predict callable (fallback spline)."""
    A = np.column_stack([np.ones_like(x), x])
    coef, *_ = np.linalg.lstsq(A, y, rcond=None)

    def predict(xq: np.ndarray) -> np.ndarray:
        return coef[0] + coef[1] * np.asarray(xq, dtype=float)

    return predict


@dataclass
class ModeExtrapolator:
    """Extrapolates one mode of a positive CP model beyond its domain.

    Attributes
    ----------
    sigma, v
        Leading singular value / right singular vector of the factor.
    spline
        Callable mapping transformed coordinates ``h`` to ``log u``.
    mode
        The grid mode (for the coordinate transform).
    h_lo, h_hi, slope_lo, slope_hi, val_lo, val_hi
        Beyond the fitted coordinate range the spline is extended linearly
        with its end slope *clipped to the range of secant slopes the data
        actually exhibits*.  A MARS end segment is set by the last few
        noisy singular-vector entries; one bad kink, amplified over the
        extrapolation span, dominates the error (we observed 1+ nat blow-
        ups).  Clipping to observed secants keeps the extension inside the
        data-supported growth envelope.
    """

    mode: Mode
    sigma: float
    v: np.ndarray
    spline: object
    h_lo: float = -np.inf
    h_hi: float = np.inf
    slope_lo: float = 0.0
    slope_hi: float = 0.0
    val_lo: float = 0.0
    val_hi: float = 0.0

    @classmethod
    def fit(
        cls,
        mode: Mode,
        factor: np.ndarray,
        min_mars_points: int = 4,
        observed=None,
    ):
        """Build the extrapolator for ``mode`` from its positive factor.

        ``observed`` optionally masks the factor rows backed by actual
        observations: imputed rows (constant-extended at the grid fringe)
        flatten the growth trend and corrupt the spline's extrapolation
        slope, so the spline is fitted on observed rows only.
        """
        u, sigma, v = perron_rank1(factor)
        h = mode.midpoints_h
        logu = np.log(u)
        if observed is not None:
            observed = np.asarray(observed, dtype=bool)
            if observed.sum() >= 2:
                h = h[observed]
                logu = logu[observed]
        if len(h) >= min_mars_points:
            # Local import: baselines package depends only on numpy, and
            # keeping it here avoids a hard import at module load.
            from repro.baselines.mars import MARSRegressor

            spline_model = MARSRegressor(
                max_degree=1, max_terms=min(2 * len(h), 12)
            ).fit(h[:, None], logu)

            def spline(xq):
                return spline_model.predict(np.asarray(xq, dtype=float)[:, None])

        else:
            spline = _fit_line(h, logu)

        out = cls(mode=mode, sigma=sigma, v=np.asarray(v, dtype=float), spline=spline)
        # Extension slopes from *windowed* boundary secants: per-cell noise
        # in log(u) (a few 0.1 nats over ~0.2-nat cell spacing) makes
        # single-cell secants — and therefore a MARS end segment — swing by
        # close to +-1 around the true growth exponent, which the
        # extrapolation span then amplifies into nat-scale errors.  A
        # secant over the last third of the fitted range averages that
        # noise out while still tracking boundary curvature.
        if len(h) >= 2:
            out.h_lo, out.h_hi = float(h[0]), float(h[-1])
            out.val_lo = float(np.asarray(spline([out.h_lo]))[0])
            out.val_hi = float(np.asarray(spline([out.h_hi]))[0])
            w = min(max(2, len(h) // 3), len(h) - 1)
            out.slope_hi = float(
                (logu[-1] - logu[-1 - w]) / (h[-1] - h[-1 - w])
            )
            out.slope_lo = float((logu[w] - logu[0]) / (h[w] - h[0]))
        return out

    def _log_scale(self, h: np.ndarray) -> np.ndarray:
        """Spline inside the fitted range; clipped-slope lines outside."""
        out = np.asarray(self.spline(h), dtype=float)
        below = h < self.h_lo
        above = h > self.h_hi
        if below.any():
            out[below] = self.val_lo + self.slope_lo * (h[below] - self.h_lo)
        if above.any():
            out[above] = self.val_hi + self.slope_hi * (h[above] - self.h_hi)
        return out

    def factor_rows(self, values: np.ndarray) -> np.ndarray:
        """Synthesized factor rows for out-of-domain parameter values.

        Returns an ``(n, R)`` array replacing ``U_j[i_j, :]`` in the CP
        evaluation (paper's modified Eq. 2).
        """
        h = self.mode.transform(np.asarray(values, dtype=float))
        scale = np.exp(self._log_scale(h)) * self.sigma
        return scale[:, None] * self.v[None, :]

"""``CPRModel`` — the public CP-completion performance model (Section 5).

Two configurations reproduce the paper's two formulations:

* ``loss="log_mse"`` (default) — Section 5.2's interpolation model: the
  observed cell means are log-transformed and centered, a CP decomposition
  is fitted with ALS (or CCD/SGD), and predictions exponentiate the CP
  output before Eq. 5 interpolation.  Positive output is implicit; no
  constraints are needed.
* ``loss="mlogq2"`` — Section 5.3's extrapolation model: the MLogQ2 loss is
  minimized by the interior-point AMN optimizer under strictly positive
  factors; out-of-domain queries synthesize factor rows from Perron rank-1
  + MARS spline extrapolators.

Example
-------
>>> from repro.apps import MatMul
>>> from repro.datasets import generate_dataset
>>> from repro.core import CPRModel
>>> app = MatMul()
>>> train = generate_dataset(app, 4096, seed=0)
>>> model = CPRModel(space=app.space, cells=16, rank=4, seed=0).fit(train.X, train.y)
>>> test = generate_dataset(app, 512, seed=1)
>>> err = model.score(test.X, test.y)   # MLogQ
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import ParameterSpace
from repro.core.completion import (
    OPTIMIZERS,
    ObservationPlan,
    cp_eval,
    cp_size_bytes,
    resolve_backend,
)
from repro.core.extrap import ModeExtrapolator
from repro.core.grid import LogMode, TensorGrid, UniformMode
from repro.core.interp import interpolate
from repro.core.tensor import ObservedTensor
from repro.metrics import METRICS
from repro.utils.serialization import model_size_bytes
from repro.utils.validation import check_1d, check_matching_rows, check_positive

__all__ = ["CPRModel", "TuckerModel", "rank_attribution"]

_LOSSES = ("log_mse", "mlogq2")

#: Optimizers the ``rank="auto"`` configuration may dispatch to.
_AUTO_RANK_OPTIMIZERS = ("als_adaptive",)


def rank_attribution(model) -> dict:
    """Requested vs served rank of a fitted model, for manifests/stats.

    Returns ``{"rank": requested}`` plus ``{"adapted_rank": served}``
    when an adaptive fit landed on a different rank than requested (the
    ``rank="auto"`` path always does — the request is the string).  The
    serving layer stamps this into published manifests and engine stats
    so shadow-trial audits and Figure 7 size reporting compare models at
    the rank they actually serve.  Models without a rank concept
    (baseline pipelines) yield ``{}``.
    """
    tucker_rank = getattr(model, "tucker_rank", None)
    if tucker_rank is not None:
        # Tucker ranks are fixed per fit; there is no adaptation to report.
        return {
            "rank": tucker_rank
            if isinstance(tucker_rank, int)
            else list(tucker_rank)
        }
    rank = getattr(model, "rank", None)
    if rank is None:
        return {}
    out = {"rank": rank if isinstance(rank, (int, str)) else list(rank)}
    adapted = getattr(model, "adapted_rank_", None)
    if adapted is not None and adapted != rank:
        out["adapted_rank"] = int(adapted)
    return out


def _grid_from_data(X: np.ndarray, cells, scales=None) -> TensorGrid:
    """Build a grid directly from data ranges when no space is given."""
    n, d = X.shape
    if isinstance(cells, int):
        cells = [cells] * d
    cells = list(cells)
    if len(cells) != d:
        raise ValueError("cells list length must equal number of columns")
    if scales is not None and len(scales) != d:
        raise ValueError(
            f"scales list length ({len(scales)}) must equal the number of "
            f"data columns ({d})"
        )
    modes = []
    for j in range(d):
        col = X[:, j]
        low, high = float(col.min()), float(col.max())
        if low == high:
            high = low + max(abs(low) * 1e-9, 1e-12)
        scale = None if scales is None else scales[j]
        if scale is None:
            scale = "log" if low > 0 else "linear"
        cls = LogMode if scale == "log" else UniformMode
        modes.append(cls(f"x{j}", low, high, int(cells[j])))
    return TensorGrid(modes)


class CPRModel:
    """CP tensor-completion performance model (the paper's CPR).

    Parameters
    ----------
    space
        Optional :class:`~repro.apps.base.ParameterSpace`; supplies
        per-parameter scales (log/linear) and categorical structure.  When
        omitted, every column is treated as numerical with log spacing for
        strictly positive columns.
    cells
        Sub-intervals per numerical mode (int, dict by name, or list); the
        paper sweeps 4..256.
    rank
        CP rank ``R`` (paper sweeps 1..64).
    loss
        ``"log_mse"`` (interpolation model) or ``"mlogq2"`` (positive
        extrapolation model).
    optimizer
        ``"als"``, ``"ccd"`` or ``"sgd"`` for ``log_mse``; forced to
        ``"amn"`` for ``mlogq2``.  Default: ``"als"`` / ``"amn"``.
    regularization
        Eq. 3's lambda (paper sweeps ``1e-6 .. 1e-3``).
    max_sweeps, tol
        Optimizer sweep budget and relative-decrease tolerance.
    out_of_domain
        Policy for queries outside the modeling domain: ``"auto"``
        (extrapolate via Section 5.3 for ``mlogq2``; clamp to the domain
        boundary for ``log_mse``, whose factors are not positivity-
        constrained), ``"raise"``, ``"clip"``, or ``"extrapolate"``.
    seed
        Seed for factor initialization (and SGD sampling).
    opt_params
        Extra keyword arguments forwarded to the optimizer (e.g.
        ``newton_iters`` for AMN, ``batch_size`` for SGD).
    """

    def __init__(
        self,
        space: ParameterSpace | None = None,
        cells=16,
        rank: int = 4,
        loss: str = "log_mse",
        optimizer: str | None = None,
        regularization: float = 1e-5,
        max_sweeps: int = 50,
        tol: float = 1e-5,
        out_of_domain: str = "auto",
        seed=0,
        scales=None,
        **opt_params,
    ):
        if loss not in _LOSSES:
            raise ValueError(f"loss must be one of {_LOSSES}, got {loss!r}")
        if isinstance(rank, str) and rank != "auto":
            raise ValueError(f"rank must be an int or 'auto', got {rank!r}")
        auto_rank = rank == "auto"
        if loss == "mlogq2":
            if auto_rank:
                raise ValueError(
                    "rank='auto' requires loss='log_mse' (the adaptive "
                    "grow/prune loop is ALS-based)"
                )
            if optimizer not in (None, "amn"):
                raise ValueError("loss='mlogq2' requires the 'amn' optimizer")
            optimizer = "amn"
        else:
            optimizer = optimizer or ("als_adaptive" if auto_rank else "als")
            if optimizer == "amn":
                raise ValueError("optimizer 'amn' requires loss='mlogq2'")
            if auto_rank and optimizer not in _AUTO_RANK_OPTIMIZERS:
                # "als" is the natural spelling; it auto-upgrades.
                if optimizer == "als":
                    optimizer = "als_adaptive"
                else:
                    raise ValueError(
                        f"rank='auto' requires an adaptive optimizer "
                        f"({', '.join(_AUTO_RANK_OPTIMIZERS)}), "
                        f"got {optimizer!r}"
                    )
        if optimizer not in OPTIMIZERS:
            raise ValueError(f"unknown optimizer {optimizer!r}")
        if out_of_domain not in ("auto", "raise", "clip", "extrapolate"):
            raise ValueError(f"bad out_of_domain {out_of_domain!r}")
        self.space = space
        self.cells = cells
        self.rank = "auto" if auto_rank else int(rank)
        self.loss = loss
        self.optimizer = optimizer
        self.regularization = float(regularization)
        self.max_sweeps = int(max_sweeps)
        self.tol = float(tol)
        self.out_of_domain = out_of_domain
        self.seed = seed
        self.scales = scales
        self.opt_params = opt_params

    # -- fitting --------------------------------------------------------------

    def fit(self, X, y) -> "CPRModel":
        """Discretize, assemble the observed tensor, and run completion."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        y = check_positive(check_1d(y, "y"), "y")
        check_matching_rows(X, y)
        if self.space is not None:
            X = self.space.validate(X)
            self.grid_ = TensorGrid.from_space(self.space, self.cells, X=X)
        else:
            self.grid_ = _grid_from_data(X, self.cells, self.scales)
        tensor = ObservedTensor.from_data(self.grid_, X, y)
        self.tensor_ = tensor

        if self.loss == "log_mse":
            logs = tensor.log_values()
            self.offset_ = float(np.mean(logs))
            targets = logs - self.offset_
            # Element clamp for unobserved cells: a CP model is unconstrained
            # where nothing was observed, and exponentiating a wild log value
            # overflows.  Interpolated elements are clamped to the observed
            # log range plus a generous margin (e^8 ~ 3000x headroom).
            self._log_lo = float(logs.min()) - 8.0
            self._log_hi = float(logs.max()) + 8.0
        else:
            self.offset_ = float(np.mean(np.log(tensor.values)))
            targets = tensor.values / np.exp(self.offset_)

        self._observed_rows_ = None
        self._plan_ = None
        self._run_completion(tensor, targets, warm_start=False)
        self._impute_unobserved_rows()
        self._extrapolators: dict[int, ModeExtrapolator] = {}
        return self

    def _completion_plan(self, tensor):
        """Reuse (or rebuild) the fit-wide observation plan for a solve.

        The plan depends only on the observed index set; a streaming
        ``partial_fit`` whose new measurements all landed in
        already-observed cells therefore reuses the previous fit's
        argsorts, segment bounds, and Khatri-Rao buffers verbatim — the
        dominant cost of setting up a sweep.  Any change to the index set
        (new cells, widened grid) invalidates and rebuilds.
        """
        plan = getattr(self, "_plan_", None)
        if plan is None:
            plan = ObservationPlan(self.grid_.shape, tensor.indices)
        else:
            plan = plan.extended(self.grid_.shape, tensor.indices)
        self._plan_ = plan
        return plan

    def _run_completion(self, tensor, targets, warm_start: bool) -> None:
        """Optimize the decomposition; subclasses swap the model family."""
        fn = OPTIMIZERS[self.optimizer]
        kwargs = dict(self.opt_params)
        if warm_start:
            kwargs["factors"] = self.factors_
        if getattr(fn, "accepts_kernel", False):
            # Resolve the kernel backend once per fit (env override >
            # explicit config > calibrated best) and hand the optimizer
            # the resolved object, so selection policy and manifest
            # attribution cannot disagree.  Plan caching/reuse is gated
            # on the backend's capability, not a name comparison: any
            # plan-reuse backend gets the fit-wide ObservationPlan.
            backend = resolve_backend(kwargs.pop("kernel", None))
            kwargs["kernel"] = backend
            if backend.supports_plan_reuse:
                kwargs["plan"] = self._completion_plan(tensor)
            if warm_start and not backend.supports_partial_fit:
                # A backend without warm-start support refits cold.
                kwargs.pop("factors", None)
            self.fit_backend_ = backend.name
        else:
            if "kernel" in kwargs:
                raise ValueError(
                    f"optimizer {self.optimizer!r} has no kernel backends; "
                    "the kernel option applies to als/amn only"
                )
            self.fit_backend_ = None
            if getattr(fn, "accepts_plan", False):
                # No backend, but the optimizer still reuses the
                # fit-wide observation plan across warm starts.
                kwargs["plan"] = self._completion_plan(tensor)
        self.result_ = fn(
            self.grid_.shape,
            tensor.indices,
            targets,
            rank=self.rank,
            regularization=self.regularization,
            max_sweeps=self.max_sweeps,
            tol=self.tol,
            seed=self.seed,
            **kwargs,
        )
        self.factors_ = self.result_.factors
        # The rank the model actually serves: an adaptive fit may land on
        # a different rank than configured (rank="auto" always does).
        self.adapted_rank_ = int(self.factors_[0].shape[1])
        trajectory = getattr(self.result_, "rank_trajectory", None)
        self.rank_trajectory_ = list(trajectory) if trajectory else None

    def _factor_list(self) -> list:
        """Per-mode factor matrices (hook for non-CP decompositions)."""
        return self.factors_

    def _model_value(self, indices: np.ndarray) -> np.ndarray:
        """Raw decomposition values at multi-indices."""
        return cp_eval(self.factors_, indices)

    # -- streaming updates (paper Section 8's online setting) -----------------

    def partial_fit(self, X, y, max_sweeps: int | None = None) -> "CPRModel":
        """Fold new measurements into the model without refitting from scratch.

        The paper's conclusion highlights "efficiently updating CP
        decompositions to model streaming data in online settings" as an
        open direction; this implements the natural baseline: merge the new
        observations into the per-cell running means (counts-weighted) and
        warm-start a few optimizer sweeps from the current factors.

        The grid is fixed at the first ``fit``; configurations outside the
        original modeling domain are clipped into its edge cells.  An empty
        batch is an exact no-op (the streaming trainer may flush between
        arrivals), and a model restored by ``load_model`` updates like a
        never-persisted one: the persisted payload carries the observed
        tensor (see ``__getstate_fit__``) unless it was saved with
        ``fit_state=False``.
        """
        self._require_fitted()
        if not hasattr(self, "tensor_"):
            raise RuntimeError(
                "partial_fit needs the observed tensor; this model was "
                "restored from a prediction-only snapshot "
                "(save_model(..., fit_state=False))"
            )
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        y = check_positive(check_1d(y, "y"), "y")
        check_matching_rows(X, y)
        if len(y) == 0:
            return self
        if self.space is not None:
            X = self.space.validate(X)
        new = ObservedTensor.from_data(self.grid_, X, y)
        self.tensor_ = self.tensor_.merge(new)
        self._observed_rows_ = None

        if self.loss == "log_mse":
            targets = self.tensor_.log_values() - self.offset_
        else:
            targets = self.tensor_.values / np.exp(self.offset_)
        sweeps = max_sweeps if max_sweeps is not None else max(self.max_sweeps // 5, 2)
        saved = self.max_sweeps
        try:
            self.max_sweeps = sweeps
            self._run_completion(self.tensor_, targets, warm_start=True)
        finally:
            self.max_sweeps = saved
        self._impute_unobserved_rows()
        self._extrapolators = {}
        return self

    def _impute_unobserved_rows(self) -> None:
        """Fill factor rows that no observation touched.

        Completion leaves a row of ``U_j`` at its initialization when no
        observed cell has that mode index (common when measured parameter
        values cluster — e.g. power-of-two node counts on a finer grid).
        Eq. 5 would then blend garbage neighbours into predictions.  Each
        missing row is interpolated column-wise from the nearest observed
        rows along the mode's transformed coordinate (log-factor space for
        the positive model, whose factors are multiplicative), with
        constant extension at the ends; categorical modes use the mean of
        the observed rows.
        """
        for j, U in enumerate(self._factor_list()):
            obs = self._observed_per_mode()[j]
            if len(obs) == U.shape[0]:
                continue
            missing = np.setdiff1d(np.arange(U.shape[0]), obs)
            mode = self.grid_.modes[j]
            positive = self.loss == "mlogq2"
            if not mode.interpolates:
                row = (
                    np.exp(np.mean(np.log(np.maximum(U[obs], 1e-300)), axis=0))
                    if positive
                    else U[obs].mean(axis=0)
                )
                U[missing] = row
                continue
            h = mode.midpoints_h
            src = np.log(np.maximum(U[obs], 1e-300)) if positive else U[obs]
            for c in range(U.shape[1]):
                filled = np.interp(h[missing], h[obs], src[:, c])
                U[missing, c] = np.exp(filled) if positive else filled

    def _observed_per_mode(self) -> list:
        """Per-mode sorted arrays of factor-row indices touched by data.

        Derived from the observation tensor and cached; the minimal
        persisted state stores these small arrays instead of the tensor,
        which keeps out-of-domain extrapolation working after reload.
        """
        if getattr(self, "_observed_rows_", None) is None:
            self._observed_rows_ = [
                np.unique(self.tensor_.indices[:, j])
                for j in range(self.grid_.order)
            ]
        return self._observed_rows_

    def _require_fitted(self):
        if not hasattr(self, "factors_"):
            raise RuntimeError("model is not fitted; call fit(X, y) first")

    # -- element estimation ----------------------------------------------------

    def _element(self, indices: np.ndarray) -> np.ndarray:
        """Estimated tensor elements (execution-time units) at multi-indices."""
        val = self._model_value(indices)
        if self.loss == "log_mse":
            return np.exp(np.clip(self.offset_ + val, self._log_lo, self._log_hi))
        return np.exp(self.offset_) * val

    def _log_element(self, indices: np.ndarray) -> np.ndarray:
        """Log-space element estimates, clamped (the log_mse blend input).

        The paper's Section 5.2 display blends exponentiated elements
        ``e^that``; we blend in log space and exponentiate the blend, i.e.
        a geometric rather than arithmetic corner mean.  The two coincide
        as corner values agree, but the geometric blend bounds the damage
        of a wildly mispredicted *unobserved* corner cell to its weight
        share — in sparse high-dimensional tensors this is the difference
        between a usable and a broken interpolant (see DESIGN.md).
        """
        val = self._model_value(indices)
        return np.clip(self.offset_ + val, self._log_lo, self._log_hi)

    def _extrapolator(self, j: int) -> ModeExtrapolator:
        if self.loss != "mlogq2":
            raise ValueError(
                "out-of-domain extrapolation requires loss='mlogq2' "
                "(strictly positive factor matrices, Section 5.3)"
            )
        if j not in self._extrapolators:
            mode = self.grid_.modes[j]
            if not mode.interpolates:
                raise ValueError(
                    f"cannot extrapolate categorical mode {mode.name!r}"
                )
            observed = np.zeros(mode.n_cells, dtype=bool)
            observed[self._observed_per_mode()[j]] = True
            self._extrapolators[j] = ModeExtrapolator.fit(
                mode, self._factor_list()[j], observed=observed
            )
        return self._extrapolators[j]

    # -- prediction -------------------------------------------------------------

    def validate_queries(self, X) -> np.ndarray:
        """Normalize a prediction batch to a finite ``(n, d)`` float array.

        The single validation gate for every prediction entry point:
        :meth:`predict` calls it inline, and the serving layer
        (:class:`repro.serve.PredictionEngine`) calls it to reject a bad
        batch *before* it reaches the vectorized kernels, so one malformed
        query in a microbatch cannot poison its batchmates' results.

        Raises ``ValueError`` on wrong dimensionality, a column-count
        mismatch with the fitted grid, or non-finite entries (NaN would
        silently propagate through the corner blend as garbage).
        """
        self._require_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if X.shape[1] != self.grid_.order:
            raise ValueError(
                f"X must have {self.grid_.order} columns, got {X.shape[1]}"
            )
        if X.size and not np.all(np.isfinite(X)):
            bad = np.flatnonzero(~np.isfinite(X).all(axis=1))[:5]
            raise ValueError(
                f"queries contain non-finite values (rows {bad.tolist()}...)"
            )
        return X

    def describe(self) -> dict:
        """JSON-serializable summary of the fitted model's query contract.

        Served to clients (the ``models`` op of :mod:`repro.serve.server`)
        so they can discover column order, per-mode domains, and scales
        without deserializing the model itself.
        """
        self._require_fitted()
        modes = []
        for m in self.grid_.modes:
            entry = {
                "name": m.name,
                "kind": type(m).__name__,
                "cells": int(m.n_cells),
                "interpolates": bool(m.interpolates),
            }
            if hasattr(m, "edges"):
                entry["low"] = float(m.edges[0])
                entry["high"] = float(m.edges[-1])
            modes.append(entry)
        return {
            "class": type(self).__name__,
            "loss": self.loss,
            "rank": self.rank,
            "adapted_rank": getattr(self, "adapted_rank_", None),
            "order": self.grid_.order,
            "shape": list(self.grid_.shape),
            "out_of_domain": self.out_of_domain,
            "fit_backend": getattr(self, "fit_backend_", None),
            "modes": modes,
        }

    def predict(self, X, *, validate: bool = True) -> np.ndarray:
        """Predicted execution times for configurations ``X``.

        Batched end to end: all rows of ``X`` flow through one fused
        corner-blend evaluation (see :func:`repro.core.interp.interpolate`),
        so this is also the serving fast path — callers should pass query
        *batches*, not loop per point.  ``validate=False`` skips
        :meth:`validate_queries` for callers that already ran it (the
        serving engine validates per request before microbatch coalescing;
        re-scanning each flush would be pure overhead).
        """
        if validate:
            X = self.validate_queries(X)
        else:
            self._require_fitted()
            X = np.asarray(X, dtype=float)
        policy = self.out_of_domain
        if policy == "auto":
            policy = "extrapolate" if self.loss == "mlogq2" else "clip"

        in_dom = self.grid_.in_domain(X)
        fully_in = in_dom.all(axis=1)
        if not fully_in.all():
            if policy == "raise":
                bad = np.flatnonzero(~fully_in)[:5]
                raise ValueError(
                    f"{int((~fully_in).sum())} configuration(s) outside the "
                    f"modeling domain (rows {bad.tolist()}...); use "
                    "loss='mlogq2' with out_of_domain='extrapolate', or 'clip'"
                )
            if policy == "clip":
                X = X.copy()
                for j, m in enumerate(self.grid_.modes):
                    if not m.interpolates:
                        continue  # bad categorical indices always raise
                    X[:, j] = np.clip(X[:, j], m.edges[0], m.edges[-1])
                in_dom = self.grid_.in_domain(X)
                fully_in = in_dom.all(axis=1)

        # Both model flavours blend *log* elements (a geometric corner
        # mean): it is robust to unobserved-cell garbage for the log_mse
        # model, and keeps fringe linear-extrapolation positive for the
        # mlogq2 model (linear-space extrapolation of a steep positive
        # slope — e.g. the 1-node -> 2-node broadcast jump — goes negative).
        out = np.empty(len(X))
        if fully_in.any():
            rows = np.flatnonzero(fully_in)
            if self.loss == "log_mse":
                out[rows] = np.exp(interpolate(self.grid_, self._log_element, X[rows]))
            else:
                log_elem = lambda idx: np.log(np.maximum(self._element(idx), 1e-300))
                out[rows] = np.exp(interpolate(self.grid_, log_elem, X[rows]))
        if not fully_in.all():
            self._predict_extrapolated(X, in_dom, ~fully_in, out)
        # Signed fringe weights can produce non-positive blends; clamp to a
        # tiny positive time as the paper does before MLogQ evaluation.
        return np.maximum(out, 1e-16)

    def _predict_extrapolated(self, X, in_dom, rows_mask, out) -> None:
        """Handle rows with at least one out-of-domain numerical mode."""
        rows = np.flatnonzero(rows_mask)
        patterns: dict[tuple, list] = {}
        for r in rows:
            key = tuple(np.flatnonzero(~in_dom[r]))
            patterns.setdefault(key, []).append(r)
        scale = np.exp(self.offset_)
        d = self.grid_.order
        for key, rlist in patterns.items():
            ridx = np.asarray(rlist, dtype=np.intp)
            Xg = X[ridx]
            ext_rows = {j: self._extrapolator(j).factor_rows(Xg[:, j]) for j in key}
            outside = set(key)

            def corner_eval(idx, _ext=ext_rows, _outside=outside, _n=len(ridx)):
                # ``interpolate`` stacks all 2^q corners corner-major, so the
                # per-configuration extrapolated factor rows tile verbatim.
                reps = len(idx) // _n
                prod = None
                for j in range(d):
                    if j in _outside:
                        f = np.tile(_ext[j], (reps, 1))
                    else:
                        f = self.factors_[j][idx[:, j]]
                    prod = f.copy() if prod is None else prod * f
                val = scale * prod.sum(axis=1)
                return np.log(np.maximum(val, 1e-300))

            active = np.array(
                [
                    m.interpolates and m.n_cells > 1 and (j not in outside)
                    for j, m in enumerate(self.grid_.modes)
                ]
            )
            out[ridx] = np.exp(
                interpolate(self.grid_, corner_eval, Xg, active=active)
            )

    # -- assessment ---------------------------------------------------------------

    def score(self, X, y, metric: str = "mlogq") -> float:
        """Prediction error of the model on ``(X, y)`` under ``metric``."""
        fn = METRICS[metric]
        return fn(self.predict(X), np.asarray(y, dtype=float))

    # -- size accounting -------------------------------------------------------------

    @property
    def n_parameters(self) -> int:
        """Number of model coefficients ``R * sum_j I_j``."""
        self._require_fitted()
        return sum(U.size for U in self.factors_)

    @property
    def factor_bytes(self) -> int:
        """Raw factor storage (paper's linear-in-order model size)."""
        self._require_fitted()
        return cp_size_bytes(self.factors_)

    def __getstate_for_size__(self):
        """Minimal-but-complete prediction state.

        This single state is both *measured* by ``size_bytes`` (the
        paper's Figure 7 model-size metric) and *persisted* by
        :func:`repro.utils.serialization.save_model`, so reported and
        on-disk sizes agree by construction.  It carries everything
        ``predict``/``score`` need — factors, the discretization grid,
        the log offset and clamps, and the per-mode observed-row index
        sets that rebuild extrapolators lazily — and drops fit-time
        buffers (the observation tensor and optimizer result).
        """
        self._require_fitted()
        state = {
            "factors": self.factors_,
            "grid": self.grid_,
            "offset": self.offset_,
            "loss": self.loss,
            "out_of_domain": self.out_of_domain,
            "rank": self.rank,
            "observed": self._observed_per_mode(),
            # A few scalar knobs so repr/refit on a restored model use the
            # original configuration (the parameter space itself is not
            # persisted — refitting needs it re-supplied).
            "config": {
                "optimizer": self.optimizer,
                "regularization": self.regularization,
                "max_sweeps": self.max_sweeps,
                "tol": self.tol,
                "seed": self.seed,
                "cells": self.cells,
                "scales": self.scales,
                "opt_params": self.opt_params,
                # Which kernel backend fitted the persisted factors —
                # the serving layer surfaces this (manifest meta, engine
                # stats) so a served prediction is attributable.
                "fit_backend": getattr(self, "fit_backend_", None),
            },
        }
        if self.loss == "log_mse":
            state["log_bounds"] = (self._log_lo, self._log_hi)
        # Stored only when the served rank differs from the requested one
        # (always for rank="auto"): fixed-rank states stay byte-identical
        # to pre-adaptive serializations.
        adapted = getattr(self, "adapted_rank_", None)
        if adapted is not None and adapted != self.rank:
            state["adapted_rank"] = int(adapted)
        return state

    def __getstate_fit__(self) -> dict | None:
        """Compact fit-time state enabling ``partial_fit`` after restore.

        The observed tensor (cell multi-indices, running means, counts) is
        the *sufficient statistic* of everything a warm-start update
        needs — merging new measurements into it reproduces exactly the
        tensor a never-persisted model would hold.  It is persisted
        alongside (not inside) the minimal prediction state, so the
        Figure 7 size metric (``size_bytes``) keeps measuring the
        prediction state only; see ``repro.utils.serialization``.
        """
        if not hasattr(self, "tensor_"):
            return None
        # Counts are persisted as float (the dtype `ObservedTensor.merge`
        # produces) so a fitted-then-updated model and a restored-then-
        # updated one serialize identically.
        return {
            "indices": self.tensor_.indices,
            "values": self.tensor_.values,
            "counts": np.asarray(self.tensor_.counts, dtype=float),
        }

    def _restore_fit_state(self, fit: dict) -> None:
        """Rebuild ``tensor_`` from :meth:`__getstate_fit__` (post-restore)."""
        self.tensor_ = ObservedTensor(
            grid=self.grid_,
            indices=np.asarray(fit["indices"], dtype=np.intp),
            values=np.asarray(fit["values"], dtype=float),
            counts=np.asarray(fit["counts"], dtype=float),
        )

    @classmethod
    def _from_minimal_state(cls, state: dict) -> "CPRModel":
        """Rebuild a predict-capable model from :meth:`__getstate_for_size__`.

        The restored model predicts identically to the original and keeps
        its hyper-parameter configuration.  ``loads_model`` additionally
        restores the observed tensor when the payload carries it (the
        default), making ``partial_fit`` work on restored models;
        refitting with a parameter space requires setting ``.space``
        again (spaces may hold non-persistable constraint callables).
        """
        m = object.__new__(cls)
        m.grid_ = state["grid"]
        m.factors_ = list(state["factors"])
        m.offset_ = float(state["offset"])
        m.loss = state["loss"]
        m.out_of_domain = state.get("out_of_domain", "auto")
        rank = state["rank"]
        m.rank = "auto" if rank == "auto" else int(rank)
        if "adapted_rank" in state:
            m.adapted_rank_ = int(state["adapted_rank"])
        elif isinstance(m.rank, int):
            m.adapted_rank_ = m.rank
        m._observed_rows_ = list(state["observed"])
        m._extrapolators = {}
        m._plan_ = None
        if "log_bounds" in state:
            m._log_lo, m._log_hi = (float(v) for v in state["log_bounds"])
        m.space = None
        config = state.get("config", {})
        m.optimizer = config.get("optimizer", "amn" if m.loss == "mlogq2" else "als")
        m.regularization = config.get("regularization", 1e-5)
        m.max_sweeps = config.get("max_sweeps", 50)
        m.tol = config.get("tol", 1e-5)
        m.seed = config.get("seed", 0)
        m.cells = config.get("cells", list(m.grid_.shape))
        m.scales = config.get("scales")
        m.opt_params = dict(config.get("opt_params", {}))
        m.fit_backend_ = config.get("fit_backend")
        return m

    @property
    def size_bytes(self) -> int:
        """Serialized model size (the paper's Figure 7 measurement)."""
        return model_size_bytes(self)

    def __repr__(self):
        fitted = hasattr(self, "factors_")
        extra = f", shape={self.grid_.shape}" if fitted else ""
        return (
            f"CPRModel(rank={self.rank}, loss={self.loss!r}, "
            f"optimizer={self.optimizer!r}{extra})"
        )


class TuckerModel(CPRModel):
    """Tucker-decomposition variant of the grid model (paper future work).

    Same discretization, log transform, and Eq. 5 interpolation as
    :class:`CPRModel`, with the CP decomposition replaced by a Tucker model
    (core tensor + per-mode factors) fitted by alternating ridge least
    squares.  ``rank`` may be an int (same per mode) or a per-mode tuple.

    Tucker's core grows as ``prod_j R_j``, so it is only practical for
    low/moderate tensor orders — the ablation benchmark quantifies exactly
    the size blow-up the paper avoids by choosing CP.  Extrapolation
    (Section 5.3) is CP-specific and unavailable here.
    """

    def __init__(
        self,
        space: ParameterSpace | None = None,
        cells=16,
        rank=4,
        regularization: float = 1e-5,
        max_sweeps: int = 50,
        tol: float = 1e-5,
        out_of_domain: str = "auto",
        seed=0,
        scales=None,
        **opt_params,
    ):
        super().__init__(
            space=space,
            cells=cells,
            rank=1,  # placeholder; Tucker ranks are handled below
            loss="log_mse",
            optimizer="als",
            regularization=regularization,
            max_sweeps=max_sweeps,
            tol=tol,
            out_of_domain=out_of_domain,
            seed=seed,
            scales=scales,
            **opt_params,
        )
        self.tucker_rank = rank

    def _run_completion(self, tensor, targets, warm_start: bool) -> None:
        from repro.core.completion.tucker import complete_tucker

        # The Tucker solver has no registered kernel backends (yet); its
        # fits carry no backend attribution.
        self.fit_backend_ = None
        # Warm starts re-run from the current state is not supported by the
        # Tucker solver; it refits (still cheap at these core sizes).
        self.result_ = complete_tucker(
            self.grid_.shape,
            tensor.indices,
            targets,
            rank=self.tucker_rank,
            regularization=self.regularization,
            max_sweeps=self.max_sweeps,
            tol=self.tol,
            seed=self.seed,
            **self.opt_params,
        )
        self.tucker_ = self.result_.factors[0]
        self.factors_ = self.tucker_.factors  # for shared bookkeeping

    def _factor_list(self) -> list:
        return self.tucker_.factors

    def _model_value(self, indices: np.ndarray) -> np.ndarray:
        return self.tucker_.eval_at(indices)

    def _extrapolator(self, j: int):
        raise ValueError(
            "Section 5.3 extrapolation is specific to positive CP "
            "decompositions; TuckerModel supports interpolation only"
        )

    @property
    def n_parameters(self) -> int:
        self._require_fitted()
        return self.tucker_.core.size + sum(U.size for U in self.tucker_.factors)

    @property
    def factor_bytes(self) -> int:
        self._require_fitted()
        return self.tucker_.size_bytes()

    def __getstate_for_size__(self):
        state = super().__getstate_for_size__()
        state["core"] = self.tucker_.core
        state["tucker_rank"] = self.tucker_rank
        return state

    @classmethod
    def _from_minimal_state(cls, state: dict) -> "TuckerModel":
        from repro.core.completion.tucker import TuckerFactors

        m = super()._from_minimal_state(state)
        m.tucker_ = TuckerFactors(np.asarray(state["core"]), m.factors_)
        m.tucker_rank = state.get("tucker_rank", m.tucker_.ranks)
        return m

    def __repr__(self):
        fitted = hasattr(self, "tucker_")
        extra = f", shape={self.grid_.shape}" if fitted else ""
        return f"TuckerModel(rank={self.tucker_rank}{extra})"

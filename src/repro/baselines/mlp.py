"""Feed-forward multi-layer perceptron regressor (paper Section 3.3).

A fully-connected network trained with Adam on mean-squared error, matching
the design space the paper sweeps: 1..8 hidden layers of width 2..2048 with
relu or tanh activations.  Targets are standardized internally; He/Xavier
initialization follows the activation choice.  Training stops early when
the loss plateaus (relative improvement below ``tol`` for ``patience``
epochs).

The paper finds MLPs the most competitive alternative model in
high-dimensional domains but 50x larger than CPR at comparable accuracy —
the size comes from the dense weight matrices this class serializes.
"""
from __future__ import annotations

import numpy as np

from repro.baselines.base import Regressor
from repro.utils.rng import as_generator

__all__ = ["MLPRegressor"]

_ACTIVATIONS = {
    "relu": (lambda z: np.maximum(z, 0.0), lambda z, a: (z > 0).astype(float)),
    "tanh": (np.tanh, lambda z, a: 1.0 - a * a),
}


class MLPRegressor(Regressor):
    """MLP with Adam, MSE loss, and early stopping on the training loss."""

    def __init__(
        self,
        hidden=(64, 64),
        activation: str = "relu",
        learning_rate: float = 1e-3,
        batch_size: int = 128,
        max_epochs: int = 200,
        l2: float = 1e-6,
        tol: float = 1e-6,
        patience: int = 12,
        seed=None,
    ):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"activation must be one of {sorted(_ACTIVATIONS)}")
        hidden = tuple(int(h) for h in hidden)
        if not hidden or any(h < 1 for h in hidden):
            raise ValueError("hidden must be a non-empty tuple of positive ints")
        self.hidden = hidden
        self.activation = activation
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.max_epochs = int(max_epochs)
        self.l2 = float(l2)
        self.tol = float(tol)
        self.patience = int(patience)
        self.seed = seed

    # -- internals --------------------------------------------------------------

    def _init_params(self, sizes, rng):
        act_gain = 2.0 if self.activation == "relu" else 1.0
        Ws, bs = [], []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            std = np.sqrt(act_gain / fan_in)
            Ws.append(rng.standard_normal((fan_in, fan_out)) * std)
            bs.append(np.zeros(fan_out))
        return Ws, bs

    def _forward(self, X, Ws, bs):
        act, _ = _ACTIVATIONS[self.activation]
        zs, activations = [], [X]
        a = X
        for l, (W, b) in enumerate(zip(Ws, bs)):
            z = a @ W + b
            zs.append(z)
            a = z if l == len(Ws) - 1 else act(z)
            activations.append(a)
        return zs, activations

    def fit(self, X, y) -> "MLPRegressor":
        X, y = self._validate_fit(X, y)
        rng = as_generator(self.seed)
        self.y_mean_ = float(y.mean())
        self.y_std_ = float(y.std()) or 1.0
        t = (y - self.y_mean_) / self.y_std_

        sizes = (X.shape[1], *self.hidden, 1)
        Ws, bs = self._init_params(sizes, rng)
        mW = [np.zeros_like(W) for W in Ws]
        vW = [np.zeros_like(W) for W in Ws]
        mb = [np.zeros_like(b) for b in bs]
        vb = [np.zeros_like(b) for b in bs]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        _, dact = _ACTIVATIONS[self.activation]

        n = len(t)
        bsz = min(self.batch_size, n)
        best_loss = np.inf
        stall = 0
        step = 0
        self.loss_history_ = []
        for _epoch in range(self.max_epochs):
            perm = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, bsz):
                rows = perm[start : start + bsz]
                xb, tb = X[rows], t[rows]
                zs, acts = self._forward(xb, Ws, bs)
                pred = acts[-1][:, 0]
                err = pred - tb
                epoch_loss += float(err @ err)
                # Backprop.
                delta = (2.0 / len(rows)) * err[:, None]
                gWs = [None] * len(Ws)
                gbs = [None] * len(bs)
                for l in range(len(Ws) - 1, -1, -1):
                    gWs[l] = acts[l].T @ delta + self.l2 * Ws[l]
                    gbs[l] = delta.sum(axis=0)
                    if l > 0:
                        delta = (delta @ Ws[l].T) * dact(zs[l - 1], acts[l])
                # Adam update.
                step += 1
                corr1 = 1.0 - beta1**step
                corr2 = 1.0 - beta2**step
                lr = self.learning_rate
                for l in range(len(Ws)):
                    mW[l] = beta1 * mW[l] + (1 - beta1) * gWs[l]
                    vW[l] = beta2 * vW[l] + (1 - beta2) * gWs[l] ** 2
                    Ws[l] -= lr * (mW[l] / corr1) / (np.sqrt(vW[l] / corr2) + eps)
                    mb[l] = beta1 * mb[l] + (1 - beta1) * gbs[l]
                    vb[l] = beta2 * vb[l] + (1 - beta2) * gbs[l] ** 2
                    bs[l] -= lr * (mb[l] / corr1) / (np.sqrt(vb[l] / corr2) + eps)
            epoch_loss /= n
            self.loss_history_.append(epoch_loss)
            if epoch_loss < best_loss * (1.0 - self.tol):
                best_loss = epoch_loss
                stall = 0
            else:
                stall += 1
                if stall >= self.patience:
                    break
        self.Ws_, self.bs_ = Ws, bs
        return self

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        _, acts = self._forward(X, self.Ws_, self.bs_)
        return acts[-1][:, 0] * self.y_std_ + self.y_mean_

    def __getstate_for_size__(self):
        return {
            "Ws": self.Ws_,
            "bs": self.bs_,
            "y_mean": self.y_mean_,
            "y_std": self.y_std_,
            "activation": self.activation,
        }

    def __repr__(self):
        return f"MLPRegressor(hidden={self.hidden}, activation={self.activation!r})"

"""Common regressor interface for the baseline models.

All baselines implement ``fit(X, y) -> self`` / ``predict(X) -> y_hat`` on
plain float matrices.  The experiment harness trains them in log space
(Section 6.0.4 log-transforms execution times and application parameters);
:class:`LogSpaceRegressor` packages the target-side transform so baselines
always see ``log y`` and return ``exp`` of their prediction — making every
model a positive time predictor, comparable under MLogQ.
"""
from __future__ import annotations

import numpy as np

from repro.metrics import METRICS
from repro.utils.serialization import model_size_bytes
from repro.utils.validation import check_1d, check_2d, check_matching_rows

__all__ = ["Regressor", "LogSpaceRegressor"]


class Regressor:
    """Base class: validation helpers, scoring, and size accounting."""

    def fit(self, X, y) -> "Regressor":
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        raise NotImplementedError

    # -- shared plumbing -----------------------------------------------------

    def _validate_fit(self, X, y):
        X = check_2d(X, "X")
        y = check_1d(y, "y")
        check_matching_rows(X, y)
        if len(y) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        return X, y

    def _validate_predict(self, X):
        X = check_2d(X, "X")
        if not hasattr(self, "n_features_"):
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_}"
            )
        return X

    def score(self, X, y, metric: str = "mlogq") -> float:
        """Prediction error under a Table 1 metric (default MLogQ)."""
        return METRICS[metric](self.predict(X), np.asarray(y, dtype=float))

    @property
    def size_bytes(self) -> int:
        """Serialized model size (Figure 7's measurement)."""
        return model_size_bytes(self)

    def __repr__(self):
        return f"{type(self).__name__}()"


class LogSpaceRegressor(Regressor):
    """Wrap any regressor to fit ``log y`` and predict ``exp(.)``.

    This is the paper's protocol for all supervised-learning baselines: the
    inner model minimizes (typically) MSE on log execution times, which is
    exactly the MLogQ2-targeting transformation of Section 5.2, and its
    exponentiated output is strictly positive.
    """

    def __init__(self, inner: Regressor):
        self.inner = inner

    def fit(self, X, y) -> "LogSpaceRegressor":
        X, y = self._validate_fit(X, y)
        if np.any(y <= 0):
            raise ValueError("LogSpaceRegressor requires positive targets")
        self.inner.fit(X, np.log(y))
        return self

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        return np.exp(self.inner.predict(X))

    def __getstate_for_size__(self):
        hook = getattr(self.inner, "__getstate_for_size__", None)
        return hook() if callable(hook) else self.inner

    def __repr__(self):
        return f"LogSpaceRegressor({self.inner!r})"

"""Feature preprocessing for the baseline models.

The harness log-transforms numerical application parameters before handing
them to supervised baselines (Section 6.0.4), standardizes columns (scale
matters for KNN/SVM/GP/MLP), and one-hot encodes categorical parameters
(solver/layout indices carry no metric structure).
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import ParameterSpace
from repro.utils.validation import check_2d

__all__ = ["FeatureMap"]


class FeatureMap:
    """Column-wise feature transform derived from a parameter space.

    * numeric, log-scale parameters -> ``log(x)``, then z-scored;
    * numeric, linear-scale parameters -> ``x``, then z-scored;
    * categorical parameters -> one-hot indicator block (optionally plain
      index for tree-based models, which split on indices natively).

    Standardization statistics come from the training matrix passed to
    :meth:`fit`.
    """

    def __init__(self, space: ParameterSpace | None = None, one_hot: bool = True):
        self.space = space
        self.one_hot = one_hot

    def fit(self, X: np.ndarray) -> "FeatureMap":
        X = check_2d(X, "X")
        self._n_in = X.shape[1]
        raw = self._expand(X)
        self.mean_ = raw.mean(axis=0)
        std = raw.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        if self.space is not None and self.one_hot:
            # Do not standardize one-hot columns: keep 0/1 indicators.
            is_onehot = self._onehot_mask()
            self.mean_[is_onehot] = 0.0
            self.scale_[is_onehot] = 1.0
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = check_2d(X, "X")
        if X.shape[1] != self._n_in:
            raise ValueError(f"expected {self._n_in} columns, got {X.shape[1]}")
        return (self._expand(X) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    # -- internals -------------------------------------------------------------

    def _expand(self, X: np.ndarray) -> np.ndarray:
        if self.space is None:
            # No structural information: log positive columns, pass others.
            cols = []
            for j in range(X.shape[1]):
                col = X[:, j]
                cols.append(np.log(col) if np.all(col > 0) else col)
            return np.column_stack(cols)
        if X.shape[1] != self.space.dimension:
            raise ValueError(
                f"X has {X.shape[1]} columns, space has {self.space.dimension}"
            )
        cols = []
        for j, p in enumerate(self.space):
            col = X[:, j]
            if p.is_categorical:
                if self.one_hot:
                    idx = np.rint(col).astype(np.intp)
                    if np.any((idx < 0) | (idx >= p.n_categories)):
                        raise ValueError(f"bad category index for {p.name!r}")
                    block = np.zeros((len(col), p.n_categories))
                    block[np.arange(len(col)), idx] = 1.0
                    cols.append(block)
                else:
                    cols.append(col[:, None])
            elif p.resolved_scale == "log":
                cols.append(np.log(np.maximum(col, 1e-300))[:, None])
            else:
                cols.append(col[:, None])
        return np.hstack(cols)

    def _onehot_mask(self) -> np.ndarray:
        mask = []
        for p in self.space:
            width = p.n_categories if (p.is_categorical and self.one_hot) else 1
            mask.extend([p.is_categorical and self.one_hot] * width)
        return np.asarray(mask, dtype=bool)

    @property
    def n_features_out(self) -> int:
        return len(self.mean_)

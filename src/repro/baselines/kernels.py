"""Covariance kernels for Gaussian-process regression (paper Section 6.0.4).

The paper tunes GP models over five kernels: RationalQuadratic, RBF,
DotProduct + WhiteKernel, Matern, and ConstantKernel.  Each kernel here
evaluates a full cross-covariance matrix ``k(X1, X2)`` with vectorized
pairwise distances.  Length scales default to the median-distance heuristic
at fit time (resolved by the GP, which passes the data-derived scale in).
"""
from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "Kernel",
    "RBF",
    "Matern",
    "RationalQuadratic",
    "DotProductWhite",
    "ConstantRBF",
    "KERNELS",
    "make_kernel",
]


class Kernel:
    """Base covariance function; subclasses implement :meth:`__call__`."""

    #: whether the kernel has a length-scale the GP should set by heuristic
    uses_length_scale: bool = True

    def __call__(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def with_length_scale(self, ell: float) -> "Kernel":
        """Return a copy with the given length scale (no-op if unused)."""
        return self


class RBF(Kernel):
    """Squared-exponential kernel ``exp(-||a-b||^2 / (2 ell^2))``."""

    def __init__(self, length_scale: float = 1.0):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)

    def __call__(self, X1, X2):
        d2 = cdist(X1, X2, "sqeuclidean")
        return np.exp(-0.5 * d2 / self.length_scale**2)

    def with_length_scale(self, ell):
        return RBF(ell)


class Matern(Kernel):
    """Matern kernel with nu in {0.5, 1.5, 2.5}."""

    def __init__(self, length_scale: float = 1.0, nu: float = 1.5):
        if nu not in (0.5, 1.5, 2.5):
            raise ValueError("nu must be one of 0.5, 1.5, 2.5")
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)
        self.nu = float(nu)

    def __call__(self, X1, X2):
        r = cdist(X1, X2, "euclidean") / self.length_scale
        if self.nu == 0.5:
            return np.exp(-r)
        if self.nu == 1.5:
            s = np.sqrt(3.0) * r
            return (1.0 + s) * np.exp(-s)
        s = np.sqrt(5.0) * r
        return (1.0 + s + s * s / 3.0) * np.exp(-s)

    def with_length_scale(self, ell):
        return Matern(ell, self.nu)


class RationalQuadratic(Kernel):
    """``(1 + ||a-b||^2 / (2 alpha ell^2))^(-alpha)``."""

    def __init__(self, length_scale: float = 1.0, alpha: float = 1.0):
        if length_scale <= 0 or alpha <= 0:
            raise ValueError("length_scale and alpha must be positive")
        self.length_scale = float(length_scale)
        self.alpha = float(alpha)

    def __call__(self, X1, X2):
        d2 = cdist(X1, X2, "sqeuclidean")
        return (1.0 + d2 / (2.0 * self.alpha * self.length_scale**2)) ** (-self.alpha)

    def with_length_scale(self, ell):
        return RationalQuadratic(ell, self.alpha)


class DotProductWhite(Kernel):
    """Linear kernel plus white noise: ``sigma0^2 + a.b`` (+ noise on diag).

    The white-noise part is handled by the GP's diagonal jitter; this class
    supplies the DotProduct component (scale-free, so no length scale).
    """

    uses_length_scale = False

    def __init__(self, sigma0: float = 1.0):
        if sigma0 < 0:
            raise ValueError("sigma0 must be non-negative")
        self.sigma0 = float(sigma0)

    def __call__(self, X1, X2):
        return self.sigma0**2 + X1 @ X2.T


class ConstantRBF(Kernel):
    """Constant-scaled RBF ``c * exp(-||a-b||^2 / (2 ell^2))``.

    Stands in for the paper's "ConstantKernel" option (a pure constant
    kernel yields a rank-1 degenerate GP; sklearn composes it with RBF).
    """

    def __init__(self, constant: float = 1.0, length_scale: float = 1.0):
        if constant <= 0 or length_scale <= 0:
            raise ValueError("constant and length_scale must be positive")
        self.constant = float(constant)
        self.length_scale = float(length_scale)

    def __call__(self, X1, X2):
        d2 = cdist(X1, X2, "sqeuclidean")
        return self.constant * np.exp(-0.5 * d2 / self.length_scale**2)

    def with_length_scale(self, ell):
        return ConstantRBF(self.constant, ell)


#: Kernel registry matching the paper's tuning grid.
KERNELS = {
    "rbf": RBF,
    "matern": Matern,
    "rational_quadratic": RationalQuadratic,
    "dot_product_white": DotProductWhite,
    "constant": ConstantRBF,
}


def make_kernel(name: str, **kwargs) -> Kernel:
    """Instantiate a kernel by registry name."""
    try:
        cls = KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; options: {sorted(KERNELS)}") from None
    return cls(**kwargs)

"""k-nearest-neighbor regression (the paper's instance-based baseline).

Backed by :class:`scipy.spatial.cKDTree`; predictions average the targets of
the ``k`` nearest training configurations, optionally weighted by inverse
distance.  The paper sweeps ``k`` in 1..6 and notes KNN's characteristic
weaknesses that our benches reproduce: model size equal to the training set
(Figure 7) and degradation in high-dimensional sparse domains.
"""
from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.baselines.base import Regressor

__all__ = ["KNNRegressor"]


class KNNRegressor(Regressor):
    """k-nearest-neighbors with uniform or inverse-distance weights."""

    def __init__(self, k: int = 3, weights: str = "uniform"):
        if k < 1:
            raise ValueError("k must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.k = int(k)
        self.weights = weights

    def fit(self, X, y) -> "KNNRegressor":
        X, y = self._validate_fit(X, y)
        self.tree_ = cKDTree(X)
        self.y_ = y.copy()
        return self

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        k = min(self.k, len(self.y_))
        dist, idx = self.tree_.query(X, k=k)
        if k == 1:
            dist = dist[:, None]
            idx = idx[:, None]
        vals = self.y_[idx]
        if self.weights == "uniform":
            return vals.mean(axis=1)
        w = 1.0 / np.maximum(dist, 1e-12)
        # Exact hits dominate: replace their row weights with an indicator.
        exact = dist <= 1e-12
        has_exact = exact.any(axis=1)
        w[has_exact] = exact[has_exact].astype(float)
        return (vals * w).sum(axis=1) / w.sum(axis=1)

    def __getstate_for_size__(self):
        # The KD-tree rebuilds from data; persisted size is data + targets,
        # mirroring what joblib would store for sklearn's KNeighborsRegressor.
        return {"X": np.asarray(self.tree_.data), "y": self.y_, "k": self.k}

"""Global linear models: OLS, ridge, and the performance model normal form.

Section 3.1 of the paper surveys global (non-piecewise) models configured by
least squares.  We provide:

* :class:`OLSRegressor` / :class:`RidgeRegressor` — linear in the supplied
  features (the harness feeds log-transformed parameters, so these are the
  classic log-log power-law models of Barnes et al.);
* :class:`PMNFRegressor` — the performance model normal form (paper Eq. 1):
  greedy search over candidate terms ``prod_j x_j^{v_j} * log(x_j)^{w_j}``
  with user-specified exponent sets, fitted to log execution time by OLS at
  each step (the log-transformed-predictor variant the paper cites as
  retaining tolerable accuracy at much smaller search cost).
"""
from __future__ import annotations

import itertools

import numpy as np

from repro.baselines.base import Regressor

__all__ = ["OLSRegressor", "RidgeRegressor", "PMNFRegressor"]


class OLSRegressor(Regressor):
    """Ordinary least squares with an intercept."""

    def fit(self, X, y) -> "OLSRegressor":
        X, y = self._validate_fit(X, y)
        A = np.column_stack([np.ones(len(X)), X])
        self.coef_, *_ = np.linalg.lstsq(A, y, rcond=None)
        return self

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        return self.coef_[0] + X @ self.coef_[1:]


class RidgeRegressor(Regressor):
    """L2-regularized least squares (intercept unpenalized)."""

    def __init__(self, alpha: float = 1e-3):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)

    def fit(self, X, y) -> "RidgeRegressor":
        X, y = self._validate_fit(X, y)
        xm = X.mean(axis=0)
        ym = float(y.mean())
        Xc = X - xm
        G = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.w_ = np.linalg.solve(G, Xc.T @ (y - ym))
        self.b_ = ym - float(xm @ self.w_)
        return self

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        return self.b_ + X @ self.w_


class PMNFRegressor(Regressor):
    """Performance model normal form via greedy term search (paper Eq. 1).

    Operates on *raw* (positive) parameters and fits ``log y`` so each term
    ``x^v log(x)^w`` becomes ``v*log x + w*log log x``-free linear algebra:
    the model is ``log m(x) = c0 + sum_r c_r * phi_r(x)`` with
    ``phi_r(x) = sum_j v_{rj} log x_j + w_{rj} log(log x_j + 1)`` restricted
    to single-parameter and pairwise-product terms.

    Parameters
    ----------
    n_terms
        Number of terms ``R`` selected greedily.
    exponents, log_exponents
        Candidate sets for ``v`` and ``w`` (paper: user-specified rationals).
    interactions
        Whether to include pairwise products of single-parameter terms.
    """

    def __init__(
        self,
        n_terms: int = 5,
        exponents=(0.0, 0.5, 1.0, 1.5, 2.0, 3.0),
        log_exponents=(0.0, 1.0, 2.0),
        interactions: bool = True,
    ):
        if n_terms < 1:
            raise ValueError("n_terms must be >= 1")
        self.n_terms = int(n_terms)
        self.exponents = tuple(exponents)
        self.log_exponents = tuple(log_exponents)
        self.interactions = interactions

    def _term_columns(self, X: np.ndarray):
        """All candidate predictor columns phi_r evaluated on X."""
        Xp = np.maximum(X, 1e-12)
        lx = np.log(Xp)
        llx = np.log1p(np.abs(lx))
        singles = []
        descr = []
        for j in range(X.shape[1]):
            for v, w in itertools.product(self.exponents, self.log_exponents):
                if v == 0 and w == 0:
                    continue
                singles.append(v * lx[:, j] + w * llx[:, j])
                descr.append(((j, v, w),))
        cols = list(singles)
        desc = list(descr)
        if self.interactions:
            for a in range(len(singles)):
                for b in range(a + 1, len(singles)):
                    if descr[a][0][0] == descr[b][0][0]:
                        continue  # same parameter: redundant with singles
                    cols.append(singles[a] + singles[b])
                    desc.append(descr[a] + descr[b])
        return cols, desc

    def fit(self, X, y) -> "PMNFRegressor":
        X, y = self._validate_fit(X, y)
        cols, desc = self._term_columns(X)
        n = len(y)
        selected: list[int] = []
        B = np.ones((n, 1))
        for _ in range(self.n_terms):
            Q, _ = np.linalg.qr(B)
            resid = y - Q @ (Q.T @ y)
            best, best_gain = None, 0.0
            for ci, col in enumerate(cols):
                if ci in selected:
                    continue
                c = col - Q @ (Q.T @ col)
                nrm2 = float(c @ c)
                if nrm2 < 1e-12:
                    continue
                gain = float(c @ resid) ** 2 / nrm2
                if gain > best_gain:
                    best, best_gain = ci, gain
            if best is None:
                break
            selected.append(best)
            B = np.column_stack([B, cols[best]])
        self.coef_, *_ = np.linalg.lstsq(B, y, rcond=None)
        self.terms_ = [desc[i] for i in selected]
        return self

    def _design(self, X: np.ndarray) -> np.ndarray:
        Xp = np.maximum(X, 1e-12)
        lx = np.log(Xp)
        llx = np.log1p(np.abs(lx))
        cols = [np.ones(len(X))]
        for term in self.terms_:
            col = np.zeros(len(X))
            for j, v, w in term:
                col += v * lx[:, j] + w * llx[:, j]
            cols.append(col)
        return np.column_stack(cols)

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        return self._design(X) @ self.coef_

    def __getstate_for_size__(self):
        return {"terms": self.terms_, "coef": self.coef_}

"""Gradient-boosted regression trees (paper Section 3.5).

Squared-error boosting: each stage fits a shallow CART tree to the current
residuals (the negative gradient of the squared loss) and the ensemble adds
it with shrinkage ``learning_rate``.  The paper tunes tree count (1..64)
and depth (2..16); optional ``subsample`` enables stochastic gradient
boosting (Friedman 2002).
"""
from __future__ import annotations

import numpy as np

from repro.baselines.base import Regressor
from repro.baselines.tree import DecisionTreeRegressor
from repro.utils.rng import as_generator, spawn_rngs

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(Regressor):
    """Sequential residual-fitting tree ensemble with shrinkage."""

    def __init__(
        self,
        n_estimators: int = 64,
        max_depth: int = 3,
        learning_rate: float = 0.1,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        seed=None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.learning_rate = float(learning_rate)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.seed = seed

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X, y = self._validate_fit(X, y)
        rngs = spawn_rngs(self.seed, self.n_estimators + 1)
        sample_rng = as_generator(rngs[-1])
        self.init_ = float(y.mean())
        resid = y - self.init_
        self.trees_ = []
        n = len(y)
        m = max(1, int(round(self.subsample * n)))
        for t in range(self.n_estimators):
            rows = (
                sample_rng.choice(n, size=m, replace=False)
                if m < n
                else np.arange(n)
            )
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                splitter="best",
                seed=rngs[t],
            ).fit(X[rows], resid[rows])
            resid -= self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        out = np.full(len(X), self.init_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out

    def __getstate_for_size__(self):
        return {
            "init": self.init_,
            "lr": self.learning_rate,
            "trees": [t.__getstate_for_size__() for t in self.trees_],
        }

"""Random forests and extremely randomized trees (paper Section 3.5).

Both average an ensemble of :class:`DecisionTreeRegressor`; they differ in
how variance is injected:

* :class:`RandomForestRegressor` — bootstrap resampling per tree plus
  best-split search over a random feature subset (Breiman);
* :class:`ExtraTreesRegressor` — the full sample per tree, random split
  thresholds (Geurts et al.), which the paper cites as among the most
  accurate black-box performance models.

The paper tunes forest size (1..64 trees) and tree depth (2..16).
"""
from __future__ import annotations

import numpy as np

from repro.baselines.base import Regressor
from repro.baselines.tree import DecisionTreeRegressor
from repro.utils.rng import as_generator, spawn_rngs

__all__ = ["RandomForestRegressor", "ExtraTreesRegressor"]


class _Forest(Regressor):
    """Shared ensemble plumbing for both forest flavours."""

    _bootstrap: bool
    _splitter: str
    _default_max_features: object

    def __init__(
        self,
        n_estimators: int = 32,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features=None,
        seed=None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.seed = seed

    def fit(self, X, y) -> "_Forest":
        X, y = self._validate_fit(X, y)
        rngs = spawn_rngs(self.seed, self.n_estimators + 1)
        sample_rng = rngs[-1]
        mf = self.max_features if self.max_features is not None else self._default_max_features
        self.trees_ = []
        n = len(y)
        for t in range(self.n_estimators):
            if self._bootstrap:
                rows = as_generator(sample_rng).integers(0, n, size=n)
                Xt, yt = X[rows], y[rows]
            else:
                Xt, yt = X, y
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=mf,
                splitter=self._splitter,
                seed=rngs[t],
            ).fit(Xt, yt)
            self.trees_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        out = np.zeros(len(X))
        for tree in self.trees_:
            out += tree.predict(X)
        return out / len(self.trees_)

    def __getstate_for_size__(self):
        return [t.__getstate_for_size__() for t in self.trees_]

    def __repr__(self):
        return (
            f"{type(self).__name__}(n_estimators={self.n_estimators}, "
            f"max_depth={self.max_depth})"
        )


class RandomForestRegressor(_Forest):
    """Bootstrap-aggregated CART forest with feature subsampling."""

    _bootstrap = True
    _splitter = "best"
    _default_max_features = "sqrt"


class ExtraTreesRegressor(_Forest):
    """Extremely randomized trees: full sample, random thresholds."""

    _bootstrap = False
    _splitter = "random"
    _default_max_features = None

"""Multivariate adaptive regression splines (Friedman 1991).

MARS builds products of univariate hinge functions
``max(0, +-(x_j - c))`` by a greedy forward pass, then prunes terms by
generalized cross-validation (GCV).  It is the paper's "adaptive spline
regression" baseline (via py-earth, Section 6.0.4, sweeping maximum spline
degree 1..6) and the spline used to extrapolate the Perron singular vector
in Section 5.3.

Implementation notes
--------------------
* Forward pass: candidate (parent basis, feature, knot) triples are scored
  by the residual-sum-of-squares reduction of adding the reflected hinge
  pair; knots come from quantiles of the feature restricted to the
  parent's support (``max_knots`` per feature, Friedman's fast heuristic).
  Scoring orthogonalizes the candidate pair against the current basis with
  one matrix product per candidate — O(n * terms) each.
* The standard MARS restriction applies: a feature may appear at most once
  per product term, and term degree is capped at ``max_degree``.
* Backward pass: terms are deleted greedily by smallest GCV increase; the
  subset with the best GCV wins.  ``gcv_penalty`` is Friedman's d ~= 3.
"""
from __future__ import annotations

import numpy as np

from repro.baselines.base import Regressor

__all__ = ["MARSRegressor"]


def _hinge(x: np.ndarray, knot: float, sign: int) -> np.ndarray:
    return np.maximum(sign * (x - knot), 0.0)


class _Basis:
    """One product term: a list of (feature, knot, sign) hinge factors."""

    __slots__ = ("factors",)

    def __init__(self, factors=()):
        self.factors = tuple(factors)

    def with_factor(self, feature: int, knot: float, sign: int) -> "_Basis":
        return _Basis(self.factors + ((feature, knot, sign),))

    @property
    def degree(self) -> int:
        return len(self.factors)

    def features(self) -> set:
        return {f for f, _, _ in self.factors}

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        out = np.ones(len(X))
        for feature, knot, sign in self.factors:
            out *= _hinge(X[:, feature], knot, sign)
        return out

    def __repr__(self):
        if not self.factors:
            return "1"
        parts = [
            f"h({'+' if s > 0 else '-'}(x{f} - {k:.4g}))" for f, k, s in self.factors
        ]
        return " * ".join(parts)


class MARSRegressor(Regressor):
    """Adaptive regression splines (the paper's MARS baseline).

    Parameters
    ----------
    max_degree
        Maximum number of hinge factors per term (paper sweeps 1..6).
    max_terms
        Forward-pass budget including the intercept.
    max_knots
        Candidate knots per (parent, feature) pair (quantile subsample).
    gcv_penalty
        Cost per additional basis in the GCV denominator (Friedman: 2-4).
    min_rss_decrease
        Early-stop threshold on the relative RSS improvement per pair.
    """

    def __init__(
        self,
        max_degree: int = 2,
        max_terms: int = 21,
        max_knots: int = 16,
        gcv_penalty: float = 3.0,
        min_rss_decrease: float = 1e-8,
    ):
        if max_degree < 1:
            raise ValueError("max_degree must be >= 1")
        if max_terms < 2:
            raise ValueError("max_terms must allow at least one hinge pair")
        self.max_degree = int(max_degree)
        self.max_terms = int(max_terms)
        self.max_knots = int(max_knots)
        self.gcv_penalty = float(gcv_penalty)
        self.min_rss_decrease = float(min_rss_decrease)

    # -- fitting --------------------------------------------------------------

    def fit(self, X, y) -> "MARSRegressor":
        X, y = self._validate_fit(X, y)
        n = len(y)
        bases = [_Basis()]
        B = np.ones((n, 1))
        coef, rss = self._ols(B, y)
        total_var = max(float(np.sum((y - y.mean()) ** 2)), 1e-300)

        while len(bases) + 2 <= self.max_terms:
            best = None  # (rss_new, parent_idx, feature, knot)
            Q, _ = np.linalg.qr(B)
            resid = y - Q @ (Q.T @ y)
            rss_cur = float(resid @ resid)
            for pi, parent in enumerate(bases):
                if parent.degree >= self.max_degree:
                    continue
                pcol = B[:, pi]
                support = pcol > 0
                if support.sum() < 4:
                    continue
                for feature in range(X.shape[1]):
                    if feature in parent.features():
                        continue
                    knots = self._candidate_knots(X[support, feature])
                    for knot in knots:
                        rss_new = self._pair_rss(Q, resid, rss_cur, pcol, X[:, feature], knot)
                        if best is None or rss_new < best[0]:
                            best = (rss_new, pi, feature, knot)
            if best is None:
                break
            rss_new, pi, feature, knot = best
            if (rss - rss_new) < self.min_rss_decrease * total_var:
                break
            parent = bases[pi]
            for sign in (+1, -1):
                nb = parent.with_factor(feature, knot, sign)
                col = nb.evaluate(X)
                if np.any(col != 0):
                    bases.append(nb)
                    B = np.column_stack([B, col])
            coef, rss = self._ols(B, y)

        bases, B, coef, rss = self._prune(bases, B, y)
        self.bases_ = bases
        self.coef_ = coef
        self.rss_ = rss
        return self

    def _candidate_knots(self, values: np.ndarray) -> np.ndarray:
        uniq = np.unique(values)
        if len(uniq) <= 2:
            return uniq[:-1] if len(uniq) == 2 else uniq
        # Interior quantiles; endpoints make one hinge identically zero.
        qs = np.linspace(0.05, 0.95, min(self.max_knots, len(uniq) - 1))
        return np.unique(np.quantile(uniq, qs))

    @staticmethod
    def _pair_rss(Q, resid, rss_cur, pcol, xcol, knot) -> float:
        """RSS after adding the reflected hinge pair (scored via projection)."""
        c1 = pcol * np.maximum(xcol - knot, 0.0)
        c2 = pcol * np.maximum(knot - xcol, 0.0)
        C = np.column_stack([c1, c2])
        # Orthogonalize against the current basis span.
        C = C - Q @ (Q.T @ C)
        # Least squares of the residual on the 2 new directions.
        G = C.T @ C
        b = C.T @ resid
        # Guard rank deficiency (hinge pair may be collinear with basis).
        try:
            sol = np.linalg.solve(G + 1e-12 * np.eye(2), b)
        except np.linalg.LinAlgError:
            return rss_cur
        return rss_cur - float(b @ sol)

    @staticmethod
    def _ols(B: np.ndarray, y: np.ndarray):
        coef, *_ = np.linalg.lstsq(B, y, rcond=None)
        r = y - B @ coef
        return coef, float(r @ r)

    def _gcv(self, rss: float, n: int, n_terms: int) -> float:
        c = n_terms + self.gcv_penalty * max(n_terms - 1, 0) / 2.0
        denom = (1.0 - min(c / n, 0.99)) ** 2
        return rss / n / denom

    def _prune(self, bases, B, y):
        """Greedy backward deletion by GCV; keep the best subset seen."""
        n = len(y)
        keep = list(range(len(bases)))
        coef, rss = self._ols(B[:, keep], y)
        best = (self._gcv(rss, n, len(keep)), list(keep), coef, rss)
        while len(keep) > 1:
            candidates = []
            for k in keep[1:]:  # never drop the intercept
                trial = [i for i in keep if i != k]
                c, r = self._ols(B[:, trial], y)
                candidates.append((self._gcv(r, n, len(trial)), trial, c, r))
            candidates.sort(key=lambda t: t[0])
            gcv, keep, coef, rss = candidates[0]
            if gcv < best[0]:
                best = (gcv, list(keep), coef, rss)
        _, keep, coef, rss = best
        return [bases[i] for i in keep], B[:, keep], coef, rss

    # -- prediction -------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        out = np.zeros(len(X))
        for c, basis in zip(self.coef_, self.bases_):
            out += c * basis.evaluate(X)
        return out

    def __getstate_for_size__(self):
        return {
            "bases": [b.factors for b in self.bases_],
            "coef": self.coef_,
            "n_features": self.n_features_,
        }

    @property
    def n_terms(self) -> int:
        return len(self.bases_)

    def __repr__(self):
        fitted = f", terms={len(self.bases_)}" if hasattr(self, "bases_") else ""
        return f"MARSRegressor(max_degree={self.max_degree}{fitted})"

"""From-scratch baselines: the nine comparison models of Section 6.0.4.

The paper evaluates CPR against sparse grid regression (SG++), MARS
(py-earth), and seven scikit-learn regressors.  None of those libraries is
available offline, so each model family is implemented here in vectorized
NumPy with the hyper-parameter axes the paper sweeps.
"""
from repro.baselines.base import LogSpaceRegressor, Regressor
from repro.baselines.boosting import GradientBoostingRegressor
from repro.baselines.forest import ExtraTreesRegressor, RandomForestRegressor
from repro.baselines.gp import GaussianProcessRegressor
from repro.baselines.knn import KNNRegressor
from repro.baselines.linear import OLSRegressor, PMNFRegressor, RidgeRegressor
from repro.baselines.mars import MARSRegressor
from repro.baselines.mlp import MLPRegressor
from repro.baselines.preprocess import FeatureMap
from repro.baselines.sgr import SparseGridRegressor
from repro.baselines.svm import SVMRegressor
from repro.baselines.tree import DecisionTreeRegressor

__all__ = [
    "Regressor",
    "LogSpaceRegressor",
    "FeatureMap",
    "OLSRegressor",
    "RidgeRegressor",
    "PMNFRegressor",
    "KNNRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "ExtraTreesRegressor",
    "GradientBoostingRegressor",
    "MLPRegressor",
    "GaussianProcessRegressor",
    "SVMRegressor",
    "MARSRegressor",
    "SparseGridRegressor",
]

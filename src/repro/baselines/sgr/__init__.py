"""Sparse grid regression (SGR) — the paper's closest prior art (SG++).

Hierarchical piecewise-linear basis functions on a regular sparse grid of a
user-chosen discretization level, least-squares fitted with conjugate
gradients, plus surplus-driven spatial adaptivity (Pfluger 2010), matching
the knobs the paper sweeps in Section 6.0.4: level 2..8, 1..16 refinements,
4..32 adaptive grid points.
"""
from repro.baselines.sgr.grid import SparseGridBasis, level_vectors
from repro.baselines.sgr.regression import SparseGridRegressor

__all__ = ["SparseGridBasis", "level_vectors", "SparseGridRegressor"]

"""Hierarchical sparse-grid basis on the unit hypercube.

A basis function is identified by a level vector ``l`` (each ``l_j >= 1``)
and an index vector ``i`` (each ``i_j`` odd, ``1 <= i_j <= 2^l_j - 1``); it
is the product of one-dimensional hats

    phi_{l,i}(x) = prod_j max(0, 1 - |2^{l_j} x_j - i_j|),

supported on the cell ``((i_j - 1) 2^{-l_j}, (i_j + 1) 2^{-l_j})``.  A
*regular* sparse grid of level ``n`` keeps all ``(l, i)`` with
``|l|_1 <= n + d - 1`` — the O(2^n n^{d-1})-point construction the paper
quotes (Section 3.2).

We use SG++'s *modified linear* ("modlinear") boundary treatment: at each
level the leftmost (``i = 1``) and rightmost (``i = 2^l - 1``) hats become
linear ramps extending to the domain boundary (value 2 at the boundary),
and the single level-1 hat is the constant 1.  Plain hats vanish on the
boundary of the unit cube, making any target with non-zero boundary values
unrepresentable there — modlinear is how SG++ avoids wasting boundary grid
points (Pfluger 2010, Section 2.1.3).

Key evaluation property: for a fixed level vector, the supports of distinct
odd indices are disjoint, so every sample activates at most one basis per
level vector.  ``evaluate`` exploits this: one vectorized pass per level
vector, giving a CSR design matrix with ``#level-vectors`` nonzeros per row
at most.
"""
from __future__ import annotations

import numpy as np
import scipy.sparse

__all__ = ["level_vectors", "SparseGridBasis"]


def level_vectors(d: int, level: int) -> list[tuple]:
    """All level vectors of a regular sparse grid: ``sum(l_j - 1) <= level - 1``."""
    if d < 1 or level < 1:
        raise ValueError("d and level must be >= 1")
    out: list[tuple] = []

    def rec(prefix, budget):
        if len(prefix) == d - 1:
            for last in range(1, budget + 2):
                out.append(prefix + (last,))
            return
        for lj in range(1, budget + 2):
            rec(prefix + (lj,), budget - (lj - 1))

    rec((), level - 1)
    return out


class SparseGridBasis:
    """A mutable collection of hierarchical basis functions.

    Stored as parallel integer arrays ``levels`` and ``indices`` of shape
    ``(G, d)``; a hash set of ``(l, i)`` tuples prevents duplicates when
    refinement adds children.
    """

    def __init__(self, d: int):
        if d < 1:
            raise ValueError("d must be >= 1")
        self.d = d
        self._levels: list[tuple] = []
        self._indices: list[tuple] = []
        self._seen: set = set()

    # -- construction -----------------------------------------------------------

    @classmethod
    def regular(cls, d: int, level: int, max_points: int | None = 50000) -> "SparseGridBasis":
        """The regular sparse grid of the given level."""
        basis = cls(d)
        for l in level_vectors(d, level):
            widths = [1 << (lj - 1) for lj in l]  # number of odd indices per dim
            n_new = int(np.prod(widths, dtype=np.int64))
            if max_points is not None and len(basis) + n_new > max_points:
                raise MemoryError(
                    f"sparse grid level {level} in {d}D exceeds max_points="
                    f"{max_points}; lower the level"
                )
            # Enumerate odd index combinations via mixed-radix counting.
            for flat in range(n_new):
                i = []
                rem = flat
                for w in widths:
                    i.append(2 * (rem % w) + 1)
                    rem //= w
                basis.add(l, tuple(i))
        return basis

    def add(self, l: tuple, i: tuple) -> bool:
        """Add one basis function; returns False when already present."""
        key = (tuple(l), tuple(i))
        if key in self._seen:
            return False
        for lj, ij in zip(*key):
            if lj < 1 or ij < 1 or ij > (1 << lj) - 1 or ij % 2 == 0:
                raise ValueError(f"invalid basis (l={l}, i={i})")
        self._seen.add(key)
        self._levels.append(key[0])
        self._indices.append(key[1])
        return True

    def children_of(self, b: int) -> list[tuple]:
        """The 2d hierarchical children of basis ``b`` (may include dupes)."""
        l = self._levels[b]
        i = self._indices[b]
        kids = []
        for j in range(self.d):
            lj = l[:j] + (l[j] + 1,) + l[j + 1 :]
            for child in (2 * i[j] - 1, 2 * i[j] + 1):
                kids.append((lj, i[:j] + (child,) + i[j + 1 :]))
        return kids

    def __len__(self) -> int:
        return len(self._levels)

    @property
    def levels(self) -> np.ndarray:
        return np.asarray(self._levels, dtype=np.int64)

    @property
    def indices(self) -> np.ndarray:
        return np.asarray(self._indices, dtype=np.int64)

    def points(self) -> np.ndarray:
        """Grid-point coordinates ``i * 2^-l`` in the unit hypercube."""
        L = self.levels
        return self.indices.astype(float) / (1 << L).astype(float)

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, X: np.ndarray) -> scipy.sparse.csr_matrix:
        """Design matrix ``Phi`` with ``Phi[k, b] = phi_b(X[k])`` (CSR).

        ``X`` must lie in the unit hypercube (values are clipped to
        ``[0, 1]`` defensively; SGR cannot represent anything outside).
        """
        X = np.clip(np.asarray(X, dtype=float), 0.0, 1.0)
        if X.ndim != 2 or X.shape[1] != self.d:
            raise ValueError(f"X must be (n, {self.d})")
        n = len(X)
        # Group basis ids by level vector.
        groups: dict[tuple, dict[tuple, int]] = {}
        for b, (l, i) in enumerate(zip(self._levels, self._indices)):
            groups.setdefault(l, {})[i] = b

        rows, cols, vals = [], [], []
        for l, index_map in groups.items():
            scale = np.asarray([1 << lj for lj in l], dtype=float)
            t = X * scale  # (n, d) in level-l integer coordinates
            # The unique odd index whose support can contain each sample.
            i_star = (2 * np.floor(t / 2.0) + 1).astype(np.int64)
            i_star = np.minimum(i_star, (scale - 1).astype(np.int64))
            # Modified-linear 1-D values (vectorized over samples and dims).
            hat = np.maximum(1.0 - np.abs(t - i_star), 0.0)
            lvl = np.asarray(l)[None, :]
            left = (i_star == 1) & (lvl > 1)
            right = (i_star == (scale - 1).astype(np.int64)) & (lvl > 1) & ~left
            phi1 = np.where(left, np.maximum(2.0 - t, 0.0), hat)
            phi1 = np.where(right, np.maximum(t - (i_star - 1), 0.0), phi1)
            phi1 = np.where(lvl == 1, 1.0, phi1)
            phi = np.prod(phi1, axis=1)
            live = phi > 0
            if not live.any():
                continue
            # Map index tuples to basis ids (vectorized via ravel keys).
            strides = np.concatenate([[1], np.cumprod(scale[:-1])]).astype(np.int64)
            keys = (i_star[live] * strides).sum(axis=1)
            lookup = {
                int((np.asarray(i) * strides).sum()): b for i, b in index_map.items()
            }
            col_ids = np.asarray([lookup.get(int(k), -1) for k in keys], dtype=np.int64)
            present = col_ids >= 0
            live_rows = np.flatnonzero(live)[present]
            rows.append(live_rows)
            cols.append(col_ids[present])
            vals.append(phi[live][present])
        if rows:
            rows = np.concatenate(rows)
            cols = np.concatenate(cols)
            vals = np.concatenate(vals)
        else:  # no basis touched any sample (empty grid edge case)
            rows = np.empty(0, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)
            vals = np.empty(0)
        return scipy.sparse.csr_matrix((vals, (rows, cols)), shape=(n, len(self)))

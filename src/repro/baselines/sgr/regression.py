"""Sparse grid regression: ridge fit + surplus-driven refinement.

The regressor scales inputs to the unit hypercube (min-max from the
training data), builds a regular sparse grid of the requested level, and
solves the ridge system ``(Phi^T Phi + lam I) w = Phi^T y`` with conjugate
gradients (matrix-free, mirroring the paper's CG/1000-iteration/1e-4
settings for SG++).  Each refinement sweep adds the hierarchical children
of the ``refine_points`` basis functions with the largest weighted surplus
(|w_b| times the basis' training support), then re-solves — SG++'s
surplus-based spatial adaptivity.
"""
from __future__ import annotations

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.baselines.base import Regressor
from repro.baselines.sgr.grid import SparseGridBasis

__all__ = ["SparseGridRegressor"]


class SparseGridRegressor(Regressor):
    """Hierarchical sparse-grid least-squares model (the paper's SGR).

    Parameters
    ----------
    level
        Regular sparse-grid discretization level (paper sweeps 2..8).
    regularization
        Ridge parameter lambda (paper sweeps 1e-6..1e-3).
    refinements
        Number of adaptive refinement sweeps (paper sweeps 1..16).
    refine_points
        Basis functions refined per sweep (paper sweeps 4..32).
    cg_max_iter, cg_tol
        Conjugate-gradient budget (paper: 1000 iterations, tol 1e-4).
    max_points
        Safety cap on basis size; exceeding it raises ``MemoryError``.
    """

    def __init__(
        self,
        level: int = 3,
        regularization: float = 1e-5,
        refinements: int = 0,
        refine_points: int = 8,
        cg_max_iter: int = 1000,
        cg_tol: float = 1e-4,
        max_points: int = 50000,
    ):
        if level < 1:
            raise ValueError("level must be >= 1")
        if refinements < 0 or refine_points < 1:
            raise ValueError("refinements >= 0 and refine_points >= 1 required")
        self.level = int(level)
        self.regularization = float(regularization)
        self.refinements = int(refinements)
        self.refine_points = int(refine_points)
        self.cg_max_iter = int(cg_max_iter)
        self.cg_tol = float(cg_tol)
        self.max_points = int(max_points)

    # -- scaling -----------------------------------------------------------------

    def _to_unit(self, X: np.ndarray) -> np.ndarray:
        return np.clip((X - self.lo_) / self.span_, 0.0, 1.0)

    # -- fitting ------------------------------------------------------------------

    def _solve(self, Phi: scipy.sparse.csr_matrix, y: np.ndarray) -> np.ndarray:
        # LSMR on the regularized least-squares problem is equivalent to CG
        # on the normal equations but numerically far more robust for the
        # ill-conditioned hierarchical basis (damp^2 = lambda).
        result = scipy.sparse.linalg.lsmr(
            Phi,
            y,
            damp=np.sqrt(self.regularization),
            atol=self.cg_tol * 1e-2,
            btol=self.cg_tol * 1e-2,
            maxiter=self.cg_max_iter,
        )
        return result[0]

    def fit(self, X, y) -> "SparseGridRegressor":
        X, y = self._validate_fit(X, y)
        self.lo_ = X.min(axis=0)
        span = X.max(axis=0) - self.lo_
        self.span_ = np.where(span > 0, span, 1.0)
        U = self._to_unit(X)
        ym = float(y.mean())
        yc = y - ym

        basis = SparseGridBasis.regular(X.shape[1], self.level, self.max_points)
        Phi = basis.evaluate(U)
        w = self._solve(Phi, yc)
        for _sweep in range(self.refinements):
            # Weighted surplus: |w_b| times the basis' support mass in the
            # training set (refining unsupported basis wastes points).
            # Children of coarse bases already exist in a regular grid, so
            # walk the ranking until refine_points bases contribute at
            # least one genuinely new child each.
            support = np.asarray(np.abs(Phi).sum(axis=0)).ravel()
            score = np.abs(w) * support
            ranking = np.argsort(score)[::-1]
            refined = 0
            added = 0
            for b in ranking:
                if refined >= self.refine_points or len(basis) >= self.max_points:
                    break
                new_here = 0
                for l, i in basis.children_of(int(b)):
                    if len(basis) >= self.max_points:
                        break
                    new_here += basis.add(l, i)
                if new_here:
                    refined += 1
                    added += new_here
            if not added:
                break
            Phi = basis.evaluate(U)
            w = self._solve(Phi, yc)
        self.basis_ = basis
        self.weights_ = w
        self.y_mean_ = ym
        return self

    # -- prediction -------------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        Phi = self.basis_.evaluate(self._to_unit(X))
        return Phi @ self.weights_ + self.y_mean_

    @property
    def n_grid_points(self) -> int:
        return len(self.basis_)

    def __getstate_for_size__(self):
        return {
            "levels": self.basis_.levels.astype(np.int16),
            "indices": self.basis_.indices.astype(np.int32),
            "weights": self.weights_,
            "lo": self.lo_,
            "span": self.span_,
            "y_mean": self.y_mean_,
        }

    def __repr__(self):
        fitted = f", points={len(self.basis_)}" if hasattr(self, "basis_") else ""
        return f"SparseGridRegressor(level={self.level}{fitted})"

"""Gaussian-process regression (paper Section 3.4).

Exact GP regression with a Cholesky factorization of
``K + noise * I``.  The length scale defaults to the median pairwise
distance of (a subsample of) the training inputs — the standard heuristic —
optionally refined by maximizing the log marginal likelihood over a small
multiplicative grid.  Training cost is O(n^3); ``max_train`` caps the
training set by random subsampling (the paper itself excludes models that
take >= 1000 s to optimize, which exact GPs on 2^16 samples would).

Note the O(n^2) persisted size (training inputs + dual weights): this is
what makes GP one of the largest models in the paper's Figure 7.
"""
from __future__ import annotations

import numpy as np
import scipy.linalg
from scipy.spatial.distance import pdist

from repro.baselines.base import Regressor
from repro.baselines.kernels import Kernel, make_kernel
from repro.utils.rng import as_generator

__all__ = ["GaussianProcessRegressor"]


class GaussianProcessRegressor(Regressor):
    """Exact GP regression with selectable covariance kernel.

    Parameters
    ----------
    kernel
        A :class:`~repro.baselines.kernels.Kernel` instance or registry
        name (``rbf``, ``matern``, ``rational_quadratic``,
        ``dot_product_white``, ``constant``).
    noise
        Diagonal observation-noise variance (also the WhiteKernel part of
        the DotProduct+White option).
    optimize_scale
        When true, pick the length scale from ``scale_grid`` (multiples of
        the median heuristic) by maximizing the log marginal likelihood.
    max_train
        Random-subsample cap on the training set (exact GP is O(n^3)).
    """

    def __init__(
        self,
        kernel: str | Kernel = "rbf",
        noise: float = 1e-4,
        optimize_scale: bool = True,
        scale_grid=(0.25, 0.5, 1.0, 2.0, 4.0),
        max_train: int = 2048,
        seed=None,
    ):
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.kernel = make_kernel(kernel) if isinstance(kernel, str) else kernel
        self.noise = float(noise)
        self.optimize_scale = optimize_scale
        self.scale_grid = tuple(scale_grid)
        self.max_train = int(max_train)
        self.seed = seed

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _median_heuristic(X: np.ndarray, rng) -> float:
        m = min(len(X), 512)
        sub = X[rng.choice(len(X), size=m, replace=False)] if len(X) > m else X
        d = pdist(sub)
        d = d[d > 0]
        return float(np.median(d)) if len(d) else 1.0

    def _fit_once(self, kernel, X, y):
        K = kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise
        L = scipy.linalg.cholesky(K, lower=True)
        alpha = scipy.linalg.cho_solve((L, True), y)
        # Log marginal likelihood (up to the constant term).
        lml = -0.5 * float(y @ alpha) - float(np.sum(np.log(np.diag(L))))
        return alpha, L, lml

    def fit(self, X, y) -> "GaussianProcessRegressor":
        X, y = self._validate_fit(X, y)
        rng = as_generator(self.seed)
        if len(y) > self.max_train:
            rows = rng.choice(len(y), size=self.max_train, replace=False)
            X, y = X[rows], y[rows]
        self.y_mean_ = float(y.mean())
        yc = y - self.y_mean_

        candidates = []
        if self.kernel.uses_length_scale:
            ell0 = self._median_heuristic(X, rng)
            grid = self.scale_grid if self.optimize_scale else (1.0,)
            candidates = [self.kernel.with_length_scale(ell0 * s) for s in grid]
        else:
            candidates = [self.kernel]

        best = None
        for kern in candidates:
            try:
                alpha, L, lml = self._fit_once(kern, X, yc)
            except np.linalg.LinAlgError:
                continue
            if best is None or lml > best[3]:
                best = (kern, alpha, L, lml)
        if best is None:
            raise RuntimeError("GP fit failed for every candidate length scale")
        self.kernel_, self.alpha_, self._L, self.lml_ = best
        self.X_train_ = X
        return self

    def predict(self, X, return_std: bool = False):
        X = self._validate_predict(X)
        Ks = self.kernel_(X, self.X_train_)
        mean = Ks @ self.alpha_ + self.y_mean_
        if not return_std:
            return mean
        v = scipy.linalg.solve_triangular(self._L, Ks.T, lower=True)
        prior = np.diagonal(self.kernel_(X, X)).copy()
        var = np.maximum(prior - np.sum(v * v, axis=0), 0.0)
        return mean, np.sqrt(var)

    def __getstate_for_size__(self):
        # What must persist for prediction: training inputs + dual weights.
        return {"X": self.X_train_, "alpha": self.alpha_, "y_mean": self.y_mean_}

"""CART regression trees — the building block for RF / ET / GB baselines.

A depth-limited binary regression tree minimizing squared error.  Split
search is vectorized per node: one argsort per candidate feature, prefix
sums of the targets, and a closed-form SSE-reduction scan over all split
positions (no Python loop over samples).  Two split modes support the two
forest flavours the paper evaluates:

* ``splitter="best"`` — exhaustive best-threshold search (random forests,
  gradient boosting);
* ``splitter="random"`` — one uniform threshold per candidate feature
  (extremely randomized trees, Geurts et al.), which the paper finds among
  the strongest baselines.

Prediction routes all query rows through the node arrays level-by-level
(one vectorized pass per depth), avoiding per-sample Python recursion.
"""
from __future__ import annotations

import numpy as np

from repro.baselines.base import Regressor
from repro.utils.rng import as_generator

__all__ = ["DecisionTreeRegressor"]

_LEAF = -1


class DecisionTreeRegressor(Regressor):
    """Depth-limited CART regression tree.

    Parameters
    ----------
    max_depth
        Maximum tree depth (paper sweeps 2..16).
    min_samples_split, min_samples_leaf
        Pre-pruning thresholds.
    max_features
        Number of candidate features per split: ``None`` (all), an int, or
        ``"sqrt"`` (random-forest default).
    splitter
        ``"best"`` or ``"random"`` (extra-trees style).
    seed
        Feature subsampling / random-threshold generator seed.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        splitter: str = "best",
        seed=None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if splitter not in ("best", "random"):
            raise ValueError("splitter must be 'best' or 'random'")
        self.max_depth = int(max_depth)
        self.min_samples_split = max(int(min_samples_split), 2)
        self.min_samples_leaf = max(int(min_samples_leaf), 1)
        self.max_features = max_features
        self.splitter = splitter
        self.seed = seed

    # -- split search ---------------------------------------------------------

    def _n_candidate_features(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if mf == "sqrt":
            return max(1, int(np.sqrt(d)))
        return max(1, min(int(mf), d))

    def _best_split(self, X, y, rows, rng):
        """Return (feature, threshold, gain) or None for a leaf."""
        d = X.shape[1]
        k = self._n_candidate_features(d)
        feats = rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
        n = len(rows)
        y_node = y[rows]
        total_sum = y_node.sum()
        total_sq = float(y_node @ y_node)
        sse_parent = total_sq - total_sum**2 / n
        best = None
        min_leaf = self.min_samples_leaf
        for f in feats:
            x = X[rows, f]
            if self.splitter == "random":
                lo, hi = x.min(), x.max()
                if lo == hi:
                    continue
                thr = rng.uniform(lo, hi)
                left = x <= thr
                nl = int(left.sum())
                nr = n - nl
                if nl < min_leaf or nr < min_leaf:
                    continue
                sl = y_node[left].sum()
                sr = total_sum - sl
                sse_children = (
                    total_sq - sl**2 / nl - sr**2 / nr
                )
                gain = sse_parent - sse_children
                if gain > 0 and (best is None or gain > best[2]):
                    best = (f, float(thr), gain)
                continue
            order = np.argsort(x, kind="stable")
            xs = x[order]
            ys = y_node[order]
            csum = np.cumsum(ys)
            # Valid split positions: between distinct consecutive values,
            # respecting the minimum leaf size.
            pos = np.arange(1, n)
            valid = xs[1:] != xs[:-1]
            valid &= (pos >= min_leaf) & (n - pos >= min_leaf)
            if not valid.any():
                continue
            nl = pos[valid].astype(float)
            sl = csum[:-1][valid]
            sr = total_sum - sl
            # SSE reduction = parent - (children); total_sq cancels.
            gain = sl**2 / nl + sr**2 / (n - nl) - total_sum**2 / n
            bi = int(np.argmax(gain))
            if gain[bi] <= 1e-12:
                continue
            split_at = pos[valid][bi]
            thr = 0.5 * (xs[split_at - 1] + xs[split_at])
            if best is None or gain[bi] > best[2]:
                best = (f, float(thr), float(gain[bi]))
        return best

    # -- fitting ----------------------------------------------------------------

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = self._validate_fit(X, y)
        rng = as_generator(self.seed)
        feature, threshold, left, right, value = [], [], [], [], []

        def new_node():
            feature.append(_LEAF)
            threshold.append(0.0)
            left.append(_LEAF)
            right.append(_LEAF)
            value.append(0.0)
            return len(feature) - 1

        root = new_node()
        stack = [(root, np.arange(len(y)), 0)]
        while stack:
            node, rows, depth = stack.pop()
            value[node] = float(y[rows].mean())
            if (
                depth >= self.max_depth
                or len(rows) < self.min_samples_split
                or np.ptp(y[rows]) == 0
            ):
                continue
            split = self._best_split(X, y, rows, rng)
            if split is None:
                continue
            f, thr, _gain = split
            mask = X[rows, f] <= thr
            lrows, rrows = rows[mask], rows[~mask]
            if len(lrows) < self.min_samples_leaf or len(rrows) < self.min_samples_leaf:
                continue
            feature[node] = int(f)
            threshold[node] = thr
            l_id, r_id = new_node(), new_node()
            left[node], right[node] = l_id, r_id
            stack.append((l_id, lrows, depth + 1))
            stack.append((r_id, rrows, depth + 1))

        self.feature_ = np.asarray(feature, dtype=np.intp)
        self.threshold_ = np.asarray(threshold)
        self.left_ = np.asarray(left, dtype=np.intp)
        self.right_ = np.asarray(right, dtype=np.intp)
        self.value_ = np.asarray(value)
        return self

    # -- prediction ----------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        node = np.zeros(len(X), dtype=np.intp)
        internal = self.feature_[node] != _LEAF
        while internal.any():
            rows = np.flatnonzero(internal)
            nd = node[rows]
            f = self.feature_[nd]
            go_left = X[rows, f] <= self.threshold_[nd]
            node[rows] = np.where(go_left, self.left_[nd], self.right_[nd])
            internal = self.feature_[node] != _LEAF
        return self.value_[node]

    @property
    def n_nodes(self) -> int:
        return len(self.value_)

    def __getstate_for_size__(self):
        return {
            "feature": self.feature_,
            "threshold": self.threshold_,
            "left": self.left_,
            "right": self.right_,
            "value": self.value_,
        }

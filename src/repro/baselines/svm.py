"""Epsilon-insensitive support vector regression (paper Section 3.4).

Solves the standard SVR dual

    max_{a, a*}  -1/2 (a - a*)^T K (a - a*) + y^T (a - a*)
                 - eps * sum(a + a*)
    s.t.         0 <= a, a* <= C,   sum(a - a*) = 0

by projected gradient ascent.  The feasible set is a box intersected with a
hyperplane; exact Euclidean projection onto it is computed by bisection on
the hyperplane's Lagrange multiplier (each evaluation is a clip, so the
projection is O(n log(1/tol))).  The step size is the inverse of a power-
iteration estimate of ``||K||_2``.

Kernels: ``rbf`` (median-heuristic bandwidth) and ``poly`` with degree 1..3
(the paper's grid).  ``max_train`` caps the kernel matrix like the GP.
"""
from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist, pdist

from repro.baselines.base import Regressor
from repro.utils.rng import as_generator

__all__ = ["SVMRegressor"]


def _prox_project(beta, thresh, lo, hi, tol=1e-12, max_iter=200):
    """Exact prox of ``thresh*|.|_1 + I_box + I_{sum=0}`` at ``beta``.

    With a multiplier ``nu`` for the equality constraint the solution is
    separable, ``x_i = clip(soft(beta_i - nu, thresh), lo, hi)``, and
    ``sum(x)`` is monotone non-increasing in ``nu`` — bisection finds the
    root.  Soft-thresholding *inside* the projection is what preserves the
    dual sparsity of SVR (thresholding first and projecting after shifts
    every zero off zero).
    """

    def x_of(nu):
        s = beta - nu
        s = np.sign(s) * np.maximum(np.abs(s) - thresh, 0.0)
        return np.clip(s, lo, hi)

    nu_lo = float(np.min(beta - hi)) - thresh
    nu_hi = float(np.max(beta - lo)) + thresh
    for _ in range(max_iter):
        nu = 0.5 * (nu_lo + nu_hi)
        s = float(np.sum(x_of(nu)))
        if abs(s) < tol:
            break
        if s > 0:
            nu_lo = nu
        else:
            nu_hi = nu
    return x_of(nu)


class SVMRegressor(Regressor):
    """Kernel epsilon-SVR trained by projected gradient on the dual."""

    def __init__(
        self,
        kernel: str = "rbf",
        degree: int = 2,
        C: float = 10.0,
        epsilon: float = 0.01,
        gamma: float | None = None,
        max_iter: int = 2000,
        tol: float = 1e-8,
        max_train: int = 2048,
        seed=None,
    ):
        if kernel not in ("rbf", "poly"):
            raise ValueError("kernel must be 'rbf' or 'poly'")
        if not 1 <= degree <= 3:
            raise ValueError("degree must be 1..3 (the paper's grid)")
        if C <= 0 or epsilon < 0:
            raise ValueError("C must be positive and epsilon non-negative")
        self.kernel = kernel
        self.degree = int(degree)
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.gamma = gamma
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.max_train = int(max_train)
        self.seed = seed

    # -- kernel ---------------------------------------------------------------

    def _gram(self, X1, X2):
        if self.kernel == "rbf":
            return np.exp(-self.gamma_ * cdist(X1, X2, "sqeuclidean"))
        return (self.gamma_ * (X1 @ X2.T) + 1.0) ** self.degree

    def _resolve_gamma(self, X, rng):
        if self.gamma is not None:
            return float(self.gamma)
        if self.kernel == "poly":
            return 1.0 / X.shape[1]
        m = min(len(X), 512)
        sub = X[rng.choice(len(X), size=m, replace=False)] if len(X) > m else X
        d2 = pdist(sub, "sqeuclidean")
        d2 = d2[d2 > 0]
        med = float(np.median(d2)) if len(d2) else 1.0
        return 1.0 / med

    # -- fitting -----------------------------------------------------------------

    def fit(self, X, y) -> "SVMRegressor":
        X, y = self._validate_fit(X, y)
        rng = as_generator(self.seed)
        if len(y) > self.max_train:
            rows = rng.choice(len(y), size=self.max_train, replace=False)
            X, y = X[rows], y[rows]
        self.gamma_ = self._resolve_gamma(X, rng)
        n = len(y)
        K = self._gram(X, X)

        # Spectral-norm estimate for the step size (power iteration).
        v = rng.standard_normal(n)
        v /= np.linalg.norm(v)
        for _ in range(12):
            v = K @ v
            nv = np.linalg.norm(v)
            if nv == 0:
                break
            v /= nv
        lip = max(float(v @ (K @ v)), 1e-8)
        step = 1.0 / lip

        # Dual variables in the beta = a - a* parameterization; the
        # eps * |beta|_1 term is handled by soft-thresholding (prox step)
        # and FISTA momentum accelerates the projected ascent.
        beta = np.zeros(n)
        z = beta
        t_mom = 1.0
        prev_obj = -np.inf
        for _it in range(self.max_iter):
            grad = y - K @ z
            b = z + step * grad
            beta_new = _prox_project(b, step * self.epsilon, -self.C, self.C)
            t_new = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_mom * t_mom))
            z = beta_new + ((t_mom - 1.0) / t_new) * (beta_new - beta)
            beta, t_mom = beta_new, t_new
            if _it % 20 == 19:
                obj = (
                    float(y @ beta)
                    - 0.5 * float(beta @ (K @ beta))
                    - self.epsilon * float(np.sum(np.abs(beta)))
                )
                if abs(obj - prev_obj) <= self.tol * max(abs(prev_obj), 1.0):
                    break
                prev_obj = obj

        # Keep support vectors only (sparsity is SVR's size advantage).
        sv = np.abs(beta) > 1e-8 * self.C
        if not sv.any():
            sv = np.ones(n, dtype=bool)
        self.beta_ = beta[sv]
        self.X_sv_ = X[sv]
        # Bias from KKT: for free SVs (|beta| strictly inside the box),
        # y_i - f(x_i) = +-eps; average the implied intercepts.
        f_no_b = self._gram(self.X_sv_, self.X_sv_) @ self.beta_
        free = np.abs(self.beta_) < 0.99 * self.C
        if free.any():
            resid = y[sv][free] - f_no_b[free] - self.epsilon * np.sign(self.beta_[free])
            self.bias_ = float(np.mean(resid))
        else:
            self.bias_ = float(np.mean(y[sv] - f_no_b))
        return self

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(X)
        return self._gram(X, self.X_sv_) @ self.beta_ + self.bias_

    @property
    def n_support_(self) -> int:
        return len(self.beta_)

    def __getstate_for_size__(self):
        return {
            "X_sv": self.X_sv_,
            "beta": self.beta_,
            "bias": self.bias_,
            "gamma": self.gamma_,
            "kernel": self.kernel,
            "degree": self.degree,
        }

"""``python -m repro.stream`` — replay an application as a live stream.

Replays measured configurations of any ``repro.apps`` application as a
timed observation stream against a live in-process
:class:`~repro.serve.ModelServer`: every batch is scored through the
*server* (so the drift signal reflects what consumers see), folded into
the model via the partial-vs-refit policy, and republished on refit —
which the server picks up on its next ``name@latest`` resolution,
without restarting.  With ``--journal`` the stream is resumable: rerun
the same command and it continues from the last published version plus
the journal tail.

Example::

    python -m repro.stream --app bcast --registry /tmp/reg \
        --n 200 --batch 32 --journal /tmp/bcast.jsonl
"""
from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.apps import get_application
from repro.serve import ModelRegistry, ModelServer
from repro.stream.buffer import ObservationBuffer
from repro.stream.drift import DriftMonitor
from repro.stream.pipeline import StreamSession, replay_application
from repro.stream.runner import make_model_factory
from repro.stream.trainer import IncrementalTrainer


def _fmt(record: dict) -> str:
    parts = [f"action={record['action']}"]
    if record.get("reason"):
        parts.append(f"reason={record['reason']}")
    if record.get("published_version"):
        parts.append(f"published=v{record['published_version']}")
    if record.get("batch_error") is not None:
        parts.append(f"err={record['batch_error']:.3f}")
    rolling = record.get("rolling_error")
    if rolling is not None and not np.isnan(rolling):
        parts.append(f"rolling={rolling:.3f}")
    return " ".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream",
        description="Replay an application as a streaming observation pipeline.",
    )
    parser.add_argument("--app", required=True,
                        help="application name (e.g. bcast, matmul, kripke)")
    parser.add_argument("--registry", required=True,
                        help="ModelRegistry directory to publish into")
    parser.add_argument("--name", default=None,
                        help="registry model name (default: <app>-stream)")
    parser.add_argument("--n", type=int, default=256,
                        help="observations to replay")
    parser.add_argument("--batch", type=int, default=32,
                        help="observations per stream batch")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cells", type=int, default=8)
    parser.add_argument("--rank", type=int, default=3)
    parser.add_argument("--loss", default="log_mse",
                        choices=["log_mse", "mlogq2"])
    parser.add_argument("--max-sweeps", type=int, default=30)
    parser.add_argument("--partial-sweeps", type=int, default=None,
                        help="sweep budget per warm-start update")
    parser.add_argument("--window", type=int, default=4096,
                        help="refit retention window (observations)")
    parser.add_argument("--journal", default=None,
                        help="journal file; enables resume across runs")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="observations per second (0 = full speed)")
    parser.add_argument("--drift-window", type=int, default=64)
    parser.add_argument("--drift-threshold", type=float, default=0.25)
    parser.add_argument("--drift-min-count", type=int, default=24)
    parser.add_argument("--serve-workers", type=int, default=0,
                        help="score through an HTTP worker fleet of this "
                             "size instead of an in-process server (0 = "
                             "in-process); drift republishes hot-swap the "
                             "workers mid-stream")
    parser.add_argument("--serve-port", type=int, default=0,
                        help="fleet port with --serve-workers (0 = ephemeral)")
    parser.add_argument("--kernel-backend", default=None, metavar="NAME",
                        help="force this completion-kernel backend (see "
                             "repro.core.completion.backends) for every "
                             "stream (re)fit and any fleet worker; "
                             "default: auto-select")
    parser.add_argument("--fault-plan", default=None, metavar="JSON|@FILE",
                        help="install a repro.faults FaultPlan (chaos runs): "
                             "inline JSON or @path/to/plan.json")
    args = parser.parse_args(argv)

    from repro import faults

    if args.fault_plan:
        faults.install(faults.plan_from_arg(args.fault_plan))
    else:
        faults.install_from_env()

    if args.kernel_backend is not None:
        import os

        from repro.core.completion.backends import ENV_VAR, get_backend

        # Validate eagerly, then publish through the env override so the
        # trainer's refits here *and* the forked fleet workers below all
        # resolve to the same backend.
        os.environ[ENV_VAR] = get_backend(args.kernel_backend).name

    app = get_application(args.app)
    name = args.name or f"{args.app}-stream"
    registry = ModelRegistry(args.registry)
    fleet = None
    if args.serve_workers > 0:
        from repro.serve import ServeFleet
        from repro.serve.fleet import exit_on_sigterm

        # A SIGTERM mid-replay must still reach ``finally: fleet.stop()``
        # below, or the workers orphan and the shm segments leak.
        exit_on_sigterm()
        fleet = ServeFleet(
            args.registry, workers=args.serve_workers, port=args.serve_port,
            default_model=name, kernel_backend=args.kernel_backend,
        ).start()
        # Our republishes reach the workers via the pack hook, not the
        # (slower) manifest watch: the next scored batch after a drift
        # refit already sees the new version.
        fleet.track_registry(registry)
        print(
            f"[stream] serving through a {fleet.workers}-worker fleet "
            f"({fleet.socket_mode}) on http://{fleet.host}:{fleet.port}"
        )
    server = ModelServer(registry, default_model=name)
    factory = make_model_factory(
        app.space, cells=args.cells, rank=args.rank, loss=args.loss,
        max_sweeps=args.max_sweeps, seed=args.seed,
    )
    monitor = DriftMonitor(
        window=args.drift_window,
        threshold=args.drift_threshold,
        min_count=args.drift_min_count,
    )
    trainer = IncrementalTrainer(
        factory, monitor=monitor, partial_sweeps=args.partial_sweeps
    )
    meta = {"app": args.app, "seed": args.seed}
    if args.journal is not None:
        session = StreamSession.resume(
            registry, name, args.journal, factory, window=args.window,
            monitor=monitor, trainer=trainer, meta=meta,
        )
        if session.resumed_from is not None:
            pending = session.buffer.n_seen - session.buffer.flushed
            print(
                f"[stream] resume: journal seq={session.buffer.n_seen}, "
                f"registry {name}@v{registry.resolve(name).version} "
                f"consumed={session.resumed_from}, pending={pending}"
            )
            if pending:
                print(f"[stream] resume flush: {_fmt(session.flush())}")
    else:
        session = StreamSession(
            registry, name, factory,
            buffer=ObservationBuffer(window=args.window),
            monitor=monitor, trainer=trainer, meta=meta,
        )

    def _fleet_handle(request: dict) -> dict:
        import http.client
        import json

        conn = http.client.HTTPConnection(fleet.host, fleet.port, timeout=60)
        try:
            conn.request("POST", "/", json.dumps(request))
            return json.loads(conn.getresponse().read())
        finally:
            conn.close()

    handle = server.handle if fleet is None else _fleet_handle

    def server_predict(X):
        resp = handle({"op": "predict", "model": name, "x": X.tolist()})
        if not resp.get("ok"):
            raise RuntimeError(f"server predict failed: {resp.get('error')}")
        return np.array(
            [v if v is not None else np.nan for v in resp["y"]], dtype=float
        )

    def on_batch(i, record):
        served = ""
        if session.published_versions:
            served = f" served={name}@v{session.published_versions[-1]}"
        print(f"[stream] batch {i}: n={record['n_new']}{served} {_fmt(record)}")
        if args.rate > 0:
            time.sleep(args.batch / args.rate)

    try:
        summary = replay_application(
            app, session, args.n, batch=args.batch, seed=args.seed,
            predict_fn=server_predict, on_batch=on_batch,
        )
    finally:
        if fleet is not None:
            fleet.stop()
    session.buffer.close()
    trainer_rec = summary["trainer"]
    rolling = summary["drift"]["error"]
    print(
        f"[stream] done: app={args.app} name={name} "
        f"n={summary['n_observations']} fit={trainer_rec['fit']} "
        f"partial={trainer_rec['partial']} refit={trainer_rec['refit']} "
        f"republished={summary['republished']} "
        f"versions={summary['published_versions']} "
        f"backend={summary['kernel_backend']} "
        f"rolling_error={rolling if rolling is not None else float('nan'):.3f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

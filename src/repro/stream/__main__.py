"""``python -m repro.stream`` — replay an application as a live stream.

Replays measured configurations of any ``repro.apps`` application as a
timed observation stream against a live in-process
:class:`~repro.serve.ModelServer`: every batch is scored through the
*server* (so the drift signal reflects what consumers see), folded into
the model via the partial-vs-refit policy, and republished on refit —
which the server picks up on its next ``name@latest`` resolution,
without restarting.  With ``--journal`` the stream is resumable: rerun
the same command and it continues from the last published version plus
the journal tail.

With ``--streams N`` the replay becomes a *fleet*: N concurrent
sessions (distinct names, staggered seeds) publish into the one
registry, each optionally drifting mid-stream (``--drift-at``), each
optionally gating refit republishes behind a shadow trial
(``--canary``) so ``name@latest`` only flips when the refit wins on
live prequential MLogQ.

Example::

    python -m repro.stream --app bcast --registry /tmp/reg \
        --n 200 --batch 32 --journal /tmp/bcast.jsonl

    python -m repro.stream --app bcast --registry /tmp/reg \
        --streams 4 --n 300 --drift-at 150 --canary
"""
from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.apps import get_application
from repro.serve import ModelRegistry, ModelServer
from repro.stream.buffer import ObservationBuffer
from repro.stream.drift import DriftMonitor
from repro.stream.pipeline import StreamSession, replay_application
from repro.stream.runner import make_model_factory
from repro.stream.trainer import IncrementalTrainer


def _fmt(record: dict) -> str:
    parts = [f"action={record['action']}"]
    if record.get("reason"):
        parts.append(f"reason={record['reason']}")
    if record.get("published_version"):
        channel = record.get("channel", "latest")
        parts.append(f"published=v{record['published_version']}@{channel}")
    if record.get("batch_error") is not None:
        parts.append(f"err={record['batch_error']:.3f}")
    rolling = record.get("rolling_error")
    if rolling is not None and not np.isnan(rolling):
        parts.append(f"rolling={rolling:.3f}")
    return " ".join(parts)


def _rank_arg(text: str):
    if text == "auto":
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer rank or 'auto', got {text!r}"
        ) from None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream",
        description="Replay an application as a streaming observation pipeline.",
    )
    parser.add_argument("--app", required=True,
                        help="application name (e.g. bcast, matmul, kripke)")
    parser.add_argument("--registry", required=True,
                        help="ModelRegistry directory to publish into")
    parser.add_argument("--name", default=None,
                        help="registry model name (default: <app>-stream)")
    parser.add_argument("--n", type=int, default=256,
                        help="observations to replay")
    parser.add_argument("--batch", type=int, default=32,
                        help="observations per stream batch")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cells", type=int, default=8)
    parser.add_argument("--rank", type=_rank_arg, default=3,
                        help="CP rank, or 'auto' to grow/prune per (re)fit")
    parser.add_argument("--loss", default="log_mse",
                        choices=["log_mse", "mlogq2"])
    parser.add_argument("--max-sweeps", type=int, default=30)
    parser.add_argument("--partial-sweeps", type=int, default=None,
                        help="sweep budget per warm-start update")
    parser.add_argument("--window", type=int, default=4096,
                        help="refit retention window (observations)")
    parser.add_argument("--journal", default=None,
                        help="journal file; enables resume across runs")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="observations per second (0 = full speed)")
    parser.add_argument("--drift-window", type=int, default=64)
    parser.add_argument("--drift-threshold", type=float, default=0.25)
    parser.add_argument("--drift-min-count", type=int, default=24)
    parser.add_argument("--streams", type=int, default=1, metavar="N",
                        help="run N concurrent stream sessions (a fleet of "
                             "drifting applications) against the one "
                             "registry; names are <name>-0..N-1")
    parser.add_argument("--drift-at", type=int, default=None, metavar="ROWS",
                        help="inject a measurement regime change after this "
                             "many rows per stream (default: stationary)")
    parser.add_argument("--drift-factor", type=float, default=2.0,
                        help="measurement scale factor after --drift-at")
    parser.add_argument("--canary", action="store_true",
                        help="publish refits to name@shadow and only flip "
                             "name@latest when the refit beats the incumbent "
                             "on live prequential MLogQ (losers roll back)")
    parser.add_argument("--canary-margin", type=float, default=0.05,
                        help="relative MLogQ win margin required to promote")
    parser.add_argument("--canary-min-scores", type=int, default=24,
                        help="paired observations before a trial verdict")
    parser.add_argument("--canary-max-scores", type=int, default=256,
                        help="trial budget; undecided trials roll back")
    parser.add_argument("--serve-workers", type=int, default=0,
                        help="score through an HTTP worker fleet of this "
                             "size instead of an in-process server (0 = "
                             "in-process); drift republishes hot-swap the "
                             "workers mid-stream")
    parser.add_argument("--serve-port", type=int, default=0,
                        help="fleet port with --serve-workers (0 = ephemeral)")
    parser.add_argument("--kernel-backend", default=None, metavar="NAME",
                        help="force this completion-kernel backend (see "
                             "repro.core.completion.backends) for every "
                             "stream (re)fit and any fleet worker; "
                             "default: auto-select")
    parser.add_argument("--fault-plan", default=None, metavar="JSON|@FILE",
                        help="install a repro.faults FaultPlan (chaos runs): "
                             "inline JSON or @path/to/plan.json")
    args = parser.parse_args(argv)
    if args.streams < 1:
        parser.error("--streams must be >= 1")
    if args.streams > 1 and args.journal is not None:
        parser.error("--journal is single-stream only (fleet streams are "
                     "ephemeral; give each stream its own run to resume)")

    from repro import faults

    if args.fault_plan:
        faults.install(faults.plan_from_arg(args.fault_plan))
    else:
        faults.install_from_env()

    if args.kernel_backend is not None:
        import os

        from repro.core.completion.backends import ENV_VAR, get_backend

        # Validate eagerly, then publish through the env override so the
        # trainer's refits here *and* the forked fleet workers below all
        # resolve to the same backend.
        os.environ[ENV_VAR] = get_backend(args.kernel_backend).name

    app = get_application(args.app)
    name = args.name or f"{args.app}-stream"
    registry = ModelRegistry(args.registry)

    if args.streams > 1:
        from repro.stream.fleet import MultiStreamDriver, StreamTask

        tasks = [
            StreamTask(
                args.app,
                n=args.n,
                batch=args.batch,
                seed=args.seed + i,
                name=f"{name}-{i}",
                shift_at=args.drift_at,
                drift_factor=args.drift_factor,
                canary=args.canary,
                canary_margin=args.canary_margin,
                canary_min_scores=args.canary_min_scores,
                canary_max_scores=args.canary_max_scores,
                cells=args.cells,
                rank=args.rank,
                loss=args.loss,
                max_sweeps=args.max_sweeps,
                partial_sweeps=args.partial_sweeps,
                window=args.window,
                drift_window=args.drift_window,
                drift_threshold=args.drift_threshold,
                drift_min_count=args.drift_min_count,
            )
            for i in range(args.streams)
        ]
        drift = (
            "stationary"
            if args.drift_at is None
            else f"drift@{args.drift_at}x{args.drift_factor}"
        )
        print(
            f"[stream] fleet: {args.streams} concurrent {args.app} streams "
            f"({drift}, canary={'on' if args.canary else 'off'}) "
            f"-> {args.registry}"
        )
        report = MultiStreamDriver(registry, tasks).run()
        for sname, summary in report["streams"].items():
            if "error" in summary:
                print(f"[stream] {sname}: FAILED {summary['error']}")
                continue
            tr = summary["trainer"]
            print(
                f"[stream] {sname}: n={summary['n_observations']} "
                f"refit={tr['refit']} versions={summary['published_versions']} "
                f"promotions={summary['promotions']} "
                f"rollbacks={summary['rollbacks']}"
            )
        print(
            f"[stream] fleet done: streams={report['n_streams']} "
            f"failures={report['failures']} promotions={report['promotions']} "
            f"rollbacks={report['rollbacks']}"
        )
        return 1 if report["failures"] else 0

    if args.drift_at is not None:
        from repro.stream.fleet import DriftingApplication

        app = DriftingApplication(app, args.drift_at, factor=args.drift_factor)

    fleet = None
    if args.serve_workers > 0:
        from repro.serve import ServeFleet
        from repro.serve.fleet import exit_on_sigterm

        # A SIGTERM mid-replay must still reach ``finally: fleet.stop()``
        # below, or the workers orphan and the shm segments leak.
        exit_on_sigterm()
        fleet = ServeFleet(
            args.registry, workers=args.serve_workers, port=args.serve_port,
            default_model=name, kernel_backend=args.kernel_backend,
        ).start()
        # Our republishes reach the workers via the pack hook, not the
        # (slower) manifest watch: the next scored batch after a drift
        # refit already sees the new version.
        fleet.track_registry(registry)
        print(
            f"[stream] serving through a {fleet.workers}-worker fleet "
            f"({fleet.socket_mode}) on http://{fleet.host}:{fleet.port}"
        )
    server = ModelServer(registry, default_model=name)
    factory = make_model_factory(
        app.space, cells=args.cells, rank=args.rank, loss=args.loss,
        max_sweeps=args.max_sweeps, seed=args.seed,
    )
    monitor = DriftMonitor(
        window=args.drift_window,
        threshold=args.drift_threshold,
        min_count=args.drift_min_count,
    )
    trainer = IncrementalTrainer(
        factory, monitor=monitor, partial_sweeps=args.partial_sweeps
    )
    meta = {"app": args.app, "seed": args.seed}
    canary_kwargs = dict(
        canary=args.canary,
        canary_margin=args.canary_margin,
        canary_min_scores=args.canary_min_scores,
        canary_max_scores=args.canary_max_scores,
    )
    if args.journal is not None:
        session = StreamSession.resume(
            registry, name, args.journal, factory, window=args.window,
            monitor=monitor, trainer=trainer, meta=meta, **canary_kwargs,
        )
        if session.resumed_from is not None:
            pending = session.buffer.n_seen - session.buffer.flushed
            print(
                f"[stream] resume: journal seq={session.buffer.n_seen}, "
                f"registry {name}@v{registry.resolve(name).version} "
                f"consumed={session.resumed_from}, pending={pending}"
            )
            if pending:
                print(f"[stream] resume flush: {_fmt(session.flush())}")
    else:
        session = StreamSession(
            registry, name, factory,
            buffer=ObservationBuffer(window=args.window),
            monitor=monitor, trainer=trainer, meta=meta, **canary_kwargs,
        )

    def _fleet_handle(request: dict) -> dict:
        import http.client
        import json

        conn = http.client.HTTPConnection(fleet.host, fleet.port, timeout=60)
        try:
            conn.request("POST", "/", json.dumps(request))
            return json.loads(conn.getresponse().read())
        finally:
            conn.close()

    handle = server.handle if fleet is None else _fleet_handle

    def server_predict(X):
        resp = handle({"op": "predict", "model": name, "x": X.tolist()})
        if not resp.get("ok"):
            raise RuntimeError(f"server predict failed: {resp.get('error')}")
        return np.array(
            [v if v is not None else np.nan for v in resp["y"]], dtype=float
        )

    def on_batch(i, record):
        served = ""
        if session.published_versions:
            served = f" served={name}@v{session.published_versions[-1]}"
        print(f"[stream] batch {i}: n={record['n_new']}{served} {_fmt(record)}")
        if args.rate > 0:
            time.sleep(args.batch / args.rate)

    try:
        summary = replay_application(
            app, session, args.n, batch=args.batch, seed=args.seed,
            predict_fn=server_predict, on_batch=on_batch,
        )
    finally:
        if fleet is not None:
            fleet.stop()
    session.buffer.close()
    trainer_rec = summary["trainer"]
    rolling = summary["drift"]["error"]
    canary_part = (
        f"promotions={summary['promotions']} rollbacks={summary['rollbacks']} "
        if args.canary
        else ""
    )
    print(
        f"[stream] done: app={args.app} name={name} "
        f"n={summary['n_observations']} fit={trainer_rec['fit']} "
        f"partial={trainer_rec['partial']} refit={trainer_rec['refit']} "
        f"republished={summary['republished']} "
        f"versions={summary['published_versions']} "
        f"{canary_part}"
        f"backend={summary['kernel_backend']} "
        f"rolling_error={rolling if rolling is not None else float('nan'):.3f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

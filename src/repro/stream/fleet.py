"""A fleet of drifting streams sharing one registry.

The serving story so far is one model per stream session.  Real
deployments of the paper's models look different: one registry hosts a
model per *application* (bcast, matmul, kripke, ...), each fed by its
own measurement stream, each drifting on its own schedule.  This module
runs that shape in-process:

:class:`DriftingApplication`
    Wraps any ``repro.apps`` application and injects a step change —
    after ``shift_at`` cumulative measured rows, every subsequent
    measurement is scaled by ``factor``.  Deterministic given the
    replay seed, so a drifting fleet replay is reproducible.
:class:`StreamTask`
    The declarative per-stream spec (application, length, drift
    schedule, canary knobs).
:class:`MultiStreamDriver`
    Runs one :class:`~repro.stream.pipeline.StreamSession` per task on
    its own thread against a *shared* registry, and aggregates the
    session summaries — total promotions, rollbacks, published
    versions — into one fleet report.

Threads rather than processes: a session's heavy steps (fits, sweeps)
run in NumPy with the GIL released, and the registry's on-disk layout
(atomic manifest writes, per-name version counters) already tolerates
concurrent publishers.
"""
from __future__ import annotations

import threading

import numpy as np

from repro.stream.buffer import ObservationBuffer
from repro.stream.drift import DriftMonitor
from repro.stream.pipeline import StreamSession, replay_application
from repro.stream.trainer import IncrementalTrainer

__all__ = ["DriftingApplication", "MultiStreamDriver", "StreamTask"]


class DriftingApplication:
    """An application whose measurements step-change mid-stream.

    After ``shift_at`` cumulative rows have been measured, every later
    row's runtime is multiplied by ``factor`` (a regime change: new
    firmware, a congested interconnect, a changed input deck).  The
    boundary is row-exact — a batch straddling it gets the old regime
    for its first rows and the new one for the rest.
    """

    def __init__(self, app, shift_at: int, factor: float = 2.0):
        if int(shift_at) < 0:
            raise ValueError("shift_at must be >= 0")
        if not float(factor) > 0:
            raise ValueError("factor must be > 0")
        self.app = app
        self.shift_at = int(shift_at)
        self.factor = float(factor)
        self.n_measured = 0

    @property
    def space(self):
        return self.app.space

    @property
    def name(self) -> str:
        return getattr(self.app, "name", type(self.app).__name__)

    def measure(self, X, rng=None, sigma=None):
        y = np.asarray(self.app.measure(X, rng=rng, sigma=sigma), dtype=float)
        rows = np.arange(self.n_measured, self.n_measured + len(y))
        self.n_measured += len(y)
        return np.where(rows >= self.shift_at, y * self.factor, y)

    def __repr__(self):
        return (
            f"DriftingApplication({self.name}, shift_at={self.shift_at}, "
            f"factor={self.factor})"
        )


class StreamTask:
    """One stream's declarative spec for :class:`MultiStreamDriver`.

    Parameters
    ----------
    app
        Application name (resolved via :func:`repro.apps.get_application`).
    n, batch, seed
        Replay length / batch size / generator seed.
    name
        Registry model name (default ``<app>-stream``; must be unique
        within a fleet — two streams publishing one name would race the
        version pointer with different models).
    shift_at, drift_factor
        Drift injection (``shift_at=None`` replays stationary).
    canary, canary_margin, canary_min_scores, canary_max_scores
        Forwarded to :class:`~repro.stream.pipeline.StreamSession`.
    cells, rank, loss, max_sweeps, partial_sweeps
        Model / trainer hyper-parameters.
    drift_window, drift_threshold, drift_min_count
        :class:`~repro.stream.drift.DriftMonitor` knobs.
    """

    def __init__(
        self,
        app: str,
        n: int = 256,
        batch: int = 32,
        seed: int = 0,
        name: str | None = None,
        shift_at: int | None = None,
        drift_factor: float = 2.0,
        canary: bool = False,
        canary_margin: float = 0.05,
        canary_min_scores: int = 24,
        canary_max_scores: int = 256,
        cells=8,
        rank: int = 3,
        loss: str = "log_mse",
        max_sweeps: int = 30,
        partial_sweeps: int | None = None,
        window: int | None = 4096,
        drift_window: int = 64,
        drift_threshold: float = 0.25,
        drift_min_count: int = 24,
    ):
        if int(n) < 1:
            raise ValueError("n must be >= 1")
        self.app = app
        self.n = int(n)
        self.batch = int(batch)
        self.seed = int(seed)
        self.name = name or f"{app}-stream"
        self.shift_at = None if shift_at is None else int(shift_at)
        self.drift_factor = float(drift_factor)
        self.canary = bool(canary)
        self.canary_margin = float(canary_margin)
        self.canary_min_scores = int(canary_min_scores)
        self.canary_max_scores = int(canary_max_scores)
        self.cells = cells
        self.rank = int(rank)
        self.loss = loss
        self.max_sweeps = int(max_sweeps)
        self.partial_sweeps = partial_sweeps
        self.window = window
        self.drift_window = int(drift_window)
        self.drift_threshold = float(drift_threshold)
        self.drift_min_count = int(drift_min_count)

    def build_application(self):
        from repro.apps import get_application

        app = get_application(self.app)
        if self.shift_at is None:
            return app
        return DriftingApplication(app, self.shift_at, factor=self.drift_factor)

    def build_session(self, registry):
        """Build this task's ``(application, StreamSession)`` pair."""
        from repro.stream.runner import make_model_factory

        application = self.build_application()
        factory = make_model_factory(
            application.space,
            cells=self.cells,
            rank=self.rank,
            loss=self.loss,
            max_sweeps=self.max_sweeps,
            seed=self.seed,
        )
        monitor = DriftMonitor(
            window=self.drift_window,
            threshold=self.drift_threshold,
            min_count=self.drift_min_count,
        )
        session = StreamSession(
            registry,
            self.name,
            factory,
            buffer=ObservationBuffer(window=self.window),
            monitor=monitor,
            trainer=IncrementalTrainer(
                factory, monitor=monitor, partial_sweeps=self.partial_sweeps
            ),
            meta={"app": self.app, "seed": self.seed},
            canary=self.canary,
            canary_margin=self.canary_margin,
            canary_min_scores=self.canary_min_scores,
            canary_max_scores=self.canary_max_scores,
        )
        return application, session

    def __repr__(self):
        drift = (
            "stationary"
            if self.shift_at is None
            else f"shift@{self.shift_at}x{self.drift_factor}"
        )
        return f"StreamTask({self.name}, n={self.n}, {drift})"


class MultiStreamDriver:
    """Run a fleet of stream sessions concurrently against one registry.

    Every task gets its own thread, session, buffer, and drift monitor;
    only the registry is shared.  :meth:`run` blocks until every stream
    finishes and returns the fleet report::

        {"streams": {name: session_summary_or_error},
         "n_streams": ..., "failures": ...,
         "promotions": ..., "rollbacks": ...,
         "published_versions": {name: [...]},
         "rolled_back_versions": {name: [...]}}

    A stream that raises is recorded under its name as ``{"error": ...}``
    and counted in ``failures``; the rest of the fleet completes (one
    diverging application must not sink the others' republishes).
    """

    def __init__(self, registry, tasks):
        tasks = list(tasks)
        names = [t.name for t in tasks]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(
                f"duplicate stream names in fleet: {sorted(dupes)} "
                "(each stream must own its registry name)"
            )
        self.registry = registry
        self.tasks = tasks
        self.summaries: dict[str, dict] = {}

    def _run_task(self, task: StreamTask, out: dict) -> None:
        application, session = task.build_session(self.registry)
        try:
            out[task.name] = replay_application(
                application, session, task.n, batch=task.batch, seed=task.seed
            )
        finally:
            session.buffer.close()

    def run(self) -> dict:
        out: dict[str, dict] = {}
        errors: dict[str, str] = {}

        def runner(task):
            try:
                self._run_task(task, out)
            except Exception as exc:  # noqa: BLE001 - reported per stream
                errors[task.name] = f"{type(exc).__name__}: {exc}"

        threads = [
            threading.Thread(
                target=runner, args=(task,), name=f"stream-{task.name}"
            )
            for task in self.tasks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        streams: dict[str, dict] = {}
        promotions = rollbacks = 0
        published: dict[str, list[int]] = {}
        rolled_back: dict[str, list[int]] = {}
        for task in self.tasks:
            if task.name in errors:
                streams[task.name] = {"error": errors[task.name]}
                continue
            summary = out[task.name]
            streams[task.name] = summary
            promotions += summary.get("promotions", 0)
            rollbacks += summary.get("rollbacks", 0)
            published[task.name] = summary.get("published_versions", [])
            rolled_back[task.name] = summary.get("rolled_back_versions", [])
        self.summaries = streams
        return {
            "streams": streams,
            "n_streams": len(self.tasks),
            "failures": len(errors),
            "promotions": promotions,
            "rollbacks": rollbacks,
            "published_versions": published,
            "rolled_back_versions": rolled_back,
        }

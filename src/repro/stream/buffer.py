"""Append-only, windowed, journaled observation store (streaming input side).

Every observation gets a monotonically increasing 0-based *sequence
number*; the journal is one canonical-JSON line per appended batch
(``{"seq": <first>, "x": [[...]], "y": [...]}``), so a stream is
resumable exactly like a ``repro.runtime`` sweep: replay the journal,
skip everything the last published model already consumed (its manifest
records ``stream_seq``), and continue appending to the same file.

The in-memory store is *windowed*: after a flush, observations older
than both the flush point and the retention window are dropped — long
streams hold O(window) rows, while the model's observed tensor keeps the
counts-weighted summary of everything ever absorbed.  A torn final
journal line (crash mid-write) is skipped on replay; corruption anywhere
else raises, mirroring the result cache's miss-vs-corruption policy.
"""
from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.runtime.spec import canonical
from repro.utils.validation import check_1d, check_matching_rows, check_positive

__all__ = ["ObservationBuffer"]


class ObservationBuffer:
    """Windowed store of streaming ``(config, runtime)`` observations.

    Parameters
    ----------
    journal
        Optional path of the append-only journal file.  ``None`` keeps
        the stream in memory only (tests, throwaway replays).
    window
        Retention bound for flushed observations (``None`` = keep all).
        Pending (not yet flushed) observations are always retained.
    """

    def __init__(self, journal=None, window: int | None = None):
        if window is not None and int(window) < 1:
            raise ValueError("window must be >= 1 (or None for unbounded)")
        self.window = None if window is None else int(window)
        self.journal = None if journal is None else Path(journal)
        self._fh = None
        self._base = 0  # sequence number of the first retained row
        self._rows: list[np.ndarray] = []
        self._vals: list[float] = []
        self._flushed = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def open(cls, journal, window: int | None = None) -> "ObservationBuffer":
        """Replay an existing journal (if any) and continue appending to it."""
        buf = cls(journal=journal, window=window)
        path = buf.journal
        if path is not None and path.exists():
            raw = path.read_bytes()
            lines = raw.split(b"\n")
            offset = 0
            for i, bline in enumerate(lines):
                advance = len(bline) + (1 if i < len(lines) - 1 else 0)
                if not bline.strip():
                    offset += advance
                    continue
                try:
                    record = json.loads(bline)
                except json.JSONDecodeError:
                    if any(rest.strip() for rest in lines[i + 1 :]):
                        raise ValueError(
                            f"corrupt journal line {i + 1} in {path}"
                        ) from None
                    # Torn final line (the crash the journal survives):
                    # drop it from the file too, so the next append starts
                    # on a clean line boundary instead of concatenating
                    # onto the torn bytes and corrupting the journal.
                    with path.open("r+b") as fh:
                        fh.truncate(offset)
                    break
                buf._ingest(
                    np.asarray(record["x"], dtype=float),
                    np.asarray(record["y"], dtype=float),
                )
                offset += advance
        return buf

    # -- appending -------------------------------------------------------------

    def _ingest(self, X: np.ndarray, y: np.ndarray) -> tuple[int, int]:
        lo = self.n_seen
        for row, val in zip(X, y):
            self._rows.append(np.asarray(row, dtype=float))
            self._vals.append(float(val))
        return lo, self.n_seen

    def append(self, X, y) -> tuple[int, int]:
        """Append a measurement batch; return its sequence interval ``[lo, hi)``.

        The batch is journaled as one canonical-JSON line *before* it is
        considered part of the stream, so anything the in-memory state
        knows about is recoverable from disk.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        y = check_positive(check_1d(y, "y"), "y")
        check_matching_rows(X, y)
        if len(y) == 0:
            return self.n_seen, self.n_seen
        if self.journal is not None:
            if self._fh is None:
                self.journal.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.journal.open("a")
            self._fh.write(
                canonical({"seq": self.n_seen, "x": X, "y": y}) + "\n"
            )
            self._fh.flush()
        return self._ingest(X, y)

    # -- reading ---------------------------------------------------------------

    @property
    def n_seen(self) -> int:
        """Total observations ever appended (next sequence number)."""
        return self._base + len(self._vals)

    @property
    def n_retained(self) -> int:
        return len(self._vals)

    @property
    def flushed(self) -> int:
        """Sequence number up to which observations reached the model."""
        return self._flushed

    def _slice(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = max(lo, self._base), min(hi, self.n_seen)
        if hi <= lo:
            d = len(self._rows[0]) if self._rows else 0
            return np.empty((0, d)), np.empty(0)
        a, b = lo - self._base, hi - self._base
        return np.stack(self._rows[a:b]), np.asarray(self._vals[a:b])

    def since(self, seq: int) -> tuple[np.ndarray, np.ndarray]:
        """Observations with sequence number ``>= seq`` (the pending tail)."""
        if seq < self._base:
            raise ValueError(
                f"observations before seq {self._base} were trimmed; "
                f"cannot replay from {seq}"
            )
        return self._slice(seq, self.n_seen)

    def window_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The last ``window`` observations (or all)."""
        lo = self._base if self.window is None else max(
            self._base, self.n_seen - self.window
        )
        return self._slice(lo, self.n_seen)

    def refit_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The refit training set: the window, extended over the pending tail.

        A pending tail longer than the retention window (e.g. a first
        batch bigger than ``window``) must still be absorbed in full — a
        refit trained on :meth:`window_arrays` alone would silently drop
        never-absorbed observations, and the flush mark would bury them
        below the published cursor where resume cannot replay them.
        """
        lo = self._base if self.window is None else max(
            self._base, self.n_seen - self.window
        )
        return self._slice(min(lo, self._flushed), self.n_seen)

    # -- flushing --------------------------------------------------------------

    def mark_flushed(self, seq: int | None = None) -> None:
        """Record that observations below ``seq`` (default: all) reached the
        model, then drop rows older than both the flush point and the window."""
        self._flushed = self.n_seen if seq is None else min(int(seq), self.n_seen)
        keep_from = self._base if self.window is None else max(
            self._base, self.n_seen - self.window
        )
        keep_from = min(keep_from, self._flushed)
        drop = keep_from - self._base
        if drop > 0:
            del self._rows[:drop]
            del self._vals[:drop]
            self._base = keep_from

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __len__(self) -> int:
        return self.n_seen

    def __repr__(self):
        journal = None if self.journal is None else str(self.journal)
        return (
            f"ObservationBuffer(n_seen={self.n_seen}, "
            f"retained={self.n_retained}, flushed={self._flushed}, "
            f"journal={journal!r})"
        )

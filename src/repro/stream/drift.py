"""Rolling prequential drift detection for streaming model maintenance.

Each arriving observation is scored by the *current* model before it is
absorbed (prequential / interleaved test-then-train evaluation), so the
rolling window is an honest holdout: the model never saw the points it
is being judged on.  The error unit is the paper's MLogQ — ``|log(pred /
true)|`` — which is scale-independent and symmetric in over/under
prediction, so one threshold works across applications and time units.
"""
from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["DriftMonitor"]


class DriftMonitor:
    """Track rolling MLogQ over the last ``window`` observations.

    Parameters
    ----------
    window
        Number of recent per-observation errors retained.
    threshold
        Rolling mean MLogQ above which :meth:`should_refit` trips.
        (MLogQ 0.25 ≈ a typical 28% relative error.)
    min_count
        Errors required before the monitor may trip — a fresh (or
        freshly refitted) model is not judged on a handful of points.
    """

    def __init__(
        self, window: int = 128, threshold: float = 0.25, min_count: int = 32
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.window = int(window)
        self.threshold = float(threshold)
        self.min_count = max(int(min_count), 1)
        self._errors: deque = deque(maxlen=self.window)
        self.n_recorded = 0
        self.n_triggers = 0

    def record(self, y_pred, y_true) -> float:
        """Absorb one scored batch; return its mean MLogQ."""
        y_pred = np.asarray(y_pred, dtype=float)
        y_true = np.asarray(y_true, dtype=float)
        if y_pred.shape != y_true.shape:
            raise ValueError("y_pred and y_true must have matching shapes")
        if len(y_true) == 0:
            return float("nan")
        errs = np.abs(np.log(np.maximum(y_pred, 1e-300) / y_true))
        # A non-finite prediction (overflowed extrapolation, a server
        # null) is maximal drift evidence, not a hole in the window.
        errs = np.nan_to_num(errs, nan=50.0, posinf=50.0)
        self._errors.extend(float(e) for e in errs)
        self.n_recorded += len(errs)
        return float(errs.mean())

    @property
    def count(self) -> int:
        """Errors currently in the rolling window."""
        return len(self._errors)

    @property
    def error(self) -> float:
        """Rolling mean MLogQ (``nan`` while the window is empty)."""
        if not self._errors:
            return float("nan")
        return float(np.mean(self._errors))

    def should_refit(self) -> bool:
        """Whether sustained error warrants a full refit + republish."""
        if self.count < self.min_count:
            return False
        if self.error <= self.threshold:
            return False
        self.n_triggers += 1
        return True

    def reset(self) -> None:
        """Clear the window (call after a refit: old errors judged an old model)."""
        self._errors.clear()

    def to_record(self) -> dict:
        """JSON-serializable telemetry snapshot."""
        err = self.error
        return {
            "window": self.window,
            "threshold": self.threshold,
            "count": self.count,
            "error": None if np.isnan(err) else err,
            "recorded": self.n_recorded,
            "triggers": self.n_triggers,
        }

    def __repr__(self):
        return (
            f"DriftMonitor(error={self.error:.4f}, count={self.count}, "
            f"threshold={self.threshold})"
        )

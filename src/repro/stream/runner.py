"""Stream replays as cacheable ``repro.runtime`` jobs.

A streaming replay is deterministic given its seed (sampling, noise, and
every fit derive from it), so it fits the runtime's purity contract: the
same spec produces the same summary record regardless of process or
ordering, and ``Runtime`` caches it by content address.  Publishing is
the same documented side effect as ``run_tune_job(publish_dir=...)`` — a
cache hit replays the record without re-publishing.

Note the purity caveat: registry *version numbers* in the record are
dense per registry directory, so determinism holds for a fresh
``publish_dir`` (or the default private temporary registry); re-running
against a pre-populated registry assigns later versions, which is
exactly the case the cache answers without executing.
"""
from __future__ import annotations

import tempfile

from repro.apps import get_application
from repro.stream.buffer import ObservationBuffer
from repro.stream.drift import DriftMonitor
from repro.stream.pipeline import StreamSession, replay_application
from repro.stream.trainer import IncrementalTrainer

__all__ = ["run_stream_job", "stream_job_spec"]


def make_model_factory(
    space,
    cells=8,
    rank: int | str = 3,
    loss: str = "log_mse",
    max_sweeps: int = 30,
    seed: int = 0,
    **opt_params,
):
    """A zero-argument ``CPRModel`` builder for streaming refits.

    ``rank="auto"`` makes every (re)fit re-run the grow/prune rank
    search — a drift refit may land on a different rank than the
    incumbent, which the trainer reports as a ``rank_change``.
    """
    from repro.core import CPRModel

    def factory():
        return CPRModel(
            space=space,
            cells=cells,
            rank=rank,
            loss=loss,
            max_sweeps=max_sweeps,
            seed=seed,
            **opt_params,
        )

    return factory


def run_stream_job(
    *,
    app: str,
    n: int,
    batch: int = 32,
    seed: int = 0,
    cells=8,
    rank: int = 3,
    loss: str = "log_mse",
    max_sweeps: int = 30,
    window: int | None = 4096,
    drift_window: int = 64,
    drift_threshold: float = 0.25,
    drift_min_count: int = 24,
    partial_sweeps: int | None = None,
    publish_dir=None,
    name: str | None = None,
    journal=None,
) -> dict:
    """Replay ``n`` observations of ``app`` through a full stream session.

    Returns the JSON-serializable session summary (actions, drift
    telemetry, published versions).  ``publish_dir=None`` publishes into
    a private temporary registry — the loop still exercises the
    publish/republish path, nothing persists.
    """
    from repro.serve import ModelRegistry

    application = get_application(app)
    name = name or f"{app}-stream"
    factory = make_model_factory(
        application.space,
        cells=cells,
        rank=rank,
        loss=loss,
        max_sweeps=max_sweeps,
        seed=seed,
    )
    monitor = DriftMonitor(
        window=drift_window, threshold=drift_threshold, min_count=drift_min_count
    )

    def run(registry_root) -> dict:
        registry = ModelRegistry(registry_root)
        session = StreamSession(
            registry,
            name,
            factory,
            buffer=ObservationBuffer(journal=journal, window=window),
            monitor=monitor,
            trainer=IncrementalTrainer(
                factory, monitor=monitor, partial_sweeps=partial_sweeps
            ),
            meta={"app": app, "seed": int(seed)},
        )
        summary = replay_application(
            application, session, int(n), batch=int(batch), seed=int(seed)
        )
        session.buffer.close()
        summary["app"] = app
        return summary

    if publish_dir is not None:
        return run(publish_dir)
    with tempfile.TemporaryDirectory() as tmp:
        return run(tmp)


def stream_job_spec(**params):
    """The canonical :func:`run_stream_job` spec (content-addressed)."""
    from repro.runtime import JobSpec

    return JobSpec("repro.stream.runner:run_stream_job", params)

"""Streaming observation pipeline: fit → publish → serve as a *loop*.

The paper's premise is that performance observations arrive incrementally
from runs of real applications; its conclusion names "efficiently updating
CP decompositions to model streaming data in online settings" as the open
direction.  This package closes the repo's gap between the fast batch
kernels (PR 2) and the serving stack (PR 4): a continuous loop that
ingests measurements, folds them into the model, and republishes when the
model meaningfully changed.

:class:`~repro.stream.buffer.ObservationBuffer`
    Append-only, windowed store of ``(config, runtime)`` observations
    with canonical-JSON journaling to disk, so a stream is resumable the
    way ``repro.runtime`` sweeps are.
:class:`~repro.stream.trainer.IncrementalTrainer`
    Per-flush policy between a cheap ``partial_fit`` warm-start sweep
    (new observations landed in the model's observed cells/fibers —
    reusing the fit's :class:`~repro.core.completion.ObservationPlan`
    buffers) and a full refit (grid widening needed, or drift detected).
:class:`~repro.stream.drift.DriftMonitor`
    Rolling relative-error tracker over a prequential holdout window
    (each observation is scored *before* it is absorbed); sustained
    error above threshold triggers refit + republish.
:class:`~repro.stream.pipeline.StreamSession`
    Orchestrates buffer + trainer + monitor against a
    :class:`~repro.serve.ModelRegistry`: refits auto-republish a new
    version, which a live :class:`~repro.serve.ModelServer` picks up on
    its next ``name@latest`` resolution — no restart.  With
    ``canary=True`` a refit publishes to ``name@shadow`` instead and a
    :class:`~repro.stream.canary.ShadowTrial` gates the pointer flip on
    live prequential MLogQ (losers are rolled back).
:class:`~repro.stream.fleet.MultiStreamDriver`
    Many concurrent sessions — a fleet of (optionally drifting)
    applications — publishing into one shared registry.

``python -m repro.stream`` replays any ``repro.apps`` application as a
timed observation stream against a live in-process server (or, with
``--streams``, a whole drifting fleet); see DESIGN.md ("Streaming" and
"Elastic runtime & canary republish") for the journal layout, refit
policy, and shadow-scoring gate.
"""
from repro.stream.buffer import ObservationBuffer
from repro.stream.canary import ShadowTrial
from repro.stream.drift import DriftMonitor
from repro.stream.fleet import DriftingApplication, MultiStreamDriver, StreamTask
from repro.stream.pipeline import StreamSession, replay_application
from repro.stream.runner import run_stream_job, stream_job_spec
from repro.stream.trainer import IncrementalTrainer

__all__ = [
    "DriftMonitor",
    "DriftingApplication",
    "IncrementalTrainer",
    "MultiStreamDriver",
    "ObservationBuffer",
    "ShadowTrial",
    "StreamSession",
    "StreamTask",
    "replay_application",
    "run_stream_job",
    "stream_job_spec",
]

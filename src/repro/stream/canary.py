"""Shadow-scoring trials: a candidate must beat the incumbent to serve.

The paper's models are live tuning/scheduling artifacts, so republishing
a refit straight to ``name@latest`` lets one bad refit (an unlucky
window, a diverged fit) degrade every consumer at once.  The canary
discipline — the control-loop shape batpred runs in production, and the
prequential gate of "A Learned Performance Model for the TPU" — publishes
the candidate to the **shadow** channel instead, scores both models on
the same live observations, and flips latest only when the candidate
*wins by a margin*.

A :class:`ShadowTrial` is the referee: it holds the candidate (live,
still absorbing partial updates) and a frozen snapshot of the incumbent
(exactly what ``name@latest`` serves), accumulates paired prequential
MLogQ samples — each arriving observation scored by *both* models before
it is absorbed — and renders one of three verdicts per batch:

``None``
    Keep scoring (not enough evidence either way).
``"promote"``
    The candidate's mean MLogQ beat the incumbent's by at least
    ``margin`` (relative) over ``min_scores``-plus observations.
``"rollback"``
    The candidate is *worse* than the incumbent on the same evidence, or
    the trial aged out (``max_scores``) without a margin win — ties go
    to the incumbent, because a flip invalidates every consumer's cache
    for no measured benefit.
"""
from __future__ import annotations

import numpy as np

__all__ = ["ShadowTrial"]


def _mlogq(y_pred, y_true) -> np.ndarray:
    """Per-observation |log(pred/true)| with non-finite predictions
    treated as maximal evidence (mirrors DriftMonitor.record)."""
    errs = np.abs(
        np.log(np.maximum(np.asarray(y_pred, dtype=float), 1e-300) / y_true)
    )
    return np.nan_to_num(errs, nan=50.0, posinf=50.0)


class ShadowTrial:
    """One candidate-vs-incumbent scoring window.

    Parameters
    ----------
    candidate
        The freshly refitted model (keeps receiving partial updates
        while the trial runs — a canary that stops learning mid-trial
        would be judged on stale state).
    incumbent
        A frozen reference to the model ``name@latest`` currently
        serves.  Never mutated by the trial.
    version
        The shadow registry version under trial (``None`` when the
        shadow publish failed — the trial still referees locally, the
        decision just has no pointer to flip).
    margin
        Relative MLogQ improvement required to promote: candidate mean
        must be ``<= incumbent mean * (1 - margin)``.
    min_scores
        Paired observations required before any verdict.
    max_scores
        Evidence budget: an undecided trial is rolled back at this many
        observations (an indefinitely "almost better" candidate blocks
        the next drift refit from ever starting).
    """

    def __init__(
        self,
        candidate,
        incumbent,
        version: int | None,
        margin: float = 0.05,
        min_scores: int = 24,
        max_scores: int = 256,
    ):
        if not 0.0 <= float(margin) < 1.0:
            raise ValueError("margin must be in [0, 1)")
        if int(min_scores) < 1:
            raise ValueError("min_scores must be >= 1")
        if int(max_scores) < int(min_scores):
            raise ValueError("max_scores must be >= min_scores")
        self.candidate = candidate
        self.incumbent = incumbent
        self.version = version
        self.margin = float(margin)
        self.min_scores = int(min_scores)
        self.max_scores = int(max_scores)
        self._candidate_errs: list[float] = []
        self._incumbent_errs: list[float] = []

    @property
    def n_scored(self) -> int:
        return len(self._candidate_errs)

    @property
    def candidate_error(self) -> float:
        if not self._candidate_errs:
            return float("nan")
        return float(np.mean(self._candidate_errs))

    @property
    def incumbent_error(self) -> float:
        if not self._incumbent_errs:
            return float("nan")
        return float(np.mean(self._incumbent_errs))

    def score(self, X, y) -> dict:
        """Score one arriving batch through both models (prequentially:
        the candidate has not absorbed these rows yet when judged)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(y) == 0:
            return {"n": 0}
        for model, errs in (
            (self.candidate, self._candidate_errs),
            (self.incumbent, self._incumbent_errs),
        ):
            try:
                batch = _mlogq(model.predict(X), y)
            except Exception:
                # A crashing predict is maximal evidence against that
                # model, not a hole in the trial.
                batch = np.full(len(y), 50.0)
            errs.extend(float(e) for e in batch)
        return {
            "n": self.n_scored,
            "candidate_error": self.candidate_error,
            "incumbent_error": self.incumbent_error,
        }

    def decision(self) -> str | None:
        """The verdict on current evidence (see the module docstring)."""
        if self.n_scored < self.min_scores:
            return None
        cand, inc = self.candidate_error, self.incumbent_error
        if cand <= inc * (1.0 - self.margin):
            return "promote"
        if cand > inc or self.n_scored >= self.max_scores:
            return "rollback"
        return None

    def to_record(self) -> dict:
        """JSON-serializable trial telemetry."""
        cand, inc = self.candidate_error, self.incumbent_error
        return {
            "version": self.version,
            "n_scored": self.n_scored,
            "candidate_error": None if np.isnan(cand) else cand,
            "incumbent_error": None if np.isnan(inc) else inc,
            "margin": self.margin,
        }

    def __repr__(self):
        return (
            f"ShadowTrial(v{self.version}, n={self.n_scored}, "
            f"candidate={self.candidate_error:.4f}, "
            f"incumbent={self.incumbent_error:.4f})"
        )

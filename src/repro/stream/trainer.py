"""Per-flush refit policy: cheap warm-start update vs full refit.

The streaming regime of "Low-CP-rank Tensor Completion via Practical
Regularization" (Jiang et al., PAPERS.md): most arriving observations
land inside the fitted model's discretization, often in cells that
already hold a running mean — folding them in is a counts-weighted
tensor merge plus a few warm-start sweeps from the current factors,
reusing the fit-wide :class:`~repro.core.completion.ObservationPlan`
when the observed index set did not change.  A full refit (fresh grid
ascertained from the retention window, fresh factors) is reserved for
the two events a warm start cannot absorb:

* **domain widening** — a new configuration falls outside the grid
  (``partial_fit`` would clip it into an edge cell, silently biasing
  the boundary), and
* **drift** — the :class:`~repro.stream.drift.DriftMonitor`'s rolling
  prequential error stayed above threshold.
"""
from __future__ import annotations

import time

import numpy as np

from repro.faults import fault_point

__all__ = ["IncrementalTrainer", "known_cell_mask", "model_rank"]


def model_rank(model) -> int | None:
    """Served CP rank of a fitted model (the adapted rank when the fit
    adapted it), or ``None`` for models without an integer rank."""
    r = getattr(model, "adapted_rank_", None)
    if r is None:
        r = getattr(model, "rank", None)
        if not isinstance(r, (int, np.integer)):
            return None
    return int(r)


def known_cell_mask(model, X: np.ndarray) -> np.ndarray:
    """Which rows of ``X`` land in cells the model has already observed.

    The deduplication test of the streaming policy: a row whose cell is
    already in the observed tensor's index set Ω contributes only a
    counts-weighted mean update — the observation *plan* (and hence the
    whole warm-start setup) is reusable verbatim when every pending row
    is known.  Rows must lie in the grid's domain: numerical modes clip
    out-of-range values into edge cells, but a categorical mode *raises*
    on an out-of-range index, so callers filter on ``grid_.in_domain``
    first (as :meth:`IncrementalTrainer.classify` does).
    """
    idx = model.grid_.cell_indices(X)
    flat = np.ravel_multi_index(idx.T, model.grid_.shape)
    observed = np.ravel_multi_index(
        model.tensor_.indices.T, model.grid_.shape
    )
    return np.isin(flat, observed)


class IncrementalTrainer:
    """Own the live model; decide partial vs full refit per flush.

    Parameters
    ----------
    model_factory
        Zero-argument callable returning an *unfitted* model (e.g. a
        ``CPRModel`` with the streaming hyper-parameters).  Full refits
        build a fresh model so the grid is re-ascertained from current
        data.
    monitor
        Optional :class:`~repro.stream.drift.DriftMonitor` consulted
        before each flush; it is reset after every full refit.
    partial_sweeps
        Sweep budget forwarded to ``partial_fit`` (``None`` uses the
        model's default: ``max_sweeps // 5``).
    failure_backoff_s, max_backoff_s
        Graceful-degradation policy: a failed update keeps the incumbent
        model serving, marks the trainer :attr:`degraded`, and defers
        further update *attempts* (``action: "deferred"``) for an
        exponentially growing backoff window starting at
        ``failure_backoff_s`` and capped at ``max_backoff_s`` — a
        diverging refit must not burn a core retrying every batch while
        the incumbent is still answering queries.  The first successful
        update clears the degradation.
    """

    def __init__(
        self,
        model_factory,
        monitor=None,
        partial_sweeps: int | None = None,
        failure_backoff_s: float = 1.0,
        max_backoff_s: float = 30.0,
    ):
        self.model_factory = model_factory
        self.monitor = monitor
        self.partial_sweeps = partial_sweeps
        self.failure_backoff_s = max(float(failure_backoff_s), 0.0)
        self.max_backoff_s = max(float(max_backoff_s), self.failure_backoff_s)
        self.model = None
        self.n_fit = 0
        self.n_partial = 0
        self.n_refit = 0
        self.n_failed = 0
        self.n_rank_changes = 0
        self.refit_reasons: dict = {}
        self._consecutive_failures = 0
        self._backoff_until = 0.0
        # A partial_fit that died mid-sweep may have torn the model's
        # factors; the next attempt must rebuild from the retention
        # window rather than warm-start from suspect state.
        self._force_refit = False

    # -- lifecycle -------------------------------------------------------------

    def adopt(self, model) -> None:
        """Resume from an existing fitted model (e.g. loaded from a registry)."""
        self.model = model

    @property
    def degraded(self) -> bool:
        """Whether the last update attempt failed (incumbent still serving)."""
        return self._consecutive_failures > 0

    def _note_failure(self, stage: str, exc: Exception, n_new: int) -> dict:
        """Record a failed update; arm the backoff; keep the incumbent."""
        self.n_failed += 1
        self._consecutive_failures += 1
        if stage == "partial":
            self._force_refit = True
        backoff = min(
            self.failure_backoff_s * (2.0 ** (self._consecutive_failures - 1)),
            self.max_backoff_s,
        )
        self._backoff_until = time.monotonic() + backoff
        return {
            "action": "failed",
            "stage": stage,
            "error": f"{type(exc).__name__}: {exc}",
            "n_new": n_new,
            "backoff_s": backoff,
        }

    def _note_success(self) -> None:
        self._consecutive_failures = 0
        self._backoff_until = 0.0
        self._force_refit = False

    def classify(self, X: np.ndarray) -> dict:
        """Counts of where a pending batch lands relative to the fitted model."""
        if self.model is None:
            return {"known": 0, "new_cells": 0, "out_of_domain": len(X)}
        in_dom = self.model.grid_.in_domain(X).all(axis=1)
        # Only in-domain rows reach the cell mapping: a categorical mode
        # raises on an out-of-range index rather than clipping, and an
        # out-of-domain row must trigger the refit policy, not a crash.
        known = np.zeros(len(X), dtype=bool)
        if in_dom.any():
            known[in_dom] = known_cell_mask(self.model, X[in_dom])
        return {
            "known": int(known.sum()),
            "new_cells": int((~known & in_dom).sum()),
            "out_of_domain": int((~in_dom).sum()),
        }

    # -- the policy ------------------------------------------------------------

    def update(self, X_new, y_new, X_all, y_all=None) -> dict:
        """Absorb one flush; return what was done and why.

        ``X_new, y_new`` are the pending observations since the last
        flush; ``X_all, y_all`` the refit training set (the buffer's
        retention window).  ``X_all`` may instead be a zero-argument
        callable returning ``(X, y)`` — the session passes the buffer's
        ``refit_arrays`` method so the common partial path never
        materializes the window at all.  Returns a record with
        ``action`` in ``{"fit", "partial", "refit", "noop"}`` and, for
        refits, a ``reason`` in ``{"drift", "domain"}``.
        """
        X_new = np.asarray(X_new, dtype=float)
        y_new = np.asarray(y_new, dtype=float)

        def refit_set():
            return X_all() if callable(X_all) else (X_all, y_all)

        remaining = self._backoff_until - time.monotonic()
        if remaining > 0:
            # Degraded and inside the backoff window: don't retry yet.
            # The caller keeps the pending rows unflushed, so the next
            # attempt absorbs them (see StreamSession.flush).
            return {
                "action": "deferred",
                "reason": "backoff",
                "n_new": len(y_new),
                "retry_in_s": remaining,
            }

        if self.model is None:
            X_fit, y_fit = refit_set()
            if len(np.asarray(y_fit)) == 0:
                return {"action": "noop", "reason": "empty", "n_new": 0}
            try:
                fault_point("stream.refit")
                self.model = self.model_factory().fit(X_fit, y_fit)
            except Exception as exc:
                return self._note_failure("fit", exc, len(y_new))
            self._note_success()
            self.n_fit += 1
            return {"action": "fit", "reason": "initial", "n_new": len(y_new)}
        if len(y_new) == 0:
            return {"action": "noop", "reason": "empty", "n_new": 0}

        placement = self.classify(X_new)
        reason = None
        if self._force_refit:
            # Last partial_fit failed mid-update: rebuild from the
            # window before trusting warm-start state again.
            reason = "recover"
        elif self.monitor is not None and self.monitor.should_refit():
            reason = "drift"
        elif placement["out_of_domain"] > 0:
            reason = "domain"

        if reason is None:
            try:
                fault_point("stream.partial")
                self.model.partial_fit(
                    X_new, y_new, max_sweeps=self.partial_sweeps
                )
            except Exception as exc:
                return self._note_failure("partial", exc, len(y_new))
            self._note_success()
            self.n_partial += 1
            return {"action": "partial", "placement": placement, "n_new": len(y_new)}

        X_fit, y_fit = refit_set()
        old_rank = model_rank(self.model)
        try:
            fault_point("stream.refit")
            model = self.model_factory().fit(X_fit, y_fit)
        except Exception as exc:
            # The incumbent keeps serving; only a *successful* refit
            # replaces it (the factory builds the new model off to the
            # side, so a mid-fit crash tears nothing).
            return self._note_failure("refit", exc, len(y_new))
        # An adaptive refit may land on a different rank than the
        # incumbent's; everything keyed to the old rank — the incumbent's
        # cached ObservationPlan buffers and warm-start factors — lives
        # on the *old* model object, which is dropped wholesale here (the
        # factory built the replacement from scratch).  The drift monitor
        # is reset below regardless: its window scored the old model.
        new_rank = model_rank(model)
        rank_changed = (
            old_rank is not None and new_rank is not None and new_rank != old_rank
        )
        self.model = model
        self._note_success()
        self.n_refit += 1
        self.refit_reasons[reason] = self.refit_reasons.get(reason, 0) + 1
        if self.monitor is not None:
            self.monitor.reset()
        record = {
            "action": "refit",
            "reason": reason,
            "placement": placement,
            "n_new": len(y_new),
            "n_train": len(np.asarray(y_fit)),
            "rank": new_rank,
        }
        if rank_changed:
            self.n_rank_changes += 1
            record["rank_change"] = {"from": old_rank, "to": new_rank}
        return record

    def to_record(self) -> dict:
        """JSON-serializable counters."""
        return {
            "fit": self.n_fit,
            "partial": self.n_partial,
            "refit": self.n_refit,
            "failed": self.n_failed,
            "degraded": self.degraded,
            "refit_reasons": dict(self.refit_reasons),
            # Attribution of the live model's last (re)fit: which compiled
            # kernel ran it, and at what (possibly adapted) CP rank.
            "kernel_backend": getattr(self.model, "fit_backend_", None),
            "rank": model_rank(self.model),
            "rank_changes": self.n_rank_changes,
        }

    def __repr__(self):
        return (
            f"IncrementalTrainer(partial={self.n_partial}, refit={self.n_refit}, "
            f"model={self.model!r})"
        )

"""Orchestration: buffer + trainer + monitor + registry as one loop.

A :class:`StreamSession` turns the repo's fit→publish→serve pipeline
into a *continuous* one: observations stream in, each batch is scored
prequentially (drift signal), appended to the journaled buffer, flushed
into the model through the :class:`IncrementalTrainer` policy, and —
whenever the model was (re)fitted rather than warm-updated — republished
into the :class:`~repro.serve.ModelRegistry` as a new version.  A live
:class:`~repro.serve.ModelServer` over the same registry picks the new
version up on its next ``name@latest`` resolution; nothing restarts.

Resumability mirrors ``repro.runtime``: the published manifest records
``stream_seq`` (how much of the journal the published model absorbed),
so :meth:`StreamSession.resume` reloads the latest version — whose
payload carries the observed tensor (PR 5's fit-state persistence) — and
replays only the journal tail past that point.

With ``canary=True`` a drift-triggered refit no longer flips
``name@latest`` directly: the refit model is published to the
**shadow** channel and put on :class:`~repro.stream.canary.ShadowTrial`
against the frozen incumbent.  Both score every arriving batch
prequentially; the registry pointer only flips (``registry.promote``)
when the candidate's live MLogQ beats the incumbent's by the configured
margin, and a losing candidate is rolled back — the registry pointer
cleared, the incumbent model re-adopted locally, the loser recorded in
:attr:`rolled_back_versions`.
"""
from __future__ import annotations

import numpy as np

from repro.faults import fault_point, retry_call
from repro.stream.buffer import ObservationBuffer
from repro.stream.canary import ShadowTrial
from repro.stream.drift import DriftMonitor
from repro.stream.trainer import IncrementalTrainer

__all__ = ["StreamSession", "replay_application"]


class StreamSession:
    """One named model's streaming update loop against a registry.

    Parameters
    ----------
    registry
        :class:`~repro.serve.ModelRegistry` to publish into (``None``
        disables publishing — buffer/trainer still run).
    name
        Registry model name (also the server-side reference).
    model_factory
        Zero-argument callable building an unfitted model (see
        :class:`IncrementalTrainer`).
    buffer, monitor, trainer
        Injectable components; sensible defaults are built when omitted.
    meta
        Extra key/values merged into every published manifest.
    canary
        When true, refits of an already-published model go through a
        shadow trial instead of flipping ``name@latest`` immediately
        (see the module docstring).  The very first publish and refits
        of a never-published name are unaffected — there is no incumbent
        to protect.
    canary_margin, canary_min_scores, canary_max_scores
        Forwarded to :class:`~repro.stream.canary.ShadowTrial`.
    """

    def __init__(
        self,
        registry,
        name: str,
        model_factory,
        buffer: ObservationBuffer | None = None,
        monitor: DriftMonitor | None = None,
        trainer: IncrementalTrainer | None = None,
        meta: dict | None = None,
        canary: bool = False,
        canary_margin: float = 0.05,
        canary_min_scores: int = 24,
        canary_max_scores: int = 256,
    ):
        self.registry = registry
        self.name = name
        self.buffer = buffer if buffer is not None else ObservationBuffer()
        self.monitor = monitor if monitor is not None else DriftMonitor()
        self.trainer = trainer if trainer is not None else IncrementalTrainer(
            model_factory, monitor=self.monitor
        )
        self.meta = dict(meta or {})
        self.canary = bool(canary)
        self.canary_margin = float(canary_margin)
        self.canary_min_scores = int(canary_min_scores)
        self.canary_max_scores = int(canary_max_scores)
        self.trial: ShadowTrial | None = None
        self.trial_records: list[dict] = []
        self.promotions = 0
        self.rollbacks = 0
        self.rolled_back_versions: list[int] = []
        self.published_versions: list[int] = []
        self.resumed_from: int | None = None
        self.publish_failures = 0
        self._publish_degraded = False
        self._last_publish_error: str | None = None

    # -- resuming --------------------------------------------------------------

    @classmethod
    def resume(
        cls,
        registry,
        name: str,
        journal,
        model_factory,
        window: int | None = None,
        **kwargs,
    ) -> "StreamSession":
        """Rebuild a session from its journal and last published version.

        The journal is replayed into the buffer; if ``name`` has a
        published version, its model (restored *with* fit state, so
        ``partial_fit`` works) is adopted and the buffer's flush mark is
        set to the manifest's ``stream_seq`` — the next :meth:`flush`
        absorbs exactly the journal tail the published model missed.
        """
        from repro.utils.serialization import dumps_model, loads_model

        buffer = ObservationBuffer.open(journal, window=window)
        session = cls(registry, name, model_factory, buffer=buffer, **kwargs)
        if registry is not None and name in registry:
            # One resolution serves both the model bytes and the cursor:
            # resolving twice could pair version N's ``stream_seq`` with a
            # concurrently published version N+1's model and double-merge
            # the journal rows in between.
            model, mv = registry.load_resolved(registry.resolve(name))
            # A private copy: the registry's LRU hands out *shared* model
            # objects, and the trainer mutates its model in place — a
            # server over the same registry must never observe those
            # mutations through the cache.  (The round trip is the
            # digest-stable serialization path, so the copy is exact.)
            session.trainer.adopt(loads_model(dumps_model(model)))
            consumed = min(int(mv.meta.get("stream_seq", 0)), buffer.n_seen)
            session.resumed_from = consumed
            buffer.mark_flushed(consumed)
        return session

    @property
    def model(self):
        return self.trainer.model

    # -- the loop --------------------------------------------------------------

    def observe(self, X, y, predict_fn=None) -> dict:
        """Score, journal, and absorb one measurement batch.

        ``predict_fn`` overrides where the prequential predictions come
        from (the CLI passes the live server's predict path so the drift
        signal reflects what consumers actually see; default is the live
        trainer model).  Returns the flush record plus scoring telemetry.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        batch_err = None
        if self.trainer.model is not None and len(y):
            fn = predict_fn if predict_fn is not None else self.trainer.model.predict
            try:
                batch_err = self.monitor.record(np.asarray(fn(X), dtype=float), y)
            except Exception:
                # A failing scorer (e.g. a predict_fn over a down server)
                # loses one drift sample, never the observations — they
                # are journaled and absorbed below regardless.
                batch_err = None
        trial_state = None
        if self.trial is not None and len(y):
            # Prequential: both contenders judged on this batch *before*
            # the candidate absorbs it in the flush below.
            trial_state = self.trial.score(X, y)
            verdict = self.trial.decision()
            if verdict is not None:
                self._resolve_trial(promote=verdict == "promote")
        self.buffer.append(X, y)
        record = self.flush()
        record["batch_error"] = batch_err
        record["rolling_error"] = self.monitor.error
        if trial_state is not None:
            record["trial"] = trial_state
        return record

    def flush(self) -> dict:
        """Absorb pending observations; publish when the model was (re)fitted.

        A failed or deferred update leaves the pending rows *unflushed*
        (they are journaled, so nothing is lost) — the next flush
        presents the accumulated batch again once the trainer's backoff
        allows a retry.  A failed publish keeps the incumbent registry
        version serving and marks the session :attr:`degraded`.
        """
        X_new, y_new = self.buffer.since(self.buffer.flushed)
        # A successful refit replaces ``trainer.model`` with a fresh
        # object, so the reference captured here stays frozen — exactly
        # the artifact an active ``name@latest`` resolution serves.
        incumbent = self.trainer.model
        # The refit set is passed lazily: the common partial path never
        # materializes the retention window.
        record = self.trainer.update(X_new, y_new, self.buffer.refit_arrays)
        if record["action"] not in ("deferred", "failed"):
            self.buffer.mark_flushed()
        if record["action"] == "refit" and self.trainer.monitor is not self.monitor:
            # The trainer resets *its* monitor after a refit; when the
            # session scores drift through a different monitor (injected
            # trainer), that one holds prequential evidence against the
            # replaced model — a rank-changing refit must not be judged
            # by the old model's window.
            self.monitor.reset()
        if record["action"] in ("fit", "refit"):
            shadow = (
                self.canary
                and record["action"] == "refit"
                and self.registry is not None
                and self.name in self.registry
            )
            if shadow and self.trial is not None:
                # A refit landing mid-trial supersedes it: the old
                # candidate is rolled back (it never won), and its
                # incumbent carries over — it is still what
                # ``name@latest`` serves, whereas the model captured
                # above is the superseded candidate.  Resolve *before*
                # publishing, or the rollback would clear the new
                # candidate's freshly written shadow pointer.
                incumbent = self.trial.incumbent
                self._resolve_trial(
                    promote=False, reason="superseded by newer refit", adopt=False
                )
            channel = "shadow" if shadow else None
            version = self.publish(reason=record.get("reason", ""), channel=channel)
            record["published_version"] = version
            if shadow:
                record["channel"] = "shadow"
                self._start_trial(incumbent, version)
            if version is None and self.registry is not None:
                record["publish_error"] = self._last_publish_error
        return record

    # -- canary trials ---------------------------------------------------------

    def _start_trial(self, incumbent, version: int | None) -> None:
        """Open a shadow trial for the freshly refitted candidate."""
        self.trial = ShadowTrial(
            candidate=self.trainer.model,
            incumbent=incumbent,
            version=version,
            margin=self.canary_margin,
            min_scores=self.canary_min_scores,
            max_scores=self.canary_max_scores,
        )

    def _resolve_trial(
        self, promote: bool, reason: str = "", adopt: bool = True
    ) -> None:
        """Close the active trial: flip the pointer or roll the loser back."""
        trial, self.trial = self.trial, None
        record = trial.to_record()
        if promote:
            self.promotions += 1
            record["outcome"] = "promoted"
            if self.registry is not None:
                if trial.version is not None:
                    self._registry_op(
                        lambda: self.registry.promote(self.name, trial.version)
                    )
                else:
                    # The shadow publish itself had failed; promote means
                    # "this model should serve", so publish it plainly.
                    self.publish(reason="canary-promote")
        else:
            self.rollbacks += 1
            record["outcome"] = "rolled_back"
            record["reason"] = reason or "lost shadow trial"
            if trial.version is not None:
                self.rolled_back_versions.append(trial.version)
                if self.registry is not None:
                    self._registry_op(
                        lambda: self.registry.rollback(
                            self.name, reason=record["reason"]
                        )
                    )
            if adopt:
                # The incumbent keeps both roles: it never stopped
                # serving, and it resumes absorbing partial updates.
                self.trainer.adopt(trial.incumbent)
        # Either way the live model changed identity relative to the
        # trial window — stale prequential evidence must not trigger
        # (or mask) the next refit.
        self.monitor.reset()
        self.trial_records.append(record)

    def _registry_op(self, fn) -> bool:
        """Run a registry pointer mutation with the publish retry policy."""

        def _op():
            fault_point("stream.publish")
            return fn()

        try:
            retry_call(_op, attempts=3, base_delay_s=0.05, deadline_s=5.0)
        except Exception as exc:
            self.publish_failures += 1
            self._publish_degraded = True
            self._last_publish_error = f"{type(exc).__name__}: {exc}"
            return False
        return True

    def publish(self, reason: str = "", channel: str | None = None) -> int | None:
        """Publish the current model as the next registry version.

        ``channel="shadow"`` publishes without flipping ``name@latest``
        (the canary path).  Retries transient registry failures briefly;
        on exhaustion returns ``None`` and degrades instead of raising —
        consumers keep resolving the previous version, and the next
        (re)fit gets another chance (the journal, not the registry, is
        the stream's source of truth).
        """
        if self.registry is None or self.trainer.model is None:
            return None
        meta = dict(self.meta)
        meta.update(
            {
                "stream_seq": self.buffer.flushed,
                "reason": reason,
                "rolling_error": None
                if np.isnan(self.monitor.error)
                else float(self.monitor.error),
            }
        )
        if channel is not None:
            meta["channel"] = channel

        def _publish():
            fault_point("stream.publish")
            return self.registry.publish(
                self.name, self.trainer.model, meta=meta, channel=channel
            )

        try:
            mv = retry_call(_publish, attempts=3, base_delay_s=0.05, deadline_s=5.0)
        except Exception as exc:
            self.publish_failures += 1
            self._publish_degraded = True
            self._last_publish_error = f"{type(exc).__name__}: {exc}"
            return None
        self._publish_degraded = False
        self._last_publish_error = None
        self.published_versions.append(mv.version)
        return mv.version

    @property
    def degraded(self) -> bool:
        """Whether the session is serving stale state after a failure."""
        return self.trainer.degraded or self._publish_degraded

    @property
    def republished(self) -> int:
        """Publishes that superseded an existing version (v2 and later)."""
        return sum(1 for v in self.published_versions if v > 1)

    def summary(self) -> dict:
        """JSON-serializable end-of-stream report."""
        return {
            "name": self.name,
            "kernel_backend": getattr(
                self.trainer.model, "fit_backend_", None
            ),
            "n_observations": self.buffer.n_seen,
            "flushed": self.buffer.flushed,
            "resumed_from": self.resumed_from,
            "trainer": self.trainer.to_record(),
            "drift": self.monitor.to_record(),
            "published_versions": list(self.published_versions),
            "republished": self.republished,
            "publish_failures": self.publish_failures,
            "degraded": self.degraded,
            "canary": self.canary,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "rolled_back_versions": list(self.rolled_back_versions),
            "trials": list(self.trial_records),
            "trial_open": None if self.trial is None else self.trial.to_record(),
        }


def replay_application(
    app,
    session: StreamSession,
    n: int,
    batch: int = 32,
    seed: int = 0,
    sigma=None,
    predict_fn=None,
    on_batch=None,
) -> dict:
    """Replay ``n`` measured configurations of ``app`` as a batched stream.

    Configurations are sampled from the application's parameter space and
    measured with its noise model — both driven by one seeded generator,
    so a replay is a pure function of ``(app, n, batch, seed, sigma)``.
    ``on_batch(i, record)`` observes each flush (the CLI prints from it).
    Returns :meth:`StreamSession.summary`.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    rng = np.random.default_rng(seed)
    done = 0
    i = 0
    while done < n:
        m = min(batch, n - done)
        X = app.space.sample(m, rng=rng)
        y = app.measure(X, rng=rng, sigma=sigma)
        record = session.observe(X, y, predict_fn=predict_fn)
        if on_batch is not None:
            on_batch(i, record)
        done += m
        i += 1
    return session.summary()

"""``python -m repro.serve`` — the CLI model server (see server.py)."""
import sys

from repro.serve.server import main

if __name__ == "__main__":
    sys.exit(main())

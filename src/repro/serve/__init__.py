"""Model serving: publish fitted models, answer query traffic (``repro.serve``).

The experiment side of this repo produces fitted :class:`~repro.core.CPRModel`
objects; this package is the consumption side — the north star's "serve
heavy traffic" leg.  Learned performance models are read-heavy assets in
practice (a compiler cost model is queried millions of times per search),
so the design splits cleanly into:

:class:`~repro.serve.registry.ModelRegistry`
    Content-addressed, versioned model store layered on
    :mod:`repro.utils.serialization`.  Blobs live under their SHA-256
    digest; ``name -> version -> digest`` pointers are small JSON
    manifests.  Thread-safe, with a digest-keyed LRU cache that can never
    serve a stale version (re-publishing changes the digest, not the
    cached entry).
:class:`~repro.serve.engine.PredictionEngine`
    Batched prediction front-end for one fitted model: validates query
    batches against the model's grid, routes them through the fused
    corner-blend path in one vectorized call per batch, and keeps
    latency/throughput statistics.
:class:`~repro.serve.server.ModelServer` (``python -m repro.serve``)
    Stdlib-only JSON server over a registry — HTTP or stdin line
    protocol — with microbatching that coalesces concurrent requests
    into single engine calls, and admission control that sheds past a
    bounded in-flight count instead of queueing without limit.
:class:`~repro.serve.fleet.ServeFleet` (``python -m repro.serve --workers N``)
    Multi-process sharded serving: N worker processes accept on one
    port (``SO_REUSEPORT`` where available, inherited listening FD
    elsewhere) and map each published model out of one
    ``multiprocessing.shared_memory`` segment
    (:mod:`repro.serve.shm_store`), so resident model memory does not
    scale with the worker count and a drift-triggered republish
    hot-swaps every worker without a restart.

See DESIGN.md ("Serving" and "Fleet serving") for the registry layout,
request schema and the shm blob lifecycle.
"""
from repro.serve.engine import PredictionEngine
from repro.serve.fleet import ServeFleet
from repro.serve.registry import ModelRegistry, ModelVersion
from repro.serve.server import (
    MicroBatcher,
    ModelServer,
    Overloaded,
    PredictTimeout,
)

__all__ = [
    "MicroBatcher",
    "ModelRegistry",
    "ModelServer",
    "ModelVersion",
    "Overloaded",
    "PredictTimeout",
    "PredictionEngine",
    "ServeFleet",
]

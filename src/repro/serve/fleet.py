"""Multi-process sharded serving fleet (``python -m repro.serve --workers N``).

One parent dispatcher, N worker processes, one port.  The single-process
JSON server tops out when transport parsing and the GIL saturate one
core while the batched engine itself has headroom
(``results/BENCH_serve.json``); the fleet removes that ceiling by
sharding *connections* across processes while sharing *models* through
one memory copy:

Socket sharing
    Every worker accepts on the same ``(host, port)``.  Where the
    platform has ``SO_REUSEPORT`` (Linux, BSD, macOS) each worker binds
    its own listening socket and the kernel load-balances incoming
    connections across them; elsewhere the parent binds + listens once
    and the forked workers inherit the FD and accept from the shared
    queue.  The parent holds a bound (never listening) reuseport socket
    so the port stays reserved across worker respawns.

Shared-memory model store
    The parent packs each published blob into a
    ``multiprocessing.shared_memory`` segment named by its registry
    digest (serialization is a byte-level fixed point, so the digest
    *is* the cross-process cache key — see ``shm_store``).  Workers
    attach zero-copy; a worker that races ahead of the packer falls
    back to a disk load rather than blocking the request.

Hot-swap propagation
    Publishes through the parent's registry object fire its publish
    hooks and pack immediately; publishes from *other* processes are
    picked up by a manifest-watch thread (the registry's latest-pointer
    cache makes the per-name check one ``stat``).  Workers re-resolve
    ``name@latest`` per request, so every worker serves a republished
    model on its next batch — no restarts, no dropped in-flight work.

Admission control
    Each worker bounds its in-flight predicts and its microbatcher's
    pending queue; past the bound it sheds with
    ``{"ok": false, "error": "overloaded"}`` (HTTP 503) instead of
    queueing without bound.

The parent also supervises (see DESIGN.md, "Failure model & recovery"):
a monitor thread respawns crashed workers (with backoff, behind a
crash-loop breaker), a heartbeat watchdog kills and replaces *hung*
workers (SIGSTOP'd, deadlocked, paged out — anything that stops the
heartbeat thread), and ``stop()`` escalates terminate → kill on workers
that ignore SIGTERM before unlinking every shm segment exactly once
(the "unlink discipline" — see DESIGN.md, "Fleet serving").
"""
from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import socket
import sys
import tempfile
import threading
import time
from http.server import ThreadingHTTPServer

from repro import faults
from repro.serve import shm_store
from repro.serve.registry import ModelRegistry
from repro.serve.server import ModelServer, _http_handler

__all__ = [
    "ServeFleet",
    "FleetWorkerServer",
    "make_worker_server",
    "exit_on_sigterm",
    "reuseport_available",
]


def exit_on_sigterm() -> None:
    """Convert SIGTERM into :class:`SystemExit` so ``finally`` blocks run.

    The default SIGTERM action kills the process without unwinding the
    stack, so a fleet parent's ``finally: fleet.stop()`` never runs: the
    workers are orphaned and the creator-owned shared-memory segments
    leak (creator-only unlink means nobody else will reclaim them).
    Raising instead lets ``stop()``'s terminate -> join -> kill -> reap
    escalation and the shm store teardown do their job.  Main-thread
    only; a no-op anywhere signals cannot be installed.
    """
    if threading.current_thread() is not threading.main_thread():
        return

    def _raise(signum, frame):
        raise SystemExit(128 + signum)

    signal.signal(signal.SIGTERM, _raise)


def reuseport_available() -> bool:
    """Whether this platform can share one port across listening sockets."""
    return hasattr(socket, "SO_REUSEPORT")


def _new_socket(host: str, port: int, reuseport: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


class _SocketHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server over an already-bound socket.

    Used for both sharing modes: a worker's own ``SO_REUSEPORT`` socket,
    or the listening socket inherited from the parent across ``fork``.
    """

    def __init__(self, sock: socket.socket, handler, listen: bool):
        super().__init__(sock.getsockname()[:2], handler, bind_and_activate=False)
        self.socket.close()  # replace the placeholder TCPServer created
        self.socket = sock
        if listen:
            sock.listen(self.request_queue_size)


class FleetWorkerServer(ModelServer):
    """A worker's :class:`ModelServer`, answering with its identity.

    ``ping`` and ``stats`` responses carry the worker ``pid`` so tests,
    the smoke job, and operators can see which process answered (and
    that respawn actually replaced a crashed one).
    """

    def handle(self, request: dict) -> dict:
        # Chaos site: a rule here crashes/stops/hangs this worker at its
        # next request — how test_chaos provokes the parent's watchdog
        # and respawn paths from inside a real serving process.
        faults.fault_point("fleet.worker.serve")
        response = super().handle(request)
        if isinstance(request, dict) and request.get("op") in ("ping", "stats"):
            response["pid"] = os.getpid()
        return response


def _make_shm_loader(attach_wait_s: float):
    """A ``model_loader`` that attaches blobs from shared memory.

    Retries briefly (the parent packs new publishes asynchronously),
    then falls back to a plain disk load so a request is never failed —
    or blocked for long — by the packer.  The shm lease is pinned to
    the model object so the mapping lives exactly as long as the model.
    """
    fallback_leases: dict = {}  # digest -> lease, for models without __dict__

    def load(registry: ModelRegistry, mv):
        deadline = time.monotonic() + max(attach_wait_s, 0.0)
        while True:
            try:
                model, lease = shm_store.attach_model(mv.digest)
            except (OSError, ValueError):
                # OSError covers FileNotFoundError (packer not done yet)
                # and any injected/real shm failure; either way the disk
                # fallback below keeps the request answerable.
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.01)
                continue
            try:
                model._shm_lease_ = lease
            except AttributeError:
                fallback_leases[mv.digest] = lease
            model._served_from_ = "shm"
            return model
        model, _ = registry.load_resolved(mv)
        return model

    return load


def make_worker_server(cfg: dict) -> FleetWorkerServer:
    """Build one worker's server from the fleet's worker config.

    Module-level (and parent-callable) so the worker serving stack is
    testable in-process without forking.  The worker's registry is
    opened with ``cache_size=0``: the shm store is the model cache, and
    a worker-local deserialized LRU would silently re-grow the per-
    process copies the fleet exists to eliminate.
    """
    registry = ModelRegistry(cfg["registry_dir"], cache_size=0)
    loader = _make_shm_loader(cfg["attach_wait_s"]) if cfg["shm"] else None
    return FleetWorkerServer(
        registry,
        default_model=cfg["default_model"],
        max_batch=cfg["max_batch"],
        max_delay_ms=cfg["max_delay_ms"],
        microbatch=True,
        max_inflight=cfg["max_inflight"],
        model_loader=loader,
        request_timeout_ms=cfg.get("request_timeout_ms"),
    )


def _heartbeat_loop(hb_dir: str, interval_s: float, stop: threading.Event) -> None:
    """Touch this worker's heartbeat file until told to stop.

    The file's mtime is the liveness signal the parent's watchdog reads:
    anything that freezes the whole process (SIGSTOP, a paged-out or
    deadlocked interpreter) freezes this thread too, the mtime goes
    stale, and the watchdog kills + replaces the worker.  A busy-but-
    healthy worker keeps beating — handler threads don't block this one.
    """
    path = os.path.join(hb_dir, f"hb-{os.getpid()}")
    while True:
        try:
            with open(path, "w") as fh:
                fh.write(str(time.time()))
        except OSError:  # hb dir tearing down mid-stop; nothing to signal
            pass
        if stop.wait(interval_s):
            return


def _worker_main(cfg: dict, inherited: socket.socket | None) -> None:  # pragma: no cover - runs in forked children
    """Entry point of one forked worker process."""
    # Forked workers inherit the parent's installed plan; install_from_env
    # covers chaos runs driving a fleet they didn't fork (CLI --workers).
    faults.install_from_env()
    faults.fault_point("fleet.worker.boot")
    if cfg.get("kernel_backend"):
        # The env override is the one knob the completion registry reads
        # everywhere, so any (re)fit this worker ever runs uses the
        # fleet-selected backend.
        os.environ["REPRO_KERNEL_BACKEND"] = cfg["kernel_backend"]
    server = make_worker_server(cfg)
    hb_stop = threading.Event()
    if cfg.get("hb_dir"):
        threading.Thread(
            target=_heartbeat_loop,
            args=(cfg["hb_dir"], cfg["hb_interval_s"], hb_stop),
            name="repro-fleet-heartbeat",
            daemon=True,
        ).start()
    if inherited is None:
        sock = _new_socket(cfg["host"], cfg["port"], reuseport=True)
        httpd = _SocketHTTPServer(sock, _http_handler(server), listen=True)
    else:
        httpd = _SocketHTTPServer(inherited, _http_handler(server), listen=False)
    try:
        httpd.serve_forever(poll_interval=0.5)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        hb_stop.set()
        httpd.server_close()
        server.close()


class ServeFleet:
    """Parent dispatcher: socket, shm store, workers, watch + respawn.

    Parameters mirror the single-process server's; the fleet-specific
    knobs are ``workers``, ``socket_mode`` (``"auto"``/``"reuseport"``/
    ``"inherit"``), ``max_inflight`` (per-worker admission bound) and
    ``poll_interval_s`` (manifest watch + worker monitor cadence).

    Supervision knobs:

    ``hang_timeout_s``
        A worker whose heartbeat file goes this stale is presumed hung
        (SIGSTOP'd, deadlocked, swapped to oblivion), SIGKILLed, and
        respawned.  ``0`` disables the watchdog.
    ``respawn_backoff_s`` / ``crash_loop_threshold`` / ``crash_loop_window_s``
        The first crash in a quiet period respawns immediately; repeat
        crashes within the window back off exponentially from
        ``respawn_backoff_s``; at ``crash_loop_threshold`` crashes
        within the window the breaker opens and respawning stops — a
        worker dying deterministically at boot would otherwise fork-loop
        forever.  Surviving workers keep serving either way.
    """

    def __init__(
        self,
        registry_dir,
        workers: int = 2,
        port: int = 0,
        host: str = "127.0.0.1",
        default_model: str | None = None,
        max_batch: int = 256,
        max_delay_ms: float = 2.0,
        max_inflight: int = 128,
        kernel_backend: str | None = None,
        socket_mode: str = "auto",
        shm: bool | None = None,
        shm_max_segments: int = 8,
        poll_interval_s: float = 0.2,
        respawn: bool = True,
        request_timeout_ms: float | None = 30000.0,
        hang_timeout_s: float = 10.0,
        respawn_backoff_s: float = 0.5,
        crash_loop_threshold: int = 5,
        crash_loop_window_s: float = 30.0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if kernel_backend is not None:
            # Fail in the parent, before any fork: an unknown/unavailable
            # backend must not become one crash per respawned worker.
            from repro.core.completion.backends import get_backend

            kernel_backend = get_backend(kernel_backend).name
        if socket_mode not in ("auto", "reuseport", "inherit"):
            raise ValueError(f"unknown socket_mode {socket_mode!r}")
        if socket_mode == "auto":
            socket_mode = "reuseport" if reuseport_available() else "inherit"
        if socket_mode == "reuseport" and not reuseport_available():
            raise ValueError("SO_REUSEPORT is unavailable on this platform")
        self.registry_dir = str(registry_dir)
        self.workers = int(workers)
        self.host = host
        self.socket_mode = socket_mode
        self.shm = shm_store.shared_memory_available() if shm is None else bool(shm)
        self.poll_interval_s = float(poll_interval_s)
        self.respawn = bool(respawn)
        self.hang_timeout_s = max(float(hang_timeout_s), 0.0)
        self.respawn_backoff_s = max(float(respawn_backoff_s), 0.0)
        self.crash_loop_threshold = max(int(crash_loop_threshold), 1)
        self.crash_loop_window_s = max(float(crash_loop_window_s), 0.0)
        self._requested_port = int(port)
        self._cfg = {
            "registry_dir": self.registry_dir,
            "host": host,
            "port": None,  # known after bind
            "default_model": default_model,
            "max_batch": int(max_batch),
            "max_delay_ms": float(max_delay_ms),
            "max_inflight": int(max_inflight),
            "request_timeout_ms": request_timeout_ms,
            # Round-trips the --kernel-backend CLI flag into every forked
            # (and respawned) worker via the env override the completion
            # registry honours.
            "kernel_backend": kernel_backend,
            "shm": self.shm,
            # Workers briefly wait out the packer before a disk fallback.
            "attach_wait_s": 2.0 * float(poll_interval_s),
            "hb_dir": None,  # known after start()
            # Beat well inside the watchdog threshold so one missed
            # write (scheduler hiccup) can't read as a hang.
            "hb_interval_s": (
                max(min(self.hang_timeout_s / 4.0, 1.0), 0.05)
                if self.hang_timeout_s
                else 1.0
            ),
        }
        # The parent only deserializes models transiently (to pack them);
        # cache_size=0 keeps it from retaining private copies.
        self.registry = ModelRegistry(self.registry_dir, cache_size=0)
        self.store = shm_store.ShmModelStore(max_segments=shm_max_segments)
        self._ctx = multiprocessing.get_context("fork")
        self._sock: socket.socket | None = None
        self._procs: list = []
        self._threads: list = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._seen: dict = {}  # name -> digest last packed
        self._tracked: list = []  # external registries with our pack hook
        self._respawns = 0
        self._hang_kills = 0
        self._breaker_open = False
        self._hb_dir: str | None = None
        self._spawn_walls: dict = {}  # pid -> wall time of fork (hb grace)
        self._crash_times: list = []  # recent crash wall marks (breaker window)
        self._due_respawns: list = []  # monotonic due marks (backoff queue)
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._sock is None:
            raise RuntimeError("fleet is not started")
        return self._sock.getsockname()[1]

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    def start(self) -> "ServeFleet":
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        reuseport = self.socket_mode == "reuseport"
        self._sock = _new_socket(self.host, self._requested_port, reuseport)
        if not reuseport:
            self._sock.listen(128)
        self._cfg["port"] = self.port
        self._hb_dir = tempfile.mkdtemp(prefix="repro-fleet-hb-")
        self._cfg["hb_dir"] = self._hb_dir
        if self.shm:
            # Start the stdlib resource tracker BEFORE forking: workers
            # then inherit the parent's tracker, where one segment's
            # register (create) and unregister (unlink) balance out.  A
            # worker forked with no tracker running would lazily spawn
            # its own, and that private tracker's exit-time "cleanup"
            # unlinks segments the rest of the fleet is still serving
            # from (every attach registers in 3.11, nothing in a pure
            # attacher ever unregisters).
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            self._pack_published()  # workers find warm segments on day one
            self.registry.add_publish_hook(self._on_publish)
        for _ in range(self.workers):
            self._spawn()
        # Threads start only after the initial forks: forking from a
        # threaded parent risks inheriting mid-held locks.  Respawn still
        # forks from the monitor thread, but workers rebuild all state
        # from scratch and never touch parent objects.
        if self.shm:
            self._threads.append(
                threading.Thread(
                    target=self._watch_manifests, name="repro-fleet-watch",
                    daemon=True,
                )
            )
        self._threads.append(
            threading.Thread(
                target=self._monitor_workers, name="repro-fleet-monitor",
                daemon=True,
            )
        )
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        """Workers down, port released, every shm segment unlinked once.

        Worker teardown escalates: polite SIGTERM first, then SIGKILL
        for anything still alive after the grace period.  A SIGSTOP'd
        worker never *handles* SIGTERM (it stays pending while the
        process is stopped), and a worker wedged in a C extension may
        ignore it — the old single-round terminate could therefore
        return with live children still holding shm attachments, and
        the unlink below would leak segments.  Every handle is closed
        (reaped) at the end so no zombie survives the fleet object.
        """
        if not self._started or self._stop.is_set():
            self._stop.set()
            return
        self._stop.set()
        for t in self._threads:
            t.join(timeout=5.0)
        with self._lock:
            procs, self._procs = list(self._procs), []
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5.0)
        stragglers = [p for p in procs if p.is_alive()]
        for p in stragglers:  # pragma: no cover - needs a wedged worker
            print(
                f"[fleet] worker {p.pid} survived SIGTERM; killing",
                file=sys.stderr,
            )
            p.kill()
        for p in stragglers:  # pragma: no cover - needs a wedged worker
            p.join(timeout=5.0)
        for p in procs:
            self._cleanup_worker(p)
        if self._hb_dir is not None:
            shutil.rmtree(self._hb_dir, ignore_errors=True)
            self._hb_dir = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        with self._lock:
            tracked, self._tracked = list(self._tracked), []
        if self.shm:
            tracked.append(self.registry)
        for registry in tracked:
            try:
                registry.remove_publish_hook(self._on_publish)
            except ValueError:  # pragma: no cover - hook never installed
                pass
        self.store.close()

    def __enter__(self) -> "ServeFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- workers ---------------------------------------------------------------

    def _spawn(self) -> None:
        inherited = None if self.socket_mode == "reuseport" else self._sock
        proc = self._ctx.Process(
            target=_worker_main,
            args=(dict(self._cfg), inherited),
            name="repro-serve-worker",
            daemon=True,
        )
        proc.start()
        with self._lock:
            self._procs.append(proc)
            # Heartbeat grace anchor: until the worker's first beat, the
            # watchdog ages it from the fork, not from a missing file.
            self._spawn_walls[proc.pid] = time.time()

    def _cleanup_worker(self, p) -> None:
        """Reap one exited worker's process handle and heartbeat file."""
        if p.pid is not None:
            with self._lock:
                self._spawn_walls.pop(p.pid, None)
            if self._hb_dir is not None:
                try:
                    os.unlink(os.path.join(self._hb_dir, f"hb-{p.pid}"))
                except OSError:
                    pass
        try:
            p.close()
        except ValueError:  # pragma: no cover - still alive (stop raced us)
            pass

    def worker_pids(self) -> list:
        with self._lock:
            return [p.pid for p in self._procs if p.is_alive()]

    @property
    def respawns(self) -> int:
        return self._respawns

    @property
    def hang_kills(self) -> int:
        """Workers the heartbeat watchdog has killed (then respawned)."""
        return self._hang_kills

    @property
    def breaker_open(self) -> bool:
        """Whether the crash-loop breaker has stopped respawning."""
        return self._breaker_open

    def _monitor_workers(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self._kill_hung_workers()
            with self._lock:
                dead = [p for p in self._procs if not p.is_alive()]
                for p in dead:
                    self._procs.remove(p)
            for p in dead:
                p.join(timeout=1.0)
                pid, code = p.pid, p.exitcode
                self._cleanup_worker(p)
                if self._stop.is_set() or not self.respawn:
                    continue
                print(
                    f"[fleet] worker {pid} exited (code {code}); "
                    f"scheduling respawn",
                    file=sys.stderr,
                )
                self._schedule_respawn()
            self._spawn_due_respawns()

    def _kill_hung_workers(self) -> None:
        """SIGKILL workers whose heartbeat went stale (the hang watchdog).

        SIGKILL, not SIGTERM: it is delivered even to a SIGSTOP'd
        process, and a worker that stopped heartbeating cannot be
        trusted to run a signal handler anyway.  The kill surfaces as a
        dead worker on the next monitor pass, which respawns it through
        the ordinary (backoff + breaker) path.
        """
        if not self.hang_timeout_s or self._hb_dir is None:
            return
        now = time.time()
        with self._lock:
            procs = list(self._procs)
        for p in procs:
            if p.pid is None or not p.is_alive():
                continue
            try:
                beat = os.stat(os.path.join(self._hb_dir, f"hb-{p.pid}")).st_mtime
            except OSError:
                with self._lock:
                    beat = self._spawn_walls.get(p.pid, now)
            if now - beat > self.hang_timeout_s:
                print(
                    f"[fleet] worker {p.pid} heartbeat stale "
                    f"({now - beat:.1f}s > {self.hang_timeout_s:.1f}s); killing",
                    file=sys.stderr,
                )
                self._hang_kills += 1
                p.kill()

    def _schedule_respawn(self) -> None:
        """Queue a replacement worker, with backoff and a crash-loop breaker.

        The first crash in a quiet window respawns immediately (fast
        recovery is the common case); each further crash inside
        ``crash_loop_window_s`` doubles the delay from
        ``respawn_backoff_s``; at ``crash_loop_threshold`` crashes the
        breaker opens and the fleet stops feeding processes to a
        deterministic boot failure — surviving workers keep serving.
        """
        now = time.time()
        with self._lock:
            recent = [
                t for t in self._crash_times
                if now - t <= self.crash_loop_window_s
            ]
            prior = len(recent)
            recent.append(now)
            self._crash_times = recent
            if len(recent) >= self.crash_loop_threshold:
                if not self._breaker_open:
                    self._breaker_open = True
                    print(
                        f"[fleet] crash-loop breaker open: "
                        f"{len(recent)} worker crashes within "
                        f"{self.crash_loop_window_s:.0f}s; not respawning",
                        file=sys.stderr,
                    )
                return
            delay = (
                0.0 if prior == 0
                else min(self.respawn_backoff_s * (2.0 ** (prior - 1)), 10.0)
            )
            self._due_respawns.append(time.monotonic() + delay)

    def _spawn_due_respawns(self) -> None:
        now = time.monotonic()
        with self._lock:
            due = [t for t in self._due_respawns if t <= now]
            self._due_respawns = [t for t in self._due_respawns if t > now]
        for _ in due:
            if self._stop.is_set():
                return
            self._respawns += 1
            self._spawn()

    # -- shm packing / hot-swap propagation ------------------------------------

    def track_registry(self, registry: ModelRegistry) -> None:
        """Pack publishes made through another in-process registry object.

        The manifest watch would catch them within a poll interval
        anyway; the hook makes a local publisher's republish (e.g. a
        streaming trainer running the fleet in-process) visible to the
        workers immediately.  Untracked automatically by :meth:`stop`.
        """
        registry.add_publish_hook(self._on_publish)
        with self._lock:
            self._tracked.append(registry)

    def _on_publish(self, mv) -> None:
        """Registry publish hook: pack an in-process publish immediately."""
        try:
            self._pack_version(mv)
        except Exception as exc:  # pragma: no cover - packing is best effort
            print(f"[fleet] shm pack failed for {mv.ref}: {exc}", file=sys.stderr)

    def _pack_version(self, mv) -> None:
        with self._lock:
            if self._seen.get(mv.name) == mv.digest:
                return
        model, _ = self.registry.load_resolved(mv)
        self.store.ensure(mv.digest, model)
        with self._lock:
            self._seen[mv.name] = mv.digest

    def _pack_published(self) -> None:
        for name in self.registry.names():
            try:
                self._pack_version(self.registry.resolve(name))
            except Exception as exc:  # pragma: no cover - skip broken entries
                print(f"[fleet] shm pack failed for {name}: {exc}", file=sys.stderr)

    def _watch_manifests(self) -> None:
        """Cross-process republish pickup: poll each name's latest pointer.

        Publishes through *this* process's registry object are packed
        synchronously by the publish hook; this thread covers everyone
        else (a streaming trainer in another process, an operator's
        manual publish).  The registry's latest-pointer cache makes each
        poll a stat per name, so the cadence can be tight.
        """
        while not self._stop.wait(self.poll_interval_s):
            try:
                self._pack_published()
            except Exception:  # pragma: no cover - keep watching
                pass

    def __repr__(self):
        state = "up" if self._started and not self._stop.is_set() else "down"
        return (
            f"ServeFleet({self.registry_dir!r}, workers={self.workers}, "
            f"mode={self.socket_mode}, shm={self.shm}, {state})"
        )

"""Content-addressed, versioned model store (the serving "publish" side).

Layout (everything under one registry root directory)::

    objects/<sha256>.pkl          # model blobs, named by digest of their bytes
    models/<name>/v<NNNN>.json    # version manifests: {"digest", "meta", ...}
    models/<name>/channels.json   # optional channel pointers: latest / shadow
    models/<name>/history.jsonl   # promote / rollback / shadow audit trail

Blobs are immutable and deduplicated: publishing the same fitted model
twice stores one object and two manifests.  Version numbers are dense
integers starting at 1; "latest" is simply the highest number present —
*until* a canary trial pins it.

Channels (canary / shadow republish)
------------------------------------
``publish(..., channel="shadow")`` claims the next dense version as any
publish does, but points the **shadow** channel at it instead of
advancing ``latest`` — and pins ``latest`` at the incumbent, so readers
resolving ``name`` keep getting the proven model while the candidate is
scored on live traffic.  :meth:`ModelRegistry.promote` flips ``latest``
to the shadow version (the canary won); :meth:`ModelRegistry.rollback`
clears the shadow pointer and records the loser in ``history.jsonl``
(the version and its blob stay on disk for post-mortems — they are just
never served as latest).  Names that never shadow-publish have no
``channels.json`` and behave exactly as before.

Concurrency model
-----------------
* **Cross-process**: blobs are written atomically (temp file +
  ``os.replace``); version manifests are fully written to a temp file
  and then *claimed* with an atomic ``os.link``, so two processes
  publishing the same name race cleanly — each gets its own version,
  and a manifest is never observable half-written (its content exists
  before its version number does).
* **In-process**: all public methods are safe to call from many threads;
  a single ``RLock`` guards the in-memory LRU.
* **Staleness**: the LRU cache is keyed by *digest*, never by name.
  ``load(name)`` re-resolves ``name -> digest`` from the manifest on
  every call, so a re-publish is visible immediately and a cached entry
  can never be served for the wrong version.
"""
from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core.model import rank_attribution
from repro.faults import fault_point, mangle, retry_call
from repro.utils.serialization import dumps_model, loads_model

__all__ = ["ModelRegistry", "ModelVersion"]

#: Filesystem-safe model names (also the server's request-side contract).
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_MANIFEST_RE = re.compile(r"^v(\d+)\.json$")

#: Youngest directory mtime the latest-pointer cache will trust (ns).
#: Covers the coarsest common mtime granularity (one kernel tick) with
#: a wide margin; see :meth:`ModelRegistry._latest_version_number`.
_MTIME_SETTLE_NS = 50_000_000


@dataclass(frozen=True)
class ModelVersion:
    """One published (name, version) pointer into the object store."""

    name: str
    version: int
    digest: str
    created: float
    meta: dict

    @property
    def ref(self) -> str:
        """Human-readable ``name@vN`` reference."""
        return f"{self.name}@v{self.version}"

    def to_record(self) -> dict:
        """JSON form (what the server returns for ``models`` requests)."""
        return {
            "name": self.name,
            "version": self.version,
            "digest": self.digest,
            "created": self.created,
            "meta": dict(self.meta),
        }


def _fsync_dir(path: Path) -> None:
    """Flush a directory's entry table (making a rename/link durable)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. O_RDONLY on a dir (Windows)
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Durably write ``data`` to ``path``: temp file + fsync + rename + dir fsync.

    The fsyncs are load-bearing, not ceremony: ``os.replace`` alone
    orders the rename against *nothing* — after a crash the directory
    entry can point at a file whose blocks never hit disk, i.e. a
    published manifest referencing a blob of zeros.  Syncing the temp
    file before the rename and the parent directory after it gives the
    standard write-ahead guarantee: once the name is visible, its
    content is on disk.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    data = mangle("registry.write", data)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


class ModelRegistry:
    """Store/load named, versioned models with an in-memory LRU cache.

    Parameters
    ----------
    root
        Registry directory (created on first use).
    cache_size
        Maximum number of deserialized models kept in memory.  ``0``
        disables caching (every load deserializes from disk).
    """

    def __init__(self, root, cache_size: int = 8):
        self.root = Path(root)
        self.cache_size = max(int(cache_size), 0)
        self._lock = threading.RLock()
        self._cache: OrderedDict[str, object] = OrderedDict()  # digest -> model
        self._hits = 0
        self._misses = 0
        self._publish_hooks: list = []
        # Latest-pointer cache: name -> (dir st_mtime_ns, latest version).
        # Every unversioned resolve used to listdir + regex the manifest
        # directory — a full directory scan per predict on the serving
        # hot path.  The mtime is always stat'ed *before* the scan it
        # tags, so a publish landing mid-scan dirties the entry and the
        # next resolve rescans (never the reverse, which could pin a
        # stale pointer).
        self._latest: dict[str, tuple[int, int]] = {}
        # Claimed manifests are immutable, so resolved pointers can be
        # memoized forever; the LRU bound only caps memory under heavy
        # republish churn.
        self._manifests: OrderedDict[tuple[str, int], ModelVersion] = OrderedDict()
        # Channel-pointer cache: name -> (channels.json st_mtime_ns, state).
        # Same discipline as the latest-pointer cache (stat every call,
        # rescan on mtime movement, memoize only settled stamps) — plus
        # *explicit* invalidation on every local promote/rollback/shadow
        # write: a flip must be visible on the very next resolve, not
        # after an mtime tick (coarse-granularity filesystems can reuse
        # a stamp for writes landing within the same tick).
        self._channels: dict[str, tuple[int, dict]] = {}
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        (self.root / "models").mkdir(parents=True, exist_ok=True)

    # -- publish hooks ---------------------------------------------------------

    def add_publish_hook(self, hook) -> None:
        """Register ``hook(mv: ModelVersion)``, called after each publish.

        The streaming pipeline uses this to observe drift-triggered
        republishes (telemetry, hot-swapping a local engine); hooks run
        in the publisher's thread *after* the version is claimed, so a
        raising hook surfaces to the publisher but can no longer undo or
        corrupt the publish.  In-process only — hooks see publishes
        through this registry object, not other processes'.
        """
        with self._lock:
            self._publish_hooks.append(hook)

    def remove_publish_hook(self, hook) -> None:
        """Unregister a hook added with :meth:`add_publish_hook`."""
        with self._lock:
            self._publish_hooks.remove(hook)

    # -- paths -----------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / f"{digest}.pkl"

    def _model_dir(self, name: str) -> Path:
        return self.root / "models" / name

    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValueError(
                f"bad model name {name!r}: need [A-Za-z0-9._-]+, starting "
                "with an alphanumeric"
            )
        return name

    # -- publishing ------------------------------------------------------------

    def publish(
        self, name: str, model, meta: dict | None = None, channel: str | None = None
    ) -> ModelVersion:
        """Store ``model`` as the next version of ``name``; return the pointer.

        The blob write is idempotent (same bytes -> same object file).  The
        manifest is serialized *before* any filesystem change (a
        non-JSON-serializable ``meta`` fails cleanly) and its version
        number is claimed with an atomic ``os.link`` of the fully-written
        temp file, so concurrent publishers of the same name each get a
        distinct version and no reader can ever observe a partial or
        corrupt manifest as "latest".

        ``channel="shadow"`` publishes the version *without* making it
        latest: the latest pointer is pinned at the incumbent (which must
        exist — a canary needs something to beat) and the shadow pointer
        is set to the new version, to be resolved via ``name@shadow``
        until :meth:`promote` or :meth:`rollback` ends the trial.
        """
        self._check_name(name)
        if channel not in (None, "latest", "shadow"):
            raise ValueError(
                f"unknown publish channel {channel!r}: want 'latest' or 'shadow'"
            )
        incumbent = self._effective_latest(name) if channel == "shadow" else 0
        if channel == "shadow" and incumbent == 0:
            raise ValueError(
                f"cannot shadow-publish {name!r}: no incumbent version to pin "
                "as latest (publish normally first)"
            )
        data = dumps_model(model)
        digest = hashlib.sha256(data).hexdigest()
        obj_path = self._object_path(digest)
        if not obj_path.exists():
            # Blob writes are idempotent, so a transient I/O failure is
            # safely retryable; a persistent one propagates to the
            # publisher before any manifest could reference the blob.
            retry_call(
                lambda: _atomic_write_bytes(obj_path, data),
                attempts=3,
                base_delay_s=0.02,
                deadline_s=2.0,
            )

        mdir = self._model_dir(name)
        mdir.mkdir(parents=True, exist_ok=True)
        meta = dict(meta or {})
        # Attribution: record which kernel backend fitted the published
        # factors (models expose ``fit_backend_``; see
        # repro.core.completion.backends).  One hook here covers every
        # publisher — harness tune jobs, stream republishes, tests.
        backend = getattr(model, "fit_backend_", None)
        if backend is not None:
            meta.setdefault("kernel_backend", backend)
        # Rank attribution: the requested rank plus, for adaptive fits,
        # the rank the grow/prune loop actually landed on — audits and
        # size accounting must compare models at the served rank, not
        # the request (``rank="auto"`` says nothing about the artifact).
        for key, value in rank_attribution(model).items():
            meta.setdefault(key, value)
        while True:
            version = self._latest_version_number(name) + 1
            record = {
                "name": name,
                "version": version,
                "digest": digest,
                "created": time.time(),
                "meta": meta,
            }
            text = json.dumps(record, indent=1)  # may raise: before any claim
            payload = mangle("registry.manifest", text.encode("utf-8"))
            path = mdir / f"v{version:04d}.json"
            fd, tmp = tempfile.mkstemp(dir=mdir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())  # content durable before the claim
                os.link(tmp, path)  # atomic claim of this version number
                _fsync_dir(mdir)  # the claim itself durable before hooks run
            except FileExistsError:
                # Another publisher claimed it — possibly within the same
                # mtime tick, so drop the cached pointer before rescanning
                # (a stale hit here would spin on the same version).
                self._invalidate_latest(name)
                continue
            finally:
                os.unlink(tmp)
            # The claim moved the directory mtime; drop the pointer rather
            # than guessing (a concurrent publisher may already have
            # claimed a higher version under the post-claim mtime).
            self._invalidate_latest(name)
            if channel == "shadow":
                state = self._read_channels_fresh(name)
                if state.get("latest") is None:
                    state["latest"] = incumbent
                state["shadow"] = version
                self._write_channels(
                    name, state, event="shadow", version=version
                )
            elif (self._model_dir(name) / "channels.json").exists():
                # Once a name has channel pointers, a plain publish must
                # advance the pinned latest too — otherwise new versions
                # would be invisible behind a stale pin.
                state = self._read_channels_fresh(name)
                state["latest"] = version
                self._write_channels(name, state, event="publish", version=version)
            mv = ModelVersion(
                name, version, digest, record["created"], record["meta"]
            )
            with self._lock:
                hooks = list(self._publish_hooks)
            for hook in hooks:
                hook(mv)
            return mv

    # -- channels (canary / shadow) --------------------------------------------

    def _channels_path(self, name: str) -> Path:
        return self._model_dir(name) / "channels.json"

    def _read_channels_fresh(self, name: str) -> dict:
        """The channel state straight from disk (mutation paths only —
        a stale cached read here could resurrect a cleared pointer)."""
        try:
            state = json.loads(self._channels_path(name).read_text())
        except (OSError, ValueError):
            return {}
        return state if isinstance(state, dict) else {}

    def _channel_state(self, name: str) -> dict:
        """The (possibly cached) channel-pointer state; ``{}`` when the
        name has never shadow-published (the implicit-latest fast path:
        one extra ``stat`` miss per resolve, nothing else)."""
        path = self._channels_path(name)
        try:
            stamp = path.stat().st_mtime_ns
        except (FileNotFoundError, NotADirectoryError):
            with self._lock:
                self._channels.pop(name, None)
            return {}
        with self._lock:
            cached = self._channels.get(name)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        state = self._read_channels_fresh(name)
        # Same settle-window rule as the latest-pointer cache: never
        # memoize a stamp young enough that a same-tick rewrite could
        # reuse it (see _latest_version_number).
        if time.time_ns() - stamp > _MTIME_SETTLE_NS:
            with self._lock:
                self._channels[name] = (stamp, state)
        return state

    def _invalidate_channels(self, name: str) -> None:
        with self._lock:
            self._channels.pop(name, None)

    def _write_channels(self, name: str, state: dict, event: str, **extra) -> None:
        """Atomically rewrite the channel pointers + append the audit line.

        Ends with *explicit* cache invalidation — the flip must be
        visible to this process's next resolve immediately, not after
        the filesystem's mtime granularity catches up (the stale-pin
        window a promote landing within one mtime tick used to have).
        """
        payload = json.dumps(
            {k: state.get(k) for k in ("latest", "shadow")}, indent=1
        )
        _atomic_write_bytes(self._channels_path(name), payload.encode("utf-8"))
        entry = {"event": event, "time": time.time(), **extra}
        try:
            with (self._model_dir(name) / "history.jsonl").open("a") as fh:
                fh.write(json.dumps(entry) + "\n")
        except OSError:  # pragma: no cover - audit trail is best-effort
            pass
        self._invalidate_channels(name)
        self._invalidate_latest(name)

    def promote(self, name: str, version: int | None = None) -> ModelVersion:
        """Flip ``name@latest`` to the shadow version (the canary won).

        ``version`` overrides the shadow pointer (promoting an arbitrary
        historical version is also how an operator pins a known-good
        build).  The manifest must be readable — a promote can never
        point latest at a version that cannot be served.  Clears the
        shadow pointer when it was the promoted version, appends a
        ``promote`` audit entry, and explicitly invalidates the pointer
        caches so the flip is visible to the very next resolve.
        """
        self._check_name(name)
        state = self._read_channels_fresh(name)
        if version is None:
            version = state.get("shadow")
        if version is None:
            raise KeyError(f"no shadow version of {name!r} to promote")
        mv = self._read_manifest(name, int(version))
        state["latest"] = mv.version
        if state.get("shadow") == mv.version:
            state["shadow"] = None
        self._write_channels(name, state, event="promote", version=mv.version)
        return mv

    def rollback(self, name: str, reason: str = "") -> int:
        """Clear the shadow pointer (the canary lost); return the loser.

        The losing version and its blob remain on disk for post-mortems
        — recorded in ``history.jsonl`` with ``reason`` — but nothing
        resolves to them short of an explicit ``name@vN`` request.
        """
        self._check_name(name)
        state = self._read_channels_fresh(name)
        loser = state.get("shadow")
        if loser is None:
            raise KeyError(f"no shadow version of {name!r} to roll back")
        state["shadow"] = None
        self._write_channels(
            name, state, event="rollback", version=int(loser), reason=reason
        )
        return int(loser)

    def channels(self, name: str) -> dict:
        """The current channel pointers: ``{"latest": N|None, "shadow": N|None}``.

        ``latest: None`` means the implicit rule (highest version) is in
        effect — the name never entered a canary trial.
        """
        self._check_name(name)
        state = self._channel_state(name)
        return {"latest": state.get("latest"), "shadow": state.get("shadow")}

    def history(self, name: str) -> list[dict]:
        """Audit entries (shadow publishes, promotes, rollbacks), oldest first."""
        self._check_name(name)
        try:
            text = (self._model_dir(name) / "history.jsonl").read_text()
        except OSError:
            return []
        out = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn final line: same tolerance as the journal
        return out

    # -- resolution ------------------------------------------------------------

    def _effective_latest(self, name: str) -> int:
        """What ``name`` (unversioned) resolves to: the pinned latest
        pointer when a canary trial created one, else the highest
        published version."""
        state = self._channel_state(name)
        pinned = state.get("latest")
        if pinned is not None:
            return int(pinned)
        return self._latest_version_number(name)

    def _version_numbers(self, name: str) -> list[int]:
        mdir = self._model_dir(name)
        try:
            entries = os.listdir(mdir)
        except (FileNotFoundError, NotADirectoryError):
            return []
        out = []
        for entry in entries:
            m = _MANIFEST_RE.match(entry)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def _latest_version_number(self, name: str) -> int:
        """Highest published version of ``name`` (0 when none).

        Served from the mtime-keyed latest-pointer cache: the manifest
        directory is stat'ed on every call (cheap), but only rescanned
        when its mtime moved — publishing creates a directory entry, so
        any cross-process publish dirties the mtime and invalidates the
        pointer.  Local publishes refresh the entry directly.
        """
        mdir = self._model_dir(name)
        try:
            stamp = mdir.stat().st_mtime_ns
        except (FileNotFoundError, NotADirectoryError):
            with self._lock:
                self._latest.pop(name, None)
            return 0
        with self._lock:
            cached = self._latest.get(name)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        # Stat-then-scan order matters: if a publish lands after the
        # stat, the scan may or may not see it, but the stored stamp is
        # pre-publish either way, so the next call invalidates.
        numbers = self._version_numbers(name)
        version = numbers[-1] if numbers else 0
        # Only memoize stamps safely in the past.  Filesystem mtime
        # granularity can be coarser than two back-to-back publishes: a
        # *later* publish could reuse a stamp taken within the current
        # granularity quantum, silently pinning this pointer.  A stamp
        # older than the settle window can never be reused, and
        # rescanning for a few extra milliseconds after each publish is
        # noise.
        if time.time_ns() - stamp > _MTIME_SETTLE_NS:
            with self._lock:
                self._latest[name] = (stamp, version)
        return version

    def _invalidate_latest(self, name: str) -> None:
        with self._lock:
            self._latest.pop(name, None)

    def _read_manifest(self, name: str, version: int) -> ModelVersion:
        """Load (or cache-hit) one claimed manifest; ``KeyError`` when
        missing, torn, or otherwise unreadable."""
        key = (name, version)
        with self._lock:
            mv = self._manifests.get(key)
            if mv is not None:
                self._manifests.move_to_end(key)
                return mv
        path = self._model_dir(name) / f"v{version:04d}.json"
        try:
            record = json.loads(path.read_text())
            mv = ModelVersion(
                record["name"],
                int(record["version"]),
                record["digest"],
                float(record.get("created", 0.0)),
                dict(record.get("meta", {})),
            )
        except (OSError, ValueError, TypeError, KeyError) as exc:
            # json.JSONDecodeError is a ValueError: a torn manifest and a
            # missing one both surface as the same miss to callers.
            raise KeyError(f"no version {version} of model {name!r}") from exc
        with self._lock:
            self._manifests[key] = mv
            self._manifests.move_to_end(key)
            while len(self._manifests) > 64:
                self._manifests.popitem(last=False)
        return mv

    def resolve(
        self, name: str, version: int | None = None, channel: str | None = None
    ) -> ModelVersion:
        """The :class:`ModelVersion` for ``name`` (latest when unversioned).

        Resolution is the freshness point of the registry: the latest
        pointer is re-checked against the manifest directory's mtime on
        every call, so a republish (from any process) is visible on the
        next resolve.  Only immutable state is memoized — claimed
        manifests and content-addressed blobs — and channel flips
        (promote/rollback) additionally invalidate explicitly, so a
        canary decision is visible to the next resolve in-process even
        inside one filesystem mtime tick.

        ``channel="shadow"`` resolves the in-trial candidate (the
        server-side ``name@shadow`` reference); a ``KeyError`` when no
        trial is running.  An explicit ``version`` overrides channels.

        A torn or partial manifest under ``name@latest`` (a publisher
        crashed mid-claim on a filesystem that let the link outlive its
        content) is *skipped*: resolution falls back to the newest
        readable predecessor, so readers keep serving the incumbent
        instead of failing on a version nobody finished publishing.  An
        explicitly requested version still raises — the caller named a
        version, and silently answering with a different one would be a
        correctness bug, not resilience.
        """
        self._check_name(name)
        if version is not None:
            return self._read_manifest(name, int(version))
        if channel not in (None, "latest", "shadow"):
            raise ValueError(
                f"unknown channel {channel!r}: want 'latest' or 'shadow'"
            )
        if channel == "shadow":
            shadow = self._channel_state(name).get("shadow")
            if shadow is None:
                raise KeyError(f"no shadow version of model {name!r}")
            return self._read_manifest(name, int(shadow))
        latest = self._effective_latest(name)
        if latest == 0:
            raise KeyError(f"no model published under {name!r}")
        try:
            return self._read_manifest(name, latest)
        except KeyError:
            pass
        for fallback in reversed(self._version_numbers(name)):
            if fallback == latest:
                continue
            try:
                return self._read_manifest(name, fallback)
            except KeyError:
                continue
        raise KeyError(f"no readable version of model {name!r}")

    def names(self) -> list[str]:
        """Sorted names with at least one published version.

        Tolerates a missing (or concurrently deleted) ``models/``
        subdirectory: an empty registry answers ``[]``, it does not make
        a ``models`` protocol request crash the server.
        """
        mroot = self.root / "models"
        try:
            entries = os.listdir(mroot)
        except (FileNotFoundError, NotADirectoryError):
            return []
        return sorted(
            d for d in entries
            if (mroot / d).is_dir() and self._version_numbers(d)
        )

    def versions(self, name: str) -> list[int]:
        """Sorted version numbers published under ``name``."""
        self._check_name(name)
        return self._version_numbers(name)

    def __contains__(self, name) -> bool:
        try:
            return bool(self._version_numbers(self._check_name(name)))
        except ValueError:
            return False

    # -- loading ---------------------------------------------------------------

    def load(self, name: str, version: int | None = None):
        """Deserialize (or cache-hit) the model for ``name``/``version``."""
        return self.load_resolved(self.resolve(name, version))[0]

    def load_resolved(self, mv: ModelVersion):
        """Load by an already-resolved pointer; returns ``(model, mv)``.

        The serving engine cache goes through here so one resolution
        serves both the model bytes and the version identity.
        """
        with self._lock:
            if mv.digest in self._cache:
                self._cache.move_to_end(mv.digest)
                self._hits += 1
                return self._cache[mv.digest], mv
            self._misses += 1
        # Deserialize outside the lock: concurrent loads of *different*
        # digests shouldn't serialize on one pickle pass.
        path = self._object_path(mv.digest)

        def _read() -> bytes:
            fault_point("registry.read")
            return path.read_bytes()

        try:
            # Blob reads are retried briefly: on the serving path a
            # transient I/O error (NFS hiccup, EINTR-ish failure) should
            # cost milliseconds, not a 404 at the protocol boundary.
            model = loads_model(
                retry_call(_read, attempts=3, base_delay_s=0.01, deadline_s=1.0)
            )
        except OSError as exc:
            raise KeyError(
                f"registry object {mv.digest[:12]}... for {mv.ref} is missing"
            ) from exc
        with self._lock:
            if self.cache_size > 0:
                self._cache[mv.digest] = model
                self._cache.move_to_end(mv.digest)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return model, mv

    # -- introspection ---------------------------------------------------------

    def cache_info(self) -> dict:
        """Hit/miss counters and current occupancy of the LRU cache."""
        with self._lock:
            return {
                "size": len(self._cache),
                "capacity": self.cache_size,
                "hits": self._hits,
                "misses": self._misses,
            }

    def __repr__(self):
        return f"ModelRegistry({str(self.root)!r}, cache_size={self.cache_size})"

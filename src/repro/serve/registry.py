"""Content-addressed, versioned model store (the serving "publish" side).

Layout (everything under one registry root directory)::

    objects/<sha256>.pkl        # model blobs, named by digest of their bytes
    models/<name>/v<NNNN>.json  # version manifests: {"digest", "meta", ...}

Blobs are immutable and deduplicated: publishing the same fitted model
twice stores one object and two manifests.  Version numbers are dense
integers starting at 1; "latest" is simply the highest number present.

Concurrency model
-----------------
* **Cross-process**: blobs are written atomically (temp file +
  ``os.replace``); version manifests are fully written to a temp file
  and then *claimed* with an atomic ``os.link``, so two processes
  publishing the same name race cleanly — each gets its own version,
  and a manifest is never observable half-written (its content exists
  before its version number does).
* **In-process**: all public methods are safe to call from many threads;
  a single ``RLock`` guards the in-memory LRU.
* **Staleness**: the LRU cache is keyed by *digest*, never by name.
  ``load(name)`` re-resolves ``name -> digest`` from the manifest on
  every call, so a re-publish is visible immediately and a cached entry
  can never be served for the wrong version.
"""
from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.faults import fault_point, mangle, retry_call
from repro.utils.serialization import dumps_model, loads_model

__all__ = ["ModelRegistry", "ModelVersion"]

#: Filesystem-safe model names (also the server's request-side contract).
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_MANIFEST_RE = re.compile(r"^v(\d+)\.json$")

#: Youngest directory mtime the latest-pointer cache will trust (ns).
#: Covers the coarsest common mtime granularity (one kernel tick) with
#: a wide margin; see :meth:`ModelRegistry._latest_version_number`.
_MTIME_SETTLE_NS = 50_000_000


@dataclass(frozen=True)
class ModelVersion:
    """One published (name, version) pointer into the object store."""

    name: str
    version: int
    digest: str
    created: float
    meta: dict

    @property
    def ref(self) -> str:
        """Human-readable ``name@vN`` reference."""
        return f"{self.name}@v{self.version}"

    def to_record(self) -> dict:
        """JSON form (what the server returns for ``models`` requests)."""
        return {
            "name": self.name,
            "version": self.version,
            "digest": self.digest,
            "created": self.created,
            "meta": dict(self.meta),
        }


def _fsync_dir(path: Path) -> None:
    """Flush a directory's entry table (making a rename/link durable)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. O_RDONLY on a dir (Windows)
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Durably write ``data`` to ``path``: temp file + fsync + rename + dir fsync.

    The fsyncs are load-bearing, not ceremony: ``os.replace`` alone
    orders the rename against *nothing* — after a crash the directory
    entry can point at a file whose blocks never hit disk, i.e. a
    published manifest referencing a blob of zeros.  Syncing the temp
    file before the rename and the parent directory after it gives the
    standard write-ahead guarantee: once the name is visible, its
    content is on disk.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    data = mangle("registry.write", data)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


class ModelRegistry:
    """Store/load named, versioned models with an in-memory LRU cache.

    Parameters
    ----------
    root
        Registry directory (created on first use).
    cache_size
        Maximum number of deserialized models kept in memory.  ``0``
        disables caching (every load deserializes from disk).
    """

    def __init__(self, root, cache_size: int = 8):
        self.root = Path(root)
        self.cache_size = max(int(cache_size), 0)
        self._lock = threading.RLock()
        self._cache: OrderedDict[str, object] = OrderedDict()  # digest -> model
        self._hits = 0
        self._misses = 0
        self._publish_hooks: list = []
        # Latest-pointer cache: name -> (dir st_mtime_ns, latest version).
        # Every unversioned resolve used to listdir + regex the manifest
        # directory — a full directory scan per predict on the serving
        # hot path.  The mtime is always stat'ed *before* the scan it
        # tags, so a publish landing mid-scan dirties the entry and the
        # next resolve rescans (never the reverse, which could pin a
        # stale pointer).
        self._latest: dict[str, tuple[int, int]] = {}
        # Claimed manifests are immutable, so resolved pointers can be
        # memoized forever; the LRU bound only caps memory under heavy
        # republish churn.
        self._manifests: OrderedDict[tuple[str, int], ModelVersion] = OrderedDict()
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        (self.root / "models").mkdir(parents=True, exist_ok=True)

    # -- publish hooks ---------------------------------------------------------

    def add_publish_hook(self, hook) -> None:
        """Register ``hook(mv: ModelVersion)``, called after each publish.

        The streaming pipeline uses this to observe drift-triggered
        republishes (telemetry, hot-swapping a local engine); hooks run
        in the publisher's thread *after* the version is claimed, so a
        raising hook surfaces to the publisher but can no longer undo or
        corrupt the publish.  In-process only — hooks see publishes
        through this registry object, not other processes'.
        """
        with self._lock:
            self._publish_hooks.append(hook)

    def remove_publish_hook(self, hook) -> None:
        """Unregister a hook added with :meth:`add_publish_hook`."""
        with self._lock:
            self._publish_hooks.remove(hook)

    # -- paths -----------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / f"{digest}.pkl"

    def _model_dir(self, name: str) -> Path:
        return self.root / "models" / name

    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValueError(
                f"bad model name {name!r}: need [A-Za-z0-9._-]+, starting "
                "with an alphanumeric"
            )
        return name

    # -- publishing ------------------------------------------------------------

    def publish(self, name: str, model, meta: dict | None = None) -> ModelVersion:
        """Store ``model`` as the next version of ``name``; return the pointer.

        The blob write is idempotent (same bytes -> same object file).  The
        manifest is serialized *before* any filesystem change (a
        non-JSON-serializable ``meta`` fails cleanly) and its version
        number is claimed with an atomic ``os.link`` of the fully-written
        temp file, so concurrent publishers of the same name each get a
        distinct version and no reader can ever observe a partial or
        corrupt manifest as "latest".
        """
        self._check_name(name)
        data = dumps_model(model)
        digest = hashlib.sha256(data).hexdigest()
        obj_path = self._object_path(digest)
        if not obj_path.exists():
            # Blob writes are idempotent, so a transient I/O failure is
            # safely retryable; a persistent one propagates to the
            # publisher before any manifest could reference the blob.
            retry_call(
                lambda: _atomic_write_bytes(obj_path, data),
                attempts=3,
                base_delay_s=0.02,
                deadline_s=2.0,
            )

        mdir = self._model_dir(name)
        mdir.mkdir(parents=True, exist_ok=True)
        meta = dict(meta or {})
        # Attribution: record which kernel backend fitted the published
        # factors (models expose ``fit_backend_``; see
        # repro.core.completion.backends).  One hook here covers every
        # publisher — harness tune jobs, stream republishes, tests.
        backend = getattr(model, "fit_backend_", None)
        if backend is not None:
            meta.setdefault("kernel_backend", backend)
        while True:
            version = self._latest_version_number(name) + 1
            record = {
                "name": name,
                "version": version,
                "digest": digest,
                "created": time.time(),
                "meta": meta,
            }
            text = json.dumps(record, indent=1)  # may raise: before any claim
            payload = mangle("registry.manifest", text.encode("utf-8"))
            path = mdir / f"v{version:04d}.json"
            fd, tmp = tempfile.mkstemp(dir=mdir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())  # content durable before the claim
                os.link(tmp, path)  # atomic claim of this version number
                _fsync_dir(mdir)  # the claim itself durable before hooks run
            except FileExistsError:
                # Another publisher claimed it — possibly within the same
                # mtime tick, so drop the cached pointer before rescanning
                # (a stale hit here would spin on the same version).
                self._invalidate_latest(name)
                continue
            finally:
                os.unlink(tmp)
            # The claim moved the directory mtime; drop the pointer rather
            # than guessing (a concurrent publisher may already have
            # claimed a higher version under the post-claim mtime).
            self._invalidate_latest(name)
            mv = ModelVersion(
                name, version, digest, record["created"], record["meta"]
            )
            with self._lock:
                hooks = list(self._publish_hooks)
            for hook in hooks:
                hook(mv)
            return mv

    # -- resolution ------------------------------------------------------------

    def _version_numbers(self, name: str) -> list[int]:
        mdir = self._model_dir(name)
        try:
            entries = os.listdir(mdir)
        except (FileNotFoundError, NotADirectoryError):
            return []
        out = []
        for entry in entries:
            m = _MANIFEST_RE.match(entry)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def _latest_version_number(self, name: str) -> int:
        """Highest published version of ``name`` (0 when none).

        Served from the mtime-keyed latest-pointer cache: the manifest
        directory is stat'ed on every call (cheap), but only rescanned
        when its mtime moved — publishing creates a directory entry, so
        any cross-process publish dirties the mtime and invalidates the
        pointer.  Local publishes refresh the entry directly.
        """
        mdir = self._model_dir(name)
        try:
            stamp = mdir.stat().st_mtime_ns
        except (FileNotFoundError, NotADirectoryError):
            with self._lock:
                self._latest.pop(name, None)
            return 0
        with self._lock:
            cached = self._latest.get(name)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        # Stat-then-scan order matters: if a publish lands after the
        # stat, the scan may or may not see it, but the stored stamp is
        # pre-publish either way, so the next call invalidates.
        numbers = self._version_numbers(name)
        version = numbers[-1] if numbers else 0
        # Only memoize stamps safely in the past.  Filesystem mtime
        # granularity can be coarser than two back-to-back publishes: a
        # *later* publish could reuse a stamp taken within the current
        # granularity quantum, silently pinning this pointer.  A stamp
        # older than the settle window can never be reused, and
        # rescanning for a few extra milliseconds after each publish is
        # noise.
        if time.time_ns() - stamp > _MTIME_SETTLE_NS:
            with self._lock:
                self._latest[name] = (stamp, version)
        return version

    def _invalidate_latest(self, name: str) -> None:
        with self._lock:
            self._latest.pop(name, None)

    def _read_manifest(self, name: str, version: int) -> ModelVersion:
        """Load (or cache-hit) one claimed manifest; ``KeyError`` when
        missing, torn, or otherwise unreadable."""
        key = (name, version)
        with self._lock:
            mv = self._manifests.get(key)
            if mv is not None:
                self._manifests.move_to_end(key)
                return mv
        path = self._model_dir(name) / f"v{version:04d}.json"
        try:
            record = json.loads(path.read_text())
            mv = ModelVersion(
                record["name"],
                int(record["version"]),
                record["digest"],
                float(record.get("created", 0.0)),
                dict(record.get("meta", {})),
            )
        except (OSError, ValueError, TypeError, KeyError) as exc:
            # json.JSONDecodeError is a ValueError: a torn manifest and a
            # missing one both surface as the same miss to callers.
            raise KeyError(f"no version {version} of model {name!r}") from exc
        with self._lock:
            self._manifests[key] = mv
            self._manifests.move_to_end(key)
            while len(self._manifests) > 64:
                self._manifests.popitem(last=False)
        return mv

    def resolve(self, name: str, version: int | None = None) -> ModelVersion:
        """The :class:`ModelVersion` for ``name`` (latest when unversioned).

        Resolution is the freshness point of the registry: the latest
        pointer is re-checked against the manifest directory's mtime on
        every call, so a republish (from any process) is visible on the
        next resolve.  Only immutable state is memoized — claimed
        manifests and content-addressed blobs.

        A torn or partial manifest under ``name@latest`` (a publisher
        crashed mid-claim on a filesystem that let the link outlive its
        content) is *skipped*: resolution falls back to the newest
        readable predecessor, so readers keep serving the incumbent
        instead of failing on a version nobody finished publishing.  An
        explicitly requested version still raises — the caller named a
        version, and silently answering with a different one would be a
        correctness bug, not resilience.
        """
        self._check_name(name)
        if version is not None:
            return self._read_manifest(name, int(version))
        latest = self._latest_version_number(name)
        if latest == 0:
            raise KeyError(f"no model published under {name!r}")
        try:
            return self._read_manifest(name, latest)
        except KeyError:
            pass
        for fallback in reversed(self._version_numbers(name)):
            if fallback == latest:
                continue
            try:
                return self._read_manifest(name, fallback)
            except KeyError:
                continue
        raise KeyError(f"no readable version of model {name!r}")

    def names(self) -> list[str]:
        """Sorted names with at least one published version.

        Tolerates a missing (or concurrently deleted) ``models/``
        subdirectory: an empty registry answers ``[]``, it does not make
        a ``models`` protocol request crash the server.
        """
        mroot = self.root / "models"
        try:
            entries = os.listdir(mroot)
        except (FileNotFoundError, NotADirectoryError):
            return []
        return sorted(
            d for d in entries
            if (mroot / d).is_dir() and self._version_numbers(d)
        )

    def versions(self, name: str) -> list[int]:
        """Sorted version numbers published under ``name``."""
        self._check_name(name)
        return self._version_numbers(name)

    def __contains__(self, name) -> bool:
        try:
            return bool(self._version_numbers(self._check_name(name)))
        except ValueError:
            return False

    # -- loading ---------------------------------------------------------------

    def load(self, name: str, version: int | None = None):
        """Deserialize (or cache-hit) the model for ``name``/``version``."""
        return self.load_resolved(self.resolve(name, version))[0]

    def load_resolved(self, mv: ModelVersion):
        """Load by an already-resolved pointer; returns ``(model, mv)``.

        The serving engine cache goes through here so one resolution
        serves both the model bytes and the version identity.
        """
        with self._lock:
            if mv.digest in self._cache:
                self._cache.move_to_end(mv.digest)
                self._hits += 1
                return self._cache[mv.digest], mv
            self._misses += 1
        # Deserialize outside the lock: concurrent loads of *different*
        # digests shouldn't serialize on one pickle pass.
        path = self._object_path(mv.digest)

        def _read() -> bytes:
            fault_point("registry.read")
            return path.read_bytes()

        try:
            # Blob reads are retried briefly: on the serving path a
            # transient I/O error (NFS hiccup, EINTR-ish failure) should
            # cost milliseconds, not a 404 at the protocol boundary.
            model = loads_model(
                retry_call(_read, attempts=3, base_delay_s=0.01, deadline_s=1.0)
            )
        except OSError as exc:
            raise KeyError(
                f"registry object {mv.digest[:12]}... for {mv.ref} is missing"
            ) from exc
        with self._lock:
            if self.cache_size > 0:
                self._cache[mv.digest] = model
                self._cache.move_to_end(mv.digest)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return model, mv

    # -- introspection ---------------------------------------------------------

    def cache_info(self) -> dict:
        """Hit/miss counters and current occupancy of the LRU cache."""
        with self._lock:
            return {
                "size": len(self._cache),
                "capacity": self.cache_size,
                "hits": self._hits,
                "misses": self._misses,
            }

    def __repr__(self):
        return f"ModelRegistry({str(self.root)!r}, cache_size={self.cache_size})"

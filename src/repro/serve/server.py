"""Stdlib-only JSON model server over a :class:`ModelRegistry`.

Two transports, one protocol (see DESIGN.md, "Serving"):

``python -m repro.serve --registry DIR --http PORT``
    Threaded HTTP server; POST a JSON request body to any path.  Because
    requests arrive on concurrent handler threads, predict calls pass
    through a per-model :class:`MicroBatcher` that coalesces them into
    single engine batches (bounded by ``--max-batch`` rows or
    ``--max-delay-ms`` of waiting, whichever comes first).
``python -m repro.serve --registry DIR --stdin``
    Line protocol: one JSON request per stdin line, one JSON response
    per stdout line.  Single-threaded, so predictions run directly on
    the engine (a microbatcher would only add its flush delay).

Requests are objects with an ``op``: ``predict`` (``model``, optional
``version``, ``x`` = list of query rows), ``models``, ``stats``,
``ping``.  Responses always carry ``"ok"``; failures report
``{"ok": false, "error": ...}`` and never kill the server.

Engines are cached per resolved ``(name, version, digest)``.  An
unversioned ``predict`` re-resolves "latest" on every request, so a
model re-published mid-flight is picked up on the next batch without a
restart — the registry's digest-keyed cache guarantees no staleness.
"""
from __future__ import annotations

import argparse
import json
import os
import queue
import sys
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro import faults
from repro.serve.engine import PredictionEngine
from repro.serve.registry import ModelRegistry

__all__ = [
    "BatcherClosed",
    "MicroBatcher",
    "ModelServer",
    "Overloaded",
    "PredictTimeout",
    "main",
]


class BatcherClosed(RuntimeError):
    """Submit raced a :meth:`MicroBatcher.close` — retry on a fresh batcher.

    A distinct type so callers can tell infrastructure shutdown apart
    from a model-level ``RuntimeError`` raised inside the flush.
    """


class Overloaded(RuntimeError):
    """Admission control shed this request — the server is saturated.

    Raised when a bounded pending queue or the server's in-flight limit
    is full; the protocol layer turns it into the canonical
    ``{"ok": false, "error": "overloaded"}`` response (HTTP 503) so
    load balancers can retry elsewhere instead of piling on.
    """


class PredictTimeout(RuntimeError):
    """A predict outlived the per-request budget — answered with HTTP 504.

    Raised by :meth:`MicroBatcher.submit` when the batch containing the
    request did not flush within ``timeout_s``.  The waiter gets this
    (and the transport a 504) instead of blocking forever behind a
    wedged model; the batcher separately replaces its flush worker when
    the evidence says that worker is stuck (see
    :meth:`MicroBatcher._replace_wedged_worker`).
    """


def _jsonable_predictions(y: np.ndarray) -> list:
    """Strict-JSON-safe list form of a prediction vector.

    Non-finite predictions (e.g. exp overflow on a far extrapolation)
    serialize as ``null``, never an ``Infinity`` token.  The all-finite
    common case is one vectorized check plus ``.tolist()`` — the old
    per-element ``float(v) if math.isfinite(v) else None`` loop ran on
    every hot-path response.
    """
    y = np.asarray(y, dtype=float)
    finite = np.isfinite(y)
    if finite.all():
        return y.tolist()
    out = y.astype(object)
    out[~finite] = None
    return out.tolist()


class _Pending:
    """One submitted batch waiting for its slice of a flushed result."""

    __slots__ = ("x", "event", "result", "error")

    def __init__(self, x):
        self.x = x
        self.event = threading.Event()
        self.result = None
        self.error = None


class MicroBatcher:
    """Coalesce concurrent ``submit`` calls into single batched flushes.

    A background worker drains the queue: the first waiting item opens a
    batch window, further items join until the batch reaches
    ``max_batch`` rows or ``max_delay_s`` elapses, then all rows are
    concatenated and handed to ``flush_fn`` in one call.  Each submitter
    gets back exactly its slice; an exception in ``flush_fn`` propagates
    to every member of that batch (and only that batch).
    """

    def __init__(
        self,
        flush_fn,
        max_batch: int = 256,
        max_delay_s: float = 0.002,
        max_pending: int | None = None,
        timeout_s: float | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._flush_fn = flush_fn
        self.max_batch = int(max_batch)
        self.max_delay_s = max(float(max_delay_s), 0.0)
        # ``max_pending`` bounds the number of *waiting* submissions
        # (admission control): when the worker falls behind, submit
        # raises Overloaded instead of queueing unboundedly.
        self.max_pending = None if max_pending is None else max(int(max_pending), 1)
        # Per-request budget: a submit not answered within ``timeout_s``
        # raises PredictTimeout instead of waiting forever on a wedged
        # flush (None preserves the historical wait-forever behaviour).
        self.timeout_s = None if timeout_s is None else max(float(timeout_s), 1e-3)
        self._queue: queue.Queue = queue.Queue()
        self._pending = 0
        self._closed = False
        # Serializes the closed-check + enqueue against close(), so no
        # item can ever land behind the shutdown sentinel (which would
        # leave its submitter blocked forever).
        self._submit_lock = threading.Lock()
        # Flush-worker supervision: ``_flush_started`` is the wall mark
        # of the in-progress flush (None between flushes); ``_gen``
        # identifies the *current* worker thread, so an abandoned,
        # still-wedged predecessor can tell it has been replaced.
        self._flush_started: float | None = None
        self._gen = 0
        self._replacements = 0
        self._worker = threading.Thread(
            target=self._run, args=(0,), name="repro-serve-microbatch", daemon=True
        )
        self._worker.start()

    def submit(self, x: np.ndarray) -> np.ndarray:
        """Block until the batch containing ``x`` flushes; return its slice.

        Raises :class:`Overloaded` (without enqueueing) when
        ``max_pending`` submissions are already waiting, and
        :class:`PredictTimeout` when the flush misses ``timeout_s``.
        """
        item = _Pending(np.atleast_2d(np.asarray(x, dtype=float)))
        with self._submit_lock:
            if self._closed:
                raise BatcherClosed("MicroBatcher is closed")
            if self.max_pending is not None and self._pending >= self.max_pending:
                raise Overloaded("overloaded")
            self._pending += 1
            self._queue.put(item)
        if not item.event.wait(self.timeout_s):
            # Abandon the item (a late flush setting its event is
            # harmless — nobody is reading it) and check whether the
            # flush worker itself is the thing that is stuck.
            self._replace_wedged_worker()
            raise PredictTimeout(
                f"predict timed out after {self.timeout_s:.3f}s"
            )
        if item.error is not None:
            raise item.error
        return item.result

    def _replace_wedged_worker(self) -> None:
        """Spawn a fresh flush worker when the current one is stuck.

        Called from a timed-out submitter.  Evidence of a wedge: a flush
        has been in progress the whole time we waited (``_flush_started``
        at least ``timeout_s`` old).  The stuck thread cannot be killed
        (Python offers no such thing), so it is *abandoned*: a
        generation bump tells it to exit as soon as its flush_fn ever
        returns, and a replacement takes over the queue immediately —
        one slow model costs its own requests a 504, not the server its
        flush pipeline.  Replacing a merely-slow (not wedged) worker is
        possible under racing timeouts and harmless: both drain the same
        queue, each item is flushed by exactly one of them.
        """
        with self._submit_lock:
            if self._closed:
                return
            started = self._flush_started
            if started is None or time.perf_counter() - started < self.timeout_s:
                return  # worker is making progress; we were just queued behind
            self._gen += 1
            self._flush_started = None
            self._replacements += 1
            self._worker = threading.Thread(
                target=self._run,
                args=(self._gen,),
                name="repro-serve-microbatch",
                daemon=True,
            )
            self._worker.start()

    def _drained(self, n: int = 1) -> None:
        """Account ``n`` submissions leaving the pending queue."""
        if self.max_pending is not None:
            with self._submit_lock:
                self._pending -= n

    def close(self) -> None:
        """Stop the worker after draining in-flight items."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)
        self._worker.join(timeout=5.0)

    def _collect(self, first: _Pending) -> list:
        """Gather one batch: ``first`` plus joiners within the window."""
        batch = [first]
        rows = len(first.x)
        deadline = time.perf_counter() + self.max_delay_s
        while rows < self.max_batch:
            remaining = deadline - time.perf_counter()
            try:
                item = self._queue.get(
                    timeout=max(remaining, 0.0)
                ) if remaining > 0 else self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:  # close sentinel: stop collecting, flush what we have
                self._queue.put(None)
                break
            self._drained()
            batch.append(item)
            rows += len(item.x)
        return batch

    def _flush(self, batch: list) -> None:
        # Flush per column-width group: coalescing is an optimization, and
        # one request with an odd width must not fail its batchmates (a
        # hook-validated model rejects it per-request anyway; this guards
        # fallback-validated models where np.concatenate would raise).
        groups: dict = {}
        for item in batch:
            groups.setdefault(item.x.shape[1], []).append(item)
        for group in groups.values():
            self._flush_group(group)

    def _flush_group(self, batch: list) -> None:
        total = sum(len(item.x) for item in batch)
        try:
            ys = self._flush_fn(np.concatenate([item.x for item in batch]))
            ys = np.asarray(ys, dtype=float)
            # A flush_fn returning the wrong number of rows used to be
            # sliced apart silently — every submitter after the first
            # mismatch got a wrong-length (or wrong-owner) result.  Fail
            # the whole batch loudly instead.
            if ys.ndim != 1 or len(ys) != total:
                raise RuntimeError(
                    f"flush returned shape {ys.shape} for a batch of "
                    f"{total} rows; refusing to mis-slice results"
                )
            offset = 0
            for item in batch:
                item.result = ys[offset : offset + len(item.x)]
                offset += len(item.x)
        except BaseException as exc:  # propagate to every waiter in the batch
            for item in batch:
                item.error = exc
        finally:
            for item in batch:
                item.event.set()

    def _run(self, gen: int) -> None:
        while True:
            item = self._queue.get()
            with self._submit_lock:
                stale = gen != self._gen
            if stale:
                # Replaced while waiting: hand whatever we dequeued (an
                # item, or the close sentinel) to the successor and exit.
                self._queue.put(item)
                return
            if item is None:
                return
            self._drained()
            batch = self._collect(item)
            with self._submit_lock:
                if gen == self._gen:
                    self._flush_started = time.perf_counter()
            try:
                self._flush(batch)
            finally:
                with self._submit_lock:
                    if gen == self._gen:
                        self._flush_started = None
                    stale = gen != self._gen
            if stale:
                # Our wedged flush finally returned, but a replacement
                # already owns the queue; those waiters were answered
                # late (harmlessly — they stopped listening), we leave.
                return


class ModelServer:
    """Protocol layer: JSON requests in, JSON responses out.

    Transport-agnostic — the HTTP handler and the stdin loop both call
    :meth:`handle`.  ``microbatch=True`` (the HTTP default) routes
    predictions through one :class:`MicroBatcher` per engine so
    concurrent requests coalesce; the single-threaded stdin transport
    leaves it off.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        default_model: str | None = None,
        max_batch: int = 256,
        max_delay_ms: float = 2.0,
        microbatch: bool = False,
        engine_cache_size: int = 16,
        max_inflight: int | None = None,
        model_loader=None,
        request_timeout_ms: float | None = None,
    ):
        self.registry = registry
        self.default_model = default_model
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_ms) / 1e3
        self.microbatch = bool(microbatch)
        # Per-request predict budget (microbatched transports only): a
        # flush missing it answers 504 instead of wedging its handler
        # thread forever.  ``None``/``0`` disables (the stdin default —
        # single-threaded, nothing else to protect).
        self.request_timeout_s = (
            None if not request_timeout_ms else float(request_timeout_ms) / 1e3
        )
        # Engines pin their deserialized model (and, when microbatching,
        # a worker thread), so the cache is LRU-bounded: a long-running
        # server in the republish-while-serving regime must not
        # accumulate one engine per superseded version forever.
        self.engine_cache_size = max(int(engine_cache_size), 1)
        # Admission control: at most ``max_inflight`` predict requests
        # may be inside the engine at once; excess requests are shed
        # with an ``overloaded`` response instead of queueing without
        # bound (None disables shedding — the single-process default).
        self.max_inflight = None if max_inflight is None else max(int(max_inflight), 1)
        self._inflight = 0
        self._shed = 0
        # ``model_loader(registry, mv) -> model`` overrides where model
        # bytes come from; fleet workers pass a shared-memory attach
        # with disk fallback so N workers don't hold N deserialized
        # copies of the same published blob.
        self._model_loader = model_loader
        self._closed = False
        self._lock = threading.Lock()
        self._engines: OrderedDict = OrderedDict()  # (name, ver, digest) -> engine
        self._batchers: dict = {}            # engine ref ("name@vN") -> MicroBatcher
        self._schemas: OrderedDict = OrderedDict()  # digest -> describe() or None

    # -- engine resolution -----------------------------------------------------

    @staticmethod
    def _split_ref(ref: str) -> tuple:
        """``"name@vN"`` / ``"name@N"`` -> ``(name, N, None)``; channel refs
        ``"name@latest"`` / ``"name@shadow"`` -> ``(name, None, channel)``;
        bare names -> ``(name, None, None)``."""
        name, sep, ver = str(ref).partition("@")
        if not sep:
            return name, None, None
        if ver in ("latest", "shadow"):
            return name, None, ver
        ver = ver[1:] if ver[:1] in ("v", "V") else ver
        try:
            return name, int(ver), None
        except ValueError:
            raise ValueError(
                f"bad model reference {ref!r}: want name@vN, name@latest, "
                "or name@shadow"
            ) from None

    def engine_for(self, ref, version=None) -> PredictionEngine:
        """The (LRU-cached) engine for a model reference, resolved fresh."""
        name, ref_version, channel = self._split_ref(ref)
        if version is None:
            version = ref_version
        mv = self.registry.resolve(name, version, channel=channel)
        key = (mv.name, mv.version, mv.digest)
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                return engine
        if self._model_loader is not None:
            model = self._model_loader(self.registry, mv)
        else:
            model, mv = self.registry.load_resolved(mv)
        evicted = []
        with self._lock:
            engine = self._engines.get(key)
            if engine is None:
                engine = PredictionEngine(model, name=mv.ref)
                self._engines[key] = engine
                while len(self._engines) > self.engine_cache_size:
                    _, old = self._engines.popitem(last=False)
                    batcher = self._batchers.pop(old.name, None)
                    if batcher is not None:
                        evicted.append(batcher)
            else:
                self._engines.move_to_end(key)
        for batcher in evicted:  # close outside the lock (joins a thread)
            batcher.close()
        return engine

    def _predict(self, engine: PredictionEngine, X: np.ndarray) -> np.ndarray:
        """Run an already-validated batch through the engine.

        ``validate=False`` throughout: :meth:`_handle_predict` validated
        this request's rows, which is what protects batchmates — scanning
        the coalesced flush again would only re-do that work.
        """
        if not self.microbatch:
            return engine.predict(X, validate=False)
        flush = lambda batch: engine.predict(batch, validate=False)
        key = engine.name
        for _ in range(3):
            with self._lock:
                batcher = self._batchers.get(key)
                if batcher is None:
                    # Only (re)create a batcher while its engine is still
                    # cached and the server is open.  A racing predict
                    # used to re-install a batcher for a just-evicted
                    # engine — nothing would ever close it again, leaking
                    # the batcher and its daemon worker thread.
                    if self._closed or engine not in self._engines.values():
                        break
                    batcher = MicroBatcher(
                        flush,
                        max_batch=self.max_batch,
                        max_delay_s=self.max_delay_s,
                        max_pending=self.max_inflight,
                        timeout_s=self.request_timeout_s,
                    )
                    self._batchers[key] = batcher
            try:
                return batcher.submit(X)
            except BatcherClosed:
                # Lost a race with engine eviction closing this batcher;
                # drop the dead entry and retry on a fresh one.  Model
                # errors are NOT caught here — they propagate to handle()
                # without abandoning (and thereby leaking) live batchers.
                with self._lock:
                    if self._batchers.get(key) is batcher:
                        del self._batchers[key]
        # Evicted (or closing) mid-request: answer directly on the engine
        # we already hold rather than batching through infrastructure
        # that no longer owns it.
        return engine.predict(X, validate=False)

    def close(self) -> None:
        """Stop all batchers; idempotent, and final.

        Setting ``_closed`` under the lock before draining means a
        predict racing close can no longer install a fresh batcher
        after the drain — the leak path the old implementation left
        open (close-then-install made both the batcher and its worker
        thread unreachable).
        """
        with self._lock:
            self._closed = True
            batchers, self._batchers = list(self._batchers.values()), {}
        for b in batchers:
            b.close()

    # -- protocol --------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Answer one protocol request; errors become ``ok: false`` responses."""
        try:
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op", "predict")
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "models":
                return {"ok": True, "models": self._list_models()}
            if op == "stats":
                with self._lock:
                    engines = list(self._engines.values())
                    shed, inflight = self._shed, self._inflight
                return {
                    "ok": True,
                    "engines": [e.stats() for e in engines],
                    "registry": self.registry.cache_info(),
                    "admission": {
                        "max_inflight": self.max_inflight,
                        "inflight": inflight,
                        "shed": shed,
                    },
                }
            if op == "predict":
                return self._handle_predict(request)
            raise ValueError(f"unknown op {op!r}")
        except Overloaded:
            # Admission control shed the request.  ``code`` lets the
            # HTTP transport answer 503 so a fleet load balancer retries
            # another worker instead of treating it as a client error.
            return {"ok": False, "error": "overloaded", "code": 503}
        except PredictTimeout:
            # Must precede the RuntimeError clause below (it is one):
            # a missed deadline is 504, not a model-level refusal.
            return {"ok": False, "error": "timeout", "code": 504}
        except KeyError as exc:
            # Unknown model/version: 404, not 400 — a load balancer must
            # be able to tell a miss from a malformed request.
            return {"ok": False, "error": f"not found: {exc.args[0]}", "code": 404}
        except (ValueError, TypeError, RuntimeError) as exc:
            # RuntimeError covers model-level refusals (e.g. an unfitted
            # model published to the registry).
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # the protocol boundary: "failures never
            # kill the server" must hold for *any* model-raised exception
            # (LinAlgError, IndexError, ...), not just the expected types.
            return {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }

    def _handle_predict(self, request: dict) -> dict:
        ref = request.get("model") or self.default_model
        if not ref:
            raise ValueError("no 'model' in request and no default model")
        if "x" not in request:
            raise ValueError("predict request needs 'x': a list of query rows")
        try:
            X = np.asarray(request["x"], dtype=float)
        except (ValueError, TypeError):
            raise ValueError("'x' must be a numeric array of query rows") from None
        self._admit()
        try:
            engine = self.engine_for(ref, request.get("version"))
            X = engine.validate(X)
            t0 = time.perf_counter()
            y = self._predict(engine, X)
            latency_ms = 1e3 * (time.perf_counter() - t0)
        finally:
            self._release()
        return {
            "ok": True,
            "model": engine.name,
            "n": int(len(y)),
            "y": _jsonable_predictions(y),
            "latency_ms": latency_ms,
        }

    def _admit(self) -> None:
        """Count a predict in; shed (raise Overloaded) past the limit."""
        if self.max_inflight is None:
            return
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._shed += 1
                raise Overloaded("overloaded")
            self._inflight += 1

    def _release(self) -> None:
        if self.max_inflight is None:
            return
        with self._lock:
            self._inflight -= 1

    def _schema_for(self, mv) -> dict | None:
        """Memoized ``describe()`` record per digest.

        Computed at most once per blob, so a periodic ``models`` poll
        neither re-deserializes every published model nor thrashes the
        registry's LRU out from under the serving hot path.  Failures are
        *not* memoized (a transiently unreadable blob should not report
        ``schema: null`` forever), and the memo is LRU-bounded so a
        republish-heavy server cannot grow it without limit.
        """
        with self._lock:
            if mv.digest in self._schemas:
                self._schemas.move_to_end(mv.digest)
                return self._schemas[mv.digest]
        try:
            model, _ = self.registry.load_resolved(mv)
        except KeyError:
            return None  # transient: retry on the next request
        schema = None
        describe = getattr(model, "describe", None)
        if callable(describe):
            try:
                schema = describe()
            except RuntimeError:
                schema = None  # e.g. an unfitted model was published
        with self._lock:
            self._schemas[mv.digest] = schema
            self._schemas.move_to_end(mv.digest)
            while len(self._schemas) > 4 * self.engine_cache_size:
                self._schemas.popitem(last=False)
        return schema

    def _list_models(self) -> list:
        out = []
        for name in self.registry.names():
            mv = self.registry.resolve(name)
            entry = mv.to_record()
            entry["versions"] = self.registry.versions(name)
            entry["schema"] = self._schema_for(mv)
            out.append(entry)
        return out


# -- transports ----------------------------------------------------------------


def _http_handler(server: ModelServer):
    """A request-handler class bound to one :class:`ModelServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _reply(self, payload: dict, status: int = 200) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # health / liveness probe
            self._reply(server.handle({"op": "ping"}))

        def do_POST(self):
            try:
                length = int(self.headers.get("Content-Length", 0))
                request = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError):
                self._reply({"ok": False, "error": "bad JSON request body"}, 400)
                return
            response = server.handle(request)
            # Failures carry an optional ``code`` (404 unknown model,
            # 503 overloaded); anything else malformed is a plain 400.
            status = 200 if response.get("ok") else int(response.get("code", 400))
            self._reply(response, status)

        def log_message(self, fmt, *args):  # keep stdout for the protocol
            print(f"[serve] {fmt % args}", file=sys.stderr)

    return Handler


def serve_http(server: ModelServer, port: int, host: str = "127.0.0.1"):
    """Build (not start) the threaded HTTP server; caller owns its lifecycle."""
    return ThreadingHTTPServer((host, port), _http_handler(server))


def serve_stdin(server: ModelServer, lines=None, out=None) -> int:
    """Line protocol: one JSON request per line in, one response per line out."""
    lines = sys.stdin if lines is None else lines
    out = sys.stdout if out is None else out
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"bad JSON: {exc}"}
        else:
            response = server.handle(request)
        print(json.dumps(response), file=out, flush=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve published performance models over JSON.",
    )
    parser.add_argument("--registry", required=True,
                        help="ModelRegistry directory (see repro.serve)")
    transport = parser.add_mutually_exclusive_group(required=True)
    transport.add_argument("--http", type=int, metavar="PORT",
                           help="listen for JSON-over-HTTP on this port")
    transport.add_argument("--stdin", action="store_true",
                           help="read one JSON request per stdin line")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--model", default=None,
                        help="default model for predict requests without one")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="microbatch flush size (rows)")
    parser.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="microbatch window before a partial flush")
    parser.add_argument("--cache-size", type=int, default=8,
                        help="registry LRU capacity (deserialized models)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes sharing the port (HTTP only; "
                             ">1 starts a repro.serve.fleet)")
    parser.add_argument("--max-inflight", type=int, default=128,
                        help="per-process admission bound before requests "
                             "are shed with 503 overloaded")
    parser.add_argument("--request-timeout-ms", type=float, default=30000.0,
                        help="per-request predict budget before a 504 "
                             "(0 disables)")
    parser.add_argument("--kernel-backend", default=None, metavar="NAME",
                        help="force this completion-kernel backend (see "
                             "repro.core.completion.backends) for any model "
                             "fitting this process — or its fleet workers — "
                             "performs; default: auto-select")
    parser.add_argument("--fault-plan", default=None, metavar="JSON|@FILE",
                        help="install a repro.faults FaultPlan (chaos runs): "
                             "inline JSON or @path/to/plan.json")
    args = parser.parse_args(argv)

    if args.fault_plan:
        faults.install(faults.plan_from_arg(args.fault_plan))
    else:
        faults.install_from_env()

    if args.kernel_backend is not None:
        from repro.core.completion.backends import ENV_VAR, get_backend

        # Validate eagerly (unknown names list the registered backends)
        # and publish via the env override so every fit in this process
        # — and in forked fleet workers — resolves to it.
        os.environ[ENV_VAR] = get_backend(args.kernel_backend).name

    if args.workers > 1:
        if args.http is None:
            parser.error("--workers requires --http (the fleet shares a port)")
        from repro.serve.fleet import (  # circular at module scope
            ServeFleet,
            exit_on_sigterm,
        )

        # ``kill <pid>`` must tear the fleet down like Ctrl-C does:
        # reap workers, unlink shm segments (creator-only discipline).
        exit_on_sigterm()
        fleet = ServeFleet(
            args.registry,
            workers=args.workers,
            port=args.http,
            host=args.host,
            default_model=args.model,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            max_inflight=args.max_inflight,
            request_timeout_ms=args.request_timeout_ms,
            kernel_backend=args.kernel_backend,
        )
        fleet.start()
        print(
            f"[serve] registry={fleet.registry.root} fleet of "
            f"{fleet.workers} workers ({fleet.socket_mode}) listening on "
            f"http://{fleet.host}:{fleet.port}",
            file=sys.stderr,
        )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            fleet.stop()
        return 0

    registry = ModelRegistry(args.registry, cache_size=args.cache_size)
    server = ModelServer(
        registry,
        default_model=args.model,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        microbatch=args.http is not None,
        max_inflight=args.max_inflight,
        request_timeout_ms=args.request_timeout_ms,
    )
    if args.stdin:
        return serve_stdin(server)
    httpd = serve_http(server, args.http, host=args.host)
    host, port = httpd.server_address[:2]
    print(f"[serve] registry={registry.root} listening on http://{host}:{port}",
          file=sys.stderr)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        server.close()
    return 0

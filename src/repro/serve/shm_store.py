"""Shared-memory model store: one blob in RAM, every worker maps it.

The fleet's workers all serve the same published model, and a
deserialized :class:`~repro.core.CPRModel` is dominated by its factor
matrices (plus the discretization grid and, for streaming payloads, the
observed tensor).  Loading the registry blob once per worker would scale
resident memory with the worker count; this module instead *packs* a
model into one ``multiprocessing.shared_memory`` segment that every
worker attaches read-only and reconstructs **zero-copy**:

* The packer pickles the model's persistence payload
  (:func:`~repro.utils.serialization.model_payload`) with **pickle
  protocol 5 out-of-band buffers**: numpy extracts every contiguous
  array as a raw buffer, leaving a small in-band stream of structure.
* The segment holds a tiny JSON directory, the in-band pickle, and the
  raw buffers (64-byte aligned).
* An attacher re-runs ``pickle.loads`` with ``buffers=`` pointing at
  read-only memoryviews *into the mapped segment* — numpy rebuilds each
  array as a view over shared memory, so the factor matrices are never
  copied into the worker.

Naming and lifecycle ("unlink discipline", see DESIGN.md):

* Serialization is a byte-level fixed point, so the registry digest
  identifies the blob; the segment name is derived from it
  (:func:`segment_name`) and doubles as the cross-process rendezvous —
  no extra coordination channel is needed.
* Exactly one process (the fleet parent) **creates** segments and is
  the only one that ever calls ``unlink`` — once per segment, at
  supersede-eviction or shutdown.  Attachers never unlink and never
  unregister, so the stdlib resource tracker stays consistent: the
  creator's single unlink removes the tracker entry, and if the parent
  dies without cleanup the tracker reclaims the segments at shutdown.
* POSIX keeps an unlinked segment mapped until the last attacher drops
  it, so eviction never tears memory out from under an in-flight
  predict.
"""
from __future__ import annotations

import json
import pickle
import threading

import numpy as np

from repro.faults import fault_point
from repro.utils.serialization import model_payload, payload_to_model

try:  # gated: some minimal platforms build Python without _posixshmem
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised only on exotic builds
    _shared_memory = None

__all__ = [
    "shared_memory_available",
    "segment_name",
    "pack_model",
    "attach_model",
    "ShmLease",
    "ShmModelStore",
    "shared_fraction",
]

_MAGIC = b"RPROSHM1"
_ALIGN = 64


def shared_memory_available() -> bool:
    """Whether this platform supports ``multiprocessing.shared_memory``."""
    return _shared_memory is not None


def segment_name(digest: str) -> str:
    """Shared-memory segment name for a registry blob digest.

    Truncated to stay under the strictest common POSIX limit (31 chars
    including the leading slash on macOS); 96 digest bits keep the
    collision probability irrelevant at fleet scale.
    """
    return f"repro-{digest[:24]}"


def _require_shm():
    if _shared_memory is None:
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    return _shared_memory


def _pad(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmLease:
    """Keeps one attached segment mapped while its model is alive.

    The reconstructed model's arrays are views into the mapping, so the
    mapping itself cannot disappear while they exist; the lease's job is
    to release the file descriptor and mapping promptly once the model
    is garbage-collected (a long-lived worker crossing many republishes
    must not accumulate one fd per superseded version).
    """

    def __init__(self, shm):
        self._shm = shm

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    def release(self) -> None:
        """Drop the mapping if no array still references it."""
        shm = self._shm
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # arrays still alive: keep the handle, retry later
            return
        self._shm = None

    def __del__(self):  # best effort; exceptions in __del__ are swallowed
        try:
            self.release()
        except Exception:
            pass


def pack_model(model, digest: str, *, fit_state: bool = False):
    """Create (or reuse) the shared segment for ``model`` under ``digest``.

    Returns the :class:`multiprocessing.shared_memory.SharedMemory`
    handle — the caller owns it and is responsible for the single
    ``unlink``.  ``fit_state=False`` by default: serving workers only
    predict, so the observed-tensor warm-start state would be dead
    weight in the segment.

    If the segment already exists (a previous fleet crashed without
    cleanup, or two packers raced), it is validated by magic + length
    and reused when sound, recreated when corrupt.
    """
    shm_mod = _require_shm()
    fault_point("shm.pack")
    buffers: list = []
    payload = model_payload(model, fit_state=fit_state)
    inband = pickle.dumps(
        payload, protocol=5, buffer_callback=lambda b: buffers.append(b.raw())
    )
    directory = {
        "inband": [0, len(inband)],
        "buffers": [[0, b.nbytes] for b in buffers],
    }
    # Two passes: sizing the directory changes its own length, so lay
    # out with placeholder offsets first, then fill the real ones in a
    # fixed-width header region.
    header = json.dumps(directory).encode("ascii")
    header_len = _pad(len(header) + 256)  # slack for the real offsets
    offset = _pad(len(_MAGIC) + 8 + header_len)
    directory["inband"][0] = offset
    offset += _pad(len(inband))
    for entry in directory["buffers"]:
        entry[0] = offset
        offset += _pad(entry[1])
    total = max(offset, 1)

    header = json.dumps(directory).encode("ascii")
    if len(header) > header_len:  # pragma: no cover - 256B slack suffices
        raise RuntimeError("shm directory overflowed its header region")

    name = segment_name(digest)
    try:
        shm = shm_mod.SharedMemory(name=name, create=True, size=total)
    except FileExistsError:
        shm = shm_mod.SharedMemory(name=name)
        if bytes(shm.buf[: len(_MAGIC)]) == _MAGIC and shm.size >= total:
            return shm  # sound leftover from a previous packer: reuse
        # Corrupt or truncated: replace it (we are the packing side, so
        # unlink-and-recreate is within the creator's discipline).
        shm.close()
        try:
            shm_mod.SharedMemory(name=name).unlink()
        except FileNotFoundError:
            pass
        shm = shm_mod.SharedMemory(name=name, create=True, size=total)

    buf = shm.buf
    buf[: len(_MAGIC)] = _MAGIC
    buf[len(_MAGIC) : len(_MAGIC) + 8] = len(header).to_bytes(8, "little")
    hstart = len(_MAGIC) + 8
    buf[hstart : hstart + len(header)] = header
    o, n = directory["inband"]
    buf[o : o + n] = inband
    for (o, n), b in zip(directory["buffers"], buffers):
        buf[o : o + n] = b
    return shm


def attach_model(digest: str):
    """Map the segment for ``digest`` and rebuild its model zero-copy.

    Returns ``(model, lease)``.  Raises ``FileNotFoundError`` when no
    such segment exists (callers fall back to a disk load) and
    ``ValueError`` when the segment exists but is not a packed model.
    The model's contiguous arrays are **read-only views into shared
    memory** — byte-for-byte the packer's arrays, with no per-process
    copy.
    """
    shm_mod = _require_shm()
    fault_point("shm.attach")
    shm = shm_mod.SharedMemory(name=segment_name(digest))
    try:
        view = shm.buf.toreadonly()
        if bytes(view[: len(_MAGIC)]) != _MAGIC:
            raise ValueError(f"segment {segment_name(digest)!r} is not a model")
        hstart = len(_MAGIC) + 8
        hlen = int.from_bytes(view[len(_MAGIC) : hstart], "little")
        directory = json.loads(bytes(view[hstart : hstart + hlen]))
        o, n = directory["inband"]
        payload = pickle.loads(
            view[o : o + n],
            buffers=[view[o : o + n] for o, n in directory["buffers"]],
        )
        model = payload_to_model(payload)
        return model, ShmLease(shm)
    except BaseException:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - partial reconstruction
            pass
        raise


class ShmModelStore:
    """Creator-side bookkeeping: pack blobs, enforce the unlink discipline.

    One instance lives in the fleet parent.  ``ensure(digest, model)``
    is idempotent; ``evict``/``close`` unlink each created segment
    exactly once (double unlinks would desynchronize the stdlib
    resource tracker, single ones keep it exact).  An LRU bound caps
    resident segments under republish churn — superseded segments are
    unlinked immediately, which is safe because attached workers keep
    their mappings until they drop them.
    """

    def __init__(self, max_segments: int = 8):
        self.max_segments = max(int(max_segments), 1)
        self._lock = threading.Lock()
        self._segments: dict = {}  # digest -> SharedMemory (insertion = LRU)

    def ensure(self, digest: str, model) -> bool:
        """Pack ``model`` under ``digest`` unless already resident."""
        with self._lock:
            if digest in self._segments:
                # Move to MRU position so hot models survive the bound.
                self._segments[digest] = self._segments.pop(digest)
                return False
        shm = pack_model(model, digest)
        stale = []
        with self._lock:
            if digest in self._segments:  # raced with another ensure
                stale.append((digest, shm, False))
            else:
                self._segments[digest] = shm
                while len(self._segments) > self.max_segments:
                    old_digest = next(iter(self._segments))
                    stale.append(
                        (old_digest, self._segments.pop(old_digest), True)
                    )
        for _, old_shm, unlink in stale:
            self._release(old_shm, unlink=unlink)
        return True

    def digests(self) -> list:
        with self._lock:
            return list(self._segments)

    def evict(self, digest: str) -> None:
        with self._lock:
            shm = self._segments.pop(digest, None)
        if shm is not None:
            self._release(shm, unlink=True)

    def close(self) -> None:
        with self._lock:
            segments, self._segments = list(self._segments.values()), {}
        for shm in segments:
            self._release(shm, unlink=True)

    @staticmethod
    def _release(shm, unlink: bool) -> None:
        try:
            if unlink:
                shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup won
            pass
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a local view is still live
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def shared_fraction(model) -> float:
    """Fraction of the model's array bytes that live in shared memory.

    Diagnostic used by tests and the fleet smoke job: close to 1.0 for a
    shm-attached CPR/Tucker model (everything big is a view into the
    segment), 0.0 for a disk-loaded one.
    """
    shared = total = 0
    seen = set()

    def walk(obj):
        nonlocal shared, total
        if id(obj) in seen:
            return
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            total += obj.nbytes
            if not (obj.flags.writeable or obj.base is None):
                shared += obj.nbytes
            return
        if isinstance(obj, dict):
            for v in obj.values():
                walk(v)
        elif isinstance(obj, (list, tuple, set)):
            for v in obj:
                walk(v)
        elif hasattr(obj, "__dict__"):
            for v in vars(obj).values():
                walk(v)

    walk(model_payload(model, fit_state=False))
    return shared / total if total else 0.0

"""Batched prediction front-end for one fitted model.

The engine is the serving hot path: a query batch is validated once
(:meth:`~repro.core.CPRModel.validate_queries`), then flows through the
model's fused corner-blend evaluation in **one vectorized call per
chunk** — there is no per-point Python loop anywhere between the JSON
boundary and the BLAS kernels.  Chunking (``max_batch``) only bounds the
transient ``2^q x n`` corner-stack memory for pathological batch sizes;
within a chunk everything is a single ``cp_eval``.

Every flush is timed, so :meth:`stats` doubles as the microbatching
telemetry: under a coalescing server, ``queries / batches`` is the
effective batch size the batcher achieved.
"""
from __future__ import annotations

import inspect
import threading
import time

import numpy as np

from repro.core.model import rank_attribution
from repro.faults import fault_point

__all__ = ["PredictionEngine"]


def _served_rank(model) -> int | None:
    """Integer CP rank the model serves at, or ``None`` when rank-less."""
    info = rank_attribution(model)
    rank = info.get("adapted_rank", info.get("rank"))
    return rank if isinstance(rank, int) else None


def _supports_skip_validation(model) -> bool:
    """Whether ``model.predict`` accepts the ``validate=False`` fast path."""
    try:
        return "validate" in inspect.signature(model.predict).parameters
    except (TypeError, ValueError):
        return False


class PredictionEngine:
    """Validate and answer query batches against one fitted model.

    Parameters
    ----------
    model
        Any fitted model exposing ``predict`` over a ``(n, d)`` batch.
        Models with ``validate_queries`` (CPR/Tucker) get request
        validation *before* the kernels run; others fall back to their
        own ``predict``-time checks.
    name
        Label reported in :meth:`stats` (typically ``name@vN``).
    max_batch
        Upper bound on rows per vectorized call; larger batches are
        split into consecutive chunks (still no per-point loop).
    """

    def __init__(self, model, name: str = "model", max_batch: int = 65536):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.model = model
        self.name = name
        self.max_batch = int(max_batch)
        # Rows are validated exactly once at the engine boundary; models
        # exposing predict(validate=...) (CPR/Tucker) skip their internal
        # re-validation on every call/chunk.
        self._predict_kwargs = (
            {"validate": False} if _supports_skip_validation(model) else {}
        )
        self._lock = threading.Lock()
        self._batches = 0
        self._queries = 0
        self._total_s = 0.0
        self._max_s = 0.0
        self._last_s = 0.0
        self._last_n = 0

    # -- model lifecycle -------------------------------------------------------

    def swap_model(self, model, name: str | None = None) -> None:
        """Atomically replace the served model (streaming republish path).

        The streaming pipeline serves from a long-lived engine while the
        trainer refits in the same process; on republish it swaps the new
        model in under the stats lock, so an in-flight ``predict`` that
        already grabbed the old reference completes against a consistent
        model and every later call sees the new one — no torn state, and
        the engine's lifetime telemetry carries across versions.
        """
        kwargs = {"validate": False} if _supports_skip_validation(model) else {}
        with self._lock:
            self.model = model
            self._predict_kwargs = kwargs
            if name is not None:
                self.name = name

    # -- queries ---------------------------------------------------------------

    def validate(self, X, model=None) -> np.ndarray:
        """Normalize/reject a raw query batch (before any kernel runs)."""
        hook = getattr(self.model if model is None else model,
                       "validate_queries", None)
        if callable(hook):
            return hook(X)
        X = np.asarray(X, dtype=float)
        return X[:, None] if X.ndim == 1 else X

    def predict(self, X, *, validate: bool = True) -> np.ndarray:
        """Predictions for a batch; records latency.

        Pass ``validate=False`` when the rows were already validated —
        the server does per-request validation before microbatching, so
        re-scanning the concatenated flush batch would be pure overhead
        on the hot path.
        """
        fault_point("engine.predict")
        with self._lock:  # pair model + kwargs consistently under swap_model
            model, kw = self.model, self._predict_kwargs
        if validate:
            # Validate against the same reference that will predict: a
            # swap landing mid-call must not leave rows normalized by one
            # model's contract and evaluated (unvalidated) by another's.
            X = self.validate(X, model)
        else:
            X = np.atleast_2d(np.asarray(X, dtype=float))
        t0 = time.perf_counter()
        if len(X) <= self.max_batch:
            y = np.asarray(model.predict(X, **kw), dtype=float)
        else:
            parts = [
                np.asarray(
                    model.predict(X[i : i + self.max_batch], **kw), dtype=float
                )
                for i in range(0, len(X), self.max_batch)
            ]
            y = np.concatenate(parts)
        elapsed = time.perf_counter() - t0
        with self._lock:
            self._batches += 1
            self._queries += len(X)
            self._total_s += elapsed
            self._max_s = max(self._max_s, elapsed)
            self._last_s = elapsed
            self._last_n = len(X)
        return y

    # -- telemetry -------------------------------------------------------------

    def stats(self) -> dict:
        """Lifetime latency/throughput counters (JSON-serializable)."""
        with self._lock:
            model = self.model
            batches, queries = self._batches, self._queries
            total_s, max_s = self._total_s, self._max_s
            last_s, last_n = self._last_s, self._last_n
        return {
            "model": self.name,
            # Where the model bytes live: "shm" for a fleet worker's
            # zero-copy shared-memory attach, "local" for a plain
            # deserialized (per-process) copy.
            "source": getattr(model, "_served_from_", "local"),
            # Which kernel backend fitted the active model (None for
            # models without backend attribution, e.g. baselines).
            "fit_backend": getattr(model, "fit_backend_", None),
            # CP rank the active model actually serves (the adapted rank
            # for ``rank="auto"`` fits; None for rank-less baselines).
            "rank": _served_rank(model),
            "batches": batches,
            "queries": queries,
            "total_seconds": total_s,
            "mean_batch_ms": 1e3 * total_s / batches if batches else 0.0,
            "max_batch_ms": 1e3 * max_s,
            "last_batch_ms": 1e3 * last_s,
            "last_batch_size": last_n,
            "mean_batch_size": queries / batches if batches else 0.0,
            "queries_per_second": queries / total_s if total_s > 0 else 0.0,
        }

    def __repr__(self):
        return (
            f"PredictionEngine({self.name!r}, max_batch={self.max_batch}, "
            f"queries={self._queries})"
        )

"""repro: Application Performance Modeling via Tensor Completion (SC'23 reproduction).

Public API highlights
---------------------
``CPRModel`` / ``TuckerModel``
    Grid-discretized tensor-completion performance models (the paper's
    contribution and its Tucker future-work variant).
``get_application`` and the classes in :mod:`repro.apps`
    The six benchmark simulators with the paper's Table 2 parameter spaces.
``generate_dataset``
    Sampling per the paper's data-collection protocol.
``mlogq`` and friends in :mod:`repro.metrics`
    The scale-independent error metrics of Table 1.
``repro.baselines``
    The nine comparison model families, implemented from scratch.
``repro.experiments``
    Drivers that regenerate every table and figure of the evaluation
    (also available as ``python -m repro.experiments``).
"""

from repro.apps import get_application
from repro.core import CPRModel, TuckerModel
from repro.datasets import generate_dataset
from repro.metrics import mlogq

__version__ = "1.0.0"

__all__ = [
    "CPRModel",
    "TuckerModel",
    "get_application",
    "generate_dataset",
    "mlogq",
    "__version__",
]

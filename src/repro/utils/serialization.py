"""Model persistence and size accounting.

The paper assesses model size by writing the fitted model to disk with
``joblib`` and measuring file size (Section 6.0.4).  ``joblib`` is a thin
wrapper around :mod:`pickle` for objects without large memory-mapped arrays,
so we use pickle directly; the byte counts play the same role.

Size accounting and persistence share one *minimal-state protocol*: a
model that implements ``__getstate_for_size__`` (the state to measure)
**and** a ``_from_minimal_state`` classmethod (the inverse) is saved as
exactly the state that ``model_size_bytes`` measures, so the reported
model size and the on-disk size agree and fit-time buffers (observation
tensors, optimizer traces) never reach disk.  The round trip is lossless
for prediction — ``load_model(save_model(m)).predict == m.predict`` —
which the persistence tests assert for ``CPRModel`` and ``TuckerModel``.
Objects without the full protocol are pickled whole, as before.
"""
from __future__ import annotations

import hashlib
import io
import pickle
from importlib import import_module
from pathlib import Path

__all__ = [
    "model_size_bytes",
    "dumps_model",
    "loads_model",
    "model_digest",
    "save_model",
    "load_model",
]

#: Tag identifying a minimal-state record on disk.
_MINIMAL_FORMAT = "repro.minimal-state.v1"


def _minimal_state_hooks(model):
    """The (state_fn, restore_fn) pair, or ``(None, None)`` if incomplete."""
    state_fn = getattr(model, "__getstate_for_size__", None)
    restore_fn = getattr(type(model), "_from_minimal_state", None)
    if callable(state_fn) and callable(restore_fn):
        return state_fn, restore_fn
    return None, None


def model_size_bytes(model) -> int:
    """Return the pickled size of ``model`` in bytes.

    Models that implement ``__getstate_for_size__`` can shrink the persisted
    representation (e.g. dropping caches of training data that are not needed
    for prediction); otherwise the full object state is measured.
    """
    state = model
    hook = getattr(model, "__getstate_for_size__", None)
    if callable(hook):
        state = hook()
    buf = io.BytesIO()
    pickle.dump(state, buf, protocol=pickle.HIGHEST_PROTOCOL)
    return buf.getbuffer().nbytes


def dumps_model(model) -> bytes:
    """Serialize ``model`` to bytes (the payload :func:`save_model` writes).

    Minimal-state models are written as their measured state plus a small
    class tag; everything else is pickled whole.  This is the byte-level
    entry point the serving registry content-addresses
    (:func:`model_digest` hashes exactly these bytes).
    """
    state_fn, _ = _minimal_state_hooks(model)
    if state_fn is not None:
        payload = {
            "__format__": _MINIMAL_FORMAT,
            "class": (type(model).__module__, type(model).__qualname__),
            "state": state_fn(),
        }
    else:
        payload = model
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def loads_model(data: bytes):
    """Inverse of :func:`dumps_model`."""
    obj = pickle.loads(data)
    if isinstance(obj, dict) and obj.get("__format__") == _MINIMAL_FORMAT:
        module, qualname = obj["class"]
        cls = getattr(import_module(module), qualname)
        return cls._from_minimal_state(obj["state"])
    return obj


def model_digest(model) -> str:
    """SHA-256 hex digest of the serialized model bytes.

    Two models publish to the same registry object exactly when their
    persisted states are byte-identical — the content address the serving
    layer stores blobs under.
    """
    return hashlib.sha256(dumps_model(model)).hexdigest()


def save_model(model, path) -> int:
    """Persist ``model`` to ``path``; return the number of bytes written."""
    data = dumps_model(model)
    Path(path).write_bytes(data)
    return len(data)


def load_model(path):
    """Load a model previously written by :func:`save_model`."""
    return loads_model(Path(path).read_bytes())

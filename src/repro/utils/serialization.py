"""Model persistence and size accounting.

The paper assesses model size by writing the fitted model to disk with
``joblib`` and measuring file size (Section 6.0.4).  ``joblib`` is a thin
wrapper around :mod:`pickle` for objects without large memory-mapped arrays,
so we use pickle directly; the byte counts play the same role.
"""
from __future__ import annotations

import io
import pickle
from pathlib import Path

__all__ = ["model_size_bytes", "save_model", "load_model"]


def model_size_bytes(model) -> int:
    """Return the pickled size of ``model`` in bytes.

    Models that implement ``__getstate_for_size__`` can shrink the persisted
    representation (e.g. dropping caches of training data that are not needed
    for prediction); otherwise the full object state is measured.
    """
    state = model
    hook = getattr(model, "__getstate_for_size__", None)
    if callable(hook):
        state = hook()
    buf = io.BytesIO()
    pickle.dump(state, buf, protocol=pickle.HIGHEST_PROTOCOL)
    return buf.getbuffer().nbytes


def save_model(model, path) -> int:
    """Pickle ``model`` to ``path``; return the number of bytes written."""
    data = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    Path(path).write_bytes(data)
    return len(data)


def load_model(path):
    """Load a model previously written by :func:`save_model`."""
    return pickle.loads(Path(path).read_bytes())

"""Model persistence and size accounting.

The paper assesses model size by writing the fitted model to disk with
``joblib`` and measuring file size (Section 6.0.4).  ``joblib`` is a thin
wrapper around :mod:`pickle` for objects without large memory-mapped arrays,
so we use pickle directly; the byte counts play the same role.

Size accounting and persistence share one *minimal-state protocol*: a
model that implements ``__getstate_for_size__`` (the state to measure)
**and** a ``_from_minimal_state`` classmethod (the inverse) is saved as
exactly the state that ``model_size_bytes`` measures, so the reported
model size and the on-disk size agree and fit-time buffers (optimizer
traces, observation plans) never reach disk.  The round trip is lossless
for prediction — ``load_model(save_model(m)).predict == m.predict`` —
which the persistence tests assert for ``CPRModel`` and ``TuckerModel``.
Objects without the full protocol are pickled whole, as before.

Streaming extension (PR 5): a model may additionally implement
``__getstate_fit__`` / ``_restore_fit_state`` — a *compact* warm-start
state (for CPR: the observed tensor's indices/means/counts, the
sufficient statistic of ``partial_fit``).  It travels in the payload
under a separate ``"fit"`` key, restored transparently by
:func:`loads_model`, so a restored model keeps absorbing streaming
measurements instead of refusing.  ``model_size_bytes`` deliberately
does **not** count it: the Figure 7 metric measures the prediction
state, and ``dumps_model(model, fit_state=False)`` recovers the exact
prediction-only bytes when a consumer wants them (the on-disk overhead
of the default is the fit state itself, bounded by the observed cell
count, never the raw training set).
"""
from __future__ import annotations

import hashlib
import io
import pickle
from importlib import import_module
from pathlib import Path

import numpy as np

__all__ = [
    "canonical_array",
    "model_size_bytes",
    "model_payload",
    "payload_to_model",
    "dumps_model",
    "loads_model",
    "model_digest",
    "save_model",
    "load_model",
]


def canonical_array(a: np.ndarray) -> np.ndarray:
    """``a`` (or a no-copy view of it) with the canonical dtype instance.

    Content-addressed publishing needs ``dumps_model`` to be a pure
    function of the model's *values*, but pickle's memoization encodes
    object *identity*: a freshly fitted model's arrays all share numpy's
    canonical dtype singletons, while an unpickled model's arrays carry
    per-payload dtype instances — same values, different byte streams,
    different digests.  Rebinding every array to the canonical dtype (a
    view; the buffer is never copied or mutated) makes serialization a
    fixed point: fit → dump → load → dump reproduces identical bytes.
    """
    a = np.ascontiguousarray(a)
    if a.dtype.names is not None:  # structured dtypes: leave untouched
        return a
    dt = np.dtype(a.dtype.name)
    if a.dtype is dt:
        return a
    # Equal dtype, different instance: reinterpreting the buffer is safe.
    # Different byte order compares unequal and must *convert* the values
    # (a view would silently byteswap them).
    return a.view(dt) if a.dtype == dt else a.astype(dt)


def _canonical_state(obj):
    """Recursively canonicalize arrays in a minimal-state tree."""
    if isinstance(obj, np.ndarray):
        return canonical_array(obj)
    if isinstance(obj, dict):
        return {k: _canonical_state(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(_canonical_state(v) for v in obj)
    return obj

#: Tag identifying a minimal-state record on disk.
_MINIMAL_FORMAT = "repro.minimal-state.v1"


def _minimal_state_hooks(model):
    """The (state_fn, restore_fn) pair, or ``(None, None)`` if incomplete."""
    state_fn = getattr(model, "__getstate_for_size__", None)
    restore_fn = getattr(type(model), "_from_minimal_state", None)
    if callable(state_fn) and callable(restore_fn):
        return state_fn, restore_fn
    return None, None


def model_size_bytes(model) -> int:
    """Return the pickled size of ``model`` in bytes.

    Models that implement ``__getstate_for_size__`` can shrink the persisted
    representation (e.g. dropping caches of training data that are not needed
    for prediction); otherwise the full object state is measured.
    """
    state = model
    hook = getattr(model, "__getstate_for_size__", None)
    if callable(hook):
        state = _canonical_state(hook())
    buf = io.BytesIO()
    pickle.dump(state, buf, protocol=pickle.HIGHEST_PROTOCOL)
    return buf.getbuffer().nbytes


def model_payload(model, fit_state: bool = True):
    """The picklable payload object :func:`dumps_model` serializes.

    Exposed separately so consumers that need a different *byte* layout
    than a flat pickle — the fleet's shared-memory store pickles this
    payload with protocol-5 out-of-band buffers, letting every worker
    process map the factor matrices zero-copy — share one definition of
    "what a persisted model is" with :func:`dumps_model`.
    """
    state_fn, _ = _minimal_state_hooks(model)
    if state_fn is None:
        return model
    payload = {
        "__format__": _MINIMAL_FORMAT,
        "class": (type(model).__module__, type(model).__qualname__),
        "state": _canonical_state(state_fn()),
    }
    fit_fn = getattr(model, "__getstate_fit__", None)
    if fit_state and callable(fit_fn):
        fit = fit_fn()
        if fit is not None:
            payload["fit"] = _canonical_state(fit)
    return payload


def payload_to_model(obj):
    """Rebuild a model from :func:`model_payload` output (or pass through)."""
    if isinstance(obj, dict) and obj.get("__format__") == _MINIMAL_FORMAT:
        module, qualname = obj["class"]
        cls = getattr(import_module(module), qualname)
        model = cls._from_minimal_state(obj["state"])
        restore = getattr(model, "_restore_fit_state", None)
        if "fit" in obj and callable(restore):
            restore(obj["fit"])
        return model
    return obj


def dumps_model(model, fit_state: bool = True) -> bytes:
    """Serialize ``model`` to bytes (the payload :func:`save_model` writes).

    Minimal-state models are written as their measured state plus a small
    class tag; everything else is pickled whole.  This is the byte-level
    entry point the serving registry content-addresses
    (:func:`model_digest` hashes exactly these bytes).

    ``fit_state=True`` (default) also packs the model's compact
    warm-start state (``__getstate_fit__``, when implemented) so the
    restored model supports ``partial_fit``; pass ``False`` for a
    prediction-only snapshot whose bytes equal exactly the state
    ``model_size_bytes`` measures.
    """
    payload = model_payload(model, fit_state=fit_state)
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def loads_model(data: bytes):
    """Inverse of :func:`dumps_model` (restores fit state when present)."""
    return payload_to_model(pickle.loads(data))


def model_digest(model) -> str:
    """SHA-256 hex digest of the serialized model bytes.

    Two models publish to the same registry object exactly when their
    persisted states are byte-identical — the content address the serving
    layer stores blobs under.
    """
    return hashlib.sha256(dumps_model(model)).hexdigest()


def save_model(model, path, fit_state: bool = True) -> int:
    """Persist ``model`` to ``path``; return the number of bytes written."""
    data = dumps_model(model, fit_state=fit_state)
    Path(path).write_bytes(data)
    return len(data)


def load_model(path):
    """Load a model previously written by :func:`save_model`."""
    return loads_model(Path(path).read_bytes())

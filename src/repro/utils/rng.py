"""Deterministic random number generation helpers.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or a :class:`numpy.random.Generator`.  All of them
route through :func:`as_generator` so that experiments are reproducible given
a single integer seed.
"""
from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_rngs"]


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed
        ``None`` (fresh OS entropy), an ``int``, a :class:`numpy.random.SeedSequence`,
        or an existing :class:`numpy.random.Generator` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so that child streams do
    not overlap, which matters when e.g. each tree of a random forest draws
    its own bootstrap sample.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by jumping the parent's bit generator state.
        return [np.random.default_rng(seed.integers(0, 2**63 - 1)) for _ in range(n)]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]

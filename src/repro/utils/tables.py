"""Plain-text table rendering for benchmark harness output.

The benchmark drivers print the same rows/series the paper's figures plot;
this module renders them as aligned monospace tables.
"""
from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

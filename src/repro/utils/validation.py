"""Input validation helpers shared by models and metrics."""
from __future__ import annotations

import numpy as np

__all__ = ["check_1d", "check_2d", "check_positive", "check_matching_rows"]


def check_1d(x, name: str = "array") -> np.ndarray:
    """Return ``x`` as a contiguous 1-D float array, raising on bad shape."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def check_2d(x, name: str = "array") -> np.ndarray:
    """Return ``x`` as a contiguous 2-D float array (rows are samples)."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def check_positive(x, name: str = "array") -> np.ndarray:
    """Return ``x`` as an array, requiring all entries strictly positive."""
    arr = np.asarray(x, dtype=float)
    if arr.size and not np.all(arr > 0):
        bad = float(np.min(arr))
        raise ValueError(f"{name} must be strictly positive (min={bad})")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    return arr


def check_matching_rows(X: np.ndarray, y: np.ndarray) -> None:
    """Raise when the number of samples in ``X`` and ``y`` disagree."""
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
        )

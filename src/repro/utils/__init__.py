"""Shared utilities: RNG handling, serialization, validation, tables."""
from repro.utils.rng import as_generator, spawn_rngs
from repro.utils.serialization import load_model, model_size_bytes, save_model
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_matching_rows,
    check_positive,
)

__all__ = [
    "as_generator",
    "spawn_rngs",
    "model_size_bytes",
    "save_model",
    "load_model",
    "check_1d",
    "check_2d",
    "check_positive",
    "check_matching_rows",
    "format_table",
]

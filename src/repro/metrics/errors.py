"""Aggregate error metrics from Table 1 of the paper.

Every metric takes model predictions ``m`` and true positive outputs ``y``
(execution times) and returns the *mean* aggregate (the paper's table lists
sums scaled by ``M``; we report per-sample means, a constant factor that does
not affect model ranking).

Two parallel formulations are provided for each metric:

* the direct *mathematical expression* over ``(m, y)``, and
* the *error expression* over relative errors ``eps = m / y - 1``
  (:func:`epsilon_form`).

Rows 1-5 of Table 1 are exactly equivalent between the two forms; rows 6-7
(MLogQ, MLogQ2) match to low-order Taylor expansion in ``eps``.  Both forms
are implemented so tests and benchmarks can verify the table numerically.

Only MLogQ and MLogQ2 are scale-independent: they penalize ``m = a*y`` and
``m = y/a`` equally, which is why the paper adopts MLogQ for model assessment
and MLogQ2 as a differentiable training loss.
"""
from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_positive

__all__ = [
    "mape",
    "mae",
    "mse",
    "smape",
    "lgmape",
    "mlogq",
    "mlogq2",
    "log_q",
    "relative_errors",
    "epsilon_form",
    "METRICS",
]


def _prep(m, y) -> tuple[np.ndarray, np.ndarray]:
    m = check_1d(m, "predictions")
    y = check_1d(y, "targets")
    if m.shape != y.shape:
        raise ValueError(f"shape mismatch: predictions {m.shape} vs targets {y.shape}")
    check_positive(y, "targets")
    return m, y


def relative_errors(m, y) -> np.ndarray:
    """Relative errors ``eps_k = m_k / y_k - 1`` (paper Section 2.2)."""
    m, y = _prep(m, y)
    return m / y - 1.0


def mape(m, y) -> float:
    """Mean absolute percentage error ``mean(|m - y| / y)``."""
    m, y = _prep(m, y)
    return float(np.mean(np.abs(m - y) / y))


def mae(m, y) -> float:
    """Mean absolute error ``mean(|m - y|)``."""
    m, y = _prep(m, y)
    return float(np.mean(np.abs(m - y)))


def mse(m, y) -> float:
    """Mean squared error ``mean((m - y)^2)``."""
    m, y = _prep(m, y)
    return float(np.mean((m - y) ** 2))


def smape(m, y) -> float:
    """Symmetric MAPE ``2 * mean(|m - y| / (y + m))``.

    Follows the paper's Table 1 definition.  Requires ``y + m != 0``; for the
    positive execution times modeled here ``m`` is expected non-negative.
    """
    m, y = _prep(m, y)
    denom = y + m
    if np.any(denom == 0):
        raise ValueError("SMAPE undefined when m + y == 0")
    return float(2.0 * np.mean(np.abs(m - y) / denom))


def lgmape(m, y) -> float:
    """Log geometric-mean APE ``mean(log(|m - y| / y))``.

    Diverges to ``-inf`` for exact predictions; retained for completeness of
    Table 1 rather than recommended for use.
    """
    m, y = _prep(m, y)
    ratio = np.abs(m - y) / y
    with np.errstate(divide="ignore"):
        return float(np.mean(np.log(ratio)))


def log_q(m, y) -> np.ndarray:
    """Per-sample log accuracy ratios ``log(m_k / y_k)``.

    Non-positive predictions are clipped to a tiny positive constant first
    (the paper assigns non-positive entries ``1e-16`` before evaluating
    MLogQ in Figure 1).
    """
    m, y = _prep(m, y)
    m = np.maximum(m, 1e-16)
    return np.log(m / y)


def mlogq(m, y) -> float:
    """Mean absolute log accuracy ratio ``mean(|log(m / y)|)``.

    The paper's headline, scale-independent error metric.
    """
    return float(np.mean(np.abs(log_q(m, y))))


def mlogq2(m, y) -> float:
    """Mean squared log accuracy ratio ``mean(log^2(m / y))``."""
    return float(np.mean(log_q(m, y) ** 2))


# --- Table 1 right-hand column: expressions in eps = m/y - 1 ----------------


def _eps_mape(eps, y):
    return float(np.mean(np.abs(eps)))


def _eps_mae(eps, y):
    return float(np.mean(np.abs(y * eps)))


def _eps_mse(eps, y):
    return float(np.mean((y * eps) ** 2))


def _eps_smape(eps, y):
    return float(2.0 * np.mean(np.abs(eps / (2.0 + eps))))


def _eps_lgmape(eps, y):
    with np.errstate(divide="ignore"):
        return float(np.mean(np.log(np.abs(eps))))


def _eps_mlogq(eps, y):
    # First-order Taylor form |eps / (1 + eps)|; exact form is |log(1+eps)|.
    return float(np.mean(np.abs(eps / (1.0 + eps))))


def _eps_mlogq2(eps, y):
    return float(np.mean((eps / (1.0 + eps)) ** 2))


_EPS_FORMS = {
    "mape": _eps_mape,
    "mae": _eps_mae,
    "mse": _eps_mse,
    "smape": _eps_smape,
    "lgmape": _eps_lgmape,
    "mlogq": _eps_mlogq,
    "mlogq2": _eps_mlogq2,
}

#: Metric name -> direct (m, y) implementation; the rows of Table 1.
METRICS = {
    "mape": mape,
    "mae": mae,
    "mse": mse,
    "smape": smape,
    "lgmape": lgmape,
    "mlogq": mlogq,
    "mlogq2": mlogq2,
}


def epsilon_form(name: str, eps, y) -> float:
    """Evaluate Table 1's *error expression* column for metric ``name``.

    ``eps`` are relative errors ``m/y - 1`` and ``y`` the true outputs.  For
    rows 1-5 this equals the direct metric exactly; for MLogQ/MLogQ2 it is
    the paper's low-order approximant ``|eps/(1+eps)|`` (resp. its square).
    """
    eps = check_1d(eps, "eps")
    y = check_1d(y, "y")
    try:
        fn = _EPS_FORMS[name]
    except KeyError:
        raise KeyError(f"unknown metric {name!r}; options: {sorted(_EPS_FORMS)}") from None
    return fn(eps, y)

"""Error metrics for performance-model assessment (paper Table 1, Section 2.2)."""
from repro.metrics.errors import (
    METRICS,
    epsilon_form,
    lgmape,
    log_q,
    mae,
    mape,
    mlogq,
    mlogq2,
    mse,
    relative_errors,
    smape,
)

__all__ = [
    "mape",
    "mae",
    "mse",
    "smape",
    "lgmape",
    "mlogq",
    "mlogq2",
    "log_q",
    "relative_errors",
    "METRICS",
    "epsilon_form",
]

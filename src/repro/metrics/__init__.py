"""Error metrics for performance-model assessment (paper Table 1, Section 2.2)."""
from repro.metrics.errors import (
    mape,
    mae,
    mse,
    smape,
    lgmape,
    mlogq,
    mlogq2,
    log_q,
    relative_errors,
    METRICS,
    epsilon_form,
)

__all__ = [
    "mape",
    "mae",
    "mse",
    "smape",
    "lgmape",
    "mlogq",
    "mlogq2",
    "log_q",
    "relative_errors",
    "METRICS",
    "epsilon_form",
]

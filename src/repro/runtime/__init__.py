"""Parallel, resumable experiment runtime.

The paper's evaluation is a large sweep — ~10 model families x
hyper-parameter grids x 6 applications x several training-set sizes,
re-fitted per figure.  This package turns that workload into declarative
*jobs* that can be executed in parallel and cached on disk:

:class:`~repro.runtime.spec.JobSpec`
    A declarative job: the import path of a runner function plus a
    JSON-canonical parameter dict.  Content-addressed via a SHA-256 of the
    canonical spec (:attr:`JobSpec.key`).
:class:`~repro.runtime.cache.ResultCache`
    On-disk result store keyed by spec hash; one JSON record per job, so
    sweeps are resumable and incrementally re-runnable.
:class:`~repro.runtime.executor.Runtime`
    Sequential or process-pool executor with deterministic per-job
    seeding and per-worker dataset reuse (workers share the harness's
    process-local dataset cache).
:class:`~repro.runtime.queue.WorkQueue`
    Elastic work-queue executor: specs are spooled to a shared
    directory, and any number of worker processes (local or on other
    hosts sharing the filesystem) claim them via O_CREAT|O_EXCL lease
    files with heartbeat + stale-lease reclaim.  ``Runtime(queue_dir=,
    queue_workers=)`` and ``python -m repro.experiments --queue DIR
    --queue-workers N`` run whole sweeps through it.

Figure drivers build job lists (``build_jobs``) and submit them through
:func:`~repro.runtime.executor.execute`; ``python -m repro.experiments``
exposes the ``--jobs`` and ``--cache-dir`` knobs.  Streaming replays are
jobs too: :func:`repro.stream.runner.stream_job_spec` wraps a whole
drift-monitored stream session as one cacheable spec (deterministic
given its seed), so sweeps over streaming scenarios resume like any
other sweep.
"""
from repro.runtime.cache import ResultCache
from repro.runtime.executor import Runtime, execute
from repro.runtime.queue import WorkQueue, run_queue_worker
from repro.runtime.spec import CACHE_SCHEMA_VERSION, JobSpec, canonical, to_jsonable

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "JobSpec",
    "ResultCache",
    "Runtime",
    "WorkQueue",
    "canonical",
    "execute",
    "run_queue_worker",
    "to_jsonable",
]

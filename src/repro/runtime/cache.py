"""Content-addressed on-disk result cache.

One JSON file per job record, at ``<root>/<key[:2]>/<key>.json`` — the
two-character fan-out keeps directories small for paper-scale sweeps
(thousands of jobs).  Records store the spec alongside the result so a
cache directory is self-describing.  Note: records use Python's extended
JSON (``NaN``/``Infinity`` tokens, e.g. the Tucker refusal rows), so
audit them with ``python -m json.tool`` rather than a strict parser.

Writes are atomic (temp file + ``os.replace``) so concurrent workers and
interrupted runs can never leave a half-written record: a sweep killed
mid-flight resumes by re-running only the jobs whose records are missing.
Corrupt or unreadable records behave as misses.
"""
from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.runtime.spec import CACHE_SCHEMA_VERSION, JobSpec, to_jsonable

__all__ = ["ResultCache"]


class ResultCache:
    """Filesystem store mapping :attr:`JobSpec.key` to result records."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec_or_key) -> Path:
        key = spec_or_key.key if isinstance(spec_or_key, JobSpec) else str(spec_or_key)
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: JobSpec):
        """The cached result for ``spec``, or ``None`` on miss/corruption."""
        path = self.path_for(spec)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict) or "result" not in record:
            return None
        if record.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        return record["result"]

    def put(self, spec: JobSpec, result, elapsed: float | None = None) -> Path:
        """Atomically persist ``result`` for ``spec``; return the record path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": spec.key,
            "fn": spec.fn,
            "params": to_jsonable(spec.params),
            "elapsed_seconds": elapsed,
            "result": to_jsonable(result),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, spec) -> bool:
        return self.get(spec) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every record; return how many were removed."""
        n = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            n += 1
        return n

    def __repr__(self):
        return f"ResultCache({str(self.root)!r})"

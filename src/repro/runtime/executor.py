"""Job execution: sequential fallback and the process-pool path.

Determinism contract (see DESIGN.md, "Runtime & caching"):

* every randomized quantity a runner consumes is derived from seeds in
  its spec params (the experiment layer already threads explicit seeds
  everywhere), so a job's result is independent of which worker runs it
  and in what order;
* as a belt-and-braces measure the executor additionally seeds numpy's
  *legacy* global RNG per job from the spec hash before invoking the
  runner, so stray ``np.random.*`` calls in model code cannot couple jobs
  through shared process state;
* results are normalized through a JSON round-trip before they are
  returned or cached, so the sequential path, the pool path, and a
  cache-hit replay yield byte-identical records.

Worker-side dataset reuse comes for free: runners go through
``repro.experiments.harness.get_dataset``, whose bounded cache is
process-local, so a worker that executes several jobs for the same
application generates its measurement pool once.
"""
from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path

import numpy as np

from repro.faults import fault_point, retry_call
from repro.runtime.cache import ResultCache
from repro.runtime.spec import JobSpec, resolve_runner, to_jsonable

__all__ = ["Runtime", "execute"]


def _run_one(item):
    """Execute one ``(fn, params, key, retries, retry_delay_s)`` tuple.

    Top-level so it is picklable for the pool path.  Returns
    ``(record, elapsed_seconds)`` — the job's own wall time (last
    attempt only), so cached timings identify slow jobs rather than
    batch averages.

    Transient failures (``OSError`` and subclasses — the I/O class of
    failure) are retried up to ``retries`` times with backoff; each
    attempt re-seeds the legacy global RNG from the spec hash first, so
    a retry replays *exactly* the run that failed (the determinism
    contract survives retries).  Deterministic failures (``TypeError``,
    ``ValueError``, a runner bug) propagate immediately — re-running a
    bug is a waste, and quarantine (below) is the policy for those.
    """
    fn_path, params, key, retries, retry_delay_s = item

    def attempt():
        np.random.seed(int(key[:8], 16) % 2**32)
        fault_point("runtime.job")
        t0 = time.perf_counter()
        result = resolve_runner(fn_path)(**params)
        record = json.loads(json.dumps(to_jsonable(result)))
        return record, time.perf_counter() - t0

    return retry_call(
        attempt,
        attempts=max(int(retries), 0) + 1,
        base_delay_s=retry_delay_s,
        retry_on=(OSError,),
    )


class Runtime:
    """Executes job lists sequentially or on a process pool, with caching.

    Parameters
    ----------
    jobs
        Worker-process count.  ``1`` (the default) preserves the
        historical sequential in-process behaviour exactly — no pool, no
        pickling, just a loop over the runners.
    cache_dir
        Directory for the content-addressed :class:`ResultCache`.  When
        ``None``, nothing is persisted and every job executes.
    on_result
        Optional callback ``(spec, record) -> None`` invoked in the
        *driver* process for each job that actually executed (cache hits
        are skipped — their side effects already happened).  This is the
        publish-after-fit hook: the serving layer registers a callback
        that pushes freshly fitted models into a
        :class:`repro.serve.ModelRegistry` as sweeps complete (see
        ``run_tune_job``'s ``publish_dir`` for the job-level variant).
    retries, retry_delay_s
        Transient-failure policy: each job gets ``retries`` extra
        attempts (backoff from ``retry_delay_s``, full jitter) when it
        fails with an ``OSError`` — the flaky-filesystem / crashed-
        worker class of failure.  Deterministic exceptions are never
        retried.
    quarantine
        ``False`` (default): a job that exhausts retries fails the
        sweep, exactly the historical behaviour.  ``True``: the failure
        is recorded in :attr:`quarantined` as ``(spec, exception)``, the
        job's slot in the results list stays ``None``, and the rest of
        the sweep completes — one poison job no longer discards an
        afternoon of finished (and cached) work.
    queue_dir, queue_workers
        Elastic work-queue mode (see :mod:`repro.runtime.queue`): pending
        specs are spooled under ``queue_dir`` and executed by
        ``queue_workers`` claimed-lease worker processes instead of a
        process pool.  Results land in the same :class:`ResultCache`
        (``cache_dir`` if given, else ``<queue_dir>/results``), so
        resume/caching semantics are unchanged — a queue sweep and a
        sequential sweep of the same specs produce byte-identical
        records.  Extra workers may join the same spool from other
        processes or hosts at any time.
    queue_lease_ttl_s
        Heartbeat TTL for queue leases; a worker SIGKILLed mid-job stops
        heartbeating, and after this many seconds a surviving worker
        reclaims and re-runs the job (idempotently).

    ``hits``/``executed`` count cache hits and actually-run jobs across
    the runtime's lifetime; :meth:`snapshot` lets callers report per-sweep
    deltas.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        on_result=None,
        retries: int = 2,
        retry_delay_s: float = 0.05,
        quarantine: bool = False,
        queue_dir=None,
        queue_workers: int = 2,
        queue_lease_ttl_s: float = 10.0,
    ):
        self.jobs = max(int(jobs), 1)
        self.queue_dir = queue_dir
        self.queue_workers = max(int(queue_workers), 1)
        self.queue_lease_ttl_s = float(queue_lease_ttl_s)
        if cache_dir is None and queue_dir is not None:
            cache_dir = Path(queue_dir) / "results"
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.on_result = on_result
        self.retries = max(int(retries), 0)
        self.retry_delay_s = max(float(retry_delay_s), 0.0)
        self.quarantine = bool(quarantine)
        self.quarantined: list = []
        self.hits = 0
        self.executed = 0

    def snapshot(self) -> tuple:
        """Current ``(hits, executed)`` counters."""
        return (self.hits, self.executed)

    def _record(self, spec: JobSpec, record, elapsed: float) -> None:
        """Book-keep one finished job (counter + cache write)."""
        self.executed += 1
        if self.cache is not None:
            self.cache.put(spec, record, elapsed=elapsed)
        if self.on_result is not None:
            self.on_result(spec, record)

    def run(self, specs: list) -> list:
        """Execute ``specs`` and return their records in submission order.

        Cached jobs are answered from disk without executing anything;
        the remainder run sequentially (``jobs == 1``) or on a process
        pool.  Records are cached *as each job completes*, so a sweep
        interrupted or failed mid-batch keeps every finished job and
        resumes from exactly the missing ones.
        """
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, JobSpec):
                raise TypeError(f"expected JobSpec, got {type(spec).__name__}")
        results: list = [None] * len(specs)
        pending = []
        for i, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                self.hits += 1
            else:
                pending.append(i)
        if not pending:
            return results

        if self.queue_dir is not None:
            self._run_queued(specs, pending, results)
            return results

        items = [
            (specs[i].fn, specs[i].params, specs[i].key,
             self.retries, self.retry_delay_s)
            for i in pending
        ]
        if self.jobs == 1 or len(pending) == 1:
            # In-process path: the per-job reseeding must not leak into the
            # caller's global RNG stream (historical sequential behaviour).
            saved_rng = np.random.get_state()
            try:
                for i, item in zip(pending, items):
                    try:
                        record, elapsed = _run_one(item)
                    except Exception as exc:
                        if not self.quarantine:
                            raise
                        self.quarantined.append((specs[i], exc))
                        continue
                    results[i] = record
                    self._record(specs[i], record, elapsed)
            finally:
                np.random.set_state(saved_rng)
        else:
            workers = min(self.jobs, len(pending))
            failure = None
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_one, item): i
                    for item, i in zip(items, pending)
                }
                for fut in as_completed(futures):
                    i = futures[fut]
                    try:
                        record, elapsed = fut.result()
                    except BaseException as exc:
                        # Keep consuming so finished jobs still get cached;
                        # then either quarantine the failures or surface
                        # the first one (historical behaviour).
                        if self.quarantine and isinstance(exc, Exception):
                            self.quarantined.append((specs[i], exc))
                        elif failure is None:
                            failure = exc
                        continue
                    results[i] = record
                    self._record(specs[i], record, elapsed)
            if failure is not None:
                raise failure
        return results

    def _run_queued(self, specs: list, pending: list, results: list) -> None:
        """Execute the pending slots through a spooled work queue.

        The driver submits, spawns local workers, and waits for the spool
        to drain; results are read back from the shared cache (the same
        records a worker on another host would have pushed).  A failed
        job either quarantines or raises, mirroring the in-process paths.
        """
        from repro.runtime.queue import WorkQueue

        queue = WorkQueue(
            self.queue_dir, cache=self.cache, lease_ttl_s=self.queue_lease_ttl_s
        )
        keys = queue.submit(specs[i] for i in pending)
        workers = queue.spawn_workers(self.queue_workers)
        try:
            queue.drain(keys, workers=workers)
        finally:
            for worker in workers:
                worker.join(timeout=10.0)
                if worker.is_alive():  # pragma: no cover - wedged worker
                    worker.terminate()
        failures = queue.failures()
        failure = None
        for i in pending:
            spec = specs[i]
            record = self.cache.get(spec)
            if record is not None:
                results[i] = record
                self.executed += 1
                if self.on_result is not None:
                    self.on_result(spec, record)
                continue
            error = failures.get(spec.key, {}).get("error", "no result record")
            exc = RuntimeError(f"queue job {spec.describe()} failed: {error}")
            if self.quarantine:
                self.quarantined.append((spec, exc))
            elif failure is None:
                failure = exc
        if failure is not None:
            raise failure

    def __repr__(self):
        where = self.cache.root if self.cache is not None else None
        return f"Runtime(jobs={self.jobs}, cache_dir={where!r})"


def execute(specs: list, runtime: Runtime | None = None) -> list:
    """Run ``specs`` through ``runtime``, or a sequential uncached default.

    This is the single entry point figure drivers use; passing
    ``runtime=None`` reproduces the pre-runtime sequential behaviour.
    """
    return (runtime if runtime is not None else Runtime()).run(specs)

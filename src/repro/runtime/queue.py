"""Elastic work-queue executor: N processes claim JobSpecs from a spool.

The process-pool path (:class:`~repro.runtime.executor.Runtime`) scales
to the cores of one machine and dies with its driver.  The work queue
scales past both: the driver *submits* content-addressed JobSpecs into a
shared **spool directory**, and any number of worker processes — spawned
by the driver, started by hand on other hosts sharing the filesystem, or
added mid-sweep — claim specs, run them, and push the results as
ordinary :class:`~repro.runtime.cache.ResultCache` records.  Resume,
caching, and byte-identical replay therefore work exactly as they do for
the sequential and pool paths: the queue changes *who* runs a job, never
what the job produces.

Spool layout (everything under one directory)::

    <spool>/specs/<key>.json    submitted specs (atomic writes, idempotent)
    <spool>/leases/<key>.lease  claim files (O_CREAT|O_EXCL + heartbeat mtime)
    <spool>/failed/<key>.json   terminal failure records
    <spool>/results/...         default ResultCache root (driver may override)

Lease protocol
--------------
* **Claim**: a worker owns a spec iff it created ``leases/<key>.lease``
  with ``O_CREAT|O_EXCL`` — the one filesystem operation that is atomic
  everywhere.  Exactly one racer wins; losers move on.
* **Heartbeat**: while the job runs, a daemon thread bumps the lease
  mtime every ``lease_ttl_s / 4``.  The mtime is the liveness signal.
* **Stale reclaim**: a lease whose mtime is older than ``lease_ttl_s``
  belongs to a dead worker (SIGKILL, OOM, power loss — no cleanup ran).
  A reclaimer atomically *renames* the stale lease to a tombstone (only
  one renamer can win) before claiming fresh, so two workers can never
  both reclaim the same death.
* **Duplicate execution is safe, not prevented**: runners are pure and
  cache writes are atomic, so the worst outcome of a reclaimed-but-alive
  worker (a very long GC pause, say) is the same record written twice.
  Correctness never depends on the lease — only efficiency does.

Failures mirror :class:`Runtime`'s policy: transient ``OSError``\\ s are
retried in-worker by ``_run_one``; a deterministic failure writes a
``failed/`` record so the sweep can finish and the driver can raise or
quarantine, and so other workers stop re-claiming a poison spec.
"""
from __future__ import annotations

import json
import os
import time
import threading
import multiprocessing
from pathlib import Path

from repro.faults import fault_point, install_from_env, active
from repro.runtime.cache import ResultCache
from repro.runtime.spec import JobSpec

__all__ = ["WorkQueue", "run_queue_worker", "probe_job"]

#: Lease mtimes older than this many seconds mark their owner dead.
DEFAULT_LEASE_TTL_S = 10.0


def probe_job(value=0, sleep_s: float = 0.0, fail: bool = False) -> dict:
    """A trivial pure runner for queue tests and throughput benchmarks.

    Returns ``{"value": value}`` after sleeping ``sleep_s`` (simulated
    work); ``fail=True`` raises deterministically (the poison-job case —
    never retried, lands in ``failed/``).
    """
    if fail:
        raise ValueError(f"probe_job failed on demand (value={value})")
    if sleep_s > 0:
        time.sleep(float(sleep_s))
    return {"value": value}


class _Heartbeat:
    """Daemon thread bumping a lease file's mtime while a job runs."""

    def __init__(self, path: Path, interval_s: float):
        self.path = path
        self.interval_s = max(float(interval_s), 0.01)
        self._stop = threading.Event()
        self.lost = False  # lease vanished: someone reclaimed us
        self._thread = threading.Thread(
            target=self._run, name="repro-queue-heartbeat", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                fault_point("queue.heartbeat")
                os.utime(self.path)
            except FileNotFoundError:
                # Reclaimed out from under us (we looked dead).  The job
                # keeps running — its result is idempotent — but the
                # lease is no longer ours to refresh.
                self.lost = True
                return
            except OSError:
                # A transient utime failure just skips one beat; the TTL
                # gives us several beats of slack before we look dead.
                continue

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class WorkQueue:
    """A spool of content-addressed JobSpecs shared by driver and workers.

    Parameters
    ----------
    spool
        The shared spool directory (created on first use).
    cache
        :class:`ResultCache` receiving finished records.  Defaults to
        ``<spool>/results`` — pass the sweep's own cache directory to
        make queue results land where resume expects them.
    lease_ttl_s
        Seconds without a heartbeat after which a lease is considered
        abandoned and may be reclaimed.
    poll_interval_s
        Worker sleep between scans that found no claimable work.
    """

    def __init__(
        self,
        spool,
        cache: ResultCache | None = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        poll_interval_s: float = 0.1,
    ):
        self.spool = Path(spool)
        self.specs_dir = self.spool / "specs"
        self.leases_dir = self.spool / "leases"
        self.failed_dir = self.spool / "failed"
        for d in (self.specs_dir, self.leases_dir, self.failed_dir):
            d.mkdir(parents=True, exist_ok=True)
        self.cache = cache if cache is not None else ResultCache(self.spool / "results")
        self.lease_ttl_s = max(float(lease_ttl_s), 0.1)
        self.poll_interval_s = max(float(poll_interval_s), 0.005)
        self.claimed = 0
        self.reclaimed = 0

    # -- submission (driver side) ----------------------------------------------

    def submit(self, specs) -> list[str]:
        """Write spec files for every job not already answered by the cache.

        Idempotent: submitting the same spec twice writes one file, and a
        spec whose result is already cached is not spooled at all (the
        driver answers it as a cache hit).  Returns the submitted keys.
        """
        submitted = []
        for spec in specs:
            if not isinstance(spec, JobSpec):
                raise TypeError(f"expected JobSpec, got {type(spec).__name__}")
            if self.cache.get(spec) is not None:
                continue
            path = self.specs_dir / f"{spec.key}.json"
            if not path.exists():
                payload = json.dumps(
                    {"fn": spec.fn, "params": spec.params},
                    indent=1,
                    default=_json_default,
                )
                tmp = path.with_suffix(f".tmp.{os.getpid()}")
                tmp.write_text(payload)
                os.replace(tmp, path)
            submitted.append(spec.key)
        return submitted

    def load_spec(self, key: str) -> JobSpec:
        record = json.loads((self.specs_dir / f"{key}.json").read_text())
        return JobSpec(record["fn"], record["params"])

    # -- state scans -----------------------------------------------------------

    def _spec_keys(self) -> list[str]:
        return sorted(
            p.stem for p in self.specs_dir.glob("*.json") if not p.stem.startswith(".")
        )

    def is_done(self, key: str) -> bool:
        """Whether ``key`` has a finished record (cache writes are atomic,
        so existence implies completeness)."""
        return self.cache.path_for(key).exists()

    def is_failed(self, key: str) -> bool:
        return (self.failed_dir / f"{key}.json").exists()

    def pending(self) -> list[str]:
        """Submitted keys with neither a result nor a failure record."""
        return [
            k for k in self._spec_keys() if not self.is_done(k) and not self.is_failed(k)
        ]

    def failures(self) -> dict:
        """``key -> failure record`` for every failed spec."""
        out = {}
        for path in sorted(self.failed_dir.glob("*.json")):
            try:
                out[path.stem] = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                out[path.stem] = {"error": "unreadable failure record"}
        return out

    # -- the lease protocol ----------------------------------------------------

    def _lease_path(self, key: str) -> Path:
        return self.leases_dir / f"{key}.lease"

    def try_claim(self, key: str) -> bool:
        """Atomically claim ``key``; ``True`` iff this caller now owns it."""
        fault_point("queue.claim")
        try:
            fd = os.open(self._lease_path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(
                fd,
                json.dumps(
                    {
                        "pid": os.getpid(),
                        "host": os.uname().nodename,
                        "claimed": time.time(),
                    }
                ).encode(),
            )
        finally:
            os.close(fd)
        self.claimed += 1
        return True

    def lease_owner(self, key: str) -> dict | None:
        """The claim record of ``key``'s current lease (``None`` if unleased)."""
        try:
            return json.loads(self._lease_path(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def release(self, key: str) -> None:
        try:
            os.unlink(self._lease_path(key))
        except FileNotFoundError:
            pass

    def sweep_leases(self) -> int:
        """Drop leases whose spec already has a terminal record.

        A worker killed *after* pushing its result leaves a lease for a
        finished key; the pending scan never revisits finished keys, so
        the debris would persist.  Removal is safe even against a slow
        duplicate runner that still holds the lease: its result push is
        idempotent, and its heartbeat treats the missing file as a
        benign reclaim.  Returns how many leases were removed.
        """
        removed = 0
        for path in self.leases_dir.glob("*.lease"):
            key = path.stem
            if self.is_done(key) or self.is_failed(key):
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    continue
                removed += 1
        return removed

    def reclaim_if_stale(self, key: str) -> bool:
        """Tear down ``key``'s lease iff its heartbeat expired.

        The rename is the atomic arbiter: of N workers that all observed
        the same stale mtime, exactly one wins the rename (the rest get
        ``FileNotFoundError``) — so one death is reclaimed once.  Returns
        ``True`` when this caller did the teardown; the lease is then
        free to claim again.
        """
        path = self._lease_path(key)
        try:
            age = time.time() - path.stat().st_mtime
        except FileNotFoundError:
            return False
        if age < self.lease_ttl_s:
            return False
        fault_point("queue.reclaim")
        tombstone = (
            self.leases_dir / f".reclaim-{key}-{os.getpid()}-{time.monotonic_ns()}"
        )
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return False  # another reclaimer (or the owner's release) won
        try:
            os.unlink(tombstone)
        except FileNotFoundError:  # pragma: no cover - nothing else names it
            pass
        self.reclaimed += 1
        return True

    # -- worker loop -----------------------------------------------------------

    def work(self, max_jobs: int | None = None, retries: int = 2,
             retry_delay_s: float = 0.05) -> int:
        """Claim and run pending specs until the spool drains; return the
        number of jobs this call completed (results *and* failures).

        One pass of the loop scans the pending set in key order, claiming
        whatever is free (reclaiming whatever is stale).  When a scan
        finds nothing claimable but work remains — every pending spec is
        leased to a live peer — the worker sleeps ``poll_interval_s`` and
        rescans: if a peer dies, its leases go stale and this worker
        finishes the sweep.
        """
        from repro.runtime.executor import _run_one

        done = 0
        while max_jobs is None or done < max_jobs:
            progress = False
            for key in self.pending():
                if max_jobs is not None and done >= max_jobs:
                    break
                try:
                    claimed = self.try_claim(key)
                    if not claimed:
                        claimed = self.reclaim_if_stale(key) and self.try_claim(key)
                except OSError:
                    # A transient claim/reclaim failure (EIO on the lease
                    # dir, an injected queue.claim fault) skips this key
                    # for this scan — a peer, or the next pass, gets it.
                    continue
                if not claimed:
                    continue
                if self.is_done(key) or self.is_failed(key):
                    # Claimed a lease a dying worker left *after* it had
                    # already pushed its record: nothing to run.
                    self.release(key)
                    continue
                spec = self.load_spec(key)
                heartbeat = _Heartbeat(
                    self._lease_path(key), self.lease_ttl_s / 4.0
                ).start()
                try:
                    record, elapsed = _run_one(
                        (spec.fn, spec.params, key, retries, retry_delay_s)
                    )
                except Exception as exc:
                    self._mark_failed(key, exc)
                else:
                    self.cache.put(spec, record, elapsed=elapsed)
                finally:
                    heartbeat.stop()
                    self.release(key)
                done += 1
                progress = True
            if not self.pending():
                break
            if not progress:
                time.sleep(self.poll_interval_s)
        self.sweep_leases()
        return done

    def _mark_failed(self, key: str, exc: Exception) -> None:
        path = self.failed_dir / f"{key}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(
                {"key": key, "error": f"{type(exc).__name__}: {exc}", "pid": os.getpid()}
            )
        )
        os.replace(tmp, path)

    # -- driver orchestration --------------------------------------------------

    def spawn_workers(self, n: int) -> list:
        """Start ``n`` local worker processes over this spool.

        Fork-based (where available) so an installed
        :class:`~repro.faults.FaultPlan` is inherited — the chaos suite's
        lease/claim faults reach the workers without env plumbing.
        """
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        workers = []
        for _ in range(max(int(n), 1)):
            proc = ctx.Process(
                target=run_queue_worker,
                args=(str(self.spool),),
                kwargs={
                    "cache_dir": str(self.cache.root),
                    "lease_ttl_s": self.lease_ttl_s,
                    "poll_interval_s": self.poll_interval_s,
                },
                daemon=True,
            )
            proc.start()
            workers.append(proc)
        return workers

    def drain(self, keys, workers: list | None = None, timeout_s: float | None = None):
        """Block until every key in ``keys`` has a result or failure record.

        ``workers`` (processes from :meth:`spawn_workers`) are monitored:
        if *all* of them exit while work remains unleased and unclaimed
        past a TTL, the drain raises rather than spinning forever —
        killing one worker mid-batch is survivable (its peers reclaim),
        killing the whole fleet is an error the driver must surface.
        """
        keys = list(keys)
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            remaining = [
                k for k in keys if not self.is_done(k) and not self.is_failed(k)
            ]
            if not remaining:
                self.sweep_leases()
                return
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"queue drain timed out with {len(remaining)} job(s) remaining"
                )
            if workers is not None and not any(w.is_alive() for w in workers):
                raise RuntimeError(
                    f"all {len(workers)} queue workers exited with "
                    f"{len(remaining)} job(s) unfinished"
                )
            time.sleep(self.poll_interval_s)

    def __repr__(self):
        return (
            f"WorkQueue({str(self.spool)!r}, pending={len(self.pending())}, "
            f"ttl={self.lease_ttl_s})"
        )


def _json_default(obj):
    """Spec params already passed JobSpec canonicalization; this only
    handles numpy scalars that json.dumps cannot emit natively."""
    from repro.runtime.spec import to_jsonable

    return to_jsonable(obj)


def run_queue_worker(
    spool,
    cache_dir=None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_interval_s: float = 0.1,
) -> int:
    """Entry point for one worker process (used by :meth:`spawn_workers`
    and runnable by hand on any host that shares the spool filesystem).

    Installs any :data:`~repro.faults.ENV_VAR` fault plan if none was
    inherited (fork children already carry the driver's plan), then works
    the spool until it drains.
    """
    if active() is None:
        install_from_env()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    queue = WorkQueue(
        spool, cache=cache, lease_ttl_s=lease_ttl_s, poll_interval_s=poll_interval_s
    )
    return queue.work()

"""Declarative job specifications and content-addressed hashing.

A :class:`JobSpec` names a *runner* — a top-level importable function,
``"package.module:function"`` — and the keyword arguments to call it with.
Runners must be pure with respect to their spec: the same spec must
produce the same (JSON-serializable) result record regardless of process,
ordering, or worker count.  That contract is what makes results cacheable
by content address and sweeps resumable.

The cache key is a SHA-256 over the *canonical JSON* form of the spec
(sorted keys, tuples as lists, numpy scalars as Python numbers) plus
:data:`CACHE_SCHEMA_VERSION`.  Anything that should invalidate cached
results — the runner's identity, every hyper-parameter grid entry, seeds,
scales — must therefore live inside ``params``; spec builders embed
resolved grids rather than grid *names* so editing a grid definition
changes the key.
"""
from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from importlib import import_module

import numpy as np

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "JobSpec",
    "canonical",
    "resolve_runner",
    "to_jsonable",
]

#: Bump to invalidate every cached record (e.g. after a semantic change to
#: dataset generation or model fitting that job params cannot capture).
CACHE_SCHEMA_VERSION = 1


def to_jsonable(obj):
    """Recursively convert ``obj`` to plain JSON types.

    Tuples become lists, numpy scalars become Python numbers, numpy arrays
    become nested lists, and dict keys are stringified.  The result of a
    runner passes through here before caching, so fresh and cache-loaded
    results are structurally identical (the parallel == sequential ==
    cached equality the acceptance tests assert).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return [to_jsonable(v) for v in seq]
    raise TypeError(f"cannot make {type(obj).__name__} JSON-canonical: {obj!r}")


def canonical(obj) -> str:
    """Canonical JSON text of ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def resolve_runner(fn_path: str):
    """Import and return the runner named by ``"module:function"``."""
    module, sep, name = fn_path.partition(":")
    if not sep or not module or not name:
        raise ValueError(f"runner path must be 'module:function', got {fn_path!r}")
    fn = getattr(import_module(module), name, None)
    if not callable(fn):
        raise ValueError(f"runner {fn_path!r} does not resolve to a callable")
    return fn


@dataclass(frozen=True)
class JobSpec:
    """One declarative unit of experiment work.

    Parameters
    ----------
    fn
        Import path of the runner, ``"package.module:function"``.  The
        runner is called as ``fn(**params)`` and must return a
        JSON-serializable dict.
    params
        Keyword arguments for the runner.  Values must be JSON-canonical
        or convertible by :func:`to_jsonable` (tuples and numpy scalars
        are fine); the runner's own ``seed`` argument belongs here so the
        cache key captures it.
    """

    fn: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        module, sep, name = self.fn.partition(":")
        if not sep or not module or not name:
            raise ValueError(f"fn must be 'module:function', got {self.fn!r}")

    @property
    def key(self) -> str:
        """Content address: SHA-256 of the canonical spec + schema version."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "fn": self.fn,
            "params": self.params,
        }
        return hashlib.sha256(canonical(payload).encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for logs."""
        name = self.fn.rsplit(":", 1)[-1]
        hints = [
            str(self.params[k])
            for k in ("app", "model", "scenario", "n_train")
            if k in self.params
        ]
        inner = ", ".join(hints) if hints else f"{len(self.params)} params"
        return f"{name}({inner})"

"""Parameter spaces and the application-simulator interface.

The paper benchmarks six applications on Stampede2 (Table 2).  Execution on
that machine is unavailable here, so each application is replaced by a
*simulator*: a semi-empirical, strictly positive latent function
``f : X -> R+`` built from roofline-style compute terms, bandwidth terms,
communication trees, and categorical effect tables, plus deterministic
pseudo-random perturbations (cache/alignment effects) and stochastic
measurement noise.  The simulators expose exactly the parameter spaces of
Table 2, so every experiment in the paper's evaluation can be re-run
against them.

Parameter roles follow the paper's taxonomy:

* ``input`` — problem-size parameters (matrix dimension, message size, ...);
  sampled log-uniformly (Section 6.0.3) and discretized logarithmically.
* ``arch`` — architectural parameters (node count, processes-per-node,
  threads-per-process); sampled log-uniformly, discretized logarithmically.
* ``config`` — tuning parameters (block size, tree level, ...); sampled
  uniformly, discretized linearly.
* categorical parameters (solver choice, layout) are indexed directly.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["Parameter", "ParameterSpace", "Application"]

_ROLES = ("input", "config", "arch")


@dataclass(frozen=True)
class Parameter:
    """One benchmark parameter (a tensor mode in the CPR model).

    Parameters
    ----------
    name
        Identifier used in reports and for column lookup.
    role
        ``"input"``, ``"config"`` or ``"arch"`` (paper taxonomy).
    low, high
        Inclusive numeric range (ignored for categorical parameters).
    integer
        Whether values are rounded to integers.
    categories
        When given, the parameter is categorical; values in a dataset are
        category *indices* ``0 .. len(categories)-1``.
    scale
        ``"log"``, ``"linear"`` or ``"auto"``.  ``auto`` resolves to ``log``
        for input/arch parameters and ``linear`` for config parameters,
        matching the paper's sampling and discretization conventions.
    """

    name: str
    role: str = "config"
    low: Optional[float] = None
    high: Optional[float] = None
    integer: bool = False
    categories: Optional[tuple] = None
    scale: str = "auto"

    def __post_init__(self):
        if self.role not in _ROLES:
            raise ValueError(f"role must be one of {_ROLES}, got {self.role!r}")
        if self.categories is None:
            if self.low is None or self.high is None:
                raise ValueError(f"numeric parameter {self.name!r} needs low/high")
            if not (self.low < self.high):
                raise ValueError(
                    f"{self.name!r}: low must be < high, got [{self.low}, {self.high}]"
                )
            if self.resolved_scale == "log" and self.low <= 0:
                raise ValueError(f"{self.name!r}: log-scale range must be positive")
        else:
            if len(self.categories) < 2:
                raise ValueError(f"{self.name!r}: need at least 2 categories")
        if self.scale not in ("log", "linear", "auto"):
            raise ValueError(f"{self.name!r}: bad scale {self.scale!r}")

    @property
    def is_categorical(self) -> bool:
        return self.categories is not None

    @property
    def n_categories(self) -> int:
        if not self.is_categorical:
            raise ValueError(f"{self.name!r} is not categorical")
        return len(self.categories)

    @property
    def resolved_scale(self) -> str:
        """The effective sampling/discretization scale."""
        if self.scale != "auto":
            return self.scale
        return "log" if self.role in ("input", "arch") else "linear"

    def sample(self, n: int, rng) -> np.ndarray:
        """Draw ``n`` values per the paper's per-role sampling strategy."""
        rng = as_generator(rng)
        if self.is_categorical:
            return rng.integers(0, self.n_categories, size=n).astype(float)
        if self.resolved_scale == "log":
            vals = np.exp(rng.uniform(np.log(self.low), np.log(self.high), size=n))
        else:
            vals = rng.uniform(self.low, self.high, size=n)
        if self.integer:
            vals = np.clip(np.rint(vals), np.ceil(self.low), np.floor(self.high))
        return vals

    def contains(self, values) -> np.ndarray:
        """Boolean mask of values inside this parameter's range."""
        values = np.asarray(values, dtype=float)
        if self.is_categorical:
            return (values >= 0) & (values < self.n_categories)
        return (values >= self.low) & (values <= self.high)


class ParameterSpace:
    """An ordered collection of :class:`Parameter` with an optional constraint.

    The columns of every dataset matrix ``X`` follow the order of
    ``parameters``.  ``constraint(X) -> bool mask`` filters jointly invalid
    configurations (e.g. the paper's ``64 <= ppn * tpp <= 128``); sampling
    uses rejection to satisfy it.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraint: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        name: str = "",
    ):
        self.parameters = tuple(parameters)
        if len({p.name for p in self.parameters}) != len(self.parameters):
            raise ValueError("duplicate parameter names")
        self.constraint = constraint
        self.name = name
        self._index = {p.name: j for j, p in enumerate(self.parameters)}

    # -- introspection ------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Number of parameters (the tensor order of the CPR model)."""
        return len(self.parameters)

    @property
    def names(self) -> tuple:
        return tuple(p.name for p in self.parameters)

    def index_of(self, name: str) -> int:
        """Column index of parameter ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no parameter {name!r}; have {self.names}") from None

    def column(self, X: np.ndarray, name: str) -> np.ndarray:
        """View of the column of ``X`` holding parameter ``name``."""
        return np.asarray(X)[:, self.index_of(name)]

    def __getitem__(self, name: str) -> Parameter:
        return self.parameters[self.index_of(name)]

    def __iter__(self):
        return iter(self.parameters)

    def __repr__(self):
        return f"ParameterSpace({self.name!r}, d={self.dimension})"

    # -- sampling and validation -------------------------------------------

    def sample(self, n: int, rng=None, max_tries: int = 200) -> np.ndarray:
        """Draw ``n`` valid configurations as an ``(n, d)`` float matrix.

        Input/arch parameters are sampled log-uniformly, config parameters
        uniformly, categorical parameters uniformly over their choices
        (Section 6.0.3).  Rejection sampling enforces ``constraint``.
        """
        rng = as_generator(rng)
        if n == 0:
            return np.empty((0, self.dimension))
        collected = []
        remaining = n
        for _ in range(max_tries):
            batch = max(remaining * 2, 64)
            X = np.column_stack([p.sample(batch, rng) for p in self.parameters])
            if self.constraint is not None:
                X = X[np.asarray(self.constraint(X), dtype=bool)]
            if len(X):
                collected.append(X[:remaining])
                remaining -= len(collected[-1])
            if remaining <= 0:
                return np.vstack(collected)
        raise RuntimeError(
            f"rejection sampling failed: constraint of {self.name!r} too tight"
        )

    def contains(self, X: np.ndarray) -> np.ndarray:
        """Row mask of configurations inside every parameter range."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.dimension:
            raise ValueError(
                f"X must be (n, {self.dimension}), got {X.shape}"
            )
        mask = np.ones(len(X), dtype=bool)
        for j, p in enumerate(self.parameters):
            mask &= p.contains(X[:, j])
        return mask

    def validate(self, X: np.ndarray) -> np.ndarray:
        """Return ``X`` as a float matrix with the right number of columns."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2 or X.shape[1] != self.dimension:
            raise ValueError(
                f"expected configurations with {self.dimension} parameters "
                f"({self.names}), got shape {X.shape}"
            )
        return X


@dataclass
class Application:
    """Base class for application simulators.

    Subclasses define ``space`` (a :class:`ParameterSpace`) and implement
    :meth:`latent_time`, the noise-free execution-time surface.  The public
    entry point :meth:`measure` adds multiplicative lognormal measurement
    noise whose magnitude mimics the paper's data-collection protocol
    (kernels: averaged until coefficient of variation < 1%; applications:
    executed once, so a few percent run-to-run variation remains).
    """

    #: default lognormal sigma used by :meth:`measure`
    noise_sigma: float = 0.0
    name: str = "application"

    @property
    def space(self) -> ParameterSpace:
        raise NotImplementedError

    def latent_time(self, X: np.ndarray) -> np.ndarray:
        """Noise-free execution time (seconds) for each configuration row."""
        raise NotImplementedError

    def measure(self, X: np.ndarray, rng=None, sigma: Optional[float] = None) -> np.ndarray:
        """Simulated measured execution times (strictly positive).

        ``sigma`` overrides the application's default measurement-noise
        level; ``sigma=0`` returns the latent surface exactly.  A scalar
        applies one noise level to every configuration; an array (any
        shape broadcastable to ``len(X)``) sets per-row levels.
        """
        X = self.space.validate(X)
        t = self.latent_time(X)
        if np.any(t <= 0) or not np.all(np.isfinite(t)):
            raise RuntimeError(f"{self.name}: latent time must be positive/finite")
        s = np.asarray(self.noise_sigma if sigma is None else sigma, dtype=float)
        if np.any(s > 0):
            rng = as_generator(rng)
            t = t * np.exp(rng.normal(0.0, s, size=t.shape))
        return t

"""Deterministic perturbations and measurement-noise processes.

Real performance surfaces contain repeatable, configuration-specific
structure that smooth analytic terms miss: memory (mis)alignment, register
spilling, cache-set conflicts (paper Section 3.2 cites these as the reason
global predictors fail).  :func:`hash_perturb` injects such structure as a
*deterministic* multiplicative factor computed from an integer hash of
(quantized) parameter values, so the latent function is rough but
reproducible.  Stochastic run-to-run variation is modeled separately by
:class:`LogNormalNoise`.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["hash01", "hash_perturb", "LogNormalNoise", "NoNoise"]

_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (well-mixed 64-bit hash)."""
    with np.errstate(over="ignore"):
        x = (x + _GOLDEN).astype(np.uint64)
        x = (x ^ (x >> np.uint64(30))) * _MIX1
        x = (x ^ (x >> np.uint64(27))) * _MIX2
        x = x ^ (x >> np.uint64(31))
    return x


def hash01(*columns, salt: int = 0) -> np.ndarray:
    """Hash integer-valued columns to deterministic uniforms in ``[0, 1)``.

    All columns are floored to int64, combined with a mixing chain, and
    finalized with splitmix64.  Equal inputs always map to equal outputs,
    which is what makes the perturbation part of the *latent* function
    rather than noise.
    """
    if not columns:
        raise ValueError("need at least one column")
    acc = np.full(np.broadcast(*columns).shape, np.uint64(salt) + np.uint64(1), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for col in columns:
            c = np.floor(np.asarray(col, dtype=float)).astype(np.int64).astype(np.uint64)
            acc = _splitmix64(acc ^ (c * _GOLDEN))
    # 53-bit mantissa -> float in [0, 1)
    return (acc >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def hash_perturb(*columns, amplitude: float = 0.05, salt: int = 0) -> np.ndarray:
    """Deterministic multiplicative wiggle ``1 +- amplitude`` from a hash.

    Returns values in ``[1 - amplitude, 1 + amplitude]`` suitable for
    multiplying into a latent execution time.
    """
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    u = hash01(*columns, salt=salt)
    return 1.0 + amplitude * (2.0 * u - 1.0)


@dataclass(frozen=True)
class LogNormalNoise:
    """Multiplicative lognormal measurement noise ``t * exp(sigma * N(0,1))``.

    ``sigma ~= 0.01`` reproduces the paper's kernel protocol (averaging until
    coefficient of variation < 0.01); ``sigma ~= 0.05`` mimics applications
    executed once.
    """

    sigma: float = 0.01

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def apply(self, t: np.ndarray, rng=None) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        if self.sigma == 0:
            return t.copy()
        rng = as_generator(rng)
        return t * np.exp(rng.normal(0.0, self.sigma, size=t.shape))


class NoNoise:
    """Identity noise process (useful for exactness tests)."""

    sigma = 0.0

    def apply(self, t: np.ndarray, rng=None) -> np.ndarray:
        return np.asarray(t, dtype=float).copy()

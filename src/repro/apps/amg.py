"""Algebraic multigrid (AMG proxy app) solve-time simulator.

Paper setup (Table 2): per-process grid ``2^3 <= nx, ny, nz <= 2^7``;
categorical coarsening type (7 choices), relaxation type (10), interpolation
type (14); architectural ``tpp, ppn`` with ``64 <= ppn * tpp <= 128``.
This is the paper's 8-parameter benchmark, whose tensor model in Figure 5 is
``7 x 7 x 8 x 8 x 8 x 7 x 10 x 13``-ish — the high-dimensional regime where
CPR's advantage is largest.

Latent model: a V-cycle iteration count driven by the convergence factor
``rho`` — a product of per-category factors (each algorithmic choice has a
characteristic strength) mildly degraded by problem size — times a per-
iteration cost proportional to local volume and operator complexity, plus
halo-exchange communication scaling with surface area.  Categorical effect
tables are fixed constants chosen to span realistic ranges (e.g. strong
coarsening lowers iteration counts but raises operator complexity — the
classic AMG trade-off), with deterministic interaction wiggles so no purely
additive model is exact.
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import Application, Parameter, ParameterSpace
from repro.apps.exafmm import node_constraint, parallel_efficiency
from repro.apps.noise import hash_perturb

__all__ = ["AMG", "SPACE", "COARSEN_TYPES", "RELAX_TYPES", "INTERP_TYPES"]

# Category labels follow hypre's option numbering quoted in Table 2.
COARSEN_TYPES = (0, 3, 6, 8, 10, 21, 22)
RELAX_TYPES = (0, 3, 4, 6, 8, 13, 14, 16, 17, 18)
INTERP_TYPES = (0, 2, 3, 4, 5, 6, 8, 9, 12, 13, 14, 16, 17, 18)

SPACE = ParameterSpace(
    [
        Parameter("nx", role="input", low=2**3, high=2**7, integer=True),
        Parameter("ny", role="input", low=2**3, high=2**7, integer=True),
        Parameter("nz", role="input", low=2**3, high=2**7, integer=True),
        Parameter("ct", categories=COARSEN_TYPES),
        Parameter("rt", categories=RELAX_TYPES),
        Parameter("it", categories=INTERP_TYPES),
        Parameter("tpp", role="arch", low=1, high=64, integer=True),
        Parameter("ppn", role="arch", low=1, high=64, integer=True),
    ],
    constraint=node_constraint,
    name="amg",
)

# Per-category cost multipliers.  Values are synthetic but span the
# realistic envelope: aggressive coarsening (e.g. HMIS/PMIS variants) needs
# more cycles but each cycle is cheaper; strong smoothers cost more per
# sweep but damp better.
_CT_COST = np.array([1.35, 1.60, 1.05, 1.45, 0.90, 1.80, 1.15])
_RT_COST = np.array([0.60, 1.00, 0.95, 1.30, 0.85, 1.70, 1.50, 1.05, 1.20, 0.75])
_IT_COST = np.array(
    [0.80, 1.10, 1.25, 1.05, 0.95, 1.45, 1.15, 1.00, 1.40, 1.10, 1.20, 0.90, 1.05, 1.30]
)

# Latent algorithmic scores (fixed, non-monotone in option index so the
# categorical axes carry no accidental ordering): coarsening aggressiveness,
# smoother strength, interpolation accuracy, and per-choice iteration-count
# base factors.  Convergence suffers when aggressiveness outruns
# strength/accuracy (the synergy cross-terms in ``latent_time``).
_CT_AGGR = np.array([0.2, 0.9, -0.6, 0.5, -1.0, 1.2, -0.1])
_RT_STRENGTH = np.array([-0.9, 0.3, 0.1, 0.8, -0.2, 1.1, 0.9, 0.0, 0.5, -0.5])
_IT_ACCURACY = np.array(
    [-0.7, 0.2, 0.5, 0.0, -0.3, 0.9, 0.3, -0.1, 0.7, 0.1, 0.4, -0.5, 0.6, -0.2]
)
_CT_ITERS = np.array([1.00, 1.45, 0.80, 1.10, 0.70, 1.70, 0.95])
_RT_ITERS = np.array([1.60, 0.95, 1.05, 0.80, 1.25, 0.70, 0.85, 1.10, 0.90, 1.35])
_IT_ITERS = np.array(
    [1.35, 1.00, 0.90, 1.10, 1.20, 0.75, 0.95, 1.15, 0.85, 1.05, 0.92, 1.28, 0.88, 1.18]
)

_FLOPS_PER_DOF_CYCLE = 90.0   # work units per dof per V-cycle at complexity 1
_RATE = 1.6e9                  # dof-updates per second per core (memory bound)


class AMG(Application):
    """Simulated AMG total solve time (paper benchmark "AMG")."""

    def __init__(self, noise_sigma: float = 0.05):
        super().__init__(noise_sigma=noise_sigma, name="amg")

    @property
    def space(self) -> ParameterSpace:
        return SPACE

    def latent_time(self, X: np.ndarray) -> np.ndarray:
        X = self.space.validate(X)
        nx, ny, nz = X[:, 0], X[:, 1], X[:, 2]
        ct = X[:, 3].astype(np.intp)
        rt = X[:, 4].astype(np.intp)
        it = X[:, 5].astype(np.intp)
        tpp = np.maximum(X[:, 6], 1.0)
        ppn = np.maximum(X[:, 7], 1.0)
        p = tpp * ppn

        volume = nx * ny * nz
        # Iteration count: per-choice base factors multiply (additive in
        # log space), and *pairwise synergies* between coarsening
        # aggressiveness, smoother strength, and interpolation accuracy
        # enter as products of latent scores — aggressive coarsening paired
        # with a weak smoother converges much slower.  log(iterations) is
        # therefore a sum of per-mode functions plus a few rank-1 cross
        # terms: genuinely non-additive over the categorical parameters
        # (defeating additive grid/spline models) yet exactly low-CP-rank,
        # which is the structure the paper's AMG benchmark exposes.
        synergy = np.exp(
            -0.45 * _CT_AGGR[ct] * _RT_STRENGTH[rt]
            - 0.30 * _CT_AGGR[ct] * _IT_ACCURACY[it]
        )
        iters = (
            8.0
            * _CT_ITERS[ct] * _RT_ITERS[rt] * _IT_ITERS[it]
            * synergy
            * hash_perturb(ct, rt, it, amplitude=0.06, salt=71)
        )
        dims = np.stack([nx, ny, nz], axis=1)
        aspect = dims.max(axis=1) / dims.min(axis=1)
        point_smoother = np.isin(rt, (0, 3, 4, 8)).astype(float)
        iters = iters * (1.0 + 0.10 * (aspect - 1.0) * point_smoother)
        iters = iters * (1.0 + 0.03 * np.log2(volume / 512.0))
        iters = np.clip(iters, 1.0, 500.0)

        complexity = _CT_COST[ct] * _IT_COST[it] ** 0.6
        cost_cycle = volume * _FLOPS_PER_DOF_CYCLE * complexity * _RT_COST[rt]

        # Halo exchange: surface-to-volume communication each cycle, larger
        # with more processes per node (more boundaries, smaller messages).
        surface = 2.0 * (nx * ny + ny * nz + nx * nz)
        t_comm_cycle = surface * 8.0 * np.log2(ppn + 1.0) / 2.5e9 + 8.0e-6 * np.log2(p)

        speedup = parallel_efficiency(p)
        thread_pen = 1.0 + 0.02 * np.log2(tpp)
        t_cycle = cost_cycle * thread_pen / (_RATE * speedup) + t_comm_cycle
        t_setup = 2.5 * cost_cycle / (_RATE * speedup) + 1.0e-4

        wiggle = hash_perturb(nx, ny, nz, ct, rt, it, amplitude=0.05, salt=89)
        return (t_setup + iters * t_cycle) * wiggle

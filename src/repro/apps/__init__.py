"""Application simulators reproducing the paper's six benchmarks (Table 2).

Each module provides an :class:`~repro.apps.base.Application` subclass whose
``space`` matches Table 2 and whose ``latent_time`` is a synthetic but
structurally realistic stand-in for Stampede2 measurements (see DESIGN.md,
"Substitutions").
"""
from repro.apps.amg import AMG
from repro.apps.base import Application, Parameter, ParameterSpace
from repro.apps.bcast import Broadcast
from repro.apps.exafmm import ExaFMM
from repro.apps.kripke import Kripke
from repro.apps.matmul import MatMul
from repro.apps.noise import LogNormalNoise, NoNoise, hash01, hash_perturb
from repro.apps.qr import QR

#: Registry of benchmark name -> application factory (paper's abbreviations).
APPLICATIONS = {
    "matmul": MatMul,
    "mm": MatMul,
    "qr": QR,
    "bcast": Broadcast,
    "bc": Broadcast,
    "exafmm": ExaFMM,
    "fmm": ExaFMM,
    "amg": AMG,
    "kripke": Kripke,
}


def get_application(name: str, **kwargs) -> Application:
    """Instantiate a benchmark application by (case-insensitive) name."""
    key = name.lower()
    try:
        cls = APPLICATIONS[key]
    except KeyError:
        options = sorted(set(APPLICATIONS))
        raise KeyError(f"unknown application {name!r}; options: {options}") from None
    return cls(**kwargs)


__all__ = [
    "Application",
    "Parameter",
    "ParameterSpace",
    "LogNormalNoise",
    "NoNoise",
    "hash01",
    "hash_perturb",
    "MatMul",
    "QR",
    "Broadcast",
    "ExaFMM",
    "AMG",
    "Kripke",
    "APPLICATIONS",
    "get_application",
]

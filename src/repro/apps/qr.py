"""Single-threaded QR factorization (MKL GEQRF) simulator.

Paper setup: ``A_{m x n} -> Q R`` with ``32 <= m, n <= 262144``, ``m >= n``,
and all matrices in memory (Section 6.0.2).  Householder QR costs
``2 m n^2 - (2/3) n^3`` flops; the panel-dominated regime for tall-skinny
matrices (small ``n``) is memory bound, so efficiency improves with ``n``
(more trailing-matrix level-3 work) and mildly with ``m``.  A bandwidth
term accounts for the repeated panel reads, and an alignment wiggle mirrors
the one in :mod:`repro.apps.matmul`.

The constraint ``m >= n`` makes this the paper's example of a constrained
2-D space; we also cap the matrix at ~12 GB to respect "fits in memory".
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import Application, Parameter, ParameterSpace
from repro.apps.matmul import effective_bandwidth
from repro.apps.noise import hash_perturb

__all__ = ["QR", "SPACE"]

_MAX_ELEMENTS = 12e9 / 8.0  # "all three matrices fit in memory"


def _qr_constraint(X: np.ndarray) -> np.ndarray:
    m, n = X[:, 0], X[:, 1]
    return (m >= n) & (m * n <= _MAX_ELEMENTS)


SPACE = ParameterSpace(
    [
        Parameter("m", role="input", low=32, high=262144, integer=True),
        Parameter("n", role="input", low=32, high=262144, integer=True),
    ],
    constraint=_qr_constraint,
    name="qr",
)

_PEAK_FLOPS = 4.48e10
_CALL_OVERHEAD = 3.0e-6


class QR(Application):
    """Simulated MKL GEQRF on one KNL core (paper benchmark "QR")."""

    def __init__(self, noise_sigma: float = 0.01):
        super().__init__(noise_sigma=noise_sigma, name="qr")

    @property
    def space(self) -> ParameterSpace:
        return SPACE

    def latent_time(self, X: np.ndarray) -> np.ndarray:
        X = self.space.validate(X)
        m = X[:, 0]
        n = X[:, 1]
        flops = 2.0 * m * n**2 - (2.0 / 3.0) * n**3
        flops = np.maximum(flops, 2.0 * m)  # guard tiny n
        # Level-3 fraction grows with n; panel (BLAS-2) work drags eff down
        # for skinny matrices.  m only matters weakly once m >> n.
        eff = (n / (n + 64.0)) * (m / (m + 256.0)) * 0.92
        t_compute = flops / (_PEAK_FLOPS * np.maximum(eff, 1e-3))
        # Panel passes stream the trailing matrix ~n/block times.
        block = 64.0
        bytes_streamed = 8.0 * m * n * np.maximum(n / block, 1.0) ** 0.35
        t_mem = bytes_streamed / effective_bandwidth(8.0 * m * n)
        wiggle = hash_perturb(m % 64, n % 64, amplitude=0.04, salt=23)
        return (t_compute + t_mem + _CALL_OVERHEAD) * wiggle

"""ExaFMM fast-multipole-method simulator (m2l & p2p kernels).

Paper setup (Table 2): particles per node ``2^12 <= n <= 2^16``, expansion
order ``4 <= ord <= 15``, particles per leaf ``32 <= ppl <= 256``,
partitioning tree level ``0 <= tl <= 4``, with architectural parameters
``1 <= tpp, ppn <= 64`` under ``64 <= ppn * tpp <= 128`` (single node).

The latent model encodes the canonical FMM cost balance the tuning
parameters trade off:

* near field (P2P): ``~ 27 * n * ppl`` pairwise interactions — grows with
  leaf size;
* far field (M2L): ``~ 189 * (n / ppl) * ord^3`` cell-cell translations —
  shrinks with leaf size, grows steeply with expansion order;
* tree construction/partitioning overhead growing with ``8^tl`` plus a load
  imbalance penalty when the partitioning level is too coarse for the
  process count;
* parallel efficiency over ``p = ppn * tpp`` hardware threads with a
  hyper-threading penalty beyond the 68 physical KNL cores and a
  synchronization cost per tree level.

The optimum ``ppl`` shifts with ``ord`` (the classic FMM interaction), so
models must capture a multiplicative parameter interaction — precisely the
structure CP decomposition represents with small rank in log space.
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import Application, Parameter, ParameterSpace
from repro.apps.noise import hash_perturb

__all__ = ["ExaFMM", "SPACE", "node_constraint"]


def node_constraint(X: np.ndarray) -> np.ndarray:
    """Paper constraint ``64 <= ppn * tpp <= 128`` (columns named tpp/ppn)."""
    # tpp and ppn are the two trailing arch columns in all three app spaces.
    tpp = X[:, -2]
    ppn = X[:, -1]
    prod = tpp * ppn
    return (prod >= 64) & (prod <= 128)


SPACE = ParameterSpace(
    [
        Parameter("n", role="input", low=2**12, high=2**16, integer=True),
        Parameter("order", role="input", low=4, high=15, integer=True),
        Parameter("ppl", role="config", low=32, high=256, integer=True),
        Parameter("tl", role="config", low=0, high=4, integer=True),
        Parameter("tpp", role="arch", low=1, high=64, integer=True),
        Parameter("ppn", role="arch", low=1, high=64, integer=True),
    ],
    constraint=node_constraint,
    name="exafmm",
)

_RATE_P2P = 6.0e9   # pairwise interactions per second per core
_RATE_M2L = 1.1e9   # M2L flop-equivalents per second per core
_PHYS_CORES = 68.0


def parallel_efficiency(p: np.ndarray) -> np.ndarray:
    """Speedup factor for ``p`` ranks*threads on one 68-core KNL node.

    Linear up to the physical core count, then diminishing returns from
    4-way hyper-threading; mild scheduling overhead throughout.
    """
    p = np.asarray(p, dtype=float)
    physical = np.minimum(p, _PHYS_CORES)
    extra = np.maximum(p - _PHYS_CORES, 0.0)
    speedup = physical + 0.35 * extra
    return speedup / (1.0 + 0.002 * p)


class ExaFMM(Application):
    """Simulated ExaFMM m2l_&_p2p kernel time (paper benchmark "FMM")."""

    def __init__(self, noise_sigma: float = 0.05):
        # Applications are executed once in the paper -> larger sigma.
        super().__init__(noise_sigma=noise_sigma, name="exafmm")

    @property
    def space(self) -> ParameterSpace:
        return SPACE

    def latent_time(self, X: np.ndarray) -> np.ndarray:
        X = self.space.validate(X)
        n = X[:, 0]
        order = X[:, 1]
        ppl = np.maximum(X[:, 2], 1.0)
        tl = X[:, 3]
        tpp = np.maximum(X[:, 4], 1.0)
        ppn = np.maximum(X[:, 5], 1.0)
        p = tpp * ppn

        leaves = np.maximum(n / ppl, 1.0)
        work_p2p = 27.0 * n * ppl / _RATE_P2P
        work_m2l = 189.0 * leaves * order**3 / _RATE_M2L

        # Partitioning: deeper trees cost more to build/communicate, but a
        # too-shallow partition (few subdomains vs processes) loses balance.
        subdomains = 8.0**tl
        imbalance = 1.0 + 0.25 * np.maximum(np.log2(ppn) - 3.0 * tl, 0.0)
        t_tree = 4.0e-7 * subdomains + 1.0e-8 * n * (tl + 1.0)

        speedup = parallel_efficiency(p)
        # Thread/process split matters: many processes raise the tree-exchange
        # cost; many threads raise synchronization per level.
        split_penalty = 1.0 + 0.015 * np.log2(ppn) + 0.01 * np.log2(tpp)

        t = (work_p2p + work_m2l) * imbalance * split_penalty / speedup + t_tree
        wiggle = hash_perturb(n % 4096, order, ppl, tl, tpp, ppn, amplitude=0.06, salt=53)
        return (t + 5.0e-6) * wiggle

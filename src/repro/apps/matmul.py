"""Single-threaded dense matrix-multiplication (MKL GEMM) simulator.

Paper setup: ``C_{m x n} <- A_{m x k} B_{k x n}`` with ``32 <= m, n, k <=
4096`` on one KNL core (Section 6.0.2).  The latent model combines:

* a compute term ``2 m n k / (peak * eff)`` where the efficiency factor
  penalizes short dimensions (poor vectorization/blocking when a dimension
  is comparable to the register-block size);
* a bandwidth term proportional to the operand footprint, with an effective
  bandwidth that steps down as the working set spills L1 -> L2 -> DRAM
  (smooth logistic cliffs, the classic cache staircase);
* a deterministic alignment wiggle keyed on ``(m, n, k) mod 64`` — the
  repeatable, high-frequency structure that motivates piecewise models
  (paper Section 3.2);
* a fixed call overhead.

Monotone growth in each dimension plus multiplicative regime factors makes
``log t`` approximately low-rank, which is exactly the structure the paper's
CP model exploits — but the cache cliffs and the wiggle keep the problem
non-trivial for global models.
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import Application, Parameter, ParameterSpace
from repro.apps.noise import hash_perturb

__all__ = ["MatMul", "SPACE"]

SPACE = ParameterSpace(
    [
        Parameter("m", role="input", low=32, high=4096, integer=True),
        Parameter("n", role="input", low=32, high=4096, integer=True),
        Parameter("k", role="input", low=32, high=4096, integer=True),
    ],
    name="matmul",
)

_PEAK_FLOPS = 4.48e10  # one KNL core, AVX-512 FMA, ~44.8 GF/s
_L1_BYTES = 32 * 1024
_L2_BYTES = 1024 * 1024
_BW_L1 = 2.0e11
_BW_L2 = 8.0e10
_BW_DRAM = 1.2e10
_CALL_OVERHEAD = 2.0e-6


def _smoothstep(x: np.ndarray) -> np.ndarray:
    """C1 logistic-ish ramp from 0 to 1 used for cache-regime blending."""
    return 1.0 / (1.0 + np.exp(-x))


def effective_bandwidth(footprint_bytes: np.ndarray) -> np.ndarray:
    """Blend L1/L2/DRAM bandwidths by working-set size (cache staircase)."""
    f = np.asarray(footprint_bytes, dtype=float)
    # Position on each cliff, in octaves past the capacity boundary.
    s1 = _smoothstep(np.log2(f / _L1_BYTES) * 2.0)
    s2 = _smoothstep(np.log2(f / _L2_BYTES) * 2.0)
    bw = _BW_L1 * (1 - s1) + _BW_L2 * (s1 - s1 * s2) + _BW_DRAM * (s1 * s2)
    return bw


class MatMul(Application):
    """Simulated MKL DGEMM on one KNL core (paper benchmark "MM")."""

    def __init__(self, noise_sigma: float = 0.01):
        # Kernels are averaged to CoV < 0.01 in the paper -> small sigma.
        super().__init__(noise_sigma=noise_sigma, name="matmul")

    @property
    def space(self) -> ParameterSpace:
        return SPACE

    def latent_time(self, X: np.ndarray) -> np.ndarray:
        X = self.space.validate(X)
        m = X[:, 0]
        n = X[:, 1]
        k = X[:, 2]
        flops = 2.0 * m * n * k
        # Short-dimension inefficiency: register blocks of ~16/16/64.
        eff = (m / (m + 12.0)) * (n / (n + 12.0)) * (k / (k + 48.0))
        t_compute = flops / (_PEAK_FLOPS * eff)
        footprint = 8.0 * (m * k + k * n + m * n)
        t_mem = footprint / effective_bandwidth(footprint)
        wiggle = hash_perturb(m % 64, n % 64, k % 64, amplitude=0.04, salt=11)
        return (t_compute + t_mem + _CALL_OVERHEAD) * wiggle

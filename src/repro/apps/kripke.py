"""Kripke discrete-ordinates transport proxy-app simulator.

Paper setup (Table 2): energy groups ``2^3 <= groups <= 2^7``, Legendre
scattering order ``0 <= legendre <= 5``, quadrature points ``2^3 <= quad <=
2^7``, direction-set count ``8 <= dset <= 64``, group-set count ``1 <= gset
<= 32``, data layout ``l`` in six nesting orders {dgz, dzg, gdz, gzd, zdg,
zgd}, solver in {sweep, bj}, plus ``tpp, ppn`` with ``64 <= ppn*tpp <= 128``.
Nine parameters — the paper's highest-dimensional benchmark.

Latent model: transport work is
``zones * groups * quad * (legendre+1)^2`` flop-equivalents per iteration.

* The *layout* determines which of (directions, groups, zones) is innermost;
  cache/vector efficiency improves when the innermost extent is long —
  a genuine layout x problem-shape interaction (Kripke's raison d'être).
* *dset/gset* tile directions and groups: many small sets pipeline sweeps
  better (more parallel wavefronts) but pay per-set launch overhead; too few
  sets starve the cores.
* The *sweep* solver converges in a few transport iterations but serializes
  along wavefronts (pipeline fill cost grows with set count); *bj* (block
  Jacobi) is embarrassingly parallel per set yet needs ~1.7x the iterations.
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import Application, Parameter, ParameterSpace
from repro.apps.exafmm import node_constraint, parallel_efficiency
from repro.apps.noise import hash_perturb

__all__ = ["Kripke", "SPACE", "LAYOUTS", "SOLVERS"]

LAYOUTS = ("dgz", "dzg", "gdz", "gzd", "zdg", "zgd")
SOLVERS = ("sweep", "bj")

SPACE = ParameterSpace(
    [
        Parameter("groups", role="input", low=2**3, high=2**7, integer=True),
        Parameter("legendre", role="input", low=0, high=5, integer=True, scale="linear"),
        Parameter("quad", role="input", low=2**3, high=2**7, integer=True),
        Parameter("dset", role="config", low=8, high=64, integer=True),
        Parameter("gset", role="config", low=1, high=32, integer=True),
        Parameter("layout", categories=LAYOUTS),
        Parameter("solver", categories=SOLVERS),
        Parameter("tpp", role="arch", low=1, high=64, integer=True),
        Parameter("ppn", role="arch", low=1, high=64, integer=True),
    ],
    constraint=node_constraint,
    name="kripke",
)

_ZONES = 4096.0          # 16^3 spatial zones per node (fixed in the runs)
_RATE = 2.2e9            # flop-equivalents per second per core
_TRANSPORT_ITERS = 8.0   # sweep-solver source iterations
_BJ_ITER_FACTOR = 1.7    # block-Jacobi iteration inflation
_SET_OVERHEAD = 3.0e-6   # per-set kernel launch / boundary cost

# Innermost loop dimension per layout string (last character).
_INNER = {"d": 0, "g": 1, "z": 2}


class Kripke(Application):
    """Simulated Kripke total solve time (paper benchmark "KRIPKE")."""

    def __init__(self, noise_sigma: float = 0.05):
        super().__init__(noise_sigma=noise_sigma, name="kripke")

    @property
    def space(self) -> ParameterSpace:
        return SPACE

    def latent_time(self, X: np.ndarray) -> np.ndarray:
        X = self.space.validate(X)
        groups = X[:, 0]
        legendre = X[:, 1]
        quad = X[:, 2]
        dset = np.maximum(X[:, 3], 1.0)
        gset = np.maximum(X[:, 4], 1.0)
        layout = X[:, 5].astype(np.intp)
        solver = X[:, 6].astype(np.intp)
        tpp = np.maximum(X[:, 7], 1.0)
        ppn = np.maximum(X[:, 8], 1.0)
        p = tpp * ppn

        moments = (legendre + 1.0) ** 2
        work = _ZONES * groups * quad * moments / _RATE

        # Layout efficiency: long innermost extents vectorize; the innermost
        # dimension is the last letter of the nesting string.
        extents = np.stack([quad, groups, np.full_like(quad, _ZONES)], axis=1)
        inner_idx = np.array([_INNER[l[-1]] for l in LAYOUTS])[layout]
        inner_extent = extents[np.arange(len(X)), inner_idx]
        eff_cache = (inner_extent / (inner_extent + 24.0)) * 0.95
        # Middle-dimension second-order effect distinguishes e.g. dgz vs gdz.
        outer_idx = np.array([_INNER[l[0]] for l in LAYOUTS])[layout]
        outer_extent = extents[np.arange(len(X)), outer_idx]
        eff_cache = eff_cache * (1.0 - 0.08 / (1.0 + np.log2(outer_extent + 1.0)))

        # Direction/group tiling: total tasks per iteration.
        n_sets = np.minimum(dset, quad) * np.minimum(gset, groups)
        starvation = np.minimum(n_sets / p, 1.0) ** 0.5
        t_set_overhead = n_sets * _SET_OVERHEAD

        is_bj = solver == 1
        iters = np.where(is_bj, _TRANSPORT_ITERS * _BJ_ITER_FACTOR, _TRANSPORT_ITERS)
        # Sweep pipeline fill: proportional to p / n_sets wavefront latency.
        pipeline = np.where(is_bj, 1.0, 1.0 + 0.35 * np.sqrt(p) / np.sqrt(n_sets))

        speedup = parallel_efficiency(p) * starvation
        t_iter = work * pipeline / (eff_cache * np.maximum(speedup, 0.25)) + t_set_overhead
        t = iters * t_iter + 5.0e-4

        wiggle = hash_perturb(
            groups, legendre, quad, dset, gset, layout, solver, amplitude=0.05, salt=101
        )
        return t * wiggle

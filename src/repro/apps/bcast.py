"""MPI broadcast (Intel MPI on Omni-Path) simulator.

Paper setup: Bcast on 1..128 nodes, 1..64 processes-per-node, message sizes
``2^16 <= msg <= 2^26`` bytes (Section 6.0.2).  The latent model follows
standard collective-algorithm analysis (e.g. Thakur et al.) with the
algorithm switching MPI libraries actually perform:

* small messages: binomial tree, ``ceil(log2 p) * (alpha + msg * beta)``;
* large messages: scatter + ring allgather,
  ``(log2 p + p - 1) * alpha + 2 msg (p-1)/p * beta``;
* a logistic blend between the two regimes around the library's switch
  point, producing the characteristic slope change in measured curves;
* separate intra-node (shared memory) and inter-node (network) latency and
  bandwidth, with intra-node bandwidth shared among ``ppn`` ranks
  (contention) and the network term vanishing for single-node runs.

Node count and ppn extrapolation (paper Figure 8) probe exactly the
``log2 p`` and contention structure this model encodes.
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import Application, Parameter, ParameterSpace
from repro.apps.noise import hash_perturb

__all__ = ["Broadcast", "SPACE"]

SPACE = ParameterSpace(
    [
        Parameter("nodes", role="arch", low=1, high=128, integer=True),
        Parameter("ppn", role="arch", low=1, high=64, integer=True),
        Parameter("msg", role="input", low=2**16, high=2**26, integer=True),
    ],
    name="bcast",
)

_ALPHA_NET = 2.2e-6      # inter-node latency
_ALPHA_SHM = 4.0e-7      # intra-node latency
_BW_NET = 1.15e10        # ~92 Gb/s Omni-Path effective
_BW_SHM = 6.0e10         # single-rank shared-memory copy bandwidth
_SWITCH_BYTES = 512 * 1024  # binomial -> scatter/allgather switch


def _blend(msg: np.ndarray) -> np.ndarray:
    """0 -> binomial regime, 1 -> scatter-allgather regime."""
    return 1.0 / (1.0 + np.exp(-1.5 * np.log2(msg / _SWITCH_BYTES)))


class Broadcast(Application):
    """Simulated MPI_Bcast (paper benchmark "BC")."""

    def __init__(self, noise_sigma: float = 0.01):
        super().__init__(noise_sigma=noise_sigma, name="bcast")

    @property
    def space(self) -> ParameterSpace:
        return SPACE

    def latent_time(self, X: np.ndarray) -> np.ndarray:
        X = self.space.validate(X)
        nodes = np.maximum(X[:, 0], 1.0)
        ppn = np.maximum(X[:, 1], 1.0)
        msg = X[:, 2]

        # --- inter-node stage (roots of each node) -------------------------
        log_nodes = np.ceil(np.log2(np.maximum(nodes, 1.0)))
        t_small_net = log_nodes * (_ALPHA_NET + msg / _BW_NET)
        t_large_net = (
            (log_nodes + np.maximum(nodes - 1.0, 0.0)) * _ALPHA_NET
            + 2.0 * msg * np.maximum(nodes - 1.0, 0.0) / np.maximum(nodes, 1.0) / _BW_NET
        )
        w = _blend(msg)
        t_net = (1.0 - w) * t_small_net + w * t_large_net
        t_net = np.where(nodes > 1, t_net, 0.0)

        # --- intra-node stage (shared-memory fan-out) -----------------------
        log_ppn = np.ceil(np.log2(np.maximum(ppn, 1.0)))
        contention = 1.0 + 0.06 * (ppn - 1.0)
        t_shm = log_ppn * _ALPHA_SHM + msg * contention / _BW_SHM
        t_shm = np.where(ppn > 1, t_shm, msg / _BW_SHM * 0.25)

        wiggle = hash_perturb(
            nodes, ppn, np.log2(np.maximum(msg, 1.0)) * 4.0, amplitude=0.05, salt=37
        )
        return (t_net + t_shm + 1.0e-6) * wiggle

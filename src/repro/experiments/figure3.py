"""Figure 3: prediction accuracy vs domain-discretization granularity.

For each benchmark, the grid-based models are swept along their
discretization axis — cells per dimension for CPR, level (2^level grid
resolution) for SGR — with MARS as the search-based-discretization
reference.  The paper's headline findings, which the bench asserts loosely:
CPR improves systematically with granularity given enough observations and
beats SGR/MARS on the high-dimensional benchmarks by up to ~4x.

One runtime job per (benchmark, model, granularity) point; SGR levels too
large for a benchmark's dimensionality come back as cacheable skip
records and are dropped from the table.
"""
from __future__ import annotations

from repro.experiments.config import bench_apps, n_test, resolve_scale
from repro.experiments.harness import tune_job_spec
from repro.runtime import execute

__all__ = ["run", "build_jobs"]

_N_TRAIN = {"smoke": 2**12, "full": 2**13, "paper": 2**15}

_CPR_CELLS = {"smoke": (4, 8, 16), "full": (4, 8, 16, 32), "paper": (4, 8, 16, 32, 64, 128, 256)}
_CPR_RANKS = {"smoke": (4, 8), "full": (2, 4, 8, 16), "paper": (1, 2, 4, 8, 16, 32, 64)}
_SGR_LEVELS = {"smoke": (2, 3, 4), "full": (2, 3, 4, 5), "paper": (2, 3, 4, 5, 6, 7, 8)}
_MARS_DEGREES = {"smoke": (1, 2), "full": (1, 2, 3), "paper": (1, 2, 3, 4, 5, 6)}


def _tune_spec(app_name: str, model: str, grid: list, scale: str, seed: int):
    return tune_job_spec(
        app=app_name,
        model=model,
        n_train=_N_TRAIN[scale],
        n_test=n_test(scale),
        grid=grid,
        seed=seed,
    )


def build_jobs(scale: str | None = None, seed: int = 0) -> list:
    """Jobs and their granularity labels: ``[(spec, label), ...]``."""
    scale = resolve_scale(scale)
    labelled = []
    for app_name in bench_apps(scale):
        for cells in _CPR_CELLS[scale]:
            grid = [
                {"cells": cells, "rank": r, "regularization": 1e-5}
                for r in _CPR_RANKS[scale]
            ]
            labelled.append((_tune_spec(app_name, "cpr", grid, scale, seed), f"C{cells}"))
        for level in _SGR_LEVELS[scale]:
            grid = [
                {"level": level, "refinements": 0, "regularization": lam}
                for lam in (1e-5, 1e-3)
            ]
            labelled.append((_tune_spec(app_name, "sgr", grid, scale, seed), f"L{level}"))
        grid = [{"max_degree": d} for d in _MARS_DEGREES[scale]]
        labelled.append((_tune_spec(app_name, "mars", grid, scale, seed), "best"))
    return labelled


def run(scale: str | None = None, seed: int = 0, runtime=None) -> dict:
    scale = resolve_scale(scale)
    labelled = build_jobs(scale, seed)
    records = execute([spec for spec, _ in labelled], runtime)
    rows = []
    for (spec, label), rec in zip(labelled, records):
        if rec["skipped"]:  # e.g. SGR level too large for this dimensionality
            continue
        rows.append((rec["app"], rec["model"], label, rec["best_error"]))
    return {
        "headers": ["benchmark", "model", "granularity", "mlogq"],
        "rows": rows,
        "notes": (
            "CPR should dominate SGR/MARS on the >=6-parameter benchmarks "
            "and improve with granularity (paper Figure 3)"
        ),
    }

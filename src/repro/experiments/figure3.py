"""Figure 3: prediction accuracy vs domain-discretization granularity.

For each benchmark, the grid-based models are swept along their
discretization axis — cells per dimension for CPR, level (2^level grid
resolution) for SGR — with MARS as the search-based-discretization
reference.  The paper's headline findings, which the bench asserts loosely:
CPR improves systematically with granularity given enough observations and
beats SGR/MARS on the high-dimensional benchmarks by up to ~4x.
"""
from __future__ import annotations

from repro.apps import get_application
from repro.experiments.config import bench_apps, resolve_scale
from repro.experiments.harness import get_dataset, tune_model

__all__ = ["run"]

_N_TEST = {"smoke": 512, "full": 1024, "paper": 2048}
_N_TRAIN = {"smoke": 2**12, "full": 2**13, "paper": 2**15}

_CPR_CELLS = {"smoke": (4, 8, 16), "full": (4, 8, 16, 32), "paper": (4, 8, 16, 32, 64, 128, 256)}
_CPR_RANKS = {"smoke": (4, 8), "full": (2, 4, 8, 16), "paper": (1, 2, 4, 8, 16, 32, 64)}
_SGR_LEVELS = {"smoke": (2, 3, 4), "full": (2, 3, 4, 5), "paper": (2, 3, 4, 5, 6, 7, 8)}
_MARS_DEGREES = {"smoke": (1, 2), "full": (1, 2, 3), "paper": (1, 2, 3, 4, 5, 6)}


def run(scale: str | None = None, seed: int = 0) -> dict:
    scale = resolve_scale(scale)
    rows = []
    for app_name in bench_apps(scale):
        app = get_application(app_name)
        pool = get_dataset(app_name, _N_TRAIN[scale], seed=seed)
        train = pool
        test = get_dataset(app_name, _N_TEST[scale], seed=seed + 1000)

        for cells in _CPR_CELLS[scale]:
            grid = [
                {"cells": cells, "rank": r, "regularization": 1e-5}
                for r in _CPR_RANKS[scale]
            ]
            res = tune_model("cpr", train, test, space=app.space, grid=grid, seed=seed)
            rows.append((app_name, "cpr", f"C{cells}", res.best_error))

        for level in _SGR_LEVELS[scale]:
            grid = [
                {"level": level, "refinements": 0, "regularization": lam}
                for lam in (1e-5, 1e-3)
            ]
            try:
                res = tune_model("sgr", train, test, space=app.space, grid=grid, seed=seed)
            except RuntimeError:
                continue  # level too large for this dimensionality
            rows.append((app_name, "sgr", f"L{level}", res.best_error))

        grid = [{"max_degree": d} for d in _MARS_DEGREES[scale]]
        res = tune_model("mars", train, test, space=app.space, grid=grid, seed=seed)
        rows.append((app_name, "mars", "best", res.best_error))
    return {
        "headers": ["benchmark", "model", "granularity", "mlogq"],
        "rows": rows,
        "notes": (
            "CPR should dominate SGR/MARS on the >=6-parameter benchmarks "
            "and improve with granularity (paper Figure 3)"
        ),
    }

"""Table 1: numerical verification of the error-metric equivalences.

Rows 1-5 of the paper's Table 1 assert that each aggregate metric has an
exactly equivalent expression in the relative errors ``eps = m/y - 1``;
rows 6-7 (MLogQ, MLogQ2) match their epsilon expressions to low-order
Taylor expansion.  This driver draws random ``(y, eps)`` and reports the
worst absolute discrepancy per row, at two epsilon magnitudes, so the
Taylor rows visibly tighten as ``eps -> 0``.
"""
from __future__ import annotations

import numpy as np

from repro.metrics import METRICS, epsilon_form
from repro.runtime import JobSpec, execute
from repro.utils.rng import as_generator

__all__ = ["run", "build_jobs", "run_table_job"]

_EXACT_ROWS = ("mape", "mae", "mse", "smape", "lgmape")
_TAYLOR_ROWS = ("mlogq", "mlogq2")


def run_table_job(*, seed: int = 0, n: int = 4096) -> dict:
    """Runtime job runner: the whole equivalence table (one draw stream)."""
    rng = as_generator(seed)
    rows = []
    for eps_mag in (0.5, 0.01):
        y = np.exp(rng.uniform(-8, 2, size=n))  # times spanning 5 decades
        eps = rng.uniform(-eps_mag, eps_mag, size=n)
        m = y * (1.0 + eps)
        for name in (*_EXACT_ROWS, *_TAYLOR_ROWS):
            direct = METRICS[name](m, y)
            via_eps = epsilon_form(name, eps, y)
            gap = abs(direct - via_eps)
            rel_gap = gap / max(abs(direct), 1e-30)
            kind = "exact" if name in _EXACT_ROWS else "taylor"
            rows.append([name, kind, eps_mag, float(direct), float(via_eps), float(rel_gap)])
    return {"rows": rows}


def build_jobs(scale: str | None = None, seed: int = 0, n: int = 4096) -> list:
    """A single job: both epsilon magnitudes share one RNG stream."""
    return [
        JobSpec("repro.experiments.table1:run_table_job", {"seed": seed, "n": n})
    ]


def run(scale: str | None = None, seed: int = 0, n: int = 4096, runtime=None) -> dict:
    (record,) = execute(build_jobs(scale, seed, n), runtime)
    rows = [tuple(row) for row in record["rows"]]
    return {
        "headers": ["metric", "equivalence", "eps_scale", "direct", "eps_form", "rel_gap"],
        "rows": rows,
        "notes": (
            "exact rows: rel_gap ~ machine precision at every eps scale; "
            "taylor rows: rel_gap shrinks as O(eps) when eps -> 0"
        ),
    }

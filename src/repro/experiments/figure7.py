"""Figure 7: prediction error vs model size (all models, fixed training set).

Every hyper-parameter configuration contributes one (size, error) point;
the bench prints each model's accuracy-size Pareto frontier.  Expected
shape (the paper's strongest claim): CPR dominates the frontier —
comparable accuracy to KNN/GP on low-dimensional kernels at orders of
magnitude less memory, and outright best accuracy on the six-plus-parameter
applications at ~50x less memory than the best MLP.  Models over the size
cap (10 MB in the paper) are dropped.

One runtime job per (benchmark, model); frontiers are recomputed from the
cached per-configuration records client-side.
"""
from __future__ import annotations

from repro.experiments.config import bench_apps, n_test, resolve_scale, time_budget, tuning_grid
from repro.experiments.figure6 import MODELS
from repro.experiments.harness import TuneResult, tune_job_spec
from repro.runtime import execute

__all__ = ["run", "build_jobs"]

_N_TRAIN = {"smoke": 2**11, "full": 2**13, "paper": 8192}
_SIZE_CAP = 10 * 1024 * 1024  # the paper's 10 MB exclusion


def build_jobs(scale: str | None = None, seed: int = 0, models=None) -> list:
    scale = resolve_scale(scale)
    models = list(models or MODELS)
    specs = []
    for app_name in bench_apps(scale):
        for name in models:
            specs.append(
                tune_job_spec(
                    app=app_name,
                    model=name,
                    n_train=_N_TRAIN[scale],
                    n_test=n_test(scale),
                    grid=tuning_grid(name, scale),
                    seed=seed,
                    time_budget_s=time_budget(scale),
                )
            )
    return specs


def run(scale: str | None = None, seed: int = 0, models=None, runtime=None) -> dict:
    scale = resolve_scale(scale)
    specs = build_jobs(scale, seed, models)
    rows = []
    for rec in execute(specs, runtime):
        if rec["skipped"]:
            continue
        for size, err in TuneResult.from_record(rec).pareto:
            if size <= _SIZE_CAP:
                rows.append((rec["app"], rec["model"], size, err))
    return {
        "headers": ["benchmark", "model", "size_bytes", "mlogq"],
        "rows": rows,
        "notes": (
            "rows are per-model accuracy/size Pareto points; CPR should "
            "dominate the frontier (paper Figure 7)"
        ),
    }

"""Figure 7: prediction error vs model size (all models, fixed training set).

Every hyper-parameter configuration contributes one (size, error) point;
the bench prints each model's accuracy-size Pareto frontier.  Expected
shape (the paper's strongest claim): CPR dominates the frontier —
comparable accuracy to KNN/GP on low-dimensional kernels at orders of
magnitude less memory, and outright best accuracy on the six-plus-parameter
applications at ~50x less memory than the best MLP.  Models over the size
cap (10 MB in the paper) are dropped.
"""
from __future__ import annotations

from repro.apps import get_application
from repro.datasets import subsample
from repro.experiments.config import bench_apps, resolve_scale
from repro.experiments.figure6 import MODELS
from repro.experiments.harness import get_dataset, tune_model

__all__ = ["run"]

_N_TRAIN = {"smoke": 2**11, "full": 2**13, "paper": 8192}
_N_TEST = {"smoke": 512, "full": 1024, "paper": 2048}
_SIZE_CAP = 10 * 1024 * 1024  # the paper's 10 MB exclusion
_BUDGET = {"smoke": 60.0, "full": 300.0, "paper": 1000.0}


def run(scale: str | None = None, seed: int = 0, models=None) -> dict:
    scale = resolve_scale(scale)
    models = list(models or MODELS)
    rows = []
    for app_name in bench_apps(scale):
        app = get_application(app_name)
        train = get_dataset(app_name, _N_TRAIN[scale], seed=seed)
        test = get_dataset(app_name, _N_TEST[scale], seed=seed + 1000)
        for name in models:
            try:
                res = tune_model(
                    name, train, test, space=app.space, scale=scale, seed=seed,
                    time_budget_s=_BUDGET[scale],
                )
            except RuntimeError:
                continue
            for size, err in res.pareto:
                if size <= _SIZE_CAP:
                    rows.append((app_name, name, size, err))
    return {
        "headers": ["benchmark", "model", "size_bytes", "mlogq"],
        "rows": rows,
        "notes": (
            "rows are per-model accuracy/size Pareto points; CPR should "
            "dominate the frontier (paper Figure 7)"
        ),
    }

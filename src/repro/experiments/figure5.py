"""Figure 5: CPR accuracy vs training-set size and tensor density.

For each benchmark, tensors of several fixed shapes are completed from
increasingly many observations; per point we report the observed-cell
density and the minimum error over CP ranks.  The paper's findings: error
falls systematically with training size; higher-dimensional benchmarks
tolerate far lower densities (AMG is most accurate at 0.07% density, while
3-D MM wants >= 50%).
"""
from __future__ import annotations

from repro.apps import get_application
from repro.core.grid import TensorGrid
from repro.core.tensor import ObservedTensor
from repro.datasets import subsample
from repro.experiments.config import bench_apps, resolve_scale, train_sizes
from repro.experiments.harness import get_dataset, tune_model

__all__ = ["run"]

_N_TEST = {"smoke": 512, "full": 1024, "paper": 2048}
_CELL_CHOICES = {"smoke": (8, 16), "full": (8, 16, 32), "paper": (8, 16, 32, 64)}
_RANKS = {"smoke": (2, 4, 8), "full": (2, 4, 8, 16), "paper": (1, 2, 4, 8, 16, 32, 64)}


def run(scale: str | None = None, seed: int = 0) -> dict:
    scale = resolve_scale(scale)
    rows = []
    sizes = train_sizes(scale)
    for app_name in bench_apps(scale):
        app = get_application(app_name)
        pool = get_dataset(app_name, max(sizes), seed=seed)
        test = get_dataset(app_name, _N_TEST[scale], seed=seed + 1000)
        for cells in _CELL_CHOICES[scale]:
            for n in sizes:
                train = pool if n == len(pool) else subsample(pool, n, seed=seed + n)
                grid_obj = TensorGrid.from_space(app.space, cells, X=train.X)
                density = ObservedTensor.from_data(grid_obj, train.X, train.y).density
                res = tune_model(
                    "cpr", train, test, space=app.space,
                    grid=[
                        {"cells": cells, "rank": r, "regularization": 1e-5}
                        for r in _RANKS[scale]
                    ],
                    seed=seed,
                )
                rows.append((app_name, cells, n, density, res.best_error))
    return {
        "headers": ["benchmark", "cells/dim", "n_train", "density", "mlogq"],
        "rows": rows,
        "notes": (
            "error should fall with training size; high-dimensional apps "
            "stay accurate at far lower densities (paper Figure 5)"
        ),
    }

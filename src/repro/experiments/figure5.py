"""Figure 5: CPR accuracy vs training-set size and tensor density.

For each benchmark, tensors of several fixed shapes are completed from
increasingly many observations; per point we report the observed-cell
density and the minimum error over CP ranks.  The paper's findings: error
falls systematically with training size; higher-dimensional benchmarks
tolerate far lower densities (AMG is most accurate at 0.07% density, while
3-D MM wants >= 50%).

Each (benchmark, cells, n_train) point is one runtime job
(:func:`repro.experiments.harness.run_tune_job` with an embedded rank
grid); ``run`` is a thin spec-builder + row formatter.
"""
from __future__ import annotations

from repro.experiments.config import bench_apps, n_test, resolve_scale, train_sizes
from repro.experiments.harness import tune_job_spec
from repro.runtime import execute

__all__ = ["run", "build_jobs"]

_CELL_CHOICES = {"smoke": (8, 16), "full": (8, 16, 32), "paper": (8, 16, 32, 64)}
_RANKS = {"smoke": (2, 4, 8), "full": (2, 4, 8, 16), "paper": (1, 2, 4, 8, 16, 32, 64)}


def build_jobs(scale: str | None = None, seed: int = 0) -> list:
    """One job per (benchmark, cells/dim, training size) sweep point."""
    scale = resolve_scale(scale)
    sizes = train_sizes(scale)
    specs = []
    for app_name in bench_apps(scale):
        for cells in _CELL_CHOICES[scale]:
            grid = [
                {"cells": cells, "rank": r, "regularization": 1e-5}
                for r in _RANKS[scale]
            ]
            for n in sizes:
                specs.append(
                    tune_job_spec(
                        app=app_name,
                        model="cpr",
                        n_train=n,
                        n_test=n_test(scale),
                        grid=grid,
                        seed=seed,
                        pool_n=max(sizes),
                        subsample_seed=seed + n,
                        density_cells=cells,
                    )
                )
    return specs


def run(scale: str | None = None, seed: int = 0, runtime=None) -> dict:
    scale = resolve_scale(scale)
    specs = build_jobs(scale, seed)
    rows = []
    for spec, rec in zip(specs, execute(specs, runtime)):
        if rec["skipped"]:  # no rank completed on this sweep point
            continue
        rows.append(
            (
                rec["app"],
                spec.params["density_cells"],
                rec["n_train"],
                rec["density"],
                rec["best_error"],
            )
        )
    return {
        "headers": ["benchmark", "cells/dim", "n_train", "density", "mlogq"],
        "rows": rows,
        "notes": (
            "error should fall with training size; high-dimensional apps "
            "stay accurate at far lower densities (paper Figure 5)"
        ),
    }

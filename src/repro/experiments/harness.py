"""Sweep harness: dataset caching, hyper-parameter tuning, experiment loops.

The paper's evaluation protocol (Section 6.0.4): optimize every model
configuration on the same random training sample, forgo cross-validation,
and report the *minimum* test error over a model's hyper-parameter grid for
each data point.  ``tune_model`` implements exactly that; callers decide
the grid (see :mod:`repro.experiments.config`).
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.apps import get_application
from repro.datasets import Dataset, generate_dataset, subsample
from repro.experiments.config import resolve_scale, tuning_grid
from repro.experiments.registry import make_model
from repro.metrics import mlogq

__all__ = [
    "get_dataset",
    "evaluate_model",
    "tune_model",
    "interpolation_experiment",
    "TuneResult",
]

_DATASET_CACHE: dict[tuple, Dataset] = {}


def get_dataset(app_name: str, n: int, seed: int = 0, sigma=None) -> Dataset:
    """Generate (and cache) a dataset for a benchmark application."""
    key = (app_name, int(n), int(seed), sigma)
    if key not in _DATASET_CACHE:
        app = get_application(app_name)
        _DATASET_CACHE[key] = generate_dataset(app, n, seed=seed, sigma=sigma)
    return _DATASET_CACHE[key]


def evaluate_model(model, train: Dataset, test: Dataset, metric=mlogq) -> dict:
    """Fit ``model`` on ``train`` and report error/size/time on ``test``."""
    t0 = time.perf_counter()
    model.fit(train.X, train.y)
    fit_time = time.perf_counter() - t0
    pred = model.predict(test.X)
    return {
        "error": metric(pred, test.y),
        "size_bytes": model.size_bytes,
        "fit_seconds": fit_time,
    }


@dataclass
class TuneResult:
    """Outcome of a hyper-parameter sweep for one model on one dataset."""

    model: str
    best_error: float
    best_params: dict
    best_size_bytes: int
    results: list = field(default_factory=list)  # (params, error, size, time)

    @property
    def pareto(self) -> list:
        """(size, error) pairs on the accuracy-vs-size frontier (Figure 7)."""
        pts = sorted(
            ((r[2], r[1]) for r in self.results), key=lambda p: (p[0], p[1])
        )
        frontier = []
        best = np.inf
        for size, err in pts:
            if err < best:
                frontier.append((size, err))
                best = err
        return frontier


def tune_model(
    name: str,
    train: Dataset,
    test: Dataset,
    space=None,
    grid: list | None = None,
    scale: str | None = None,
    seed: int = 0,
    metric=mlogq,
    time_budget_s: float | None = None,
) -> TuneResult:
    """Exhaustively evaluate a model's hyper-parameter grid (paper protocol).

    ``time_budget_s`` mirrors the paper's exclusion of configurations that
    optimize in >= 1000 seconds: once cumulative fit time exceeds the
    budget, remaining configurations are skipped.
    """
    scale = resolve_scale(scale)
    if grid is None:
        grid = tuning_grid(name, scale)
    results = []
    spent = 0.0
    for params in grid:
        model = make_model(name, params, space=space, seed=seed)
        try:
            out = evaluate_model(model, train, test, metric=metric)
        except (MemoryError, RuntimeError, np.linalg.LinAlgError):
            continue
        results.append((params, out["error"], out["size_bytes"], out["fit_seconds"]))
        spent += out["fit_seconds"]
        if time_budget_s is not None and spent > time_budget_s:
            break
    if not results:
        raise RuntimeError(f"no configuration of {name!r} completed")
    best = min(results, key=lambda r: r[1])
    return TuneResult(
        model=name,
        best_error=best[1],
        best_params=best[0],
        best_size_bytes=best[2],
        results=results,
    )


def interpolation_experiment(
    app_name: str,
    n_train: int,
    n_test: int,
    models: list[str],
    scale: str | None = None,
    seed: int = 0,
    time_budget_s: float | None = None,
) -> dict[str, TuneResult]:
    """Tune every requested model on one benchmark (interpolation setting).

    Training and test sets are sampled independently from the same
    configuration space (paper Section 2.1); the training set is a random
    subsample of a cached pool so size sweeps reuse measurements.
    """
    scale = resolve_scale(scale)
    app = get_application(app_name)
    pool = get_dataset(app_name, max(n_train, 1), seed=seed)
    train = pool if len(pool) == n_train else subsample(pool, n_train, seed=seed + 1)
    test = get_dataset(app_name, n_test, seed=seed + 1000)
    out = {}
    for name in models:
        out[name] = tune_model(
            name,
            train,
            test,
            space=app.space,
            scale=scale,
            seed=seed,
            time_budget_s=time_budget_s,
        )
    return out

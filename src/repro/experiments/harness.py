"""Sweep harness: dataset caching, hyper-parameter tuning, experiment loops.

The paper's evaluation protocol (Section 6.0.4): optimize every model
configuration on the same random training sample, forgo cross-validation,
and report the *minimum* test error over a model's hyper-parameter grid for
each data point.  ``tune_model`` implements exactly that; callers decide
the grid (see :mod:`repro.experiments.config`).
"""
from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.apps import get_application
from repro.datasets import Dataset, generate_dataset, subsample
from repro.experiments.config import resolve_scale, tuning_grid
from repro.experiments.registry import make_model
from repro.metrics import METRICS, mlogq

__all__ = [
    "get_dataset",
    "evaluate_model",
    "tune_model",
    "interpolation_experiment",
    "run_tune_job",
    "tune_job_spec",
    "TuneResult",
]

#: Bounded process-local dataset cache.  Sweeps at paper scale touch more
#: (app, size, seed) pools than fit comfortably in memory forever, so the
#: cache evicts least-recently-used entries beyond this bound; runtime
#: workers inherit the same mechanism for their per-worker dataset reuse.
_DATASET_CACHE_MAX = 64
_DATASET_CACHE: OrderedDict[tuple, Dataset] = OrderedDict()


def _sigma_key(sigma):
    """Hashable canonical form of a noise override (scalar, sequence, or None)."""
    if sigma is None:
        return None
    arr = np.asarray(sigma, dtype=float)
    if arr.ndim == 0:
        return float(arr)
    return tuple(float(v) for v in arr.ravel())


def get_dataset(app_name: str, n: int, seed: int = 0, sigma=None) -> Dataset:
    """Generate (and cache) a dataset for a benchmark application.

    The cache key canonicalizes ``sigma`` (lists/arrays hash as value
    tuples) and the cache itself is LRU-bounded, so long sweeps cannot
    grow it without limit.
    """
    key = (app_name, int(n), int(seed), _sigma_key(sigma))
    if key in _DATASET_CACHE:
        _DATASET_CACHE.move_to_end(key)
        return _DATASET_CACHE[key]
    app = get_application(app_name)
    ds = generate_dataset(app, n, seed=seed, sigma=sigma)
    _DATASET_CACHE[key] = ds
    while len(_DATASET_CACHE) > _DATASET_CACHE_MAX:
        _DATASET_CACHE.popitem(last=False)
    return ds


def evaluate_model(model, train: Dataset, test: Dataset, metric=mlogq) -> dict:
    """Fit ``model`` on ``train`` and report error/size/time on ``test``."""
    t0 = time.perf_counter()
    model.fit(train.X, train.y)
    fit_time = time.perf_counter() - t0
    pred = model.predict(test.X)
    return {
        "error": metric(pred, test.y),
        "size_bytes": model.size_bytes,
        "fit_seconds": fit_time,
    }


@dataclass
class TuneResult:
    """Outcome of a hyper-parameter sweep for one model on one dataset."""

    model: str
    best_error: float
    best_params: dict
    best_size_bytes: int
    results: list = field(default_factory=list)  # (params, error, size, time)

    def to_record(self) -> dict:
        """JSON-serializable form of this result (the runtime job payload)."""
        return {
            "model": self.model,
            "best_error": float(self.best_error),
            "best_params": dict(self.best_params),
            "best_size_bytes": int(self.best_size_bytes),
            "results": [
                [dict(p), float(e), int(s), float(t)]
                for p, e, s, t in self.results
            ],
        }

    @classmethod
    def from_record(cls, record: dict) -> "TuneResult":
        """Rebuild a :class:`TuneResult` from a runtime job record."""
        return cls(
            model=record["model"],
            best_error=record["best_error"],
            best_params=record["best_params"],
            best_size_bytes=record["best_size_bytes"],
            results=[tuple(r) for r in record.get("results", [])],
        )

    @property
    def pareto(self) -> list:
        """(size, error) pairs on the accuracy-vs-size frontier (Figure 7)."""
        pts = sorted(
            ((r[2], r[1]) for r in self.results), key=lambda p: (p[0], p[1])
        )
        frontier = []
        best = np.inf
        for size, err in pts:
            if err < best:
                frontier.append((size, err))
                best = err
        return frontier


def tune_model(
    name: str,
    train: Dataset,
    test: Dataset,
    space=None,
    grid: list | None = None,
    scale: str | None = None,
    seed: int = 0,
    metric=mlogq,
    time_budget_s: float | None = None,
) -> TuneResult:
    """Exhaustively evaluate a model's hyper-parameter grid (paper protocol).

    ``time_budget_s`` mirrors the paper's exclusion of configurations that
    optimize in >= 1000 seconds: once cumulative fit time exceeds the
    budget, remaining configurations are skipped.
    """
    scale = resolve_scale(scale)
    if grid is None:
        grid = tuning_grid(name, scale)
    results = []
    spent = 0.0
    for params in grid:
        model = make_model(name, params, space=space, seed=seed)
        try:
            out = evaluate_model(model, train, test, metric=metric)
        except (MemoryError, RuntimeError, np.linalg.LinAlgError):
            continue
        results.append((params, out["error"], out["size_bytes"], out["fit_seconds"]))
        spent += out["fit_seconds"]
        if time_budget_s is not None and spent > time_budget_s:
            break
    if not results:
        raise RuntimeError(f"no configuration of {name!r} completed")
    best = min(results, key=lambda r: r[1])
    return TuneResult(
        model=name,
        best_error=best[1],
        best_params=best[0],
        best_size_bytes=best[2],
        results=results,
    )


def interpolation_experiment(
    app_name: str,
    n_train: int,
    n_test: int,
    models: list[str],
    scale: str | None = None,
    seed: int = 0,
    time_budget_s: float | None = None,
) -> dict[str, TuneResult]:
    """Tune every requested model on one benchmark (interpolation setting).

    Training and test sets are sampled independently from the same
    configuration space (paper Section 2.1); the training set is a random
    subsample of a cached pool so size sweeps reuse measurements.  Thin
    wrapper over :func:`run_tune_job` — one call per model, same dataset
    convention as the runtime jobs — kept for the legacy in-process API.
    """
    scale = resolve_scale(scale)
    out = {}
    for name in models:
        record = run_tune_job(
            app=app_name,
            model=name,
            n_train=n_train,
            n_test=n_test,
            scale=scale,
            seed=seed,
            time_budget_s=time_budget_s,
        )
        if record["skipped"]:
            raise RuntimeError(record["reason"])
        out[name] = TuneResult.from_record(record)
    return out


def run_tune_job(
    *,
    app: str,
    model: str,
    n_train: int,
    n_test: int,
    grid: list | None = None,
    scale: str | None = None,
    seed: int = 0,
    pool_n: int | None = None,
    subsample_seed: int | None = None,
    time_budget_s: float | None = None,
    density_cells=None,
    metric: str = "mlogq",
    publish_dir=None,
    publish_name: str | None = None,
) -> dict:
    """Runtime job runner: one model's hyper-parameter sweep on one dataset.

    This is the declarative form of the figure drivers' inner loops — a
    pure function of its keyword arguments, so its result is cacheable by
    the spec hash.  The training set is drawn from a cached pool of
    ``pool_n`` rows (default ``n_train``); when ``n_train`` is smaller
    than the pool it is subsampled with ``subsample_seed`` (default
    ``seed + 1``, the :func:`interpolation_experiment` convention).  When
    ``density_cells`` is given, the record also reports the observed-cell
    density of the training tensor on that grid (Figure 5's x-axis).

    Returns a JSON-serializable record; sweeps where no configuration
    completes yield ``{"skipped": True, ...}`` instead of raising so the
    skip itself is cacheable.

    Publish-after-fit: when ``publish_dir`` is given, the sweep's best
    configuration is refitted on the training set and published to the
    :class:`repro.serve.ModelRegistry` at that directory (name
    ``publish_name`` or ``"<app>-<model>"``), and the record gains a
    ``published`` entry with the assigned version and digest.  Publishing
    is a side effect outside the purity contract: a cache *hit* replays
    the record without re-publishing (the registry already has that
    version).

    Purity caveat: ``time_budget_s`` is the paper's *wall-clock* exclusion
    rule (configurations optimizing in >= 1000 s are dropped), so where a
    budgeted sweep truncates its grid can vary with machine load — the
    one documented exception to the runtime's same-spec-same-record
    contract.  The result cache pins whichever truncation was observed
    first, which keeps subsequent reruns reproducible.
    """
    from repro.core.grid import TensorGrid
    from repro.core.tensor import ObservedTensor

    application = get_application(app)
    pool = get_dataset(app, int(pool_n) if pool_n is not None else max(int(n_train), 1), seed=seed)
    if int(n_train) == len(pool):
        train = pool
    else:
        sub_seed = subsample_seed if subsample_seed is not None else seed + 1
        train = subsample(pool, int(n_train), seed=sub_seed)
    test = get_dataset(app, int(n_test), seed=seed + 1000)

    record: dict = {"app": app, "model": model, "n_train": int(n_train)}
    if density_cells is not None:
        grid_obj = TensorGrid.from_space(application.space, density_cells, X=train.X)
        tensor = ObservedTensor.from_data(grid_obj, train.X, train.y)
        record["density"] = float(tensor.density)
    try:
        res = tune_model(
            model,
            train,
            test,
            space=application.space,
            grid=grid,
            scale=scale,
            seed=seed,
            metric=METRICS[metric],
            time_budget_s=time_budget_s,
        )
    except RuntimeError as exc:
        record.update(skipped=True, reason=str(exc))
        return record
    record.update(skipped=False, **res.to_record())
    if publish_dir is not None:
        from repro.serve import ModelRegistry

        best = make_model(model, res.best_params, space=application.space, seed=seed)
        best.fit(train.X, train.y)
        registry = ModelRegistry(publish_dir)
        mv = registry.publish(
            publish_name or f"{app}-{model}",
            best,
            meta={
                "app": app,
                "model": model,
                "n_train": int(n_train),
                "params": dict(res.best_params),
                "error": float(res.best_error),
            },
        )
        record["published"] = {
            "name": mv.name,
            "version": mv.version,
            "digest": mv.digest,
        }
    return record


def tune_job_spec(**params):
    """The canonical :func:`run_tune_job` spec for the figure drivers.

    Single home for the job param contract: every figure builds its
    tuning jobs here, so a renamed/added parameter (which changes every
    cache key) cannot desynchronize across drivers.  Grids are
    canonicalized to JSON-normal form (see
    :func:`repro.experiments.registry.canonical_params`).
    """
    from repro.experiments.registry import canonical_params
    from repro.runtime import JobSpec

    grid = params.get("grid")
    if grid is not None:
        params["grid"] = [canonical_params(g) for g in grid]
    return JobSpec("repro.experiments.harness:run_tune_job", params)

"""Experiment drivers reproducing every table and figure of the paper.

Each ``figureN`` module exposes ``run(scale=..., seed=...) -> dict`` with
``headers`` and ``rows`` mirroring the series the paper plots; the
``benchmarks/`` tree calls these and prints/saves the tables.  ``scale``
selects problem sizes: ``"smoke"`` (seconds-scale, default for CI),
``"full"`` (minutes), ``"paper"`` (the paper's training sizes).
"""
from repro.experiments.config import SCALES, resolve_scale, tuning_grid
from repro.experiments.harness import (
    evaluate_model,
    get_dataset,
    interpolation_experiment,
    run_tune_job,
    tune_model,
)
from repro.experiments.registry import MODEL_NAMES, canonical_params, make_model

__all__ = [
    "SCALES",
    "resolve_scale",
    "tuning_grid",
    "make_model",
    "canonical_params",
    "MODEL_NAMES",
    "get_dataset",
    "tune_model",
    "evaluate_model",
    "interpolation_experiment",
    "run_tune_job",
]

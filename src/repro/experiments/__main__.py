"""Command-line experiment runner.

Run any table/figure reproduction without pytest::

    python -m repro.experiments figure1 --scale smoke
    python -m repro.experiments figure6 --scale full --seed 1 --out results/
    python -m repro.experiments figure5 --jobs 4 --cache-dir ~/.cache/repro
    python -m repro.experiments all --scale smoke

Scales: smoke (seconds-to-minutes), full, paper (the paper's sizes).

Runtime flags (see :mod:`repro.runtime` and DESIGN.md "Runtime & caching"):

``--jobs N``
    Execute each driver's job list on ``N`` worker processes.  The
    default (1) runs sequentially in-process; results are identical
    either way — every job derives its randomness from seeds in its spec.
``--cache-dir PATH``
    Content-addressed result cache.  Completed jobs are stored as JSON
    records keyed by a hash of the job spec; re-running a sweep answers
    finished jobs from the cache (an interrupted sweep resumes where it
    stopped), and editing a grid/seed/scale invalidates exactly the jobs
    it changes.  A ``[runtime]`` line per driver reports the hit/executed
    split.
``--queue DIR --queue-workers N``
    Elastic work-queue mode: specs are spooled under ``DIR`` and claimed
    by ``N`` lease-holding worker processes (heartbeats + stale-lease
    reclaim — a SIGKILLed worker's jobs are re-run by its peers, and
    extra workers on any host sharing ``DIR`` may join mid-sweep).
    Results are ordinary cache records, byte-identical to a sequential
    run of the same specs.
"""
from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (
    ablation_rank,
    ablation_tucker,
    ablations,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
)
from repro.experiments.config import SCALES
from repro.runtime import Runtime
from repro.utils import format_table

DRIVERS = {
    "table1": table1.run,
    "figure1": figure1.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "ablation-loss": ablations.run_loss,
    "ablation-spacing": ablations.run_spacing,
    "ablation-optimizer": ablations.run_optimizer,
    "ablation-tucker": ablation_tucker.run,
    "ablation-rank": ablation_rank.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*DRIVERS, "all"],
        help="which table/figure to regenerate ('all' runs every driver)",
    )
    parser.add_argument("--scale", choices=SCALES, default=None,
                        help="problem scale (default: $REPRO_BENCH_SCALE or smoke)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to archive result tables into")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the experiment runtime "
                             "(1 = sequential in-process)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="content-addressed job result cache; completed "
                             "jobs are skipped on re-runs")
    parser.add_argument("--queue", type=Path, default=None, metavar="DIR",
                        help="work-queue spool directory: jobs are claimed by "
                             "lease-holding queue workers instead of a local "
                             "process pool (results land in --cache-dir, or "
                             "DIR/results)")
    parser.add_argument("--queue-workers", type=int, default=2, metavar="N",
                        help="local worker processes to spawn over the queue "
                             "spool (more may join from other hosts)")
    parser.add_argument("--queue-lease-ttl", type=float, default=10.0,
                        metavar="SECONDS",
                        help="heartbeat TTL before a dead worker's lease is "
                             "reclaimed by a peer")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.queue_workers < 1:
        parser.error("--queue-workers must be >= 1")

    runtime = Runtime(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        queue_dir=args.queue,
        queue_workers=args.queue_workers,
        queue_lease_ttl_s=args.queue_lease_ttl,
    )
    names = list(DRIVERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        hits0, executed0 = runtime.snapshot()
        t0 = time.perf_counter()
        result = DRIVERS[name](scale=args.scale, seed=args.seed, runtime=runtime)
        elapsed = time.perf_counter() - t0
        table = format_table(result["headers"], result["rows"])
        print(f"\n== {name} ({elapsed:.1f}s) ==")
        print(table)
        if result.get("notes"):
            print(f"(expected shape: {result['notes']})")
        hits = runtime.hits - hits0
        executed = runtime.executed - executed0
        where = (
            f"queue={args.queue}, workers={runtime.queue_workers}"
            if args.queue is not None
            else f"jobs={runtime.jobs}"
        )
        print(
            f"[runtime] {name}: {hits + executed} jobs, {hits} cache hits, "
            f"{executed} executed ({where})"
        )
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(table + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

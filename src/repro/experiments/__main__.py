"""Command-line experiment runner.

Run any table/figure reproduction without pytest::

    python -m repro.experiments figure1 --scale smoke
    python -m repro.experiments figure6 --scale full --seed 1 --out results/
    python -m repro.experiments all --scale smoke

Scales: smoke (seconds-to-minutes), full, paper (the paper's sizes).
"""
from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (
    ablation_tucker,
    ablations,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
)
from repro.experiments.config import SCALES
from repro.utils import format_table

DRIVERS = {
    "table1": table1.run,
    "figure1": figure1.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "ablation-loss": ablations.run_loss,
    "ablation-spacing": ablations.run_spacing,
    "ablation-optimizer": ablations.run_optimizer,
    "ablation-tucker": ablation_tucker.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*DRIVERS, "all"],
        help="which table/figure to regenerate ('all' runs every driver)",
    )
    parser.add_argument("--scale", choices=SCALES, default=None,
                        help="problem scale (default: $REPRO_BENCH_SCALE or smoke)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to archive result tables into")
    args = parser.parse_args(argv)

    names = list(DRIVERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.perf_counter()
        result = DRIVERS[name](scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - t0
        table = format_table(result["headers"], result["rows"])
        print(f"\n== {name} ({elapsed:.1f}s) ==")
        print(table)
        if result.get("notes"):
            print(f"(expected shape: {result['notes']})")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(table + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

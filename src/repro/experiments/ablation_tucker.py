"""Ablation: CP vs Tucker decomposition on the same grid model.

The paper chooses CP because its size is linear in tensor order at fixed
rank (Section 3.2) and defers other decompositions to future work.  This
driver fits both decompositions on identical grids and reports accuracy
and parameter counts: Tucker matches CP on low-order kernels but its core
(``prod_j R_j``) explodes combinatorially with order — the 8-parameter AMG
model at rank 4 already needs a 65k-entry core, where CP needs 8*4 numbers
per mode.

One runtime job per (benchmark, rank) CP/Tucker pair, plus one job for
the order-scaling refusal check on AMG.
"""
from __future__ import annotations

from repro.apps import get_application
from repro.core import CPRModel, TuckerModel
from repro.experiments.config import n_test, resolve_scale
from repro.experiments.harness import get_dataset
from repro.runtime import JobSpec, execute

__all__ = ["run", "build_jobs", "run_pair_job", "run_refusal_job"]

_N_TRAIN = {"smoke": 2**11, "full": 2**13, "paper": 2**14}


def run_pair_job(*, app: str, rank: int, scale: str, seed: int = 0) -> dict:
    """Runtime job runner: CP and Tucker fits on one (benchmark, rank)."""
    application = get_application(app)
    train = get_dataset(app, _N_TRAIN[scale], seed=seed)
    test = get_dataset(app, n_test(scale), seed=seed + 1000)
    rows = []
    cp = CPRModel(space=application.space, cells=8, rank=rank,
                  regularization=1e-4, seed=seed).fit(train.X, train.y)
    rows.append([app, "cp", rank, float(cp.score(test.X, test.y)), int(cp.n_parameters)])
    try:
        tk = TuckerModel(space=application.space, cells=8, rank=rank,
                         regularization=1e-4, seed=seed).fit(train.X, train.y)
        rows.append(
            [app, "tucker", rank, float(tk.score(test.X, test.y)), int(tk.n_parameters)]
        )
    except MemoryError:
        rows.append([app, "tucker", rank, float("nan"), -1])
    return {"rows": rows}


def run_refusal_job(*, scale: str, seed: int = 0) -> dict:
    """Runtime job runner: Tucker at AMG's order/rank must refuse to fit."""
    amg = get_application("amg")
    amg_train = get_dataset("amg", _N_TRAIN[scale], seed=seed)
    refused = False
    try:
        TuckerModel(space=amg.space, cells=8, rank=8, max_core_size=65536,
                    seed=seed).fit(amg_train.X, amg_train.y)
    except MemoryError:
        refused = True
    return {"rows": [["amg", "tucker-rank8", 8, float("nan"), -1 if refused else 0]]}


def build_jobs(scale: str | None = None, seed: int = 0) -> list:
    scale = resolve_scale(scale)
    specs = [
        JobSpec(
            "repro.experiments.ablation_tucker:run_pair_job",
            {"app": app_name, "rank": rank, "scale": scale, "seed": seed},
        )
        for app_name in ("matmul", "exafmm")
        for rank in (2, 4)
    ]
    specs.append(
        JobSpec(
            "repro.experiments.ablation_tucker:run_refusal_job",
            {"scale": scale, "seed": seed},
        )
    )
    return specs


def run(scale: str | None = None, seed: int = 0, runtime=None) -> dict:
    scale = resolve_scale(scale)
    rows = []
    for record in execute(build_jobs(scale, seed), runtime):
        rows.extend(tuple(row) for row in record["rows"])
    return {
        "headers": ["benchmark", "decomposition", "rank", "mlogq", "n_params"],
        "rows": rows,
        "notes": (
            "Tucker should match CP accuracy on low-order kernels at a "
            "larger parameter count, and become infeasible at AMG's order "
            "(core = rank^8) — the paper's argument for CP"
        ),
    }

"""Ablation: CP vs Tucker decomposition on the same grid model.

The paper chooses CP because its size is linear in tensor order at fixed
rank (Section 3.2) and defers other decompositions to future work.  This
driver fits both decompositions on identical grids and reports accuracy
and parameter counts: Tucker matches CP on low-order kernels but its core
(``prod_j R_j``) explodes combinatorially with order — the 8-parameter AMG
model at rank 4 already needs a 65k-entry core, where CP needs 8*4 numbers
per mode.
"""
from __future__ import annotations

from repro.apps import get_application
from repro.core import CPRModel, TuckerModel
from repro.experiments.config import resolve_scale
from repro.experiments.harness import get_dataset

__all__ = ["run"]

_N_TRAIN = {"smoke": 2**11, "full": 2**13, "paper": 2**14}
_N_TEST = {"smoke": 512, "full": 1024, "paper": 2048}


def run(scale: str | None = None, seed: int = 0) -> dict:
    scale = resolve_scale(scale)
    rows = []
    for app_name in ("matmul", "exafmm"):
        app = get_application(app_name)
        train = get_dataset(app_name, _N_TRAIN[scale], seed=seed)
        test = get_dataset(app_name, _N_TEST[scale], seed=seed + 1000)
        for rank in (2, 4):
            cp = CPRModel(space=app.space, cells=8, rank=rank,
                          regularization=1e-4, seed=seed).fit(train.X, train.y)
            rows.append(
                (app_name, "cp", rank, cp.score(test.X, test.y), cp.n_parameters)
            )
            try:
                tk = TuckerModel(space=app.space, cells=8, rank=rank,
                                 regularization=1e-4, seed=seed).fit(train.X, train.y)
                rows.append(
                    (app_name, "tucker", rank,
                     tk.score(test.X, test.y), tk.n_parameters)
                )
            except MemoryError:
                rows.append((app_name, "tucker", rank, float("nan"), -1))
    # The order-scaling punchline: Tucker at AMG's order/rank is refused.
    amg = get_application("amg")
    amg_train = get_dataset("amg", _N_TRAIN[scale], seed=seed)
    refused = False
    try:
        TuckerModel(space=amg.space, cells=8, rank=8, max_core_size=65536,
                    seed=seed).fit(amg_train.X, amg_train.y)
    except MemoryError:
        refused = True
    rows.append(("amg", "tucker-rank8", 8, float("nan"), -1 if refused else 0))
    return {
        "headers": ["benchmark", "decomposition", "rank", "mlogq", "n_params"],
        "rows": rows,
        "notes": (
            "Tucker should match CP accuracy on low-order kernels at a "
            "larger parameter count, and become infeasible at AMG's order "
            "(core = rank^8) — the paper's argument for CP"
        ),
    }

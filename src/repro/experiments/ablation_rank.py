"""Rank ablation: fixed-rank CPR grid vs the adaptive ``rank="auto"`` fit.

Extends the Figure 5/6 protocol along the rank axis.  Per benchmark, one
low-density sweep point (the scale's largest grid with its smallest
training set — where rank choice matters most) is completed two ways:

* the paper's protocol — a grid of **fixed** CP ranks, reporting the
  minimum test MLogQ over the grid (what every accuracy figure does), and
* a single ``rank="auto"`` fit — the grow/prune loop of
  :func:`repro.core.completion.complete_als_adaptive` selects the rank
  from a validation holdout instead of an outer grid search.

The claim under test: the adaptive fit matches the best fixed rank's
error without the grid (one fit vs ``len(ranks)`` fits) and lands on a
model no larger than the best fixed one.  Rows report the selected-rank
trajectory so a regression in the grow/prune policy is visible directly.

Each (benchmark, cells, n_train) point is one runtime job
(:func:`run_rank_job`); ``run`` is a thin spec-builder + row formatter,
exactly like the figure drivers.
"""
from __future__ import annotations

import time

import numpy as np

from repro.apps import get_application
from repro.experiments.config import bench_apps, n_test, resolve_scale, train_sizes
from repro.experiments.harness import get_dataset
from repro.experiments.registry import make_model
from repro.metrics import mlogq
from repro.runtime import JobSpec, execute

__all__ = ["run", "build_jobs", "run_rank_job", "rank_job_spec"]

_CELLS = {"smoke": 16, "full": 32, "paper": 64}
_RANKS = {"smoke": (2, 4, 8), "full": (2, 4, 8, 16), "paper": (1, 2, 4, 8, 16, 32)}


def run_rank_job(
    *,
    app: str,
    n_train: int,
    n_test: int,
    cells: int,
    ranks,
    regularization: float = 1e-5,
    max_sweeps: int = 50,
    seed: int = 0,
) -> dict:
    """Runtime job: fixed-rank grid vs one adaptive fit on one dataset.

    Pure function of its keyword arguments (cacheable by spec hash).
    Returns per-variant error / size / fit time, plus the adaptive fit's
    landed rank and grow/prune trajectory.
    """
    from repro.core.grid import TensorGrid
    from repro.core.tensor import ObservedTensor

    application = get_application(app)
    train = get_dataset(app, int(n_train), seed=seed)
    test = get_dataset(app, int(n_test), seed=seed + 1000)
    grid_obj = TensorGrid.from_space(application.space, cells, X=train.X)
    density = ObservedTensor.from_data(grid_obj, train.X, train.y).density

    record: dict = {
        "app": app,
        "n_train": int(n_train),
        "cells": int(cells),
        "density": float(density),
    }

    def _fit_eval(params: dict) -> dict:
        model = make_model(
            "cpr", params, space=application.space, seed=seed
        )
        t0 = time.perf_counter()
        model.fit(train.X, train.y)
        fit_s = time.perf_counter() - t0
        return {
            "error": float(mlogq(model.predict(test.X), test.y)),
            "size_bytes": int(model.size_bytes),
            "fit_s": float(fit_s),
            "adapted_rank": int(model.adapted_rank_),
            "rank_trajectory": list(model.rank_trajectory_ or []),
        }

    fixed = []
    for r in ranks:
        try:
            out = _fit_eval(
                {
                    "cells": cells,
                    "rank": int(r),
                    "regularization": regularization,
                    "max_sweeps": max_sweeps,
                }
            )
        except (MemoryError, RuntimeError, np.linalg.LinAlgError):
            continue
        fixed.append({"rank": int(r), **out})
    try:
        auto = _fit_eval(
            {
                "cells": cells,
                "rank": "auto",
                "regularization": regularization,
                "max_sweeps": max_sweeps,
                "max_rank": int(max(ranks)),
            }
        )
    except (MemoryError, RuntimeError, np.linalg.LinAlgError) as exc:
        auto = {"skipped": True, "reason": str(exc)}
    if not fixed:
        record.update(skipped=True, reason="no fixed-rank configuration completed")
        return record
    record.update(
        skipped=False,
        fixed=fixed,
        best_fixed=min(fixed, key=lambda f: f["error"]),
        auto=auto,
    )
    return record


def rank_job_spec(**params) -> JobSpec:
    """The canonical :func:`run_rank_job` spec (cache-key contract home)."""
    return JobSpec("repro.experiments.ablation_rank:run_rank_job", params)


def build_jobs(scale: str | None = None, seed: int = 0) -> list:
    """One job per benchmark at the scale's lowest-density sweep point."""
    scale = resolve_scale(scale)
    n = train_sizes(scale)[0]
    return [
        rank_job_spec(
            app=app_name,
            n_train=n,
            n_test=n_test(scale),
            cells=_CELLS[scale],
            ranks=_RANKS[scale],
            seed=seed,
        )
        for app_name in bench_apps(scale)
    ]


def run(scale: str | None = None, seed: int = 0, runtime=None) -> dict:
    scale = resolve_scale(scale)
    rows = []
    for rec in execute(build_jobs(scale, seed), runtime):
        if rec["skipped"]:
            continue
        best = rec["best_fixed"]
        auto = rec["auto"]
        if auto.get("skipped"):
            rows.append(
                (rec["app"], rec["density"], best["rank"], best["error"],
                 "failed", "", "", "")
            )
            continue
        rows.append(
            (
                rec["app"],
                rec["density"],
                best["rank"],
                best["error"],
                auto["adapted_rank"],
                auto["error"],
                "->".join(str(r) for r in auto["rank_trajectory"]),
                f"{auto['size_bytes'] / max(best['size_bytes'], 1):.2f}x",
            )
        )
    return {
        "headers": [
            "benchmark", "density", "best fixed rank", "fixed mlogq",
            "auto rank", "auto mlogq", "trajectory", "size vs fixed",
        ],
        "rows": rows,
        "notes": (
            "rank='auto' should match the best fixed rank's error in one "
            "fit (no grid) at equal or smaller model size"
        ),
    }

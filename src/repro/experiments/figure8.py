"""Figure 8: extrapolation error beyond the training ranges (Section 7.2).

Four panels:

* **mm_m** — matrix multiplication, extrapolate dimension ``m``:
  test ``2048 <= m <= 4096``, train ``m < N`` for ``N in 2^8..2^11``;
* **mm_mnk** — extrapolate all of ``m, n, k`` jointly;
* **bc_nodes** — MPI broadcast, extrapolate node count: test at 128 nodes,
  train ``nodes <= N`` for ``N in 8..64`` (node counts snapped to powers of
  two as executed in the paper);
* **bc_msg** — extrapolate message size: test ``2^25 <= msg <= 2^26``,
  train ``msg < N``.

CPR runs its positive (AMN + Perron/MARS) extrapolation model; baselines
use the interpolation pipeline and — per the paper — overfit the training
range.  Expected shape: CPR clearly best on numerical-parameter
extrapolation (mm_m, mm_mnk, bc_msg); node-count extrapolation is its
acknowledged weak spot, where it only matches KNN.

One runtime job per (scenario, model): each job rebuilds the scenario's
deterministic pool and replays a *per-scenario* train/test subsampling
stream (``seed + 7``).  The stream never depended on the model loop, so
rows are identical for any worker count or model subset; unlike the old
sequential sweep — which threaded one stream across scenarios, making a
scenario's draws depend on which scenarios ran before it — each
scenario's numbers are now also independent of scenario selection, the
property the result cache needs.
"""
from __future__ import annotations

import numpy as np

from repro.apps import get_application
from repro.experiments.config import resolve_scale
from repro.experiments.registry import make_model
from repro.metrics import mlogq
from repro.runtime import JobSpec, execute
from repro.utils.rng import as_generator

__all__ = ["run", "build_jobs", "build_pool", "run_scenario_job", "SCENARIOS", "DEFAULT_MODELS"]

DEFAULT_MODELS = ["cpr", "nn", "et", "gp", "knn", "mars"]

_POOL = {"smoke": 2**13, "full": 2**14, "paper": 2**16}
_TRAIN_CAP = {"smoke": 1024, "full": 4096, "paper": 4096}
_TEST_CAP = {"smoke": 384, "full": 1024, "paper": 4096}


def _snap_pow2(col: np.ndarray, lo_exp: int, hi_exp: int) -> np.ndarray:
    """Snap values to the nearest power of two in ``[2^lo, 2^hi]``."""
    e = np.clip(np.round(np.log2(np.maximum(col, 1.0))), lo_exp, hi_exp)
    return 2.0**e


#: Worker-side pool memo: several (scenario, model) jobs share one pool.
_POOL_CACHE: dict = {}


def build_pool(app_name: str, n: int, seed: int):
    """Sample a configuration pool and measure it (memoized per process).

    Broadcast node/ppn counts are snapped to powers of two before
    measurement, matching the paper's execution grid for the BC kernel.
    """
    key = (app_name, int(n), int(seed))
    if key in _POOL_CACHE:
        return _POOL_CACHE[key]
    app = get_application(app_name)
    rng = as_generator(seed)
    X = app.space.sample(n, rng)
    if app_name == "bcast":
        X[:, 0] = _snap_pow2(X[:, 0], 0, 7)  # nodes in {1..128}
        X[:, 1] = _snap_pow2(X[:, 1], 0, 6)  # ppn in {1..64}
    y = app.measure(X, rng=rng)
    if len(_POOL_CACHE) >= 8:  # a scenario sweep needs at most two pools
        _POOL_CACHE.clear()
    _POOL_CACHE[key] = (app, X, y)
    return app, X, y


#: scenario -> (app, extrapolated columns, test bounds, train cutoffs)
SCENARIOS = {
    "mm_m": {
        "app": "matmul",
        "params": ["m"],
        "test": {"m": (2048, 4096)},
        "cutoffs": [2**11, 2**10, 2**9, 2**8],
    },
    "mm_mnk": {
        "app": "matmul",
        "params": ["m", "n", "k"],
        "test": {"m": (2048, 4096), "n": (2048, 4096), "k": (2048, 4096)},
        "cutoffs": [2**11, 2**10, 2**9, 2**8],
    },
    "bc_nodes": {
        "app": "bcast",
        "params": ["nodes"],
        "test": {"nodes": (128, 128)},
        "cutoffs": [64, 32, 16, 8],
    },
    "bc_msg": {
        "app": "bcast",
        "params": ["msg"],
        "test": {"msg": (2**25, 2**26)},
        "cutoffs": [2**25, 2**23, 2**21, 2**19],
    },
}

#: CPR settings for the extrapolation model (positive factors + splines).
#: Low rank keeps the Perron component clean (component mixing corrupts the
#: extrapolated slope at high rank) and a finer grid gives the MARS spline
#: more training points along the extrapolated mode (paper Section 7.2).
_CPR_EXTRAP = {
    "loss": "mlogq2",
    "rank": 2,
    "cells": 16,
    "regularization": 1e-5,
    "max_sweeps": 2,
    "newton_iters": 15,
}


def run_scenario_job(*, scenario: str, model: str, scale: str, seed: int = 0) -> dict:
    """Runtime job runner: one model across one scenario's train cutoffs.

    The per-scenario subsampling stream (``seed + 7``: one test draw,
    then one train draw per cutoff) is replayed identically in every
    job — it was never advanced by the model loop — so per-(cutoff,
    model) errors are independent of which models or worker counts run.
    """
    sc = SCENARIOS[scenario]
    app, X, y = build_pool(sc["app"], _POOL[scale], seed)
    space = app.space
    rng = as_generator(seed + 7)
    test_mask = np.ones(len(X), dtype=bool)
    for pname, (lo, hi) in sc["test"].items():
        col = space.column(X, pname)
        test_mask &= (col >= lo) & (col <= hi)
    test_rows = np.flatnonzero(test_mask)
    if len(test_rows) > _TEST_CAP[scale]:
        test_rows = rng.choice(test_rows, size=_TEST_CAP[scale], replace=False)
    Xte, yte = X[test_rows], y[test_rows]

    points = []
    for N in sc["cutoffs"]:
        train_mask = np.ones(len(X), dtype=bool)
        for pname in sc["params"]:
            train_mask &= space.column(X, pname) < N
        train_rows = np.flatnonzero(train_mask)
        if len(train_rows) < 64:
            continue
        if len(train_rows) > _TRAIN_CAP[scale]:
            train_rows = rng.choice(train_rows, size=_TRAIN_CAP[scale], replace=False)
        Xtr, ytr = X[train_rows], y[train_rows]
        params = dict(_CPR_EXTRAP) if model == "cpr" else None
        m = make_model(model, params, space=space, seed=seed)
        try:
            m.fit(Xtr, ytr)
            err = mlogq(m.predict(Xte), yte)
        except (RuntimeError, np.linalg.LinAlgError, ValueError):
            continue
        points.append([int(N), float(err)])
    return {"scenario": scenario, "model": model, "points": points}


def build_jobs(scale: str | None = None, seed: int = 0, models=None, scenarios=None) -> list:
    scale = resolve_scale(scale)
    models = list(models or DEFAULT_MODELS)
    scenarios = scenarios or list(SCENARIOS)
    return [
        JobSpec(
            "repro.experiments.figure8:run_scenario_job",
            {"scenario": sc_name, "model": name, "scale": scale, "seed": seed},
        )
        for sc_name in scenarios
        for name in models
    ]


def run(scale: str | None = None, seed: int = 0, models=None, scenarios=None, runtime=None) -> dict:
    scale = resolve_scale(scale)
    models = list(models or DEFAULT_MODELS)
    scenarios = scenarios or list(SCENARIOS)
    specs = build_jobs(scale, seed, models, scenarios)
    by_job = {
        (rec["scenario"], rec["model"]): {n: err for n, err in rec["points"]}
        for rec in execute(specs, runtime)
    }
    # Reassemble the historical row order: scenario-major, then cutoff,
    # then model (rows whose fit failed or lacked data are absent).
    rows = []
    for sc_name in scenarios:
        for N in SCENARIOS[sc_name]["cutoffs"]:
            for name in models:
                err = by_job[(sc_name, name)].get(N)
                if err is not None:
                    rows.append((sc_name, N, name, err))
    return {
        "headers": ["scenario", "train_cutoff_N", "model", "mlogq"],
        "rows": rows,
        "notes": (
            "CPR should extrapolate numerical parameters (mm_m, mm_mnk, "
            "bc_msg) far better than baselines; bc_nodes is its weak spot "
            "(paper Figure 8)"
        ),
    }

"""Hyper-parameter grids (paper Section 6.0.4) and scale presets.

The paper exhaustively explores each model's hyper-parameters on a fixed
training set and reports the minimum test error.  The ``paper`` grids below
transcribe Section 6.0.4; ``smoke``/``full`` are subsampled versions so the
full benchmark suite completes on a laptop in seconds/minutes.  Select with
the ``REPRO_BENCH_SCALE`` environment variable or an explicit argument.
"""
from __future__ import annotations

import os

__all__ = [
    "SCALES",
    "resolve_scale",
    "tuning_grid",
    "bench_apps",
    "train_sizes",
    "n_test",
    "time_budget",
]

SCALES = ("smoke", "full", "paper")


def resolve_scale(scale: str | None = None) -> str:
    """Pick the experiment scale: explicit arg > env var > ``smoke``."""
    s = scale or os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if s not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {s!r}")
    return s


def bench_apps(scale: str) -> list[str]:
    """Benchmarks included in the multi-model figures at this scale.

    The smoke set keeps one low-dimensional kernel (matmul), one
    communication kernel (bcast), and both flavours of high-dimensional
    application (exafmm: numeric-only; amg: categorical-heavy, where the
    paper's CPR advantage is largest).
    """
    if scale == "smoke":
        return ["matmul", "bcast", "exafmm", "amg"]
    return ["matmul", "qr", "bcast", "exafmm", "amg", "kripke"]


def train_sizes(scale: str) -> list[int]:
    """Training-set sizes for the accuracy-vs-size sweeps (Figures 5/6)."""
    return {
        "smoke": [2**9, 2**10, 2**11],
        "full": [2**10, 2**11, 2**12, 2**13],
        "paper": [2**10, 2**11, 2**12, 2**13, 2**14, 2**15, 2**16],
    }[scale]


def n_test(scale: str) -> int:
    """Test-set size shared by every accuracy figure at this scale."""
    return {"smoke": 512, "full": 1024, "paper": 2048}[scale]


def time_budget(scale: str) -> float:
    """Per-model cumulative fit-time budget in seconds (Figures 6/7).

    Mirrors the paper's exclusion of configurations optimizing in
    >= 1000 seconds, scaled down for the smaller smoke/full problems.
    """
    return {"smoke": 60.0, "full": 300.0, "paper": 1000.0}[scale]


# --- per-model tuning grids --------------------------------------------------

def _grid_cpr(scale):
    if scale == "smoke":
        return [
            {"cells": c, "rank": r, "regularization": 1e-5}
            for c in (8, 16)
            for r in (2, 4, 8)
        ]
    if scale == "full":
        return [
            {"cells": c, "rank": r, "regularization": lam}
            for c in (4, 8, 16, 32)
            for r in (2, 4, 8, 16)
            for lam in (1e-5, 1e-4)
        ]
    return [
        {"cells": c, "rank": r, "regularization": lam}
        for c in (4, 8, 16, 32, 64, 128, 256)
        for r in (1, 2, 4, 8, 16, 32, 64)
        for lam in (1e-6, 1e-5, 1e-4, 1e-3)
    ]


def _grid_sgr(scale):
    if scale == "smoke":
        return [
            {"level": lv, "refinements": rf, "refine_points": 8}
            for lv in (2, 3)
            for rf in (0, 2)
        ]
    if scale == "full":
        return [
            {"level": lv, "refinements": rf, "refine_points": rp,
             "regularization": lam}
            for lv in (2, 3, 4)
            for rf in (0, 4)
            for rp in (8, 16)
            for lam in (1e-5, 1e-3)
        ]
    return [
        {"level": lv, "refinements": rf, "refine_points": rp,
         "regularization": lam}
        for lv in (2, 3, 4, 5, 6, 7, 8)
        for rf in (1, 2, 4, 8, 16)
        for rp in (4, 8, 16, 32)
        for lam in (1e-6, 1e-5, 1e-4, 1e-3)
    ]


def _grid_mars(scale):
    degrees = {"smoke": (1, 2), "full": (1, 2, 3), "paper": (1, 2, 3, 4, 5, 6)}[scale]
    return [{"max_degree": d} for d in degrees]


def _grid_trees(scale):
    if scale == "smoke":
        return [
            {"n_estimators": t, "max_depth": d}
            for t in (8, 32)
            for d in (6, 12)
        ]
    if scale == "full":
        return [
            {"n_estimators": t, "max_depth": d}
            for t in (4, 16, 64)
            for d in (4, 8, 16)
        ]
    return [
        {"n_estimators": t, "max_depth": d}
        for t in (1, 4, 16, 64)
        for d in (2, 4, 8, 16)
    ]


def _grid_knn(scale):
    ks = {"smoke": (1, 3, 5), "full": (1, 2, 3, 4, 5, 6),
          "paper": (1, 2, 3, 4, 5, 6)}[scale]
    return [{"k": k} for k in ks]


def _grid_gp(scale):
    kernels = {
        "smoke": ("rbf", "matern"),
        "full": ("rbf", "matern", "rational_quadratic"),
        "paper": ("rbf", "matern", "rational_quadratic", "dot_product_white",
                  "constant"),
    }[scale]
    return [{"kernel": k} for k in kernels]


def _grid_svm(scale):
    if scale == "smoke":
        return [{"kernel": "rbf"}]
    grids = [{"kernel": "rbf"}]
    degrees = (1, 2, 3)
    grids += [{"kernel": "poly", "degree": d} for d in degrees]
    return grids


def _grid_mlp(scale):
    if scale == "smoke":
        return [
            {"hidden": (64,), "activation": "relu", "max_epochs": 60},
            {"hidden": (64, 64), "activation": "relu", "max_epochs": 60},
        ]
    if scale == "full":
        return [
            {"hidden": h, "activation": a, "max_epochs": 150}
            for h in ((32,), (128,), (64, 64), (128, 128, 128))
            for a in ("relu", "tanh")
        ]
    return [
        {"hidden": (w,) * depth, "activation": a, "max_epochs": 300}
        for depth in (1, 2, 4, 8)
        for w in (8, 32, 128, 512, 2048)
        for a in ("relu", "tanh")
    ]


_GRIDS = {
    "cpr": _grid_cpr,
    "sgr": _grid_sgr,
    "mars": _grid_mars,
    "rf": _grid_trees,
    "et": _grid_trees,
    "gb": _grid_trees,
    "knn": _grid_knn,
    "gp": _grid_gp,
    "svm": _grid_svm,
    "nn": _grid_mlp,
}


def tuning_grid(model: str, scale: str | None = None) -> list[dict]:
    """Hyper-parameter grid for ``model`` at the given scale."""
    scale = resolve_scale(scale)
    try:
        fn = _GRIDS[model]
    except KeyError:
        raise KeyError(f"unknown model {model!r}; options: {sorted(_GRIDS)}") from None
    return fn(scale)

"""Figure 4: accuracy vs model refinement at fixed discretization.

The complementary knob to Figure 3: with the grid held fixed, CPR refines
by raising CP rank while SGR refines its sparse grid adaptively.  The
paper's conclusion (asserted loosely by the bench): CP rank is the most
effective refinement mechanism among piecewise/grid-based models — even
rank 4..8 CPR beats many-refinement SGR.

One runtime job per (benchmark, fixed grid, refinement) point.
"""
from __future__ import annotations

from repro.experiments.config import bench_apps, n_test, resolve_scale
from repro.experiments.harness import tune_job_spec
from repro.runtime import execute

__all__ = ["run", "build_jobs"]

_N_TRAIN = {"smoke": 2**12, "full": 2**13, "paper": 2**15}

_CPR_FIXED_CELLS = {"smoke": (8, 16), "full": (8, 32), "paper": (16, 64, 256)}
_RANKS = {"smoke": (1, 2, 4, 8), "full": (1, 2, 4, 8, 16), "paper": (1, 2, 4, 8, 16, 32, 64)}
_SGR_FIXED_LEVELS = {"smoke": (2, 3), "full": (2, 3), "paper": (2, 3, 4)}
_REFINEMENTS = {"smoke": (0, 2, 4), "full": (0, 2, 4, 8), "paper": (0, 1, 2, 4, 8, 16)}


def _tune_spec(app_name: str, model: str, config: dict, scale: str, seed: int):
    return tune_job_spec(
        app=app_name,
        model=model,
        n_train=_N_TRAIN[scale],
        n_test=n_test(scale),
        grid=[config],
        seed=seed,
    )


def build_jobs(scale: str | None = None, seed: int = 0) -> list:
    """Jobs with their (model label, refinement) row keys."""
    scale = resolve_scale(scale)
    labelled = []
    for app_name in bench_apps(scale):
        for cells in _CPR_FIXED_CELLS[scale]:
            for rank in _RANKS[scale]:
                cfg = {"cells": cells, "rank": rank, "regularization": 1e-5}
                labelled.append(
                    (_tune_spec(app_name, "cpr", cfg, scale, seed), f"cpr-C{cells}", rank)
                )
        for level in _SGR_FIXED_LEVELS[scale]:
            for refs in _REFINEMENTS[scale]:
                cfg = {
                    "level": level,
                    "refinements": refs,
                    "refine_points": 16,
                    "regularization": 1e-4,
                }
                labelled.append(
                    (_tune_spec(app_name, "sgr", cfg, scale, seed), f"sgr-L{level}", refs)
                )
    return labelled


def run(scale: str | None = None, seed: int = 0, runtime=None) -> dict:
    scale = resolve_scale(scale)
    labelled = build_jobs(scale, seed)
    records = execute([spec for spec, _, _ in labelled], runtime)
    rows = []
    for (spec, label, refinement), rec in zip(labelled, records):
        if rec["skipped"]:
            continue
        rows.append((rec["app"], label, refinement, rec["best_error"]))
    return {
        "headers": ["benchmark", "model", "refinement", "mlogq"],
        "rows": rows,
        "notes": (
            "CP rank should buy more accuracy than SGR grid refinement "
            "(paper Figure 4)"
        ),
    }

"""Figure 4: accuracy vs model refinement at fixed discretization.

The complementary knob to Figure 3: with the grid held fixed, CPR refines
by raising CP rank while SGR refines its sparse grid adaptively.  The
paper's conclusion (asserted loosely by the bench): CP rank is the most
effective refinement mechanism among piecewise/grid-based models — even
rank 4..8 CPR beats many-refinement SGR.
"""
from __future__ import annotations

from repro.apps import get_application
from repro.experiments.config import bench_apps, resolve_scale
from repro.experiments.harness import get_dataset, tune_model

__all__ = ["run"]

_N_TEST = {"smoke": 512, "full": 1024, "paper": 2048}
_N_TRAIN = {"smoke": 2**12, "full": 2**13, "paper": 2**15}

_CPR_FIXED_CELLS = {"smoke": (8, 16), "full": (8, 32), "paper": (16, 64, 256)}
_RANKS = {"smoke": (1, 2, 4, 8), "full": (1, 2, 4, 8, 16), "paper": (1, 2, 4, 8, 16, 32, 64)}
_SGR_FIXED_LEVELS = {"smoke": (2, 3), "full": (2, 3), "paper": (2, 3, 4)}
_REFINEMENTS = {"smoke": (0, 2, 4), "full": (0, 2, 4, 8), "paper": (0, 1, 2, 4, 8, 16)}


def run(scale: str | None = None, seed: int = 0) -> dict:
    scale = resolve_scale(scale)
    rows = []
    for app_name in bench_apps(scale):
        app = get_application(app_name)
        train = get_dataset(app_name, _N_TRAIN[scale], seed=seed)
        test = get_dataset(app_name, _N_TEST[scale], seed=seed + 1000)

        for cells in _CPR_FIXED_CELLS[scale]:
            for rank in _RANKS[scale]:
                res = tune_model(
                    "cpr", train, test, space=app.space,
                    grid=[{"cells": cells, "rank": rank, "regularization": 1e-5}],
                    seed=seed,
                )
                rows.append((app_name, f"cpr-C{cells}", rank, res.best_error))

        for level in _SGR_FIXED_LEVELS[scale]:
            for refs in _REFINEMENTS[scale]:
                try:
                    res = tune_model(
                        "sgr", train, test, space=app.space,
                        grid=[{
                            "level": level, "refinements": refs,
                            "refine_points": 16, "regularization": 1e-4,
                        }],
                        seed=seed,
                    )
                except RuntimeError:
                    continue
                rows.append((app_name, f"sgr-L{level}", refs, res.best_error))
    return {
        "headers": ["benchmark", "model", "refinement", "mlogq"],
        "rows": rows,
        "notes": (
            "CP rank should buy more accuracy than SGR grid refinement "
            "(paper Figure 4)"
        ),
    }

"""Figure 6: best prediction error vs training-set size, all ten models.

Every model's hyper-parameter grid is exhaustively evaluated per training
size (the paper's protocol) and the minimum test MLogQ reported.  Expected
shape: CPR achieves the lowest error on the high-dimensional benchmarks at
moderate-to-large training sizes; neural networks are the closest
competitor; models optimizing in >= 1000 s are excluded (we use a scaled
time budget).

One runtime job per (benchmark, training size, model); the scale's tuning
grid is resolved at spec-build time and embedded in the job params, so
cached results invalidate when a grid definition changes.
"""
from __future__ import annotations

from repro.experiments.config import (
    bench_apps,
    n_test,
    resolve_scale,
    time_budget,
    train_sizes,
    tuning_grid,
)
from repro.experiments.harness import tune_job_spec
from repro.runtime import execute

__all__ = ["run", "build_jobs", "MODELS"]

MODELS = ["cpr", "sgr", "mars", "nn", "et", "gp", "knn", "svm", "rf", "gb"]


def build_jobs(scale: str | None = None, seed: int = 0, models=None) -> list:
    scale = resolve_scale(scale)
    models = list(models or MODELS)
    specs = []
    for app_name in bench_apps(scale):
        for n in train_sizes(scale):
            for name in models:
                specs.append(
                    tune_job_spec(
                        app=app_name,
                        model=name,
                        n_train=n,
                        n_test=n_test(scale),
                        grid=tuning_grid(name, scale),
                        seed=seed,
                        time_budget_s=time_budget(scale),
                    )
                )
    return specs


def run(scale: str | None = None, seed: int = 0, models=None, runtime=None) -> dict:
    scale = resolve_scale(scale)
    specs = build_jobs(scale, seed, models)
    rows = []
    for rec in execute(specs, runtime):
        if rec["skipped"]:
            continue
        rows.append(
            (rec["app"], rec["n_train"], rec["model"], rec["best_error"], rec["best_size_bytes"])
        )
    return {
        "headers": ["benchmark", "n_train", "model", "best_mlogq", "size_bytes"],
        "rows": rows,
        "notes": (
            "CPR should be most accurate on the high-dimensional apps at "
            "moderate/large training sizes (paper Figure 6)"
        ),
    }

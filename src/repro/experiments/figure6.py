"""Figure 6: best prediction error vs training-set size, all ten models.

Every model's hyper-parameter grid is exhaustively evaluated per training
size (the paper's protocol) and the minimum test MLogQ reported.  Expected
shape: CPR achieves the lowest error on the high-dimensional benchmarks at
moderate-to-large training sizes; neural networks are the closest
competitor; models optimizing in >= 1000 s are excluded (we use a scaled
time budget).
"""
from __future__ import annotations

from repro.experiments.config import bench_apps, resolve_scale, train_sizes
from repro.experiments.harness import interpolation_experiment

__all__ = ["run", "MODELS"]

MODELS = ["cpr", "sgr", "mars", "nn", "et", "gp", "knn", "svm", "rf", "gb"]

_N_TEST = {"smoke": 512, "full": 1024, "paper": 2048}
_BUDGET = {"smoke": 60.0, "full": 300.0, "paper": 1000.0}


def run(scale: str | None = None, seed: int = 0, models=None) -> dict:
    scale = resolve_scale(scale)
    models = list(models or MODELS)
    rows = []
    for app_name in bench_apps(scale):
        for n in train_sizes(scale):
            results = interpolation_experiment(
                app_name,
                n_train=n,
                n_test=_N_TEST[scale],
                models=models,
                scale=scale,
                seed=seed,
                time_budget_s=_BUDGET[scale],
            )
            for name, res in results.items():
                rows.append((app_name, n, name, res.best_error, res.best_size_bytes))
    return {
        "headers": ["benchmark", "n_train", "model", "best_mlogq", "size_bytes"],
        "rows": rows,
        "notes": (
            "CPR should be most accurate on the high-dimensional apps at "
            "moderate/large training sizes (paper Figure 6)"
        ),
    }

"""Figure 1: SVD rank sweeps of discretized 2-D functions, raw vs log.

The paper's Figure 1 takes three functions on ``1 <= x, y <= 100``:
a smooth multiplicative one, a piecewise one whose two behaviours are split
along ``x + y <= 100`` (both perturbed element-wise by ``1 + N(0, 0.01)``),
and a clean additive one.  It shows that truncated SVDs of the
*log-transformed* matrices achieve monotonically decreasing MLogQ
prediction error with increasing rank, whereas raw-matrix SVDs can
stagnate or worsen — the observation motivating Section 5.2's
log-transform-then-factorize design.
"""
from __future__ import annotations

import numpy as np

from repro.metrics import mlogq
from repro.utils.rng import as_generator

__all__ = ["FUNCTIONS", "svd_mlogq_curve", "run"]


def _f1(x, y):
    """Smooth multiplicative scaling: near rank-1 in log space."""
    return x**1.5 * y / 50.0


def _f2(x, y):
    """Two regimes split along x + y <= 100 (the paper's piecewise case)."""
    return np.where(x + y <= 100.0, x * y / 100.0, 5.0 * x**2 / (y + 1.0))


def _f3(x, y):
    """Additive function: exactly rank-2 raw, full-rank in log space."""
    return x + y


FUNCTIONS = {"f1": _f1, "f2": _f2, "f3": _f3}
_NOISY = {"f1", "f2"}  # the paper perturbs f1 and f2 only


def build_matrix(name: str, n: int = 100, seed: int = 0) -> np.ndarray:
    """The discretized (and optionally noise-perturbed) function matrix."""
    rng = as_generator(seed)
    grid = np.arange(1.0, n + 1.0)
    x, y = np.meshgrid(grid, grid, indexing="ij")
    M = FUNCTIONS[name](x, y)
    if name in _NOISY:
        M = M * (1.0 + rng.normal(0.0, 0.01, size=M.shape))
    return np.maximum(M, 1e-16)


def svd_mlogq_curve(M: np.ndarray, ranks, log_transform: bool) -> list[float]:
    """MLogQ of rank-``r`` SVD reconstructions against the true matrix."""
    target = np.log(M) if log_transform else M
    U, s, Vt = np.linalg.svd(target, full_matrices=False)
    errs = []
    for r in ranks:
        recon = (U[:, :r] * s[:r]) @ Vt[:r]
        pred = np.exp(recon) if log_transform else np.maximum(recon, 1e-16)
        errs.append(mlogq(pred.ravel(), M.ravel()))
    return errs


def run(scale: str | None = None, seed: int = 0) -> dict:
    """Reproduce Figure 1's series: per function, MLogQ vs SVD rank."""
    ranks = [1, 2, 4, 8, 16, 32]
    rows = []
    for name in FUNCTIONS:
        M = build_matrix(name, seed=seed)
        raw = svd_mlogq_curve(M, ranks, log_transform=False)
        log = svd_mlogq_curve(M, ranks, log_transform=True)
        for r, er, el in zip(ranks, raw, log):
            rows.append((name, r, er, el))
    return {
        "headers": ["function", "rank", "mlogq_raw", "mlogq_log"],
        "rows": rows,
        "notes": (
            "log-transformed SVD errors must decrease monotonically in rank "
            "(paper Figure 1); raw-matrix errors may stagnate or increase"
        ),
    }

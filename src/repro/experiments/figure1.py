"""Figure 1: SVD rank sweeps of discretized 2-D functions, raw vs log.

The paper's Figure 1 takes three functions on ``1 <= x, y <= 100``:
a smooth multiplicative one, a piecewise one whose two behaviours are split
along ``x + y <= 100`` (both perturbed element-wise by ``1 + N(0, 0.01)``),
and a clean additive one.  It shows that truncated SVDs of the
*log-transformed* matrices achieve monotonically decreasing MLogQ
prediction error with increasing rank, whereas raw-matrix SVDs can
stagnate or worsen — the observation motivating Section 5.2's
log-transform-then-factorize design.
"""
from __future__ import annotations

import numpy as np

from repro.metrics import mlogq
from repro.runtime import JobSpec, execute
from repro.utils.rng import as_generator

__all__ = ["FUNCTIONS", "svd_mlogq_curve", "run", "build_jobs", "run_function_job"]


def _f1(x, y):
    """Smooth multiplicative scaling: near rank-1 in log space."""
    return x**1.5 * y / 50.0


def _f2(x, y):
    """Two regimes split along x + y <= 100 (the paper's piecewise case)."""
    return np.where(x + y <= 100.0, x * y / 100.0, 5.0 * x**2 / (y + 1.0))


def _f3(x, y):
    """Additive function: exactly rank-2 raw, full-rank in log space."""
    return x + y


FUNCTIONS = {"f1": _f1, "f2": _f2, "f3": _f3}
_NOISY = {"f1", "f2"}  # the paper perturbs f1 and f2 only


def build_matrix(name: str, n: int = 100, seed: int = 0) -> np.ndarray:
    """The discretized (and optionally noise-perturbed) function matrix."""
    rng = as_generator(seed)
    grid = np.arange(1.0, n + 1.0)
    x, y = np.meshgrid(grid, grid, indexing="ij")
    M = FUNCTIONS[name](x, y)
    if name in _NOISY:
        M = M * (1.0 + rng.normal(0.0, 0.01, size=M.shape))
    return np.maximum(M, 1e-16)


def svd_mlogq_curve(M: np.ndarray, ranks, log_transform: bool) -> list[float]:
    """MLogQ of rank-``r`` SVD reconstructions against the true matrix."""
    target = np.log(M) if log_transform else M
    U, s, Vt = np.linalg.svd(target, full_matrices=False)
    errs = []
    for r in ranks:
        recon = (U[:, :r] * s[:r]) @ Vt[:r]
        pred = np.exp(recon) if log_transform else np.maximum(recon, 1e-16)
        errs.append(mlogq(pred.ravel(), M.ravel()))
    return errs


_RANKS = [1, 2, 4, 8, 16, 32]


def run_function_job(*, function: str, seed: int = 0) -> dict:
    """Runtime job runner: both SVD rank curves for one test function."""
    M = build_matrix(function, seed=seed)
    raw = svd_mlogq_curve(M, _RANKS, log_transform=False)
    log = svd_mlogq_curve(M, _RANKS, log_transform=True)
    return {
        "function": function,
        "rows": [
            [function, r, float(er), float(el)]
            for r, er, el in zip(_RANKS, raw, log)
        ],
    }


def build_jobs(scale: str | None = None, seed: int = 0) -> list:
    """One job per discretized function."""
    return [
        JobSpec("repro.experiments.figure1:run_function_job", {"function": name, "seed": seed})
        for name in FUNCTIONS
    ]


def run(scale: str | None = None, seed: int = 0, runtime=None) -> dict:
    """Reproduce Figure 1's series: per function, MLogQ vs SVD rank."""
    rows = []
    for record in execute(build_jobs(scale, seed), runtime):
        rows.extend(tuple(row) for row in record["rows"])
    return {
        "headers": ["function", "rank", "mlogq_raw", "mlogq_log"],
        "rows": rows,
        "notes": (
            "log-transformed SVD errors must decrease monotonically in rank "
            "(paper Figure 1); raw-matrix errors may stagnate or increase"
        ),
    }

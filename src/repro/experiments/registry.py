"""Model registry: build any of the paper's ten models by name.

Baselines are wrapped in a :class:`BaselinePipeline` that applies the
paper's preprocessing (log-transformed parameters, one-hot categoricals,
standardization — Section 6.0.4) and trains in log-target space.  CPR takes
the raw configuration matrix: discretization *is* its preprocessing.
"""
from __future__ import annotations

import numpy as np

from repro.apps.base import ParameterSpace
from repro.baselines import (
    ExtraTreesRegressor,
    FeatureMap,
    GaussianProcessRegressor,
    GradientBoostingRegressor,
    KNNRegressor,
    LogSpaceRegressor,
    MARSRegressor,
    MLPRegressor,
    RandomForestRegressor,
    SparseGridRegressor,
    SVMRegressor,
)
from repro.baselines.base import Regressor
from repro.core import CPRModel

__all__ = ["MODEL_NAMES", "make_model", "canonical_params", "BaselinePipeline"]

#: Paper abbreviations -> human names (Section 6.0.4).
MODEL_NAMES = {
    "cpr": "CP tensor completion (ours)",
    "sgr": "sparse grid regression",
    "nn": "multi-layer perceptron",
    "rf": "random forest",
    "gb": "gradient boosting",
    "et": "extremely randomized trees",
    "gp": "Gaussian process regression",
    "svm": "support vector machine",
    "mars": "adaptive spline regression",
    "knn": "k-nearest neighbors",
}

#: Families that consume category indices natively (no one-hot blow-up).
_INDEX_NATIVE = {"rf", "gb", "et"}


class BaselinePipeline(Regressor):
    """FeatureMap preprocessing + log-space training for a baseline model."""

    def __init__(self, inner: Regressor, space: ParameterSpace | None, one_hot: bool):
        self.fm = FeatureMap(space, one_hot=one_hot)
        self.model = LogSpaceRegressor(inner)

    def fit(self, X, y) -> "BaselinePipeline":
        X = np.asarray(X, dtype=float)
        F = self.fm.fit_transform(X)
        self.model.fit(F, y)
        self.n_features_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        X = self._validate_predict(np.asarray(X, dtype=float))
        return self.model.predict(self.fm.transform(X))

    def __getstate_for_size__(self):
        return {
            "fm": (self.fm.mean_, self.fm.scale_),
            "model": self.model.__getstate_for_size__(),
        }

    def __repr__(self):
        return f"BaselinePipeline({self.model.inner!r})"


_FACTORIES = {
    "sgr": SparseGridRegressor,
    "nn": MLPRegressor,
    "rf": RandomForestRegressor,
    "gb": GradientBoostingRegressor,
    "et": ExtraTreesRegressor,
    "gp": GaussianProcessRegressor,
    "svm": SVMRegressor,
    "mars": MARSRegressor,
    "knn": KNNRegressor,
}

_SEEDED = {"nn", "rf", "gb", "et", "gp", "svm"}


def canonical_params(params: dict | None) -> dict:
    """JSON-canonical form of a hyper-parameter dict.

    Runtime job specs embed resolved grids and hash them by content, so
    the tuple-bearing grids in :mod:`repro.experiments.config` (e.g. the
    MLP's ``hidden`` widths) are normalized to plain JSON types first.
    Every model factory accepts this form interchangeably with the
    original — sequences reach constructors that coerce them (e.g.
    ``MLPRegressor`` tuples ``hidden`` itself), scalars are unchanged.
    """
    from repro.runtime.spec import to_jsonable

    return to_jsonable(dict(params or {}))


def make_model(name: str, params: dict | None = None, space: ParameterSpace | None = None, seed=0):
    """Instantiate model ``name`` with hyper-parameters ``params``.

    Returns an object exposing ``fit`` / ``predict`` / ``score`` /
    ``size_bytes`` — either a :class:`~repro.core.CPRModel` or a
    :class:`BaselinePipeline`.
    """
    params = dict(params or {})
    if name == "cpr":
        return CPRModel(space=space, seed=seed, **params)
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; options: {sorted(MODEL_NAMES)}"
        ) from None
    if name in _SEEDED:
        params.setdefault("seed", seed)
    inner = factory(**params)
    return BaselinePipeline(inner, space, one_hot=name not in _INDEX_NATIVE)

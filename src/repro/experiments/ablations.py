"""Ablation experiments for the design choices DESIGN.md calls out.

Not figures from the paper, but direct tests of the decisions its text
argues for:

* **loss** — Section 5.2's log-transformed MSE (ALS) vs Section 5.3's
  MLogQ2 interior-point model, in the *interpolation* setting (the paper
  prefers the former there: cheaper, more robust to round-off);
* **spacing** — logarithmic vs uniform discretization of log-uniformly
  sampled input parameters (Section 5.1's user-directed discretization);
* **optimizer** — ALS vs CCD vs SGD on the same completion problem
  (Section 4.2.1's cost/convergence trade-off).

Each ablation point is one runtime job (the ``run_*_job`` runners); the
``run_*`` drivers are spec-builders + formatters.
"""
from __future__ import annotations

import numpy as np

from repro.apps import get_application
from repro.core import CPRModel
from repro.core.completion import complete_als, complete_ccd, complete_sgd
from repro.core.grid import TensorGrid
from repro.core.tensor import ObservedTensor
from repro.experiments.config import n_test, resolve_scale
from repro.experiments.harness import get_dataset
from repro.runtime import JobSpec, execute

__all__ = ["run_loss", "run_spacing", "run_optimizer"]

_N_TRAIN = {"smoke": 2**11, "full": 2**13, "paper": 2**14}


# -- loss ---------------------------------------------------------------------

_LOSS_VARIANTS = {
    "log_mse": {},
    "mlogq2": {"max_sweeps": 2, "newton_iters": 15},
}


def run_loss_job(*, app: str, loss: str, scale: str, seed: int = 0) -> dict:
    """Runtime job runner: one (benchmark, loss) interpolation fit."""
    application = get_application(app)
    train = get_dataset(app, _N_TRAIN[scale], seed=seed)
    test = get_dataset(app, n_test(scale), seed=seed + 1000)
    m = CPRModel(
        space=application.space, cells=8, rank=4, loss=loss, seed=seed,
        **_LOSS_VARIANTS[loss],
    ).fit(train.X, train.y)
    return {"app": app, "loss": loss, "mlogq": float(m.score(test.X, test.y))}


def run_loss(scale: str | None = None, seed: int = 0, runtime=None) -> dict:
    """Interpolation accuracy: log-MSE/ALS vs MLogQ2/AMN (same grid/rank)."""
    scale = resolve_scale(scale)
    specs = [
        JobSpec(
            "repro.experiments.ablations:run_loss_job",
            {"app": app_name, "loss": loss, "scale": scale, "seed": seed},
        )
        for app_name in ("matmul", "exafmm")
        for loss in _LOSS_VARIANTS
    ]
    rows = [(r["app"], r["loss"], r["mlogq"]) for r in execute(specs, runtime)]
    return {
        "headers": ["benchmark", "loss", "mlogq"],
        "rows": rows,
        "notes": "both losses should be competitive for interpolation (Sec 5.2/5.3)",
    }


# -- spacing ------------------------------------------------------------------

def run_spacing_job(*, spacing: str, scale: str, seed: int = 0) -> dict:
    """Runtime job runner: one discretization-spacing fit on the MM kernel."""
    train = get_dataset("matmul", _N_TRAIN[scale], seed=seed)
    test = get_dataset("matmul", n_test(scale), seed=seed + 1000)
    m = CPRModel(
        space=None, scales=[spacing] * 3, cells=16, rank=4, seed=seed
    ).fit(train.X, train.y)
    return {"spacing": spacing, "mlogq": float(m.score(test.X, test.y))}


def run_spacing(scale: str | None = None, seed: int = 0, runtime=None) -> dict:
    """Log vs uniform discretization of the MM kernel's size parameters."""
    scale = resolve_scale(scale)
    specs = [
        JobSpec(
            "repro.experiments.ablations:run_spacing_job",
            {"spacing": spacing, "scale": scale, "seed": seed},
        )
        for spacing in ("log", "linear")
    ]
    rows = [(r["spacing"], r["mlogq"]) for r in execute(specs, runtime)]
    return {
        "headers": ["spacing", "mlogq"],
        "rows": rows,
        "notes": (
            "log spacing should beat uniform for log-uniformly sampled "
            "size parameters (Section 5.1)"
        ),
    }


# -- optimizer ----------------------------------------------------------------

_OPTIMIZERS = {
    "als": (complete_als, {"max_sweeps": 30}),
    "ccd": (complete_ccd, {"max_sweeps": 120}),
    "sgd": (complete_sgd, {"max_sweeps": 120}),
}


def run_optimizer_job(*, optimizer: str, scale: str, seed: int = 0) -> dict:
    """Runtime job runner: one optimizer on the shared MM completion problem."""
    train = get_dataset("matmul", _N_TRAIN[scale], seed=seed)
    app = get_application("matmul")
    grid = TensorGrid.from_space(app.space, 16, X=train.X)
    tensor = ObservedTensor.from_data(grid, train.X, train.y)
    targets = tensor.log_values() - float(np.mean(tensor.log_values()))
    fn, kwargs = _OPTIMIZERS[optimizer]
    res = fn(
        grid.shape, tensor.indices, targets, rank=4,
        regularization=1e-5, seed=seed, **kwargs,
    )
    return {
        "optimizer": optimizer,
        "final_objective": float(res.history[-1]),
        "sweeps": int(res.n_sweeps),
        "converged": bool(res.converged),
    }


def run_optimizer(scale: str | None = None, seed: int = 0, runtime=None) -> dict:
    """ALS vs CCD vs SGD: final objective and sweeps on one completion."""
    scale = resolve_scale(scale)
    specs = [
        JobSpec(
            "repro.experiments.ablations:run_optimizer_job",
            {"optimizer": name, "scale": scale, "seed": seed},
        )
        for name in _OPTIMIZERS
    ]
    rows = [
        (r["optimizer"], r["final_objective"], r["sweeps"], r["converged"])
        for r in execute(specs, runtime)
    ]
    return {
        "headers": ["optimizer", "final_objective", "sweeps", "converged"],
        "rows": rows,
        "notes": "ALS should reach the lowest objective in the fewest sweeps",
    }

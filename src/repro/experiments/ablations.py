"""Ablation experiments for the design choices DESIGN.md calls out.

Not figures from the paper, but direct tests of the decisions its text
argues for:

* **loss** — Section 5.2's log-transformed MSE (ALS) vs Section 5.3's
  MLogQ2 interior-point model, in the *interpolation* setting (the paper
  prefers the former there: cheaper, more robust to round-off);
* **spacing** — logarithmic vs uniform discretization of log-uniformly
  sampled input parameters (Section 5.1's user-directed discretization);
* **optimizer** — ALS vs CCD vs SGD on the same completion problem
  (Section 4.2.1's cost/convergence trade-off).
"""
from __future__ import annotations

import numpy as np

from repro.apps import get_application
from repro.core import CPRModel
from repro.core.completion import complete_als, complete_ccd, complete_sgd
from repro.core.grid import TensorGrid
from repro.core.tensor import ObservedTensor
from repro.experiments.config import resolve_scale
from repro.experiments.harness import get_dataset

__all__ = ["run_loss", "run_spacing", "run_optimizer"]

_N_TRAIN = {"smoke": 2**11, "full": 2**13, "paper": 2**14}
_N_TEST = {"smoke": 512, "full": 1024, "paper": 2048}


def run_loss(scale: str | None = None, seed: int = 0) -> dict:
    """Interpolation accuracy: log-MSE/ALS vs MLogQ2/AMN (same grid/rank)."""
    scale = resolve_scale(scale)
    rows = []
    for app_name in ("matmul", "exafmm"):
        app = get_application(app_name)
        train = get_dataset(app_name, _N_TRAIN[scale], seed=seed)
        test = get_dataset(app_name, _N_TEST[scale], seed=seed + 1000)
        for loss, extra in (
            ("log_mse", {}),
            ("mlogq2", {"max_sweeps": 2, "newton_iters": 15}),
        ):
            m = CPRModel(
                space=app.space, cells=8, rank=4, loss=loss, seed=seed, **extra
            ).fit(train.X, train.y)
            rows.append((app_name, loss, m.score(test.X, test.y)))
    return {
        "headers": ["benchmark", "loss", "mlogq"],
        "rows": rows,
        "notes": "both losses should be competitive for interpolation (Sec 5.2/5.3)",
    }


def run_spacing(scale: str | None = None, seed: int = 0) -> dict:
    """Log vs uniform discretization of the MM kernel's size parameters."""
    scale = resolve_scale(scale)
    train = get_dataset("matmul", _N_TRAIN[scale], seed=seed)
    test = get_dataset("matmul", _N_TEST[scale], seed=seed + 1000)
    rows = []
    for spacing in ("log", "linear"):
        m = CPRModel(
            space=None, scales=[spacing] * 3, cells=16, rank=4, seed=seed
        ).fit(train.X, train.y)
        rows.append((spacing, m.score(test.X, test.y)))
    return {
        "headers": ["spacing", "mlogq"],
        "rows": rows,
        "notes": (
            "log spacing should beat uniform for log-uniformly sampled "
            "size parameters (Section 5.1)"
        ),
    }


def run_optimizer(scale: str | None = None, seed: int = 0) -> dict:
    """ALS vs CCD vs SGD: final objective and sweeps on one completion."""
    scale = resolve_scale(scale)
    train = get_dataset("matmul", _N_TRAIN[scale], seed=seed)
    app = get_application("matmul")
    grid = TensorGrid.from_space(app.space, 16, X=train.X)
    tensor = ObservedTensor.from_data(grid, train.X, train.y)
    targets = tensor.log_values() - float(np.mean(tensor.log_values()))
    rows = []
    for name, fn, kwargs in (
        ("als", complete_als, {"max_sweeps": 30}),
        ("ccd", complete_ccd, {"max_sweeps": 120}),
        ("sgd", complete_sgd, {"max_sweeps": 120}),
    ):
        res = fn(
            grid.shape, tensor.indices, targets, rank=4,
            regularization=1e-5, seed=seed, **kwargs,
        )
        rows.append((name, res.history[-1], res.n_sweeps, res.converged))
    return {
        "headers": ["optimizer", "final_objective", "sweeps", "converged"],
        "rows": rows,
        "notes": "ALS should reach the lowest objective in the fewest sweeps",
    }

"""Dataset generation: sampling, splits, and the paper's extrapolation cuts."""
from repro.datasets.sampling import Dataset, generate_dataset, subsample
from repro.datasets.splits import (
    extrapolation_split,
    threshold_mask,
    PAPER_TEST_SIZES,
)

__all__ = [
    "Dataset",
    "generate_dataset",
    "subsample",
    "extrapolation_split",
    "threshold_mask",
    "PAPER_TEST_SIZES",
]

"""Dataset generation: sampling, splits, and the paper's extrapolation cuts."""
from repro.datasets.sampling import Dataset, generate_dataset, subsample
from repro.datasets.splits import (
    PAPER_TEST_SIZES,
    extrapolation_split,
    threshold_mask,
)

__all__ = [
    "Dataset",
    "generate_dataset",
    "subsample",
    "extrapolation_split",
    "threshold_mask",
    "PAPER_TEST_SIZES",
]

"""Interpolation/extrapolation dataset splits (paper Sections 6.0.3, 7.2).

The extrapolation experiments cut one large sampled dataset by parameter
magnitude: training keeps configurations whose selected parameters are below
a cutoff ``N``; the test set keeps configurations whose selected parameters
lie in the large-scale target window.  Figure 8's four panels correspond to

* MM, single parameter: test ``2048 <= m <= 4096``, train ``m < N``;
* MM, all parameters: test ``2048 <= m,n,k <= 4096``, train ``m,n,k < N``;
* BC, node count: test ``nodes == 128``, train ``nodes <= N``;
* BC, message size: test ``2^25 <= msg <= 2^26``, train ``msg < N``.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import ParameterSpace
from repro.datasets.sampling import Dataset

__all__ = ["threshold_mask", "extrapolation_split", "PAPER_TEST_SIZES"]

#: Test-set sizes the paper reports per benchmark (Section 6.0.3).
PAPER_TEST_SIZES = {
    "matmul": 1000,
    "qr": 1000,
    "bcast": 10484,
    "exafmm": 2512,
    "amg": 21534,
    "kripke": 8745,
}


def threshold_mask(
    space: ParameterSpace,
    X: np.ndarray,
    bounds: dict[str, tuple[float, float]],
) -> np.ndarray:
    """Row mask where every named parameter lies in ``[lo, hi]`` (inclusive)."""
    X = np.asarray(X, dtype=float)
    mask = np.ones(len(X), dtype=bool)
    for name, (lo, hi) in bounds.items():
        col = space.column(X, name)
        mask &= (col >= lo) & (col <= hi)
    return mask


@dataclass(frozen=True)
class ExtrapolationSplit:
    """A train/test pair where the test set exceeds the training ranges."""

    train: Dataset
    test: Dataset
    cutoff: float


def extrapolation_split(
    space: ParameterSpace,
    ds: Dataset,
    params: list[str],
    cutoff: float,
    test_bounds: dict[str, tuple[float, float]],
) -> ExtrapolationSplit:
    """Split ``ds`` into small-scale training and large-scale test sets.

    Parameters
    ----------
    params
        Parameters whose magnitude defines "scale"; training rows must have
        all of them strictly below ``cutoff``.
    cutoff
        Training upper bound ``N`` from the paper (swept geometrically).
    test_bounds
        Per-parameter inclusive windows defining the test population.
    """
    train_mask = np.ones(len(ds), dtype=bool)
    for name in params:
        train_mask &= space.column(ds.X, name) < cutoff
    test_mask = threshold_mask(space, ds.X, test_bounds)
    if not train_mask.any():
        raise ValueError(f"empty training set for cutoff {cutoff}")
    if not test_mask.any():
        raise ValueError("empty extrapolation test set")
    return ExtrapolationSplit(
        train=ds.select(train_mask), test=ds.select(test_mask), cutoff=cutoff
    )

"""Training/test dataset generation per paper Section 6.0.3.

Configurations are drawn by the per-role sampling strategy implemented in
:class:`repro.apps.base.Parameter` (log-uniform for input/architectural
parameters, uniform for configuration parameters, uniform over choices for
categorical ones).  Execution times come from the application simulator's
``measure``.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import Application
from repro.utils.rng import as_generator

__all__ = ["Dataset", "generate_dataset", "subsample"]


@dataclass(frozen=True)
class Dataset:
    """An immutable (configurations, execution times) pair.

    ``X`` has one column per parameter of ``space`` (categorical columns hold
    category indices); ``y`` holds strictly positive times in seconds.
    """

    X: np.ndarray
    y: np.ndarray
    name: str = ""

    def __post_init__(self):
        if len(self.X) != len(self.y):
            raise ValueError("X and y length mismatch")

    def __len__(self) -> int:
        return len(self.y)

    def select(self, mask_or_idx) -> "Dataset":
        """Dataset restricted to a boolean mask or index array."""
        return Dataset(self.X[mask_or_idx], self.y[mask_or_idx], self.name)


def generate_dataset(
    app: Application,
    n: int,
    seed=None,
    sigma: float | None = None,
) -> Dataset:
    """Sample ``n`` configurations of ``app`` and measure each once.

    Deterministic for a fixed ``seed``: sampling and measurement noise each
    use sub-streams spawned from it.
    """
    rng = as_generator(seed)
    X = app.space.sample(n, rng)
    y = app.measure(X, rng=rng, sigma=sigma)
    return Dataset(X, y, name=app.name)


def subsample(ds: Dataset, n: int, seed=None) -> Dataset:
    """A uniform random subset of ``n`` rows (without replacement).

    Used by the harness to reuse one large generated dataset across the
    paper's training-set-size sweeps.
    """
    if n > len(ds):
        raise ValueError(f"cannot take {n} of {len(ds)} rows")
    rng = as_generator(seed)
    idx = rng.choice(len(ds), size=n, replace=False)
    return ds.select(idx)

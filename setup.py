from pathlib import Path

from setuptools import find_packages, setup

_here = Path(__file__).resolve().parent
_readme = _here / "README.md"

setup(
    name="repro-tensor-completion",
    version="1.0.0",  # keep in sync with repro.__version__
    description=(
        "Reproduction of 'Application Performance Modeling via Tensor "
        "Completion' (SC 2023): CP/Tucker grid models, baselines, "
        "experiment drivers, a model-serving subsystem, and a streaming "
        "observation pipeline"
    ),
    long_description=_readme.read_text() if _readme.exists() else "",
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "pytest-cov", "hypothesis"],
        "lint": ["ruff"],
    },
    entry_points={
        "console_scripts": [
            # `repro-experiments figure5 --scale smoke` etc.
            "repro-experiments=repro.experiments.__main__:main",
            # `repro-serve --registry DIR --http 8000`
            "repro-serve=repro.serve.server:main",
            # `repro-stream --app bcast --registry DIR --journal FILE`
            "repro-stream=repro.stream.__main__:main",
        ],
    },
)

"""Benchmark: adaptive ``rank="auto"`` vs the fixed-rank CPR grid.

Runs the rank ablation (``repro.experiments.ablation_rank``) at the
bench scale and appends per-benchmark records — fixed-grid best error /
size / cumulative fit time vs the single adaptive fit's — to
``results/BENCH_rank.json`` (picked up by ``benchmarks/_compare.py``
through the ``*_s`` keys).  The accuracy acceptance targets the
*low-density* sweep points (the regime the adaptive grow/prune loop is
for, and where the paper's CPR advantage is largest): on the lowest
density benchmark the auto fit must match the best fixed rank's MLogQ
within a small slack, at a model no larger than the best fixed one's
(same slack, covering the few bytes of rank-attribution metadata an
adaptive state carries), while the sweep as a whole spends less fit
time adapting than grid-searching.
"""
from repro.experiments import ablation_rank

from _report import perf_asserts_enabled, report, report_perf, run_once

#: Relative slack on the match criteria: adaptive must land within 5% of
#: the best fixed configuration's error and serialized size.
_SLACK = 1.05


def _records():
    records = []
    for rec in (r for r in (ablation_rank.run_rank_job(**spec.params)
                            for spec in ablation_rank.build_jobs(seed=0))
                if not r["skipped"]):
        best, auto = rec["best_fixed"], rec["auto"]
        row = {
            "config": rec["app"],
            "density": rec["density"],
            "n_train": rec["n_train"],
            "cells": rec["cells"],
            "grid_fit_s": round(sum(f["fit_s"] for f in rec["fixed"]), 4),
            "best_fixed_rank": best["rank"],
            "best_fixed_error": best["error"],
            "best_fixed_size_bytes": best["size_bytes"],
        }
        if not auto.get("skipped"):
            row.update(
                auto_fit_s=round(auto["fit_s"], 4),
                auto_rank=auto["adapted_rank"],
                auto_trajectory=auto["rank_trajectory"],
                auto_error=auto["error"],
                auto_size_bytes=auto["size_bytes"],
            )
        records.append(row)
    return records


def test_rank_adaptive(benchmark):
    records = run_once(benchmark, _records)
    report("rank_adaptive", {
        "headers": ["benchmark", "density", "grid s", "auto s",
                    "fixed rank", "auto rank", "fixed mlogq", "auto mlogq"],
        "rows": [
            (r["config"], r["density"], r["grid_fit_s"],
             r.get("auto_fit_s", "failed"), r["best_fixed_rank"],
             r.get("auto_rank", ""), r["best_fixed_error"],
             r.get("auto_error", ""))
            for r in records
        ],
        "notes": "auto should match the fixed grid's best error at the "
                 "lowest densities in a fraction of the grid's fit time",
    })
    report_perf("rank", records)

    # The adaptive path must at least produce a model everywhere.
    assert records and all("auto_error" in r for r in records), records

    # Accuracy/size acceptance at the *lowest-density* sweep point (the
    # regime rank adaptation targets); accuracy criteria are not
    # machine-load-dependent, so they hold on CI too.
    low = min(records, key=lambda r: r["density"])
    assert low["auto_error"] <= _SLACK * low["best_fixed_error"], low
    assert low["auto_size_bytes"] <= _SLACK * low["best_fixed_size_bytes"], low

    if not perf_asserts_enabled():
        return
    # One adaptive fit replaces the whole fixed-rank grid.  Per config
    # the comparison can go either way at smoke scale (a search that
    # climbs the full rank ladder and prunes back does more sweeps than
    # a 3-point grid), so the claim is aggregate: across the sweep,
    # adaptive fitting must not cost more wall-clock than grid search.
    assert (sum(r["auto_fit_s"] for r in records)
            <= sum(r["grid_fit_s"] for r in records)), records

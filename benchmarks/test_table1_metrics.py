"""Benchmark: Table 1 — error-metric equivalence verification."""
from repro.experiments import table1

from _report import report, run_once


def test_table1_metrics(benchmark):
    out = run_once(benchmark, table1.run, seed=0)
    report("table1_metrics", out)
    for name, kind, eps_mag, direct, via, rel_gap in out["rows"]:
        if kind == "exact":
            assert rel_gap < 1e-9, (name, rel_gap)
    # Taylor rows tighten by >= 1 order of magnitude from eps=0.5 to 0.01.
    taylor = {
        (name, eps): gap
        for name, kind, eps, _, _, gap in out["rows"]
        if kind == "taylor"
    }
    for name in ("mlogq", "mlogq2"):
        assert taylor[(name, 0.01)] < 0.2 * taylor[(name, 0.5)]

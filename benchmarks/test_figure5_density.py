"""Benchmark: Figure 5 — CPR accuracy vs training size and tensor density."""
from repro.experiments import figure5

from _report import report, run_once


def test_figure5_density(benchmark):
    out = run_once(benchmark, figure5.run, seed=0)
    report("figure5_density", out)
    rows = out["rows"]
    apps = {r[0] for r in rows}
    # Paper claim: error decreases with training size (per app and grid).
    for app in apps:
        for cells in {r[1] for r in rows if r[0] == app}:
            pts = sorted(
                (r[2], r[4]) for r in rows if r[0] == app and r[1] == cells
            )
            errs = [e for _, e in pts]
            assert errs[-1] < errs[0] * 1.1, (app, cells, errs)
    # Paper claim: high-dimensional tensors stay accurate at far lower
    # density than low-dimensional ones.
    def best_density(app):
        cand = [(r[4], r[3]) for r in rows if r[0] == app]
        return min(cand)[1]

    if "exafmm" in apps and "matmul" in apps:
        assert best_density("exafmm") < best_density("matmul")

"""Benchmarks: ablations of CPR's design choices (DESIGN.md Section 4)."""
from repro.experiments import ablations

from _report import report, run_once


def test_ablation_loss(benchmark):
    out = run_once(benchmark, ablations.run_loss, seed=0)
    report("ablation_loss", out)
    errs = {(r[0], r[1]): r[2] for r in out["rows"]}
    # Both formulations must be usable for interpolation (within 4x of the
    # better one on every benchmark).
    for app in {r[0] for r in out["rows"]}:
        a, b = errs[(app, "log_mse")], errs[(app, "mlogq2")]
        assert max(a, b) < 4.0 * min(a, b), (app, a, b)


def test_ablation_spacing(benchmark):
    out = run_once(benchmark, ablations.run_spacing, seed=0)
    report("ablation_spacing", out)
    errs = dict(out["rows"])
    # Section 5.1: log spacing must beat uniform spacing decisively for
    # log-uniformly distributed size parameters.
    assert errs["log"] < 0.5 * errs["linear"], errs


def test_ablation_optimizer(benchmark):
    out = run_once(benchmark, ablations.run_optimizer, seed=0)
    report("ablation_optimizer", out)
    obj = {r[0]: r[1] for r in out["rows"]}
    sweeps = {r[0]: r[2] for r in out["rows"]}
    # ALS reaches (near-)lowest objective; CCD matches it with more sweeps;
    # SGD lands within an order of magnitude.
    assert obj["als"] <= 1.05 * min(obj.values())
    assert obj["ccd"] <= 1.5 * obj["als"]
    assert obj["sgd"] <= 10.0 * obj["als"]

"""Work-queue throughput and canary republish latency.

Two questions the elastic runtime must answer with numbers:

1. **Does the spool scale?**  A sweep of uniform jobs through the
   work-queue executor with 1 worker vs 4 — the lease protocol (claim,
   heartbeat, release, scan) is pure overhead, so the 4-worker wall
   clock bounds how much of it the design pays.  Jobs are fixed-length
   sleeps, so the ideal speedup is exactly 4x and every deviation is
   queue overhead.
2. **How fast does a promote become visible?**  While concurrent
   streams republish into the same registry, a canary promote must flip
   ``name@latest`` for *other* registry handles (other processes,
   effectively) immediately — the explicit pointer-cache invalidation
   this PR adds.  Measured as promote-call-to-foreign-visibility
   latency under publish contention.

Appends machine-readable records to ``results/BENCH_queue.json`` for
the CI regression gate (``benchmarks/_compare.py``).
"""
import threading
import time

from repro.apps import Broadcast
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.runtime import JobSpec, WorkQueue
from repro.serve import ModelRegistry

from _report import perf_asserts_enabled, report, report_perf, run_once

N_JOBS = 24
JOB_SLEEP_S = 0.05
PUBLISHER_THREADS = 4
PROMOTE_CYCLES = 5


def _sweep(tmp_root, workers: int) -> float:
    """Wall clock for a fresh N_JOBS sweep on ``workers`` queue workers."""
    queue = WorkQueue(
        tmp_root / f"spool-{workers}", lease_ttl_s=5.0, poll_interval_s=0.01
    )
    specs = [
        JobSpec("repro.runtime.queue:probe_job", {"value": i, "sleep_s": JOB_SLEEP_S})
        for i in range(N_JOBS)
    ]
    keys = queue.submit(specs)
    t0 = time.perf_counter()
    procs = queue.spawn_workers(workers)
    try:
        queue.drain(keys, workers=procs, timeout_s=300.0)
    finally:
        for p in procs:
            p.terminate()
            p.join(timeout=10)
    elapsed = time.perf_counter() - t0
    assert all(queue.cache.get(s) == {"value": i} for i, s in enumerate(specs))
    return elapsed


def _promote_latency(tmp_root) -> dict:
    """Median promote-to-foreign-visibility latency under publish load."""
    root = tmp_root / "registry"
    writer = ModelRegistry(root)
    app = Broadcast()
    train = generate_dataset(app, 192, seed=0)

    def fit(seed):
        return CPRModel(
            space=app.space, cells=4, rank=2, seed=seed, max_sweeps=5
        ).fit(train.X, train.y)

    incumbent = fit(0)
    writer.publish("canary", incumbent)
    stop = threading.Event()
    publishes = [0] * PUBLISHER_THREADS

    def churn(i):
        # Concurrent streams republishing their own names into the same
        # registry directory — the contention a fleet driver produces.
        reg = ModelRegistry(root)
        model = fit(i + 1)
        while not stop.is_set():
            reg.publish(f"stream-{i}", model)
            publishes[i] += 1

    threads = [
        threading.Thread(target=churn, args=(i,), daemon=True)
        for i in range(PUBLISHER_THREADS)
    ]
    for t in threads:
        t.start()

    latencies = []
    try:
        for cycle in range(PROMOTE_CYCLES):
            shadow = fit(100 + cycle)
            mv = writer.publish("canary", shadow, channel="shadow")
            observer = ModelRegistry(root)  # a foreign handle: cold caches
            t0 = time.perf_counter()
            writer.promote("canary")
            while observer.resolve("canary").version != mv.version:
                time.sleep(0.0005)
            latencies.append(time.perf_counter() - t0)
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)
    latencies.sort()
    return {
        "config": "republish_latency",
        "publisher_threads": PUBLISHER_THREADS,
        "background_publishes": sum(publishes),
        "promote_cycles": PROMOTE_CYCLES,
        "promote_visible_ms_median": round(
            1e3 * latencies[len(latencies) // 2], 3
        ),
        "promote_visible_ms_max": round(1e3 * latencies[-1], 3),
    }


def _run(tmp_root):
    t1 = _sweep(tmp_root, 1)
    t4 = _sweep(tmp_root, 4)
    queue_rec = {
        "config": "queue_throughput",
        "jobs": N_JOBS,
        "job_sleep_s": JOB_SLEEP_S,
        "sweep_1worker_s": round(t1, 4),
        "sweep_4worker_s": round(t4, 4),
        "jobs_per_s_1w": round(N_JOBS / t1, 2),
        "jobs_per_s_4w": round(N_JOBS / t4, 2),
        "parallel_speedup": round(t1 / t4, 2),
    }
    return [queue_rec, _promote_latency(tmp_root)]


def test_queue_throughput(benchmark, tmp_path):
    records = run_once(benchmark, _run, tmp_root=tmp_path)
    q, lat = records
    report("queue_throughput", {
        "headers": ["metric", "value"],
        "rows": [
            ["1-worker sweep (s)", q["sweep_1worker_s"]],
            ["4-worker sweep (s)", q["sweep_4worker_s"]],
            ["jobs/s @ 1 worker", q["jobs_per_s_1w"]],
            ["jobs/s @ 4 workers", q["jobs_per_s_4w"]],
            ["parallel speedup", q["parallel_speedup"]],
            ["promote visible (ms, median)", lat["promote_visible_ms_median"]],
            ["promote visible (ms, max)", lat["promote_visible_ms_max"]],
        ],
        "notes": "4 workers approach 4x on sleep-bound jobs; promote "
                 "flips are visible to foreign handles in milliseconds",
    })
    report_perf("queue", records)

    if not perf_asserts_enabled():
        return
    # The lease protocol must not eat the parallelism it exists to buy.
    assert q["parallel_speedup"] >= 2.0, q
    # Explicit invalidation: visibility is bounded by the poll sleep,
    # not by the 50ms mtime settle window.
    assert lat["promote_visible_ms_median"] < 250.0, lat

"""Serving throughput: batched engine vs per-point predict loops.

The acceptance bar for the serving subsystem: querying a published model
through the batched :class:`PredictionEngine` must beat the naive
per-point ``predict`` loop by >= 10x at 10k queries (the engine's whole
point is that one fused corner-blend call amortizes the Python/dispatch
overhead across the batch).  Also measures the JSON server path
(protocol parsing + engine) in chunks, and appends machine-readable
records to ``results/BENCH_serve.json`` for the CI regression gate.
"""
import tempfile
import time

import numpy as np

from repro.apps import Broadcast
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.serve import ModelRegistry, ModelServer, PredictionEngine

from _report import perf_asserts_enabled, report, report_perf, run_once

N_QUERIES = 10_000
N_TRAIN = 4096
_SERVER_CHUNK = 512  # rows per JSON request on the server path


def _best_of(fn, repeats=3):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _run():
    app = Broadcast()
    train = generate_dataset(app, N_TRAIN, seed=0)
    queries = generate_dataset(app, N_QUERIES, seed=1)
    model = CPRModel(space=app.space, cells=16, rank=4, seed=0).fit(
        train.X, train.y
    )

    with tempfile.TemporaryDirectory() as root:
        registry = ModelRegistry(root)
        mv = registry.publish("bcast-cpr", model, meta={"app": app.name})
        served = registry.load("bcast-cpr")
        engine = PredictionEngine(served, name=mv.ref)
        server = ModelServer(registry, default_model="bcast-cpr")

        # Naive consumer: one predict call per query point (measured once —
        # it is the slow case the engine exists to replace).
        t0 = time.perf_counter()
        y_loop = np.array([served.predict(x[None, :])[0] for x in queries.X])
        loop_s = time.perf_counter() - t0

        engine.predict(queries.X[:64])  # warm-up
        batched_s, y_batch = _best_of(lambda: engine.predict(queries.X))
        np.testing.assert_allclose(y_batch, y_loop, rtol=1e-10)

        # Server path: JSON protocol round trip in chunked requests.
        chunks = [
            queries.X[i : i + _SERVER_CHUNK].tolist()
            for i in range(0, N_QUERIES, _SERVER_CHUNK)
        ]

        def through_server():
            out = []
            for x in chunks:
                resp = server.handle({"op": "predict", "x": x})
                assert resp["ok"], resp
                out.extend(resp["y"])
            return np.asarray(out)

        through_server()  # warm-up (engine construction, JSON buffers)
        server_s, y_server = _best_of(through_server)
        np.testing.assert_allclose(y_server, y_loop, rtol=1e-10)

    return [
        {
            "config": "serve_10k",
            "queries": N_QUERIES,
            "train": N_TRAIN,
            # loop_seconds deliberately avoids the gated *_s suffix: the per-point
            # Python loop is the baseline being beaten, not a kernel to gate.
            "loop_seconds": round(loop_s, 4),
            "batched_s": round(batched_s, 4),
            "server_s": round(server_s, 4),
            "loop_qps": round(N_QUERIES / loop_s),
            "batched_qps": round(N_QUERIES / batched_s),
            "server_qps": round(N_QUERIES / server_s),
            "batched_speedup": round(loop_s / batched_s, 2),
            "server_speedup": round(loop_s / server_s, 2),
        }
    ]


def test_serve_throughput(benchmark):
    records = run_once(benchmark, _run)
    r = records[0]
    report("serve_throughput", {
        "headers": ["path", "seconds", "queries/s", "speedup vs loop"],
        "rows": [
            ["per-point loop", r["loop_seconds"], r["loop_qps"], 1.0],
            ["batched engine", r["batched_s"], r["batched_qps"],
             r["batched_speedup"]],
            ["JSON server", r["server_s"], r["server_qps"],
             r["server_speedup"]],
        ],
        "notes": "batched engine >= 10x per-point loop at 10k queries",
    })
    report_perf("serve", records)

    if not perf_asserts_enabled():
        return
    # Acceptance: the batched engine beats the per-point loop by >= 10x,
    # and the JSON protocol layer keeps at least half that advantage.
    assert r["batched_speedup"] >= 10.0, r
    assert r["server_speedup"] >= 5.0, r

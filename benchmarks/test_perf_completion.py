"""Throughput benchmark: registered completion backends vs reference loops.

Times ALS and AMN fits for *every* backend in the kernel registry
(``reference`` per-row loops as the baseline, ``numpy_batched``, and —
where numba is installed — ``numba_jit``) plus fused-blend prediction
throughput at small / medium / large grid-rank combinations, and appends
the records to ``results/BENCH_completion.json`` so future PRs inherit a
perf trajectory.  Backends whose availability probe fails are recorded
as skipped (with the probe's reason), not silently dropped, so the CI
numba leg and numba-less hosts produce comparable trajectories.  The
large configuration (64 cells per mode, rank 16, order 4) is the
paper-scale setting the batched rewrite targets: the assertions require
the vectorized kernels to hold at least a 5x fit speedup there.
"""
import time

import numpy as np

from repro.core import CPRModel
from repro.core.completion import (
    complete_als,
    complete_amn,
    registered_backends,
)

from _report import perf_asserts_enabled, report, report_perf, run_once

# (name, cells-per-mode, order, rank, observations)
CONFIGS = [
    ("small", 16, 3, 4, 1024),
    ("medium", 32, 4, 8, 2048),
    ("large", 64, 4, 16, 512),
]
_ALS_SWEEPS = 10
_AMN_OPTS = dict(max_sweeps=1, newton_iters=8, barrier_min=1e-2)


def _problem(cells, order, rank, nnz, seed=0, positive=False):
    rng = np.random.default_rng(seed)
    shape = (cells,) * order
    idx = np.stack([rng.integers(0, I, nnz) for I in shape], axis=1)
    vals = rng.normal(size=nnz) * 0.5 + 2.0
    if positive:
        vals = np.exp(vals * 0.5)
    return shape, idx, vals


def _best_of(fn, repeats=3):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _backends_record():
    """One registry-status record: what ran, what was skipped and why."""
    available, skipped = [], {}
    for b in registered_backends():
        if b.available():
            available.append(b.name)
        else:
            skipped[b.name] = b.unavailable_reason()
    return {"config": "backends", "available": available, "skipped": skipped}


def _fit_records(available):
    records = []
    for name, cells, order, rank, nnz in CONFIGS:
        shape, idx, vals = _problem(cells, order, rank, nnz)
        pshape, pidx, pvals = _problem(cells, order, rank, nnz, positive=True)
        row = {"config": name, "cells": cells, "order": order, "rank": rank,
               "observations": nnz}
        for opt, args in (
            ("als", (shape, idx, vals)),
            ("amn", (pshape, pidx, pvals)),
        ):
            times = {}
            hist = {}
            for backend in available:
                if opt == "als":
                    fn = lambda k=backend: complete_als(
                        *args, rank=rank, max_sweeps=_ALS_SWEEPS, tol=0.0,
                        seed=1, kernel=k,
                    )
                else:
                    fn = lambda k=backend: complete_amn(
                        *args, rank=rank, tol=1e-6, seed=1, kernel=k,
                        **_AMN_OPTS,
                    )
                fn()  # warm-up (buffer setup, JIT compile, BLAS spin-up)
                times[backend], res = _best_of(fn)
                hist[backend] = res.history[-1]
                row[f"{opt}_{backend}_s"] = round(times[backend], 4)
            for backend in available:
                if backend == "reference":
                    continue
                # every backend optimizes the identical problem identically
                np.testing.assert_allclose(
                    hist[backend], hist["reference"], rtol=1e-6,
                    err_msg=f"{opt}/{name}: {backend} diverged from reference",
                )
                row[f"{opt}_{backend}_speedup"] = round(
                    times["reference"] / times[backend], 2
                )
            # Legacy key names for trajectory continuity with entries
            # recorded before the backend registry existed.
            row[f"{opt}_batched_s"] = row[f"{opt}_numpy_batched_s"]
            row[f"{opt}_speedup"] = row[f"{opt}_numpy_batched_speedup"]
            if "numba_jit" in available:
                # The acceptance metric of the numba backend: measured
                # gain over the numpy vectorized path, not just over the
                # per-row reference.
                row[f"{opt}_numba_jit_vs_numpy_batched"] = round(
                    times["numpy_batched"] / times["numba_jit"], 2
                )
        records.append(row)
    return records


def _predict_record():
    """Fused Eq. 5 blend throughput on a fitted paper-scale model."""
    rng = np.random.default_rng(5)
    n_train, n_query = 4096, 20000
    X = np.exp(rng.uniform(0, np.log(100), size=(n_train, 4)))
    y = 1e-2 * X[:, 0] ** 1.2 * X[:, 1] ** 0.4 * (1 + X[:, 2] / 50) * X[:, 3] ** 0.1
    model = CPRModel(cells=64, rank=16, seed=0, max_sweeps=10).fit(X, y)
    Xq = np.exp(rng.uniform(0, np.log(100), size=(n_query, 4)))
    model.predict(Xq)  # warm-up
    dt, _ = _best_of(lambda: model.predict(Xq))
    return {
        "config": "predict_large", "cells": 64, "order": 4, "rank": 16,
        "queries": n_query, "predict_s": round(dt, 4),
        "queries_per_s": round(n_query / dt),
    }


def _run():
    status = _backends_record()
    records = _fit_records(status["available"])
    records.append(_predict_record())
    records.append(status)
    return records


def test_perf_completion(benchmark):
    records = run_once(benchmark, _run)
    status = [r for r in records if r["config"] == "backends"][0]
    jit = "numba_jit" in status["available"]
    headers = ["config", "als ref (s)", "als numpy (s)", "als x",
               "amn ref (s)", "amn numpy (s)", "amn x"]
    if jit:
        headers += ["als jit x", "amn jit x"]
    rows = []
    for r in records:
        if "als_numpy_batched_speedup" not in r:
            continue
        row = [r["config"], r["als_reference_s"], r["als_numpy_batched_s"],
               r["als_numpy_batched_speedup"], r["amn_reference_s"],
               r["amn_numpy_batched_s"], r["amn_numpy_batched_speedup"]]
        if jit:
            row += [r["als_numba_jit_vs_numpy_batched"],
                    r["amn_numba_jit_vs_numpy_batched"]]
        rows.append(row)
    pred = [r for r in records if r["config"] == "predict_large"][0]
    skipped = ", ".join(
        f"{k} ({v})" for k, v in status["skipped"].items()
    ) or "none"
    report("perf_completion", {
        "headers": headers,
        "rows": rows,
        "notes": f"predict: {pred['queries_per_s']}/s; vectorized >= 5x at "
                 f"'large'; skipped backends: {skipped}",
    })
    report_perf("completion", records)

    # Wall-clock ratios are only meaningful on reasonably quiet machines;
    # shared CI runners record the trajectory and gate via _compare.py.
    if not perf_asserts_enabled():
        return
    large = [r for r in records if r["config"] == "large"][0]
    # Acceptance: order-of-magnitude-class speedup at the paper-scale
    # configuration (64 cells, rank 16, order 4) for both optimizers.
    assert large["als_numpy_batched_speedup"] >= 5.0, large
    assert large["amn_numpy_batched_speedup"] >= 5.0, large
    # Smaller configurations must never regress below the reference path.
    for r in records:
        for key, val in r.items():
            if key.endswith("_speedup"):
                assert val > 1.0, (key, r)

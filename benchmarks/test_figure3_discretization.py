"""Benchmark: Figure 3 — accuracy vs discretization granularity."""
from repro.experiments import figure3

from _report import report, run_once, series


def test_figure3_discretization(benchmark):
    out = run_once(benchmark, figure3.run, seed=0)
    report("figure3_discretization", out)
    rows = out["rows"]
    # Paper claim: on the high-dimensional benchmark with categorical
    # parameters (AMG), CPR's best granularity beats SGR's best and MARS —
    # user-directed per-parameter discretization is what SGR lacks.
    by_model = series(rows, 1, 3, where=lambda r: r[0] == "amg")
    best_cpr = min(by_model["cpr"])
    assert best_cpr < min(by_model["sgr"]), by_model
    assert best_cpr < min(by_model["mars"]), by_model
    # CPR improves systematically with granularity on the compute kernel.
    mm_cpr = [(r[2], r[3]) for r in rows if r[0] == "matmul" and r[1] == "cpr"]
    coarsest = mm_cpr[0][1]
    assert min(e for _, e in mm_cpr) < coarsest
    # Sanity on every benchmark: CPR stays within 3x of the best
    # grid-based model (our simulators are smoother than Stampede2 data,
    # which flatters SGR on the numeric-only apps; see EXPERIMENTS.md).
    for app in {r[0] for r in rows}:
        per = series(rows, 1, 3, where=lambda r, a=app: r[0] == a)
        best_overall = min(min(v) for v in per.values())
        assert min(per["cpr"]) < 3.0 * best_overall, (app, per)

"""Benchmark: Figure 7 — accuracy vs serialized model size."""
from repro.experiments import figure7

from _report import report, run_once


def test_figure7_modelsize(benchmark):
    out = run_once(benchmark, figure7.run, seed=0)
    report("figure7_modelsize", out)
    rows = out["rows"]
    apps = {r[0] for r in rows}
    for app in apps:
        app_rows = [r for r in rows if r[0] == app]
        best_err = min(r[3] for r in app_rows)
        # Models within 2x of the best error, ranked by size: the paper's
        # claim is that a grid-based model (CPR foremost) dominates the
        # accuracy/size frontier.
        competitive = [r for r in app_rows if r[3] <= 2.0 * best_err]
        smallest = min(competitive, key=lambda r: r[2])
        assert smallest[1] in ("cpr", "mars", "sgr"), (app, smallest)
        cpr = [r for r in app_rows if r[1] == "cpr"]
        assert cpr, f"no CPR points for {app}"
        # CPR's most accurate configuration is far smaller than the
        # instance/kernel methods' (the paper's 16384x / 32x memory gaps).
        for heavy in ("knn", "gp"):
            hrows = [r for r in app_rows if r[1] == heavy]
            if hrows:
                best_heavy = min(hrows, key=lambda r: r[3])
                best_cpr = min(cpr, key=lambda r: r[3])
                assert best_cpr[2] < best_heavy[2], (app, heavy)
    # On the categorical high-dimensional app, CPR is accuracy-competitive
    # outright (paper: smallest error at ~50x less memory than the NN).
    amg_rows = [r for r in rows if r[0] == "amg"]
    if amg_rows:
        best_err = min(r[3] for r in amg_rows)
        cpr_best = min(r[3] for r in amg_rows if r[1] == "cpr")
        assert cpr_best <= 1.5 * best_err, (cpr_best, best_err)

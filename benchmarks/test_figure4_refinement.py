"""Benchmark: Figure 4 — CP-rank refinement vs sparse-grid refinement."""
from repro.experiments import figure4

from _report import report, run_once, series


def test_figure4_refinement(benchmark):
    out = run_once(benchmark, figure4.run, seed=0)
    report("figure4_refinement", out)
    rows = out["rows"]
    apps = {r[0] for r in rows}
    # CP rank is an effective refinement knob: on every benchmark and grid,
    # the best rank clearly beats rank 1 (the multilinear-cost-model limit).
    for app in apps:
        for tag in {r[1] for r in rows if r[0] == app and r[1].startswith("cpr")}:
            curve = sorted(
                (r[2], r[3]) for r in rows if r[0] == app and r[1] == tag
            )
            rank1 = curve[0][1]
            best = min(e for _, e in curve)
            assert best < 0.7 * rank1, (app, tag, curve)
    # Paper claim on the categorical high-dimensional benchmark: rank
    # refinement (CPR) beats sparse-grid refinement (SGR).
    models = series(rows, 1, 3, where=lambda r: r[0] == "amg")
    cpr_best = min(min(v) for k, v in models.items() if k.startswith("cpr"))
    sgr_best = min(min(v) for k, v in models.items() if k.startswith("sgr"))
    assert cpr_best < sgr_best, (cpr_best, sgr_best)

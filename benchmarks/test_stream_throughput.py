"""Streaming updates: incremental warm-start refit vs cold refit.

The acceptance bar for the streaming subsystem: folding a fresh
measurement batch into a fitted model with ``partial_fit`` (counts-
weighted tensor merge + a few warm-start sweeps reusing the fit's
observation plan) must beat refitting from scratch on the union by
>= 5x — *at matched holdout error*, otherwise the speedup is just an
unconverged model.  The incremental path is measured from a restored
model (``loads_model`` of the published bytes, fit state included), i.e.
exactly what a resumed stream or a republish-follower does.  Appends
machine-readable records to ``results/BENCH_stream.json`` for the CI
regression gate (``benchmarks/_compare.py``).
"""
import time

import numpy as np

from repro.apps import Broadcast
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.utils.serialization import dumps_model, loads_model

from _report import perf_asserts_enabled, report, report_perf, run_once

N_BASE = 4096     # observations the warm model has already absorbed
N_NEW = 512       # the arriving stream batch
N_HOLDOUT = 2048
PARTIAL_SWEEPS = 4  # IncrementalTrainer's warm-start sweep budget


def _best_of(fn, repeats=3):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _run():
    app = Broadcast()
    base = generate_dataset(app, N_BASE, seed=0)
    new = generate_dataset(app, N_NEW, seed=2)
    holdout = generate_dataset(app, N_HOLDOUT, seed=9)
    kw = dict(space=app.space, cells=16, rank=4, seed=0)

    warm = CPRModel(**kw).fit(base.X, base.y)
    blob = dumps_model(warm)  # published bytes, fit state included

    def incremental():
        m = loads_model(blob)
        m.partial_fit(new.X, new.y, max_sweeps=PARTIAL_SWEEPS)
        return m

    all_X = np.vstack([base.X, new.X])
    all_y = np.concatenate([base.y, new.y])

    incremental()  # warm-up (lazy imports, allocator)
    partial_s, m_incr = _best_of(incremental)
    refit_s, m_cold = _best_of(lambda: CPRModel(**kw).fit(all_X, all_y))

    err_incr = m_incr.score(holdout.X, holdout.y)
    err_cold = m_cold.score(holdout.X, holdout.y)
    return [
        {
            "config": "stream_update",
            "base": N_BASE,
            "batch": N_NEW,
            "partial_sweeps": PARTIAL_SWEEPS,
            "partial_s": round(partial_s, 4),
            "refit_s": round(refit_s, 4),
            "speedup": round(refit_s / partial_s, 2),
            "holdout_mlogq_incremental": round(float(err_incr), 4),
            "holdout_mlogq_refit": round(float(err_cold), 4),
            "error_ratio": round(float(err_incr / err_cold), 3),
        }
    ]


def test_stream_update_throughput(benchmark):
    records = run_once(benchmark, _run)
    r = records[0]
    report("stream_throughput", {
        "headers": ["path", "seconds", "holdout MLogQ"],
        "rows": [
            ["cold refit (union)", r["refit_s"], r["holdout_mlogq_refit"]],
            ["incremental partial_fit", r["partial_s"],
             r["holdout_mlogq_incremental"]],
            ["speedup", r["speedup"], ""],
        ],
        "notes": "incremental update >= 5x cold refit at matched holdout error",
    })
    report_perf("stream", records)

    # Error match is deterministic (seeded end to end): the warm update
    # must land within 10% of the cold refit's holdout error — asserted
    # everywhere, or the speedup below would be meaningless.
    assert r["error_ratio"] <= 1.10, r

    if not perf_asserts_enabled():
        return
    # Acceptance: folding a batch in beats refitting from scratch >= 5x.
    assert r["speedup"] >= 5.0, r

"""Benchmark: CP vs Tucker ablation (paper's decomposition choice)."""
import math

from repro.experiments import ablation_tucker

from _report import report, run_once


def test_ablation_tucker(benchmark):
    out = run_once(benchmark, ablation_tucker.run, seed=0)
    report("ablation_tucker", out)
    rows = out["rows"]
    by_key = {(r[0], r[1], r[2]): r for r in rows}
    # Tucker matches CP accuracy within 2x on the 3-D kernel...
    cp = by_key[("matmul", "cp", 4)]
    tk = by_key[("matmul", "tucker", 4)]
    assert tk[3] < 2.0 * cp[3], (cp, tk)
    # ...at a strictly larger parameter count (the core).
    assert tk[4] > cp[4]
    # And the order-8 Tucker core is refused outright (CP's scaling win).
    amg = by_key[("amg", "tucker-rank8", 8)]
    assert math.isnan(amg[3]) and amg[4] == -1

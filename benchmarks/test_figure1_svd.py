"""Benchmark: Figure 1 — SVD rank sweeps, raw vs log-transformed."""
import numpy as np

from repro.experiments import figure1

from _report import report, run_once, series


def test_figure1_svd(benchmark):
    out = run_once(benchmark, figure1.run, seed=0)
    report("figure1_svd", out)
    log_curves = series(out["rows"], 0, 3)
    raw_curves = series(out["rows"], 0, 2)
    # Paper claim 1: log-transformed error decreases monotonically in rank.
    for fname, curve in log_curves.items():
        assert np.all(np.diff(curve) <= 1e-9), (fname, curve)
    # Paper claim 2: the raw SVD misbehaves on the piecewise function f2
    # (error increases with rank somewhere) and ends worse than the log SVD.
    assert max(np.diff(raw_curves["f2"])) > 0
    assert log_curves["f2"][-1] < raw_curves["f2"][-1]

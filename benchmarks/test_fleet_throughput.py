"""Fleet serving SLO benchmark: aggregate qps and tail latency vs workers.

Closed-loop load generation against a live :class:`~repro.serve.ServeFleet`
over HTTP: N persistent client connections each issue a fixed number of
chunked predict requests, so the measured wall-clock covers transport
parsing, microbatching, admission control and the engine — the full
worker stack.  The same workload runs against a 1-worker and a 4-worker
fleet; per-request latencies give p50/p99 and the elapsed seconds give
aggregate throughput.

Records append to ``results/BENCH_fleet.json`` (the ``elapsed_s`` fields
are gated by ``benchmarks/_compare.py``; qps and latency quantiles are
reported, not gated).  The >= 2.5x 4-worker scaling assertion only runs
where it can physically hold: perf asserts enabled *and* at least 4 CPU
cores — on a 1-core runner every worker shares one core and the fleet
can only tie, so the numbers are still recorded but not asserted.
"""
import http.client
import json
import os
import tempfile
import threading
import time

import numpy as np
import pytest

from repro.apps import Broadcast
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.serve import ModelRegistry, ServeFleet
from repro.serve import shm_store

from _report import perf_asserts_enabled, report, report_perf, run_once

N_TRAIN = 4096
CHUNK = 128          # rows per JSON request
N_CLIENTS = 8        # persistent connections
REQS_PER_CLIENT = 20
WORKER_COUNTS = (1, 4)

pytestmark = pytest.mark.skipif(
    not (hasattr(os, "fork") and shm_store.shared_memory_available()),
    reason="fleet needs fork + multiprocessing.shared_memory",
)


def _worker_pss_mb(pids) -> float:
    """Mean proportional-set-size per worker (MB); 0.0 when unreadable.

    PSS splits shared pages across their mappers, so per-worker PSS
    staying flat as workers scale is the direct signature of the shm
    store working (RSS would double-count the shared factor matrices).
    """
    sizes = []
    for pid in pids:
        try:
            text = open(f"/proc/{pid}/smaps_rollup").read()
            for line in text.splitlines():
                if line.startswith("Pss:"):
                    sizes.append(int(line.split()[1]) / 1024.0)
                    break
        except OSError:
            return 0.0
    return round(sum(sizes) / len(sizes), 1) if sizes else 0.0


def _drive(port, chunks_per_client):
    """Run the closed loop; return (elapsed_s, latencies, errors)."""
    latencies: list = []
    errors: list = []
    lock = threading.Lock()

    def client(chunks):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        local = []
        try:
            for x in chunks:
                t0 = time.perf_counter()
                conn.request("POST", "/", json.dumps({"op": "predict", "x": x}))
                resp = conn.getresponse()
                body = json.loads(resp.read())
                dt = time.perf_counter() - t0
                if resp.status != 200 or not body.get("ok"):
                    with lock:
                        errors.append(body)
                else:
                    local.append(dt)
        finally:
            conn.close()
            with lock:
                latencies.extend(local)

    threads = [
        threading.Thread(target=client, args=(chunks,))
        for chunks in chunks_per_client
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0, latencies, errors


def _warm(port, x, attempts=100):
    """One request per connection attempt until a worker answers."""
    last = None
    for _ in range(attempts):
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                conn.request("POST", "/", json.dumps({"op": "predict", "x": x}))
                body = json.loads(conn.getresponse().read())
                assert body.get("ok"), body
                return
            finally:
                conn.close()
        except (ConnectionError, OSError) as exc:
            last = exc
            time.sleep(0.05)
    raise last


def _run():
    app = Broadcast()
    train = generate_dataset(app, N_TRAIN, seed=0)
    queries = generate_dataset(app, N_CLIENTS * REQS_PER_CLIENT * CHUNK, seed=1)
    model = CPRModel(space=app.space, cells=16, rank=4, seed=0).fit(
        train.X, train.y
    )
    expect = model.predict(queries.X[:CHUNK])

    rows = queries.X.tolist()
    chunks_per_client = [
        [
            rows[(c * REQS_PER_CLIENT + r) * CHUNK : (c * REQS_PER_CLIENT + r + 1) * CHUNK]
            for r in range(REQS_PER_CLIENT)
        ]
        for c in range(N_CLIENTS)
    ]
    total = N_CLIENTS * REQS_PER_CLIENT * CHUNK

    records = []
    with tempfile.TemporaryDirectory() as root:
        ModelRegistry(root).publish("bcast-cpr", model)
        for workers in WORKER_COUNTS:
            fleet = ServeFleet(
                root, workers=workers, default_model="bcast-cpr",
                max_inflight=256, poll_interval_s=0.5,
            )
            with fleet:
                _warm(fleet.port, rows[:CHUNK])
                # Sanity: the fleet's answers are the model's answers.
                conn = http.client.HTTPConnection("127.0.0.1", fleet.port, timeout=60)
                try:
                    conn.request(
                        "POST", "/",
                        json.dumps({"op": "predict", "x": rows[:CHUNK]}),
                    )
                    body = json.loads(conn.getresponse().read())
                finally:
                    conn.close()
                np.testing.assert_allclose(body["y"], expect, rtol=1e-10)

                elapsed, lat, errors = _drive(fleet.port, chunks_per_client)
                assert not errors, errors[:3]
                assert len(lat) == N_CLIENTS * REQS_PER_CLIENT
                lat_ms = np.sort(np.asarray(lat)) * 1e3
                records.append({
                    "config": f"fleet_w{workers}",
                    "workers": workers,
                    "clients": N_CLIENTS,
                    "queries": total,
                    "chunk": CHUNK,
                    "elapsed_s": round(elapsed, 4),
                    "qps": round(total / elapsed),
                    "p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
                    "p99_ms": round(float(np.percentile(lat_ms, 99)), 3),
                    "worker_pss_mb": _worker_pss_mb(fleet.worker_pids()),
                })
    base = records[0]
    for r in records[1:]:
        r["speedup_vs_w1"] = round(base["elapsed_s"] / r["elapsed_s"], 2)
    return records


def test_fleet_throughput(benchmark):
    records = run_once(benchmark, _run)
    report("fleet_throughput", {
        "headers": ["workers", "seconds", "queries/s", "p50 ms", "p99 ms",
                    "PSS/worker MB"],
        "rows": [
            [r["workers"], r["elapsed_s"], r["qps"], r["p50_ms"], r["p99_ms"],
             r["worker_pss_mb"]]
            for r in records
        ],
        "notes": "4 workers >= 2.5x 1-worker qps on >= 4 cores; "
                 "per-worker PSS flat (shared shm model)",
    })
    report_perf("fleet", records)

    if not perf_asserts_enabled():
        return
    by_workers = {r["workers"]: r for r in records}
    if (os.cpu_count() or 1) >= 4 and 4 in by_workers:
        assert by_workers[4]["qps"] >= 2.5 * by_workers[1]["qps"], records

#!/usr/bin/env python
"""Bench-regression gate: diff fresh BENCH_*.json entries against baseline.

``results/BENCH_<name>.json`` files are trajectories — each benchmark run
*appends* one entry (see ``_report.report_perf``).  In CI the checkout
carries the committed baseline entries and the bench job appends a fresh
one, so the gate is simply: compare the last entry against the previous
one and fail on any wall-clock metric (``*_s`` fields, lower is better)
that slowed down by more than the threshold (default 30%).

Usage::

    python benchmarks/_compare.py                 # gate every BENCH_*.json
    python benchmarks/_compare.py completion serve
    python benchmarks/_compare.py --threshold 1.5 --results path/to/results

Exit status 1 on regression, 0 otherwise.  Files with fewer than two
entries (no baseline yet) pass with a note — a brand-new benchmark
cannot regress.

Caveat: the baseline entry was recorded on whatever machine last
committed it, so a CI comparison usually crosses hardware (each entry
records its ``host``).  When the fresh and baseline hosts differ, the
threshold is multiplied by ``--cross-host-factor`` (default 2.0) so the
gate still catches order-of-magnitude regressions without failing on
runner-vs-laptop variance; same-host comparisons (local dev, or a
baseline refreshed from CI artifacts) get the tight threshold.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).resolve().parent.parent / "results"


def _records_by_config(entry: dict) -> dict:
    """Map ``config`` label -> record for one trajectory entry."""
    out = {}
    for record in entry.get("records", []):
        out[str(record.get("config", "?"))] = record
    return out


def compare_file(
    path: Path, threshold: float, cross_host_factor: float = 2.0
) -> tuple[list, list]:
    """Return (regressions, lines) for one BENCH_*.json trajectory."""
    history = json.loads(path.read_text())
    if not isinstance(history, list) or len(history) < 2:
        return [], [f"{path.name}: no baseline entry yet ({len(history)} run(s)) — skipped"]

    base_entry, fresh_entry = history[-2], history[-1]
    hosts = (base_entry.get("host", "?"), fresh_entry.get("host", "?"))
    if hosts[0] != hosts[1]:
        threshold *= cross_host_factor
    lines = [
        f"{path.name}: baseline {base_entry.get('revision', '?')} "
        f"({base_entry.get('timestamp', '?')}, host {hosts[0]}) vs fresh "
        f"{fresh_entry.get('revision', '?')} ({fresh_entry.get('timestamp', '?')}, "
        f"host {hosts[1]})"
        + (f" — cross-host, threshold {threshold:.2f}x" if hosts[0] != hosts[1] else "")
    ]
    regressions = []
    base_records = _records_by_config(base_entry)
    for config, fresh in _records_by_config(fresh_entry).items():
        base = base_records.get(config)
        if base is None:
            lines.append(f"  {config}: new configuration — skipped")
            continue
        for key, fresh_val in sorted(fresh.items()):
            # ``*_s`` = gated kernel wall-clock seconds (lower is better).
            # ``*_per_s`` throughputs and non-``_s`` fields (``_qps``,
            # ``loop_seconds`` baselines) are reported, not gated.
            if not key.endswith("_s") or key.endswith("_per_s"):
                continue
            if not isinstance(fresh_val, (int, float)):
                continue
            base_val = base.get(key)
            if not isinstance(base_val, (int, float)) or base_val <= 0:
                continue
            ratio = fresh_val / base_val
            mark = "  "
            if ratio > threshold:
                mark = "!!"
                regressions.append((path.name, config, key, base_val, fresh_val, ratio))
            lines.append(
                f"  {mark} {config}.{key}: {base_val:.4f}s -> {fresh_val:.4f}s "
                f"({ratio:.2f}x)"
            )
    return regressions, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*",
                        help="benchmark names (e.g. completion serve); "
                             "default: every results/BENCH_*.json")
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument("--threshold", type=float, default=1.3,
                        help="fail when fresh/baseline exceeds this "
                             "(default 1.3 = 30%% slowdown)")
    parser.add_argument("--cross-host-factor", type=float, default=2.0,
                        help="multiply the threshold by this when the "
                             "baseline was recorded on a different host "
                             "(1.0 disables the relaxation)")
    args = parser.parse_args(argv)

    if args.names:
        paths = [args.results / f"BENCH_{n}.json" for n in args.names]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(f"missing trajectory files: {[str(p) for p in missing]}")
            return 1
    else:
        paths = sorted(args.results.glob("BENCH_*.json"))
        if not paths:
            print(f"no BENCH_*.json under {args.results}")
            return 1

    all_regressions = []
    for path in paths:
        regressions, lines = compare_file(
            path, args.threshold, args.cross_host_factor
        )
        print("\n".join(lines))
        all_regressions.extend(regressions)

    if all_regressions:
        print(f"\nFAIL: {len(all_regressions)} metric(s) slowed down beyond "
              "the threshold:")
        for file, config, key, base, fresh, ratio in all_regressions:
            print(f"  {file}:{config}.{key}  {base:.4f}s -> {fresh:.4f}s "
                  f"({ratio:.2f}x)")
        return 1
    print("\nOK: no kernel slowed down beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared reporting helpers for the benchmark suite.

Each benchmark runs one figure/table driver once (``benchmark.pedantic``
with a single round — these are minutes-scale experiments, not
microbenchmarks), prints the same rows the paper plots, and archives the
table under ``results/``.

Performance benchmarks additionally archive machine-readable records via
:func:`report_perf`, which appends one timestamped entry per run to a
``results/BENCH_<name>.json`` trajectory so successive PRs can compare
throughput against history.
"""
from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

from repro.utils import format_table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def perf_asserts_enabled() -> bool:
    """Whether wall-clock perf assertions should run in this environment.

    Shared CI runners are too noisy for hard wall-clock ratio thresholds,
    so assertions are skipped whenever ``CI`` is set — the CI bench job
    gates regressions through ``benchmarks/_compare.py`` (a 30% slowdown
    diff against the committed baseline) instead.  Set
    ``REPRO_PERF_ASSERT=1`` to force the assertions anywhere.
    """
    if os.environ.get("REPRO_PERF_ASSERT") == "1":
        return True
    return not os.environ.get("CI")


def run_once(benchmark, fn, **kwargs):
    """Execute a driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)


def report(name: str, result: dict) -> str:
    """Print and archive a driver's output table; return the rendered text."""
    table = format_table(result["headers"], result["rows"])
    text = f"== {name} ==\n{table}\n"
    if result.get("notes"):
        text += f"(expected shape: {result['notes']})\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def _git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def report_perf(name: str, records: list) -> Path:
    """Append one run's perf records to ``results/BENCH_<name>.json``.

    ``records`` is a list of dicts (one per measured configuration).  The
    file holds the whole trajectory — a JSON list of runs, each stamped
    with time, git revision, and host — so future PRs can detect
    regressions against any earlier entry.  Returns the file path.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "revision": _git_revision(),
            "host": platform.node() or "unknown",
            "records": records,
        }
    )
    path.write_text(json.dumps(history, indent=2) + "\n")
    return path


def series(rows, key_idx, val_idx, where=None):
    """Group rows into {key: [values]} for shape assertions."""
    out: dict = {}
    for row in rows:
        if where is not None and not where(row):
            continue
        out.setdefault(row[key_idx], []).append(row[val_idx])
    return out

"""Shared reporting helpers for the benchmark suite.

Each benchmark runs one figure/table driver once (``benchmark.pedantic``
with a single round — these are minutes-scale experiments, not
microbenchmarks), prints the same rows the paper plots, and archives the
table under ``results/``.
"""
from __future__ import annotations

from pathlib import Path

from repro.utils import format_table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def run_once(benchmark, fn, **kwargs):
    """Execute a driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)


def report(name: str, result: dict) -> str:
    """Print and archive a driver's output table; return the rendered text."""
    table = format_table(result["headers"], result["rows"])
    text = f"== {name} ==\n{table}\n"
    if result.get("notes"):
        text += f"(expected shape: {result['notes']})\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def series(rows, key_idx, val_idx, where=None):
    """Group rows into {key: [values]} for shape assertions."""
    out: dict = {}
    for row in rows:
        if where is not None and not where(row):
            continue
        out.setdefault(row[key_idx], []).append(row[val_idx])
    return out

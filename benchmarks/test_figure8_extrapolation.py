"""Benchmark: Figure 8 — extrapolation beyond the training ranges."""
import numpy as np

from repro.experiments import figure8

from _report import report, run_once


def test_figure8_extrapolation(benchmark):
    out = run_once(benchmark, figure8.run, seed=0)
    report("figure8_extrapolation", out)
    rows = out["rows"]

    def med(scenario, model):
        vals = [r[3] for r in rows if r[0] == scenario and r[2] == model]
        return float(np.median(vals)) if vals else np.inf

    black_box = ["nn", "et", "gp", "knn"]
    # Paper claim: black-box models overfit the training range; CPR's
    # positive-factor + spline extrapolation beats them on numerical-
    # parameter extrapolation.  (MARS is excluded from this comparison:
    # our simulators are log-log piecewise-linear by construction, which
    # is MARS's exact model class — on the paper's real measurements it
    # overfits like the rest; see EXPERIMENTS.md.)
    for scenario in ("mm_mnk", "bc_msg"):
        cpr = med(scenario, "cpr")
        best_bb = min(med(scenario, b) for b in black_box)
        assert cpr < best_bb, (scenario, cpr, best_bb)
    # Single-parameter MM extrapolation: CPR among the leaders (within 2x
    # of the best model overall).
    cpr = med("mm_m", "cpr")
    best_all = min(med("mm_m", b) for b in black_box + ["mars"])
    assert cpr < 2.0 * best_all, ("mm_m", cpr, best_all)
    # The weakest black-box models blow up by multiples where CPR holds.
    for scenario in ("mm_m", "mm_mnk", "bc_msg"):
        worst_bb = max(med(scenario, b) for b in black_box)
        assert worst_bb > 2.5 * med(scenario, "cpr"), scenario
    # Integer/node-count extrapolation is CPR's acknowledged weak spot
    # (paper: it only matches KNN there); require survival, not victory.
    cpr = med("bc_nodes", "cpr")
    best_bb = min(med("bc_nodes", b) for b in black_box)
    assert cpr < 3.0 * best_bb, ("bc_nodes", cpr, best_bb)

"""Benchmark: Figure 6 — best error vs training size, all ten models."""
from repro.experiments import figure6

from _report import report, run_once, series


def test_figure6_trainsize(benchmark):
    out = run_once(benchmark, figure6.run, seed=0)
    report("figure6_trainsize", out)
    rows = out["rows"]
    apps = {r[0] for r in rows}
    largest_n = max(r[1] for r in rows)
    # Paper claim: CPR is the most accurate model on the high-dimensional
    # *categorical* application at moderate-to-large training sizes.
    best = series(
        rows, 2, 3, where=lambda r: r[0] == "amg" and r[1] == largest_n
    )
    overall = min(min(v) for v in best.values())
    assert min(best["cpr"]) <= 1.3 * overall, best
    # Everywhere else CPR stays a usable model (its advantage on the real
    # Stampede2 surfaces is larger than on our smoother simulators, which
    # flatter additive models like SGR/GP on the numeric-only kernels).
    for app in apps:
        per = series(rows, 2, 3, where=lambda r: r[0] == app and r[1] == largest_n)
        overall = min(min(v) for v in per.values())
        assert min(per["cpr"]) <= 6.0 * overall, (app, per)
    # CPR improves (or holds) with training size on every app.
    for app in apps:
        cpr = sorted(
            (r[1], r[3]) for r in rows if r[0] == app and r[2] == "cpr"
        )
        assert cpr[-1][1] <= cpr[0][1] * 1.1, (app, cpr)

#!/usr/bin/env python
"""Model shoot-out on Kripke: all ten model families, accuracy vs size.

Reproduces a slice of the paper's Figures 6/7 on the highest-dimensional
benchmark (9 parameters, two categorical).  Every model family from
Section 6.0.4 is tuned over a small hyper-parameter grid on the same
training set; we report the best test MLogQ and the serialized size of the
best model — the trade-off the paper's Figure 7 plots.

Run:  python examples/compare_models_kripke.py
"""
import time

from repro.apps import Kripke
from repro.datasets import generate_dataset
from repro.experiments import tune_model
from repro.utils import format_table

MODELS = ["cpr", "sgr", "mars", "nn", "et", "rf", "gb", "gp", "svm", "knn"]


def main():
    app = Kripke()
    print(f"Benchmark: {app.name}, {app.space.dimension} parameters "
          f"({app.space.names})")
    train = generate_dataset(app, n=4096, seed=0)
    test = generate_dataset(app, n=1024, seed=1)

    rows = []
    for name in MODELS:
        t0 = time.perf_counter()
        try:
            res = tune_model(name, train, test, space=app.space,
                             scale="smoke", seed=0, time_budget_s=120)
        except RuntimeError as exc:
            print(f"  {name}: skipped ({exc})")
            continue
        rows.append((
            name,
            res.best_error,
            res.best_size_bytes,
            f"{time.perf_counter() - t0:.1f}s",
            str(res.best_params),
        ))
    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["model", "best mlogq", "size (B)", "tuning time", "best params"],
        rows,
    ))
    leader = rows[0]
    print(f"\nmost accurate: {leader[0]} at MLogQ {leader[1]:.4f} "
          f"using {leader[2]} bytes")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Serving quickstart: fit on Bcast data, publish, query through the server.

Walks the full production loop the ``repro.serve`` subsystem adds on top
of the paper's modeling pipeline:

1. fit a CPR model on MPI broadcast measurements (the paper's "BC"
   benchmark);
2. publish it to a model registry (content-addressed, versioned);
3. answer 10k query points through the serving path — once as a
   per-point ``predict`` loop (what naive client code does) and once
   through the batched :class:`PredictionEngine`;
4. round-trip a request through the actual JSON server protocol.

Run:  python examples/serve_bcast.py
"""
from __future__ import annotations

import json
import tempfile
import time

import numpy as np

from repro.apps import Broadcast
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.metrics import mlogq
from repro.serve import ModelRegistry, ModelServer, PredictionEngine

N_QUERIES = 10_000


def main():
    app = Broadcast()
    train = generate_dataset(app, 4096, seed=0)
    queries = generate_dataset(app, N_QUERIES, seed=1)

    # 1. Fit (the experiment side of the repo).
    model = CPRModel(space=app.space, cells=16, rank=4, seed=0).fit(train.X, train.y)
    print(f"fitted: {model!r}  test MLogQ: "
          f"{mlogq(model.predict(queries.X), queries.y):.4f}")

    with tempfile.TemporaryDirectory() as root:
        # 2. Publish: the registry stores the same minimal state that
        #    `save_model` writes, under its content digest.
        registry = ModelRegistry(root)
        mv = registry.publish("bcast-cpr", model, meta={"app": app.name})
        print(f"published {mv.ref} ({mv.digest[:12]}..., "
              f"{model.size_bytes} bytes)")

        # 3a. The naive consumer: one predict call per query point.
        served = registry.load("bcast-cpr")
        t0 = time.perf_counter()
        y_loop = np.array([served.predict(x[None, :])[0] for x in queries.X])
        loop_s = time.perf_counter() - t0

        # 3b. The serving engine: one vectorized call for the whole batch.
        engine = PredictionEngine(served, name=mv.ref)
        t0 = time.perf_counter()
        y_batch = engine.predict(queries.X)
        batch_s = time.perf_counter() - t0
        np.testing.assert_allclose(y_batch, y_loop, rtol=1e-10)

        print(f"per-point loop : {loop_s:8.3f} s "
              f"({N_QUERIES / loop_s:10.0f} queries/s)")
        print(f"batched engine : {batch_s:8.3f} s "
              f"({N_QUERIES / batch_s:10.0f} queries/s)")
        print(f"speedup        : {loop_s / batch_s:8.1f}x")

        # 4. The same queries through the JSON protocol the CLI server
        #    speaks (`python -m repro.serve --registry DIR --stdin`).
        server = ModelServer(registry, default_model="bcast-cpr")
        request = {"op": "predict", "x": queries.X[:5].tolist()}
        response = server.handle(json.loads(json.dumps(request)))
        print(f"server response: model={response['model']} "
              f"n={response['n']} latency={response['latency_ms']:.2f} ms")
        print(f"engine stats   : {engine.stats()['queries_per_second']:.0f} "
              "queries/s lifetime")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Streaming quickstart: fit → publish → serve as a continuous loop.

Demonstrates the ``repro.stream`` pipeline on MPI broadcast data (the
paper's "BC" benchmark):

1. a :class:`StreamSession` ingests measurement batches as they arrive,
   journaling each one to disk;
2. every batch is scored *before* it is absorbed (prequential holdout),
   feeding the rolling :class:`DriftMonitor`;
3. the :class:`IncrementalTrainer` folds in-domain batches into the
   model with a cheap ``partial_fit`` warm start (reusing the fit's
   observation-plan buffers) and falls back to a full refit on domain
   widening or drift;
4. refits auto-republish a new registry version, which a live
   :class:`ModelServer` picks up on its next request — no restart;
5. the journal + the published model's fit state make the whole stream
   resumable from disk.

Run:  python examples/stream_bcast.py
"""
from __future__ import annotations

import tempfile
from pathlib import Path

from repro.apps import Broadcast
from repro.serve import ModelRegistry, ModelServer
from repro.stream import (
    DriftMonitor,
    IncrementalTrainer,
    ObservationBuffer,
    StreamSession,
    replay_application,
)
from repro.stream.runner import make_model_factory

N_OBSERVATIONS = 512
BATCH = 32


def main():
    app = Broadcast()
    with tempfile.TemporaryDirectory() as root:
        registry = ModelRegistry(Path(root) / "registry")
        journal = Path(root) / "bcast.jsonl"
        server = ModelServer(registry, default_model="bcast-stream")

        factory = make_model_factory(app.space, cells=8, rank=3, seed=0)
        # Threshold just above this model family's converged rolling error
        # (~0.2 MLogQ at cells=8/rank=3), so drift refits fire on genuine
        # degradation rather than on the model's noise floor.
        monitor = DriftMonitor(window=64, threshold=0.3, min_count=24)
        session = StreamSession(
            registry,
            "bcast-stream",
            factory,
            buffer=ObservationBuffer(journal=journal, window=4096),
            monitor=monitor,
            trainer=IncrementalTrainer(factory, monitor=monitor),
            meta={"app": app.name},
        )

        def on_batch(i, record):
            line = f"batch {i:2d}: action={record['action']:7s}"
            if record.get("published_version"):
                line += f" -> republished v{record['published_version']}"
            if record.get("batch_error") is not None:
                line += f"  batch MLogQ {record['batch_error']:.3f}"
            print(line)

        summary = replay_application(
            app, session, N_OBSERVATIONS, batch=BATCH, seed=0, on_batch=on_batch
        )
        session.buffer.close()

        print(f"\nstream summary: {summary['trainer']}")
        print(f"published versions: {summary['published_versions']} "
              f"({summary['republished']} republish(es))")

        # The live server answers from the *latest* version automatically.
        resp = server.handle({"op": "predict", "x": [[4, 8, 1 << 20]]})
        print(f"server now serves {resp['model']}: y={resp['y']}")

        # Resume from disk: the journal tail past the last published
        # version is replayed into the restored model (fit state and all).
        resumed = StreamSession.resume(
            registry, "bcast-stream", journal, factory, window=4096
        )
        print(f"resumed at seq {resumed.resumed_from} of "
              f"{resumed.buffer.n_seen} journaled observations; "
              f"pending={resumed.buffer.n_seen - resumed.buffer.flushed}")
        resumed.flush()
        resumed.buffer.close()
        print(f"resume flush absorbed the tail: flushed={resumed.buffer.flushed}")


if __name__ == "__main__":
    main()

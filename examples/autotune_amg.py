#!/usr/bin/env python
"""Autotuning with a CPR surrogate: pick AMG's fastest solver configuration.

The paper motivates performance models with optimal tuning-parameter
selection (Section 1).  This example builds a CPR model of the AMG proxy
app's 8-parameter space — three grid dimensions, three *categorical*
algorithmic choices (coarsening/relaxation/interpolation type), and two
architectural parameters — then uses the model as a surrogate to rank all
candidate solver configurations for a fixed problem, comparing the
model-chosen configuration against the true optimum.

Run:  python examples/autotune_amg.py
"""
import itertools

import numpy as np

from repro.apps import AMG
from repro.apps.amg import COARSEN_TYPES, INTERP_TYPES, RELAX_TYPES
from repro.core import CPRModel
from repro.datasets import generate_dataset


def main():
    app = AMG()
    print(f"Benchmark: {app.name}, {app.space.dimension} parameters")

    # 1. One-off training corpus (in practice: historic runs of the solver).
    train = generate_dataset(app, n=8192, seed=0)
    model = CPRModel(space=app.space, cells=8, rank=8,
                     regularization=1e-4, seed=0).fit(train.X, train.y)
    print(f"surrogate fitted: {model!r}, size {model.size_bytes} B")

    # 2. The tuning problem: fixed problem size and node configuration,
    #    choose (ct, rt, it) among 7 * 10 * 14 = 980 combinations.
    fixed = {"nx": 64, "ny": 64, "nz": 32, "tpp": 2, "ppn": 48}
    combos = list(itertools.product(
        range(len(COARSEN_TYPES)), range(len(RELAX_TYPES)),
        range(len(INTERP_TYPES)),
    ))
    X = np.array([
        [fixed["nx"], fixed["ny"], fixed["nz"], ct, rt, it,
         fixed["tpp"], fixed["ppn"]]
        for ct, rt, it in combos
    ], dtype=float)

    # 3. Rank every candidate with the surrogate (one vectorized call),
    #    then compare against the true latent times.
    pred = model.predict(X)
    truth = app.latent_time(X)
    picked = int(np.argmin(pred))
    best = int(np.argmin(truth))

    def describe(i):
        ct, rt, it = combos[i]
        return (f"ct={COARSEN_TYPES[ct]} rt={RELAX_TYPES[rt]} "
                f"it={INTERP_TYPES[it]}")

    print(f"\nsurrogate pick : {describe(picked)}  "
          f"true time {truth[picked]*1e3:.2f} ms")
    print(f"true optimum   : {describe(best)}  "
          f"true time {truth[best]*1e3:.2f} ms")
    print(f"slowdown vs optimal: {truth[picked]/truth[best]:.3f}x")

    # 4. How good is the ranking overall?  Report the true rank of the
    #    surrogate's top-5 picks.
    order_pred = np.argsort(pred)[:5]
    order_true = np.argsort(np.argsort(truth))
    print("\nsurrogate top-5 picks (true rank out of 980):",
          [int(order_true[i]) + 1 for i in order_pred])

    quantile = float(np.mean(truth <= truth[picked]))
    print(f"surrogate pick is in the fastest {quantile:.1%} "
          f"of all configurations")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: model GEMM execution time with CP tensor completion.

Walks the pipeline of the paper's Figure 2: sample training configurations,
discretize the parameter space onto a regular grid, complete the observed
tensor with a low-rank CP decomposition, and predict unseen configurations
by multilinear interpolation.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro.apps import MatMul
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.metrics import mlogq

def main():
    app = MatMul()
    print(f"Benchmark: {app.name}, parameters: {app.space.names}")

    # 1. Collect training measurements (here: the GEMM simulator standing in
    #    for Stampede2 runs; on a real system this is your measurement log).
    train = generate_dataset(app, n=8192, seed=0)
    test = generate_dataset(app, n=1000, seed=1)
    print(f"train: {len(train)} measurements, test: {len(test)}")

    # 2. Fit the CPR model: 16 log-spaced cells per dimension, CP rank 4.
    model = CPRModel(space=app.space, cells=16, rank=4, seed=0)
    model.fit(train.X, train.y)
    print(f"fitted: {model!r}")
    print(f"observed tensor density: {model.tensor_.density:.3%}")

    # 3. Predict and assess with the paper's scale-independent MLogQ error.
    pred = model.predict(test.X)
    err = mlogq(pred, test.y)
    print(f"test MLogQ: {err:.4f}  (geometric-mean misprediction "
          f"factor ~ {np.exp(err):.3f}x)")

    # 4. The model is tiny compared to the data it compresses.
    print(f"model size: {model.size_bytes} bytes "
          f"({model.n_parameters} coefficients) vs "
          f"{train.X.nbytes + train.y.nbytes} bytes of raw training data")

    # 5. Ask for a prediction at an arbitrary configuration.
    x = np.array([[1024, 768, 512]], dtype=float)
    print(f"predicted time for m,n,k = {x[0].astype(int)}: "
          f"{model.predict(x)[0]*1e3:.3f} ms "
          f"(true: {app.latent_time(x)[0]*1e3:.3f} ms)")


if __name__ == "__main__":
    main()

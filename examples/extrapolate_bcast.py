#!/usr/bin/env python
"""Performance extrapolation: predict large-message MPI_Bcast from small runs.

Reproduces the workflow of the paper's Section 5.3 / Figure 8: train the
*positive* CPR model (MLogQ2 loss, interior-point AMN optimizer) on
broadcasts with message sizes below 2 MB, then predict 32-64 MB broadcasts
— configurations far outside the modeling domain.  The model extracts the
Perron rank-1 component of each factor matrix and extends its log with a
MARS spline, so predictions keep growing with message size instead of
saturating at the training boundary like the black-box baselines.

Run:  python examples/extrapolate_bcast.py
"""
import numpy as np

from repro.apps import Broadcast
from repro.core import CPRModel
from repro.experiments.registry import make_model
from repro.metrics import mlogq
from repro.utils import format_table


def main():
    app = Broadcast()
    rng = np.random.default_rng(0)

    # Pool of measurements across the full space; snap node counts to the
    # powers of two the paper executes.
    X = app.space.sample(16384, rng)
    X[:, 0] = 2.0 ** np.clip(np.round(np.log2(X[:, 0])), 0, 7)
    X[:, 1] = 2.0 ** np.clip(np.round(np.log2(X[:, 1])), 0, 6)
    y = app.measure(X, rng=rng)

    cutoff = 2.0**21  # train only on messages < 2 MB
    train = X[:, 2] < cutoff
    test = X[:, 2] >= 2.0**25  # predict 32-64 MB messages
    Xtr, ytr = X[train][:4096], y[train][:4096]
    Xte, yte = X[test], y[test]
    print(f"train: {len(ytr)} runs with msg < 2MB; "
          f"test: {len(yte)} runs with msg >= 32MB")

    # The extrapolation-capable CPR model (Section 5.3): low rank keeps
    # the Perron component clean; the extrapolated mode gets a fine grid
    # so the MARS spline has enough training points (paper Section 7.2).
    cpr = CPRModel(space=app.space, cells={"nodes": 8, "ppn": 8, "msg": 32},
                   rank=2, loss="mlogq2", regularization=1e-5,
                   max_sweeps=2, newton_iters=15, seed=0).fit(Xtr, ytr)

    rows = [("cpr (extrapolating)", mlogq(cpr.predict(Xte), yte))]
    for name in ("nn", "et", "gp", "knn", "mars"):
        model = make_model(name, space=app.space, seed=0)
        model.fit(Xtr, ytr)
        rows.append((name, mlogq(model.predict(Xte), yte)))

    print("\nMLogQ on 16-32x larger messages than ever observed:")
    print(format_table(["model", "mlogq"], rows))

    factor = np.exp(rows[0][1])
    print(f"\nCPR's typical misprediction factor: {factor:.2f}x; "
          "baselines saturate at the training boundary and "
          "under-predict by the full extrapolation span.")


if __name__ == "__main__":
    main()

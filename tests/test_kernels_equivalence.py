"""Registered kernel backends vs reference: exact-equivalence tests.

Every backend in the :mod:`repro.core.completion.backends` registry must
reproduce the retained per-row ``reference`` backend to tight tolerance —
same sweeps, same histories, same factors — across tensor orders, ragged
observation multiplicities (including rows with *no* observations), warm
starts, and the streaming ``partial_fit`` path.  The parametrization is
registry-derived: registering a new backend automatically subjects it to
this suite, and unavailable backends (e.g. ``numba_jit`` without numba
installed) are skipped with their probe's reason, not silently dropped.
See DESIGN.md, "Kernel backends".
"""
import numpy as np
import pytest

from repro.core.completion import (
    ObservationPlan,
    complete_als,
    complete_als_adaptive,
    complete_als_regularized,
    complete_amn,
    get_backend,
    init_factors,
    init_positive_factors,
    registered_backends,
)
from repro.core.completion.als import als_update_mode

ORDERS = {
    2: (13, 7),
    3: (11, 6, 9),
    4: (8, 5, 7, 4),
    5: (6, 4, 5, 3, 4),
}


def _backend_params(include_reference=False):
    """One pytest param per registered backend, skip-marked if unavailable."""
    params = []
    for b in registered_backends():
        if b.name == "reference" and not include_reference:
            continue
        marks = []
        if not b.available():
            marks.append(pytest.mark.skip(
                reason=f"backend {b.name} unavailable: {b.unavailable_reason()}"
            ))
        params.append(pytest.param(b.name, marks=marks, id=b.name))
    return params


# Backends compared against the per-row reference (i.e. everything else).
BACKENDS = _backend_params()


def _ragged_observations(shape, seed, positive=False):
    """Random observations with skewed multiplicities and unobserved rows.

    Half the draws are concentrated on low indices (heavily repeated
    rows), and the last row of mode 0 plus the middle row of the final
    mode are scrubbed entirely, so every plan has ragged segments *and*
    unobserved rows to leave untouched.
    """
    rng = np.random.default_rng(seed)
    nnz = 60 * len(shape)
    skew = np.stack(
        [rng.integers(0, max(I // 2, 1), nnz // 2) for I in shape], axis=1
    )
    unif = np.stack([rng.integers(0, I, nnz - nnz // 2) for I in shape], axis=1)
    idx = np.concatenate([skew, unif])
    keep = (idx[:, 0] != shape[0] - 1) & (idx[:, -1] != shape[-1] // 2)
    idx = idx[keep]
    vals = rng.normal(size=len(idx)) * 0.5 + 2.0
    if positive:
        vals = np.exp(vals * 0.4)
    return np.ascontiguousarray(idx), vals


def _assert_factors_close(a, b, rtol=1e-8):
    for j, (U, V) in enumerate(zip(a, b)):
        scale = max(float(np.abs(U).max()), 1e-30)
        np.testing.assert_allclose(
            V, U, rtol=0, atol=rtol * scale,
            err_msg=f"mode {j} factors diverge between kernels",
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("order", sorted(ORDERS))
@pytest.mark.parametrize("scale_rows", [True, False])
class TestALSEquivalence:
    def test_full_fit_matches(self, order, scale_rows, backend):
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=order)
        kw = dict(rank=3, regularization=1e-5, max_sweeps=6, tol=0.0,
                  seed=7, scale_rows=scale_rows)
        ref = complete_als(shape, idx, vals, kernel="reference", **kw)
        bat = complete_als(shape, idx, vals, kernel=backend, **kw)
        _assert_factors_close(ref.factors, bat.factors)
        np.testing.assert_allclose(ref.history, bat.history, rtol=1e-9)
        assert ref.n_sweeps == bat.n_sweeps

    def test_single_mode_update_matches(self, order, scale_rows, backend):
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=10 + order)
        for j in range(len(shape)):
            ref = init_factors(shape, 4, rng=np.random.default_rng(3))
            bat = [U.copy() for U in ref]
            als_update_mode(ref, idx, vals, j, 1e-4, scale_rows,
                            kernel="reference")
            als_update_mode(bat, idx, vals, j, 1e-4, scale_rows,
                            kernel=backend)
            _assert_factors_close(ref, bat)

    def test_warm_start_matches(self, order, scale_rows, backend):
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=20 + order)
        kw = dict(rank=2, regularization=1e-5, tol=0.0, seed=1,
                  scale_rows=scale_rows)
        start = complete_als(shape, idx, vals, max_sweeps=3,
                             kernel="reference", **kw).factors
        ref = complete_als(shape, idx, vals, max_sweeps=3, kernel="reference",
                           factors=[U.copy() for U in start], **kw)
        bat = complete_als(shape, idx, vals, max_sweeps=3, kernel=backend,
                           factors=[U.copy() for U in start], **kw)
        _assert_factors_close(ref.factors, bat.factors)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("order", sorted(ORDERS))
class TestAMNEquivalence:
    def test_full_fit_matches(self, order, backend):
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=order, positive=True)
        kw = dict(rank=2, regularization=1e-5, max_sweeps=2, tol=1e-6,
                  seed=5, newton_iters=8, barrier_min=1e-2)
        ref = complete_amn(shape, idx, vals, kernel="reference", **kw)
        bat = complete_amn(shape, idx, vals, kernel=backend, **kw)
        _assert_factors_close(ref.factors, bat.factors)
        np.testing.assert_allclose(ref.history, bat.history, rtol=1e-8)
        assert all(np.all(U > 0) for U in bat.factors)

    def test_warm_start_matches(self, order, backend):
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=30 + order, positive=True)
        start = init_positive_factors(shape, 2, rng=np.random.default_rng(9),
                                      mean=float(np.mean(vals)))
        kw = dict(rank=2, regularization=1e-5, max_sweeps=1, tol=1e-6,
                  seed=0, newton_iters=6, barrier_min=1e-1)
        ref = complete_amn(shape, idx, vals, kernel="reference",
                           factors=[U.copy() for U in start], **kw)
        bat = complete_amn(shape, idx, vals, kernel=backend,
                           factors=[U.copy() for U in start], **kw)
        _assert_factors_close(ref.factors, bat.factors)

    def test_unobserved_rows_untouched(self, order, backend):
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=40 + order, positive=True)
        start = init_positive_factors(shape, 2, rng=np.random.default_rng(11),
                                      mean=float(np.mean(vals)))
        frozen = start[0][shape[0] - 1].copy()
        res = complete_amn(shape, idx, vals, rank=2, max_sweeps=1,
                           newton_iters=4, barrier_min=1e-1, seed=0,
                           kernel=backend,
                           factors=[U.copy() for U in start])
        np.testing.assert_array_equal(res.factors[0][shape[0] - 1], frozen)


class TestSkewFallback:
    """Extreme multiplicity skew must dispatch off the padded path."""

    def _skewed_problem(self, positive=False):
        # One row of mode 0 owns almost every observation: padding would
        # cost n_obs * max_count >> nnz, so pad_feasible must trip.
        rng = np.random.default_rng(0)
        shape = (40, 6, 5)
        nnz = 12000
        idx = np.stack(
            [
                np.where(rng.random(nnz) < 0.97, 3, rng.integers(0, 40, nnz)),
                rng.integers(0, 6, nnz),
                rng.integers(0, 5, nnz),
            ],
            axis=1,
        ).astype(np.intp)
        vals = rng.normal(size=nnz) * 0.3 + 2.0
        if positive:
            vals = np.exp(vals * 0.4)
        return shape, idx, vals

    def test_pad_infeasible_detected(self):
        shape, idx, _ = self._skewed_problem()
        plan = ObservationPlan(shape, idx)
        assert not plan.mode(0).pad_feasible
        assert plan.mode(1).pad_feasible

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_als_skewed_matches_reference(self, backend):
        shape, idx, vals = self._skewed_problem()
        kw = dict(rank=3, regularization=1e-5, max_sweeps=5, tol=0.0, seed=2)
        ref = complete_als(shape, idx, vals, kernel="reference", **kw)
        bat = complete_als(shape, idx, vals, kernel=backend, **kw)
        _assert_factors_close(ref.factors, bat.factors)

    def test_tucker_skewed_fits(self):
        from repro.core.completion.tucker import complete_tucker

        shape, idx, vals = self._skewed_problem()
        res = complete_tucker(shape, idx, vals, rank=2, max_sweeps=4, seed=0)
        assert np.isfinite(res.history[-1])
        assert res.history[-1] <= res.history[0]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_amn_skewed_matches_reference(self, backend):
        shape, idx, vals = self._skewed_problem(positive=True)
        kw = dict(rank=2, regularization=1e-5, max_sweeps=1, tol=1e-6,
                  seed=2, newton_iters=6, barrier_min=1e-1)
        ref = complete_amn(shape, idx, vals, kernel="reference", **kw)
        bat = complete_amn(shape, idx, vals, kernel=backend, **kw)
        _assert_factors_close(ref.factors, bat.factors)


@pytest.mark.parametrize("backend", BACKENDS)
class TestPartialFitEquivalence:
    """The streaming warm-start path must agree across backends.

    ``partial_fit`` merges new measurements into the observed tensor and
    runs a few warm-start sweeps from the current factors; plan-reuse
    backends additionally reuse (or, when the observed index set
    changed, rebuild) the fit-wide observation plan.  Every backend must
    agree with the per-row reference to 1e-8 after the update, including
    new rows with ragged multiplicities and observations clipped into
    the grid's boundary cells — this is the per-backend coverage of the
    stream trainer's warm-start refits.
    """

    def _data(self, seed, n=300, lo=1.0, hi=64.0):
        gen = np.random.default_rng(seed)
        X = np.exp(gen.uniform(np.log(lo), np.log(hi), size=(n, 2)))
        y = 1e-3 * X[:, 0] ** 1.3 * X[:, 1] ** 0.6 * np.exp(
            gen.normal(0, 0.05, size=n)
        )
        return X, y

    def _pair(self, loss, backend):
        from repro.core import CPRModel

        kw = dict(cells=6, rank=2, seed=0, loss=loss)
        if loss == "mlogq2":
            kw.update(max_sweeps=1, newton_iters=6, barrier_min=1e-1)
        return (
            CPRModel(kernel="reference", **kw),
            CPRModel(kernel=backend, **kw),
        )

    @pytest.mark.parametrize("loss", ["log_mse", "mlogq2"])
    def test_partial_fit_known_cells_matches(self, loss, backend):
        """New observations inside observed cells (plan reused verbatim)."""
        X, y = self._data(seed=0)
        ref, bat = self._pair(loss, backend)
        ref.fit(X, y)
        bat.fit(X, y)
        plan_before = bat._plan_
        # Jittered re-measurements of seen configurations: same cells.
        gen = np.random.default_rng(1)
        Xn, yn = X[:80], y[:80] * np.exp(gen.normal(0, 0.02, 80))
        ref.partial_fit(Xn, yn, max_sweeps=3)
        bat.partial_fit(Xn, yn, max_sweeps=3)
        if get_backend(backend).supports_plan_reuse:
            # Unchanged cells: the fit-wide plan's buffers are reused.
            assert bat._plan_ is plan_before
        _assert_factors_close(ref._factor_list(), bat._factor_list())
        q = self._data(seed=9, n=64)[0]
        np.testing.assert_allclose(bat.predict(q), ref.predict(q), rtol=1e-8)

    @pytest.mark.parametrize("loss", ["log_mse", "mlogq2"])
    def test_partial_fit_ragged_new_rows_matches(self, loss, backend):
        """New observations opening new cells/fibers, with heavy skew."""
        X, y = self._data(seed=2, lo=1.0, hi=8.0)  # initial: low corner only
        ref, bat = self._pair(loss, backend)
        # Widen the grid over the full range up front (the streaming
        # trainer's refit handles widening; partial_fit's contract is a
        # fixed grid), then feed updates concentrated on unseen rows.
        Xw, yw = self._data(seed=3, n=40, lo=1.0, hi=64.0)
        ref.fit(np.vstack([X, Xw]), np.concatenate([y, yw]))
        bat.fit(np.vstack([X, Xw]), np.concatenate([y, yw]))
        gen = np.random.default_rng(4)
        # Ragged multiplicities: one repeated configuration dominates.
        Xn, yn = self._data(seed=5, n=120, lo=32.0, hi=64.0)
        Xn[:60] = Xn[0]
        yn[:60] = yn[0] * np.exp(gen.normal(0, 0.01, 60))
        plan_before = bat._plan_
        ref.partial_fit(Xn, yn, max_sweeps=3)
        bat.partial_fit(Xn, yn, max_sweeps=3)
        if get_backend(backend).supports_plan_reuse:
            assert bat._plan_ is not plan_before  # new cells: invalidated
        _assert_factors_close(ref._factor_list(), bat._factor_list())

    @pytest.mark.parametrize("loss", ["log_mse", "mlogq2"])
    def test_partial_fit_grid_boundary_cells_match(self, loss, backend):
        """Out-of-range updates clip into edge cells identically."""
        X, y = self._data(seed=6)
        ref, bat = self._pair(loss, backend)
        ref.fit(X, y)
        bat.fit(X, y)
        # Beyond both domain edges: clipped into the first/last cells.
        Xn = np.array([[0.1, 0.1], [500.0, 500.0], [0.05, 300.0]] * 5)
        yn = np.geomspace(1e-4, 1e-2, len(Xn))
        ref.partial_fit(Xn, yn, max_sweeps=2)
        bat.partial_fit(Xn, yn, max_sweeps=2)
        _assert_factors_close(ref._factor_list(), bat._factor_list())
        edge = np.array([[X[:, 0].min(), X[:, 1].max()]])
        np.testing.assert_allclose(
            bat.predict(edge), ref.predict(edge), rtol=1e-8
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("order", [2, 3, 4])
class TestRegularizedEquivalence:
    """Column-penalty / nonnegative ALS must agree across backends.

    The vector-``lam`` diagonal and the projection step are threaded
    through ``als_update`` exactly like the scalar path, so every
    registered backend owes the same 1e-8 contract the plain ALS suite
    enforces — including backends that internally delegate vector
    penalties (``numba_jit`` falls back to the numpy path).
    """

    @pytest.mark.parametrize("penalties", ["graded", None])
    @pytest.mark.parametrize("nonnegative", [False, True])
    def test_full_fit_matches(self, order, backend, penalties, nonnegative):
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=50 + order)
        kw = dict(rank=3, regularization=1e-4, max_sweeps=6, tol=0.0,
                  seed=7, column_penalties=penalties, nonnegative=nonnegative)
        ref = complete_als_regularized(shape, idx, vals, kernel="reference",
                                       **kw)
        bat = complete_als_regularized(shape, idx, vals, kernel=backend, **kw)
        _assert_factors_close(ref.factors, bat.factors)
        np.testing.assert_allclose(ref.history, bat.history, rtol=1e-9)
        assert ref.n_sweeps == bat.n_sweeps
        if nonnegative:
            assert all(np.all(U >= 0) for U in bat.factors)

    def test_explicit_penalty_vector_matches(self, order, backend):
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=60 + order)
        w = np.array([1.0, 5.0, 25.0])
        kw = dict(rank=3, regularization=1e-4, max_sweeps=4, tol=0.0, seed=3,
                  column_penalties=w)
        ref = complete_als_regularized(shape, idx, vals, kernel="reference",
                                       **kw)
        bat = complete_als_regularized(shape, idx, vals, kernel=backend, **kw)
        _assert_factors_close(ref.factors, bat.factors)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("order", [2, 3, 4])
class TestAdaptiveEquivalence:
    """The grow/prune loop must be a pure function of (problem, seed,
    backend-exact numerics): same trajectory, same factors everywhere."""

    def test_adaptive_matches_reference(self, order, backend):
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=70 + order)
        kw = dict(rank="auto", rank_init=2, max_rank=6, grow_step=2,
                  regularization=1e-5, max_sweeps=6, tol=0.0, seed=11)
        ref = complete_als_adaptive(shape, idx, vals, kernel="reference", **kw)
        bat = complete_als_adaptive(shape, idx, vals, kernel=backend, **kw)
        assert ref.rank_trajectory == bat.rank_trajectory
        _assert_factors_close(ref.factors, bat.factors)
        np.testing.assert_allclose(
            ref.validation_history, bat.validation_history, rtol=1e-8
        )

    def test_degenerate_adaptive_is_fixed_rank_als(self, order, backend):
        """No search, no pruning: bit-identical to ``complete_als``."""
        shape = ORDERS[order]
        idx, vals = _ragged_observations(shape, seed=80 + order)
        fixed = complete_als(shape, idx, vals, rank=3, regularization=1e-5,
                             max_sweeps=5, tol=0.0, seed=2, kernel=backend)
        auto = complete_als_adaptive(
            shape, idx, vals, rank=3, rank_init=3, prune_threshold=0.0,
            val_fraction=0.0, regularization=1e-5, max_sweeps=5, tol=0.0,
            seed=2, kernel=backend,
        )
        for U, V in zip(fixed.factors, auto.factors):
            np.testing.assert_array_equal(U, V)
        assert auto.rank_trajectory == [3]


class TestPlanInvariants:
    def test_plan_segments_partition_observations(self):
        shape = (9, 6, 5)
        idx, _ = _ragged_observations(shape, seed=2)
        plan = ObservationPlan(shape, idx)
        for j in range(len(shape)):
            mp = plan.mode(j)
            assert mp.counts.sum() == len(idx)
            # sorted indices really are segment-contiguous in mode j
            assert np.all(np.diff(mp.sorted_indices[:, j]) >= 0)
            # padding scatter coordinates cover each segment exactly once
            assert len(mp.seg) == len(idx)
            assert mp.offsets.max() < mp.max_count

    def test_unobserved_rows_excluded_from_compaction(self):
        shape = (9, 6, 5)
        idx, _ = _ragged_observations(shape, seed=3)
        plan = ObservationPlan(shape, idx)
        mp = plan.mode(0)
        assert shape[0] - 1 not in mp.obs_rows
        assert not mp.observed[shape[0] - 1]

    def test_khatri_rao_matches_unsorted_reference(self):
        from repro.core.completion import khatri_rao_rows

        shape = (7, 5, 6, 4)
        idx, _ = _ragged_observations(shape, seed=4)
        rng = np.random.default_rng(0)
        factors = [rng.normal(size=(I, 3)) for I in shape]
        plan = ObservationPlan(shape, idx)
        for j in range(len(shape)):
            mp = plan.mode(j)
            K = plan.khatri_rao(factors, j)
            expected = khatri_rao_rows(factors, idx, skip=j)[mp.order]
            np.testing.assert_allclose(K, expected, rtol=1e-13)

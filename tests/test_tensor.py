"""Tests for observed-tensor assembly (cell means over Omega)."""
import numpy as np
import pytest

from repro.core.grid import LogMode, TensorGrid, UniformMode
from repro.core.tensor import ObservedTensor


def _grid():
    return TensorGrid([
        UniformMode("a", 0.0, 4.0, 4),
        UniformMode("b", 0.0, 4.0, 4),
    ])


class TestFromData:
    def test_cell_means(self):
        g = _grid()
        X = np.array([[0.5, 0.5], [0.6, 0.7], [3.5, 3.5]])
        y = np.array([1.0, 3.0, 10.0])
        t = ObservedTensor.from_data(g, X, y)
        assert t.nnz == 2
        dense = t.dense()
        assert dense[0, 0] == pytest.approx(2.0)  # mean of 1 and 3
        assert dense[3, 3] == pytest.approx(10.0)

    def test_counts(self):
        g = _grid()
        X = np.array([[0.5, 0.5], [0.6, 0.7], [3.5, 3.5]])
        y = np.array([1.0, 3.0, 10.0])
        t = ObservedTensor.from_data(g, X, y)
        assert sorted(t.counts.tolist()) == [1, 2]

    def test_density(self):
        g = _grid()
        X = np.array([[0.5, 0.5], [3.5, 3.5]])
        t = ObservedTensor.from_data(g, X, np.array([1.0, 2.0]))
        assert t.density == pytest.approx(2 / 16)

    def test_rejects_nonpositive_times(self):
        g = _grid()
        with pytest.raises(ValueError):
            ObservedTensor.from_data(g, np.array([[0.5, 0.5]]), np.array([0.0]))

    def test_rejects_empty(self):
        g = _grid()
        with pytest.raises(ValueError):
            ObservedTensor.from_data(g, np.empty((0, 2)), np.empty(0))

    def test_length_mismatch(self):
        g = _grid()
        with pytest.raises(ValueError):
            ObservedTensor.from_data(g, np.ones((2, 2)), np.ones(3))

    def test_log_values(self):
        g = _grid()
        t = ObservedTensor.from_data(g, np.array([[0.5, 0.5]]), np.array([np.e]))
        np.testing.assert_allclose(t.log_values(), [1.0])

    def test_indices_within_shape(self):
        g = TensorGrid([LogMode("a", 1, 1024, 8), UniformMode("b", 0, 1, 8)])
        gen = np.random.default_rng(0)
        X = np.column_stack([
            np.exp(gen.uniform(0, np.log(1024), 500)),
            gen.uniform(0, 1, 500),
        ])
        t = ObservedTensor.from_data(g, X, np.ones(500))
        assert np.all(t.indices >= 0)
        assert np.all(t.indices < np.array(g.shape))

    def test_mean_invariant_to_order(self):
        g = _grid()
        X = np.array([[0.5, 0.5], [0.6, 0.7], [3.5, 3.5]])
        y = np.array([1.0, 3.0, 10.0])
        t1 = ObservedTensor.from_data(g, X, y)
        perm = [2, 0, 1]
        t2 = ObservedTensor.from_data(g, X[perm], y[perm])
        np.testing.assert_allclose(
            t1.dense(fill=0.0), t2.dense(fill=0.0)
        )

    def test_dense_refuses_huge(self):
        g = TensorGrid([LogMode("x", 1, 2, 4096), LogMode("y", 1, 2, 4096),
                        LogMode("z", 1, 2, 4096)])
        t = ObservedTensor.from_data(
            g, np.array([[1.5, 1.5, 1.5]]), np.array([1.0])
        )
        with pytest.raises(MemoryError):
            t.dense()

    def test_total_mass_conserved(self):
        """sum(values * counts) == sum(y)."""
        g = _grid()
        gen = np.random.default_rng(3)
        X = gen.uniform(0, 4, size=(200, 2))
        y = gen.uniform(0.5, 2.0, size=200)
        t = ObservedTensor.from_data(g, X, y)
        assert float(t.values @ t.counts) == pytest.approx(float(y.sum()))

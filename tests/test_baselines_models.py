"""Behavioural tests for individual baseline models."""
import numpy as np
import pytest

from repro.baselines import (
    DecisionTreeRegressor,
    ExtraTreesRegressor,
    GaussianProcessRegressor,
    GradientBoostingRegressor,
    KNNRegressor,
    MLPRegressor,
    OLSRegressor,
    PMNFRegressor,
    RandomForestRegressor,
    RidgeRegressor,
    SVMRegressor,
)
from repro.baselines.kernels import (
    KERNELS,
    RBF,
    Matern,
    RationalQuadratic,
    make_kernel,
)


class TestKNN:
    def test_k1_reproduces_training(self):
        gen = np.random.default_rng(0)
        X = gen.uniform(size=(50, 2))
        y = gen.uniform(size=50)
        m = KNNRegressor(k=1).fit(X, y)
        np.testing.assert_allclose(m.predict(X), y)

    def test_k_larger_than_n(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([1.0, 3.0])
        m = KNNRegressor(k=10).fit(X, y)
        np.testing.assert_allclose(m.predict(np.array([[0.5]])), [2.0])

    def test_distance_weights_exact_hit(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1.0, 2.0, 3.0])
        m = KNNRegressor(k=3, weights="distance").fit(X, y)
        assert m.predict(np.array([[1.0]]))[0] == pytest.approx(2.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)
        with pytest.raises(ValueError):
            KNNRegressor(weights="nope")


class TestDecisionTree:
    def test_fits_step_function_exactly(self):
        X = np.linspace(0, 1, 200)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        m = DecisionTreeRegressor(max_depth=2).fit(X, y)
        np.testing.assert_allclose(m.predict(X), y)

    def test_depth_limits_nodes(self):
        gen = np.random.default_rng(1)
        X = gen.uniform(size=(500, 3))
        y = gen.uniform(size=500)
        m1 = DecisionTreeRegressor(max_depth=2, seed=0).fit(X, y)
        m2 = DecisionTreeRegressor(max_depth=8, seed=0).fit(X, y)
        assert m1.n_nodes <= 7 < m2.n_nodes

    def test_min_samples_leaf(self):
        gen = np.random.default_rng(2)
        X = gen.uniform(size=(100, 2))
        y = gen.uniform(size=100)
        m = DecisionTreeRegressor(max_depth=12, min_samples_leaf=20).fit(X, y)
        # every leaf's prediction is a mean of >= 20 samples: counts unseen,
        # but node count is strongly limited
        assert m.n_nodes < 20

    def test_predictions_are_leaf_means(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]])
        y = np.array([1.0, 2.0, 5.0, 7.0])
        m = DecisionTreeRegressor(max_depth=1).fit(X, y)
        pred = m.predict(np.array([[0.05], [0.95]]))
        np.testing.assert_allclose(pred, [1.5, 6.0])

    def test_random_splitter_works(self):
        gen = np.random.default_rng(3)
        X = gen.uniform(size=(300, 2))
        y = X[:, 0]
        m = DecisionTreeRegressor(max_depth=8, splitter="random", seed=0).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.05 * np.var(y)

    def test_invalid_splitter(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(splitter="sorted")


class TestForests:
    def test_rf_variance_reduction(self):
        gen = np.random.default_rng(4)
        X = gen.uniform(size=(400, 3))
        y = X[:, 0] + 0.3 * gen.standard_normal(400)
        single = DecisionTreeRegressor(max_depth=10, seed=0).fit(X, y)
        forest = RandomForestRegressor(n_estimators=32, max_depth=10, seed=0).fit(X, y)
        Xt = gen.uniform(size=(200, 3))
        yt = Xt[:, 0]
        mse_tree = np.mean((single.predict(Xt) - yt) ** 2)
        mse_rf = np.mean((forest.predict(Xt) - yt) ** 2)
        assert mse_rf < mse_tree

    def test_predictions_within_target_hull(self):
        gen = np.random.default_rng(5)
        X = gen.uniform(size=(200, 2))
        y = gen.uniform(1.0, 2.0, size=200)
        for cls in (RandomForestRegressor, ExtraTreesRegressor):
            m = cls(n_estimators=8, max_depth=6, seed=0).fit(X, y)
            pred = m.predict(gen.uniform(-1, 2, size=(100, 2)))
            assert np.all(pred >= 1.0 - 1e-9) and np.all(pred <= 2.0 + 1e-9)

    def test_et_differs_from_rf(self):
        gen = np.random.default_rng(6)
        X = gen.uniform(size=(200, 2))
        y = X[:, 0] * X[:, 1]
        rf = RandomForestRegressor(n_estimators=4, max_depth=6, seed=0).fit(X, y)
        et = ExtraTreesRegressor(n_estimators=4, max_depth=6, seed=0).fit(X, y)
        assert not np.allclose(rf.predict(X), et.predict(X))


class TestBoosting:
    def test_more_stages_fit_better(self):
        gen = np.random.default_rng(7)
        X = gen.uniform(size=(300, 2))
        y = np.sin(4 * X[:, 0]) + X[:, 1]
        m1 = GradientBoostingRegressor(n_estimators=2, max_depth=2, seed=0).fit(X, y)
        m2 = GradientBoostingRegressor(n_estimators=64, max_depth=2, seed=0).fit(X, y)
        assert np.mean((m2.predict(X) - y) ** 2) < np.mean((m1.predict(X) - y) ** 2)

    def test_learning_rate_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

    def test_subsample_runs(self):
        gen = np.random.default_rng(8)
        X = gen.uniform(size=(200, 2))
        y = X[:, 0]
        m = GradientBoostingRegressor(
            n_estimators=16, subsample=0.5, seed=0
        ).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.2 * np.var(y)


class TestMLP:
    def test_fits_nonlinear_function(self):
        gen = np.random.default_rng(9)
        X = gen.uniform(-1, 1, size=(500, 2))
        y = np.sin(3 * X[:, 0]) * X[:, 1]
        m = MLPRegressor(hidden=(64, 64), max_epochs=200, seed=0).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.1 * np.var(y)

    def test_tanh_activation(self):
        gen = np.random.default_rng(10)
        X = gen.uniform(-1, 1, size=(200, 2))
        y = X[:, 0]
        m = MLPRegressor(hidden=(16,), activation="tanh", max_epochs=300,
                         seed=0).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.1 * np.var(y)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            MLPRegressor(activation="gelu")

    def test_invalid_hidden(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden=())

    def test_loss_history_recorded(self):
        gen = np.random.default_rng(11)
        X = gen.uniform(size=(100, 2))
        y = X[:, 0]
        m = MLPRegressor(hidden=(8,), max_epochs=30, seed=0).fit(X, y)
        assert len(m.loss_history_) >= 1
        assert m.loss_history_[-1] < m.loss_history_[0]


class TestGP:
    def test_interpolates_noiselessly(self):
        gen = np.random.default_rng(12)
        X = gen.uniform(-1, 1, size=(60, 1))
        y = np.sin(3 * X[:, 0])
        m = GaussianProcessRegressor(noise=1e-8, seed=0).fit(X, y)
        np.testing.assert_allclose(m.predict(X), y, atol=1e-3)

    def test_return_std(self):
        gen = np.random.default_rng(13)
        X = gen.uniform(-1, 1, size=(40, 1))
        y = X[:, 0]
        m = GaussianProcessRegressor(seed=0).fit(X, y)
        mean, std = m.predict(np.array([[0.0], [5.0]]), return_std=True)
        assert std[1] > std[0]  # far from data -> more uncertain

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_all_kernels_fit(self, kernel):
        gen = np.random.default_rng(14)
        X = gen.uniform(-1, 1, size=(80, 2))
        y = X[:, 0] + X[:, 1] ** 2
        m = GaussianProcessRegressor(kernel=kernel, seed=0).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.5 * np.var(y)

    def test_max_train_subsamples(self):
        gen = np.random.default_rng(15)
        X = gen.uniform(size=(500, 2))
        y = X[:, 0]
        m = GaussianProcessRegressor(max_train=100, seed=0).fit(X, y)
        assert len(m.X_train_) == 100

    def test_kernel_psd_properties(self):
        gen = np.random.default_rng(16)
        X = gen.uniform(size=(30, 3))
        for k in (RBF(0.5), Matern(0.5, nu=1.5), Matern(0.5, nu=2.5),
                  RationalQuadratic(0.7, 1.3)):
            K = k(X, X)
            np.testing.assert_allclose(K, K.T, atol=1e-12)
            w = np.linalg.eigvalsh(K)
            assert w.min() > -1e-8
            np.testing.assert_allclose(np.diag(K), 1.0, atol=1e-10)

    def test_make_kernel_unknown(self):
        with pytest.raises(KeyError):
            make_kernel("laplace")


class TestSVM:
    def test_fits_linear_with_poly1(self):
        gen = np.random.default_rng(17)
        X = gen.uniform(-1, 1, size=(200, 2))
        y = 2 * X[:, 0] - X[:, 1] + 0.5
        m = SVMRegressor(kernel="poly", degree=1, C=100.0, epsilon=0.01,
                         seed=0).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.05 * np.var(y)

    def test_epsilon_insensitivity_gives_sparsity(self):
        gen = np.random.default_rng(18)
        X = gen.uniform(-1, 1, size=(300, 1))
        y = X[:, 0]
        tight = SVMRegressor(epsilon=0.001, seed=0).fit(X, y)
        loose = SVMRegressor(epsilon=0.3, seed=0).fit(X, y)
        assert loose.n_support_ < tight.n_support_

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SVMRegressor(kernel="sigmoid")
        with pytest.raises(ValueError):
            SVMRegressor(degree=4)
        with pytest.raises(ValueError):
            SVMRegressor(C=-1.0)


class TestLinearModels:
    def test_ols_exact_on_linear(self):
        gen = np.random.default_rng(19)
        X = gen.uniform(size=(50, 3))
        y = 1.0 + X @ np.array([2.0, -1.0, 0.5])
        m = OLSRegressor().fit(X, y)
        np.testing.assert_allclose(m.predict(X), y, atol=1e-10)

    def test_ridge_shrinks_vs_ols(self):
        gen = np.random.default_rng(20)
        X = gen.uniform(size=(30, 5))
        y = X @ np.array([5.0, 0, 0, 0, 0]) + 0.01 * gen.standard_normal(30)
        ols = OLSRegressor().fit(X, y)
        ridge = RidgeRegressor(alpha=10.0).fit(X, y)
        assert np.linalg.norm(ridge.w_) < np.linalg.norm(ols.coef_[1:])

    def test_ridge_alpha_validation(self):
        with pytest.raises(ValueError):
            RidgeRegressor(alpha=-1)

    def test_pmnf_recovers_power_law(self):
        gen = np.random.default_rng(21)
        X = np.exp(gen.uniform(0, 5, size=(300, 2)))
        logy = 2.0 * np.log(X[:, 0]) + 1.0 * np.log(X[:, 1]) - 3.0
        m = PMNFRegressor(n_terms=3, interactions=False).fit(X, logy)
        assert np.mean((m.predict(X) - logy) ** 2) < 1e-6

    def test_pmnf_terms_recorded(self):
        gen = np.random.default_rng(22)
        X = np.exp(gen.uniform(0, 3, size=(100, 2)))
        y = np.log(X[:, 0])
        m = PMNFRegressor(n_terms=2).fit(X, y)
        assert 1 <= len(m.terms_) <= 2

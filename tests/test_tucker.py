"""Tests for Tucker completion and the TuckerModel (paper future work)."""
import numpy as np
import pytest

from repro.core import CPRModel, TuckerModel
from repro.core.completion.tucker import TuckerFactors, complete_tucker


def _tucker_dense(shape, ranks, seed=0):
    gen = np.random.default_rng(seed)
    core = gen.normal(size=ranks)
    Us = [gen.normal(size=(I, R)) for I, R in zip(shape, ranks)]
    subs = "abc"[: len(shape)]
    spec = subs + "," + ",".join(f"{ij}{r}" for ij, r in zip("ijk", subs))
    dense = np.einsum(f"{spec}->ijk"[: len(spec) + 5], core, *Us)
    return core, Us, dense


def _observe_all(shape):
    grids = np.meshgrid(*[np.arange(I) for I in shape], indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


class TestTuckerFactors:
    def test_eval_matches_einsum(self):
        core, Us, dense = _tucker_dense((5, 4, 3), (2, 2, 2), seed=1)
        model = TuckerFactors(core, Us)
        idx = _observe_all(dense.shape)
        np.testing.assert_allclose(model.eval_at(idx), dense.ravel(), rtol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TuckerFactors(np.zeros((2, 2)), [np.zeros((3, 2))])
        with pytest.raises(ValueError):
            TuckerFactors(np.zeros((2, 2)), [np.zeros((3, 2)), np.zeros((3, 3))])

    def test_size_bytes(self):
        core, Us, _ = _tucker_dense((5, 4, 3), (2, 2, 2))
        model = TuckerFactors(core, Us)
        assert model.size_bytes() == 8 * (8 + 10 + 8 + 6)


class TestCompleteTucker:
    def test_exact_recovery(self):
        _, _, dense = _tucker_dense((6, 5, 4), (2, 3, 2), seed=2)
        idx = _observe_all(dense.shape)
        res = complete_tucker(dense.shape, idx, dense.ravel(), rank=(2, 3, 2),
                              regularization=1e-10, max_sweeps=100, tol=1e-14,
                              seed=0)
        pred = res.factors[0].eval_at(idx)
        np.testing.assert_allclose(pred, dense.ravel(),
                                   atol=1e-6 * np.abs(dense).max())

    def test_generalizes_partially_observed(self):
        _, _, dense = _tucker_dense((8, 7, 6), (2, 2, 2), seed=3)
        gen = np.random.default_rng(4)
        idx_all = _observe_all(dense.shape)
        sel = gen.choice(len(idx_all), size=220, replace=False)
        res = complete_tucker(dense.shape, idx_all[sel], dense.ravel()[sel],
                              rank=(2, 2, 2), regularization=1e-8,
                              max_sweeps=200, tol=1e-14, seed=1)
        pred = res.factors[0].eval_at(idx_all)
        rel = np.abs(pred - dense.ravel()) / (np.abs(dense.ravel()) + 1e-9)
        assert np.median(rel) < 0.05

    def test_rank_broadcast_and_cap(self):
        _, _, dense = _tucker_dense((4, 3, 5), (2, 2, 2), seed=5)
        idx = _observe_all(dense.shape)
        res = complete_tucker(dense.shape, idx, dense.ravel(), rank=10,
                              max_sweeps=3, seed=0)
        assert res.factors[0].ranks == (4, 3, 5)  # capped at mode dims

    def test_core_size_guard(self):
        with pytest.raises(MemoryError):
            complete_tucker((8,) * 8, np.zeros((1, 8), dtype=np.intp),
                            np.ones(1), rank=8, max_core_size=10000)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            complete_tucker((4,), np.zeros((1, 1), dtype=np.intp), np.ones(1),
                            rank=2)
        with pytest.raises(ValueError):
            complete_tucker((4, 4), np.zeros((0, 2), dtype=np.intp),
                            np.ones(0), rank=2)


class TestTuckerModel:
    def test_fits_smooth_surface(self, smooth_2d):
        X, y = smooth_2d
        m = TuckerModel(cells=12, rank=3, seed=0).fit(X, y)
        assert m.score(X, y) < 0.06

    def test_comparable_to_cpr_low_dim(self, mm_data):
        app, train, test = mm_data
        cpr = CPRModel(space=app.space, cells=8, rank=4, seed=0).fit(train.X, train.y)
        tuck = TuckerModel(space=app.space, cells=8, rank=4, seed=0).fit(train.X, train.y)
        assert tuck.score(test.X, test.y) < 2.0 * cpr.score(test.X, test.y)

    def test_core_grows_size(self, mm_data):
        app, train, _ = mm_data
        tuck = TuckerModel(space=app.space, cells=8, rank=4, seed=0).fit(train.X, train.y)
        # 4^3 core + 3 * 8*4 factors
        assert tuck.n_parameters == 64 + 96

    def test_no_extrapolation(self, smooth_2d):
        X, y = smooth_2d
        m = TuckerModel(cells=8, rank=2, seed=0,
                        out_of_domain="extrapolate").fit(X, y)
        with pytest.raises(ValueError):
            m.predict(np.array([[1e6, 10.0]]))

    def test_repr(self):
        assert "TuckerModel" in repr(TuckerModel(rank=3))


class TestStreaming:
    def test_merge_equals_batch(self, mm_data):
        """partial_fit's tensor merge must equal binning the union."""
        from repro.core.grid import TensorGrid
        from repro.core.tensor import ObservedTensor

        app, train, _ = mm_data
        grid = TensorGrid.from_space(app.space, 8, X=train.X)
        half = len(train.X) // 2
        t1 = ObservedTensor.from_data(grid, train.X[:half], train.y[:half])
        t2 = ObservedTensor.from_data(grid, train.X[half:], train.y[half:])
        merged = t1.merge(t2)
        full = ObservedTensor.from_data(grid, train.X, train.y)
        np.testing.assert_allclose(
            merged.dense(fill=0.0), full.dense(fill=0.0), rtol=1e-12
        )
        np.testing.assert_allclose(merged.counts.sum(), full.counts.sum())

    def test_partial_fit_improves_model(self, mm_data):
        app, train, test = mm_data
        half = len(train.X) // 2
        m = CPRModel(space=app.space, cells=8, rank=4, seed=0).fit(
            train.X[:half], train.y[:half]
        )
        err_half = m.score(test.X, test.y)
        m.partial_fit(train.X[half:], train.y[half:], max_sweeps=20)
        err_full = m.score(test.X, test.y)
        assert err_full <= err_half * 1.15  # more data must not hurt much

    def test_partial_fit_requires_fit(self, mm_data):
        app, train, _ = mm_data
        with pytest.raises(RuntimeError):
            CPRModel(space=app.space).partial_fit(train.X, train.y)

    def test_partial_fit_streaming_chunks(self, smooth_2d):
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=2, seed=0).fit(X[:500], y[:500])
        for start in range(500, 2000, 500):
            m.partial_fit(X[start : start + 500], y[start : start + 500])
        assert m.score(X, y) < 0.1
        assert m.tensor_.counts.sum() == 2000

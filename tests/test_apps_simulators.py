"""Behavioural tests for the six application simulators.

These pin the *structure* the modeling experiments rely on: positivity,
determinism of the latent surface, monotone scaling in size parameters,
and the qualitative parameter effects each simulator encodes (Table 2
semantics).
"""
import numpy as np
import pytest

from repro.apps import (
    AMG,
    APPLICATIONS,
    QR,
    Broadcast,
    ExaFMM,
    Kripke,
    MatMul,
    get_application,
)

ALL_APPS = ["matmul", "qr", "bcast", "exafmm", "amg", "kripke"]


@pytest.mark.parametrize("name", ALL_APPS)
class TestCommonProperties:
    def test_latent_positive_finite(self, name):
        app = get_application(name)
        X = app.space.sample(500, np.random.default_rng(0))
        t = app.latent_time(X)
        assert np.all(t > 0) and np.all(np.isfinite(t))

    def test_latent_deterministic(self, name):
        app = get_application(name)
        X = app.space.sample(100, np.random.default_rng(1))
        np.testing.assert_array_equal(app.latent_time(X), app.latent_time(X))

    def test_measurement_noise_multiplicative(self, name):
        app = get_application(name)
        X = app.space.sample(200, np.random.default_rng(2))
        t0 = app.latent_time(X)
        t1 = app.measure(X, rng=np.random.default_rng(3))
        ratio = t1 / t0
        assert np.all(ratio > 0)
        # noise is bounded in practice (sigma <= 0.05, 200 samples)
        assert np.all(np.abs(np.log(ratio)) < 1.0)

    def test_measure_seeded_reproducible(self, name):
        app = get_application(name)
        X = app.space.sample(50, np.random.default_rng(4))
        a = app.measure(X, rng=np.random.default_rng(5))
        b = app.measure(X, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_wrong_columns_rejected(self, name):
        app = get_application(name)
        with pytest.raises(ValueError):
            app.measure(np.ones((3, app.space.dimension + 1)))


def _col(app, X, name):
    return app.space.index_of(name)


class TestMatMul:
    def test_monotone_in_each_dimension(self):
        app = MatMul()
        base = np.array([[256.0, 256.0, 256.0]])
        for j in range(3):
            lo = base.copy()
            hi = base.copy()
            hi[0, j] = 2048.0
            assert app.latent_time(hi)[0] > app.latent_time(lo)[0]

    def test_flop_scaling_dominates_at_large_sizes(self):
        app = MatMul()
        t1 = app.latent_time(np.array([[1024.0, 1024.0, 1024.0]]))[0]
        t2 = app.latent_time(np.array([[2048.0, 2048.0, 2048.0]]))[0]
        # 8x flops; allow cache-regime slack
        assert 4.0 < t2 / t1 < 16.0

    def test_table2_ranges(self):
        sp = MatMul().space
        for name in ("m", "n", "k"):
            p = sp[name]
            assert (p.low, p.high) == (32, 4096)


class TestQR:
    def test_constraint_m_ge_n(self):
        app = QR()
        X = app.space.sample(300, np.random.default_rng(0))
        assert np.all(X[:, 0] >= X[:, 1])

    def test_monotone_in_n_for_fixed_m(self):
        app = QR()
        t1 = app.latent_time(np.array([[8192.0, 128.0]]))[0]
        t2 = app.latent_time(np.array([[8192.0, 1024.0]]))[0]
        assert t2 > t1

    def test_tall_skinny_cheaper_than_square(self):
        app = QR()
        tall = app.latent_time(np.array([[65536.0, 64.0]]))[0]
        square = app.latent_time(np.array([[8192.0, 8192.0]]))[0]
        assert tall < square


class TestBroadcast:
    def test_monotone_in_message_size(self):
        app = Broadcast()
        t1 = app.latent_time(np.array([[16.0, 16.0, 2.0**17]]))[0]
        t2 = app.latent_time(np.array([[16.0, 16.0, 2.0**24]]))[0]
        assert t2 > t1

    def test_more_nodes_cost_more(self):
        app = Broadcast()
        t1 = app.latent_time(np.array([[2.0, 8.0, 2.0**20]]))[0]
        t2 = app.latent_time(np.array([[128.0, 8.0, 2.0**20]]))[0]
        assert t2 > t1

    def test_single_node_has_no_network_term(self):
        app = Broadcast()
        single = app.latent_time(np.array([[1.0, 8.0, 2.0**20]]))[0]
        multi = app.latent_time(np.array([[2.0, 8.0, 2.0**20]]))[0]
        assert multi > 1.5 * single

    def test_ppn_contention(self):
        app = Broadcast()
        t1 = app.latent_time(np.array([[4.0, 2.0, 2.0**22]]))[0]
        t2 = app.latent_time(np.array([[4.0, 64.0, 2.0**22]]))[0]
        assert t2 > t1


class TestExaFMM:
    def test_node_constraint(self):
        app = ExaFMM()
        X = app.space.sample(300, np.random.default_rng(0))
        prod = X[:, 4] * X[:, 5]
        assert np.all((prod >= 64) & (prod <= 128))

    def test_order_increases_m2l_cost(self):
        app = ExaFMM()
        lo = np.array([[2.0**14, 4.0, 64.0, 2.0, 2.0, 32.0]])
        hi = lo.copy()
        hi[0, 1] = 15.0
        assert app.latent_time(hi)[0] > app.latent_time(lo)[0]

    def test_ppl_tradeoff_exists(self):
        """Large expansion order should favour larger leaves (classic FMM)."""
        app = ExaFMM()

        def t(ppl, order):
            return app.latent_time(
                np.array([[2.0**15, order, ppl, 2.0, 2.0, 32.0]])
            )[0]

        # At high order the small-leaf config pays for many M2L translations.
        assert t(32.0, 15.0) > t(256.0, 15.0)
        # At low order the big-leaf config pays for P2P instead.
        assert t(256.0, 4.0) > t(32.0, 4.0)


class TestAMG:
    def test_categorical_choices_change_time(self):
        app = AMG()
        base = np.array([[32.0, 32.0, 32.0, 0.0, 0.0, 0.0, 2.0, 32.0]])
        times = set()
        for ct in range(7):
            row = base.copy()
            row[0, 3] = ct
            times.add(round(float(app.latent_time(row)[0]), 9))
        assert len(times) >= 6  # coarsening choice matters

    def test_volume_scaling(self):
        app = AMG()
        small = np.array([[8.0, 8.0, 8.0, 1.0, 1.0, 1.0, 2.0, 32.0]])
        large = np.array([[128.0, 128.0, 128.0, 1.0, 1.0, 1.0, 2.0, 32.0]])
        assert app.latent_time(large)[0] > 50 * app.latent_time(small)[0]

    def test_bad_category_index_rejected(self):
        app = AMG()
        row = np.array([[32.0, 32.0, 32.0, 99.0, 0.0, 0.0, 2.0, 32.0]])
        # Sampling never produces this, but latent_time indexing must not
        # silently wrap negative/overflow indices.
        with pytest.raises(IndexError):
            app.latent_time(row)


class TestKripke:
    def test_solver_bj_needs_more_iterations(self):
        app = Kripke()
        base = np.array([[32.0, 2.0, 32.0, 16.0, 8.0, 0.0, 0.0, 2.0, 32.0]])
        bj = base.copy()
        bj[0, 6] = 1.0
        # block-Jacobi pays iteration inflation but avoids sweep pipeline:
        # effect is configuration dependent, but both must be positive and
        # differ measurably.
        t_sweep = app.latent_time(base)[0]
        t_bj = app.latent_time(bj)[0]
        assert abs(np.log(t_bj / t_sweep)) > 0.01

    def test_layout_matters_more_when_shapes_skewed(self):
        app = Kripke()
        times = []
        for layout in range(6):
            row = np.array([[128.0, 1.0, 8.0, 8.0, 4.0, layout, 0.0, 2.0, 32.0]])
            times.append(app.latent_time(row)[0])
        assert max(times) / min(times) > 1.02

    def test_work_scales_with_groups_quad_moments(self):
        app = Kripke()
        lo = np.array([[8.0, 0.0, 8.0, 8.0, 4.0, 0.0, 0.0, 2.0, 32.0]])
        hi = np.array([[128.0, 5.0, 128.0, 8.0, 4.0, 0.0, 0.0, 2.0, 32.0]])
        assert app.latent_time(hi)[0] > 20 * app.latent_time(lo)[0]


class TestRegistry:
    def test_all_names_resolve(self):
        for name in APPLICATIONS:
            assert get_application(name).space.dimension >= 2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_application("nope")

    def test_paper_dimensions(self):
        dims = {n: get_application(n).space.dimension for n in ALL_APPS}
        assert dims == {
            "matmul": 3, "qr": 2, "bcast": 3,
            "exafmm": 6, "amg": 8, "kripke": 9,
        }

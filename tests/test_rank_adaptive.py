"""Rank adaptation end-to-end: model API, attribution, serving, streaming.

The kernel-level contracts live in ``test_kernels_equivalence.py`` /
``test_properties.py``; this file covers the layers above them:

* ``CPRModel(rank="auto")`` — constructor validation, fit attributes
  (``adapted_rank_``, ``rank_trajectory_``), serialization round-trips,
  and byte-stability of *fixed*-rank states (adaptivity is opt-in).
* Attribution — ``rank_attribution`` stamped into registry manifests and
  ``PredictionEngine.stats()``.
* The acceptance smoke: a ``rank="auto"`` fit on a low-density
  figure5-style configuration converges and publishes with adapted-rank
  attribution, and a stream session whose refit lands on a different
  rank republishes and hot-swaps a live server without restart.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPRModel, TuckerModel
from repro.core.model import rank_attribution
from repro.datasets import generate_dataset
from repro.serve import ModelRegistry, ModelServer, PredictionEngine
from repro.stream import DriftMonitor, IncrementalTrainer, StreamSession
from repro.utils.serialization import dumps_model, loads_model


class TestAutoRankModel:
    def test_bad_rank_string_rejected(self):
        with pytest.raises(ValueError, match="'auto'"):
            CPRModel(rank="adaptive")

    def test_auto_requires_log_mse(self):
        with pytest.raises(ValueError, match="log_mse"):
            CPRModel(rank="auto", loss="mlogq2")

    def test_auto_requires_adaptive_optimizer(self):
        with pytest.raises(ValueError, match="adaptive"):
            CPRModel(rank="auto", optimizer="sgd")
        # "als" is the natural spelling: it upgrades instead of raising.
        assert CPRModel(rank="auto", optimizer="als").optimizer == "als_adaptive"
        assert CPRModel(rank="auto").optimizer == "als_adaptive"

    def test_fit_sets_adaptation_attributes(self, mm_data):
        app, train, test = mm_data
        m = CPRModel(space=app.space, cells=6, rank="auto", max_rank=6,
                     max_sweeps=20, seed=0)
        m.fit(train.X[:400], train.y[:400])
        assert isinstance(m.adapted_rank_, int)
        assert 1 <= m.adapted_rank_ <= 6
        assert m.rank_trajectory_ and m.rank_trajectory_[-1] == m.adapted_rank_
        assert all(U.shape[1] == m.adapted_rank_ for U in m.factors_)
        assert m.describe()["adapted_rank"] == m.adapted_rank_
        assert np.isfinite(m.score(test.X, test.y))

    def test_auto_round_trips_with_adapted_rank(self, mm_data):
        app, train, _ = mm_data
        m = CPRModel(space=app.space, cells=6, rank="auto", max_rank=6,
                     max_sweeps=20, seed=0)
        m.fit(train.X[:400], train.y[:400])
        restored = loads_model(dumps_model(m))
        assert restored.rank == "auto"
        assert restored.adapted_rank_ == m.adapted_rank_
        q = train.X[:32]
        np.testing.assert_array_equal(restored.predict(q), m.predict(q))

    def test_fixed_rank_state_is_byte_stable(self, mm_data):
        """A fixed-rank model's persisted bytes must not change: the
        ``adapted_rank`` key is stored only when it differs from the
        request (i.e. only adaptive fits pay for the new attribute)."""
        app, train, _ = mm_data
        m = CPRModel(space=app.space, cells=6, rank=2, max_sweeps=10, seed=0)
        m.fit(train.X[:400], train.y[:400])
        assert "adapted_rank" not in m.__getstate_for_size__()
        restored = loads_model(dumps_model(m))
        assert restored.adapted_rank_ == 2  # reconstructed from rank

    def test_partial_fit_keeps_adapted_rank(self, mm_data):
        app, train, _ = mm_data
        m = CPRModel(space=app.space, cells=6, rank="auto", max_rank=6,
                     max_sweeps=20, seed=0)
        m.fit(train.X[:400], train.y[:400])
        r = m.adapted_rank_
        m.partial_fit(train.X[400:440], train.y[400:440], max_sweeps=2)
        assert m.adapted_rank_ == r  # re-selection is a refit decision


class TestRankAttribution:
    def test_cpr_fixed_and_auto(self, mm_data):
        app, train, _ = mm_data
        fixed = CPRModel(space=app.space, cells=6, rank=2, max_sweeps=5, seed=0)
        fixed.fit(train.X[:300], train.y[:300])
        assert rank_attribution(fixed) == {"rank": 2}
        auto = CPRModel(space=app.space, cells=6, rank="auto", max_rank=6,
                        max_sweeps=10, seed=0)
        auto.fit(train.X[:300], train.y[:300])
        info = rank_attribution(auto)
        assert info["rank"] == "auto"
        assert info["adapted_rank"] == auto.adapted_rank_

    def test_tucker_reports_no_adaptation(self, mm_data):
        app, train, _ = mm_data
        t = TuckerModel(space=app.space, cells=5, rank=2, max_sweeps=4,
                        seed=0)
        t.fit(train.X[:300], train.y[:300])
        assert rank_attribution(t) == {"rank": 2}
        restored = loads_model(dumps_model(t))
        assert rank_attribution(restored) == {"rank": 2}

    def test_rankless_model_yields_empty(self):
        assert rank_attribution(object()) == {}

    def test_manifest_and_stats_attribution(self, tmp_path, mm_data):
        app, train, _ = mm_data
        m = CPRModel(space=app.space, cells=6, rank="auto", max_rank=6,
                     max_sweeps=10, seed=0)
        m.fit(train.X[:300], train.y[:300])
        mv = ModelRegistry(tmp_path).publish("mm", m)
        assert mv.meta["rank"] == "auto"
        assert mv.meta["adapted_rank"] == m.adapted_rank_
        eng = PredictionEngine(m, name=mv.ref)
        assert eng.stats()["rank"] == m.adapted_rank_

    def test_explicit_manifest_rank_not_overwritten(self, tmp_path, mm_data):
        app, train, _ = mm_data
        m = CPRModel(space=app.space, cells=6, rank=2, max_sweeps=5, seed=0)
        m.fit(train.X[:300], train.y[:300])
        mv = ModelRegistry(tmp_path).publish("mm", m, meta={"rank": 99})
        assert mv.meta["rank"] == 99  # setdefault semantics, like backend


class TestLowDensitySmoke:
    """The acceptance smoke: ``rank="auto"`` on a low-density figure5
    configuration converges and publishes with adapted-rank attribution."""

    def test_auto_converges_and_publishes(self, tmp_path, fmm_data):
        app, train, test = fmm_data
        m = CPRModel(space=app.space, cells=16, rank="auto", max_rank=8,
                     max_sweeps=50, tol=1e-3, seed=0)
        m.fit(train.X[:512], train.y[:512])
        # 6-D grid at 16 cells/mode from 512 points: density << 1e-3.
        assert m.tensor_.density < 1e-3
        assert m.result_.converged
        assert 1 <= m.adapted_rank_ <= 8
        err = m.score(test.X, test.y)
        assert np.isfinite(err) and err < 2.0
        mv = ModelRegistry(tmp_path).publish("fmm-auto", m)
        assert mv.meta["rank"] == "auto"
        assert mv.meta["adapted_rank"] == m.adapted_rank_

    def test_ablation_rank_job_record(self):
        from repro.experiments.ablation_rank import run_rank_job

        rec = run_rank_job(app="matmul", n_train=256, n_test=128, cells=8,
                           ranks=(2, 4), seed=0)
        assert not rec["skipped"]
        assert rec["auto"]["rank_trajectory"]
        assert rec["auto"]["adapted_rank"] <= 4
        assert {f["rank"] for f in rec["fixed"]} == {2, 4}
        assert np.isfinite(rec["auto"]["error"])


class TestStreamCLIRankArg:
    def test_auto_and_int_accepted(self):
        from repro.stream.__main__ import _rank_arg

        assert _rank_arg("auto") == "auto"
        assert _rank_arg("4") == 4

    def test_garbage_rejected_with_both_spellings_named(self):
        import argparse

        from repro.stream.__main__ import _rank_arg

        with pytest.raises(argparse.ArgumentTypeError, match="'auto'"):
            _rank_arg("adaptive")


class TestStreamRankHotSwap:
    """A mid-run rank change republishes and hot-swaps the live server."""

    def test_rank_change_republish_server_pickup(self, tmp_path):
        from repro.apps import Broadcast

        app = Broadcast()
        train = generate_dataset(app, 512, seed=0)
        registry = ModelRegistry(tmp_path / "reg")
        server = ModelServer(registry, default_model="bc-auto")

        # Deterministic mid-run adaptation: both fits go through the real
        # adaptive optimizer (rank="auto" requests, adapted_rank stamped),
        # with the second refit's search window capped higher so the
        # landed rank provably differs.
        caps = iter([2, 4])

        def factory():
            cap = next(caps)
            return CPRModel(
                space=app.space, cells=4, rank="auto", rank_init=cap,
                max_rank=cap, val_fraction=0.0, prune_threshold=0.0,
                max_sweeps=8, seed=0,
            )

        monitor = DriftMonitor(window=8, threshold=0.1, min_count=2)
        trainer = IncrementalTrainer(factory, monitor=monitor)
        session = StreamSession(registry, "bc-auto", factory,
                                monitor=monitor, trainer=trainer)
        session.observe(train.X[:256], train.y[:256])
        v1 = registry.resolve("bc-auto")
        assert v1.meta["adapted_rank"] == 2
        monitor.record(np.full(4, np.e**2), np.ones(4))  # sustained drift
        record = session.observe(train.X[256:288], train.y[256:288])
        assert record["action"] == "refit"
        assert record["rank_change"] == {"from": 2, "to": 4}
        v2 = registry.resolve("bc-auto")
        assert v2.version == v1.version + 1
        assert v2.meta["rank"] == "auto"
        assert v2.meta["adapted_rank"] == 4
        # The live server answers from the adapted model, no restart.
        resp = server.handle({"op": "predict", "x": [[4, 8, 2**20]]})
        assert resp["ok"]
        assert resp["model"] == f"bc-auto@v{v2.version}"
        summary = session.summary()
        assert summary["trainer"]["rank_changes"] == 1
        assert summary["trainer"]["rank"] == 4

"""Tests for the experiment harness, registry, and configuration grids."""
import numpy as np
import pytest

from repro.experiments import (
    MODEL_NAMES,
    get_dataset,
    interpolation_experiment,
    make_model,
    resolve_scale,
    tune_model,
    tuning_grid,
)
from repro.experiments.config import bench_apps, train_sizes
from repro.experiments.harness import evaluate_model


class TestConfig:
    def test_resolve_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert resolve_scale(None) == "smoke"

    def test_resolve_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert resolve_scale(None) == "full"

    def test_resolve_scale_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert resolve_scale("paper") == "paper"

    def test_resolve_scale_invalid(self):
        with pytest.raises(ValueError):
            resolve_scale("huge")

    @pytest.mark.parametrize("model", sorted(MODEL_NAMES))
    def test_grids_nonempty_all_scales(self, model):
        for scale in ("smoke", "full", "paper"):
            grid = tuning_grid(model, scale)
            assert len(grid) >= 1
            assert all(isinstance(g, dict) for g in grid)

    def test_paper_grids_match_section_604(self):
        cpr = tuning_grid("cpr", "paper")
        ranks = {g["rank"] for g in cpr}
        cells = {g["cells"] for g in cpr}
        assert ranks == {1, 2, 4, 8, 16, 32, 64}
        assert cells == {4, 8, 16, 32, 64, 128, 256}
        knn = tuning_grid("knn", "paper")
        assert {g["k"] for g in knn} == {1, 2, 3, 4, 5, 6}

    def test_unknown_model_grid(self):
        with pytest.raises(KeyError):
            tuning_grid("xgboost")

    def test_bench_apps_and_sizes(self):
        assert "matmul" in bench_apps("smoke")
        assert len(bench_apps("paper")) == 6
        assert train_sizes("smoke")[0] < train_sizes("paper")[-1]


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(MODEL_NAMES))
    def test_make_and_fit_every_model(self, name, mm_data):
        app, train, test = mm_data
        grid = tuning_grid(name, "smoke")
        model = make_model(name, grid[0], space=app.space, seed=0)
        model.fit(train.X[:400], train.y[:400])
        pred = model.predict(test.X)
        assert pred.shape == (len(test.X),)
        assert np.all(pred > 0)  # all pipelines predict positive times
        assert model.size_bytes > 0

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            make_model("catboost")

    def test_cpr_gets_space(self, mm_data):
        app, train, _ = mm_data
        m = make_model("cpr", {"cells": 4, "rank": 2}, space=app.space)
        m.fit(train.X[:200], train.y[:200])
        assert m.grid_.shape == (4, 4, 4)


class TestHarness:
    def test_dataset_cache(self):
        a = get_dataset("matmul", 128, seed=3)
        b = get_dataset("matmul", 128, seed=3)
        assert a is b

    def test_dataset_cache_sigma_list_hashable(self):
        """Regression: list/ndarray sigma used to TypeError on key hashing."""
        a = get_dataset("matmul", 64, seed=4, sigma=[0.05])
        b = get_dataset("matmul", 64, seed=4, sigma=np.array([0.05]))
        assert a is b  # canonicalized to the same key
        c = get_dataset("matmul", 64, seed=4, sigma=0.05)
        assert c is not a  # scalar sigma is a distinct key shape

    def test_dataset_cache_bounded(self):
        """Regression: the cache used to grow without bound across sweeps."""
        from repro.experiments import harness

        harness._DATASET_CACHE.clear()
        for seed in range(harness._DATASET_CACHE_MAX + 10):
            get_dataset("matmul", 16, seed=seed)
        assert len(harness._DATASET_CACHE) == harness._DATASET_CACHE_MAX
        # most-recently-used entries survive eviction
        newest = get_dataset("matmul", 16, seed=harness._DATASET_CACHE_MAX + 9)
        assert get_dataset("matmul", 16, seed=harness._DATASET_CACHE_MAX + 9) is newest

    def test_evaluate_model(self, mm_data):
        app, train, test = mm_data
        model = make_model("knn", {"k": 2}, space=app.space)
        out = evaluate_model(model, train, test)
        assert set(out) == {"error", "size_bytes", "fit_seconds"}
        assert out["error"] > 0

    def test_tune_model_picks_minimum(self, mm_data):
        app, train, test = mm_data
        res = tune_model(
            "knn", train, test, space=app.space,
            grid=[{"k": k} for k in (1, 3, 5)],
        )
        errors = [r[1] for r in res.results]
        assert res.best_error == min(errors)
        assert res.best_params in [{"k": k} for k in (1, 3, 5)]

    def test_tune_time_budget_short_circuits(self, mm_data):
        app, train, test = mm_data
        res = tune_model(
            "knn", train, test, space=app.space,
            grid=[{"k": k} for k in range(1, 7)],
            time_budget_s=0.0,
        )
        assert len(res.results) == 1  # stopped after the first config

    def test_pareto_is_monotone(self, mm_data):
        app, train, test = mm_data
        res = tune_model(
            "cpr", train, test, space=app.space,
            grid=[{"cells": c, "rank": r} for c in (4, 8) for r in (1, 2, 4)],
        )
        pareto = res.pareto
        sizes = [p[0] for p in pareto]
        errs = [p[1] for p in pareto]
        assert sizes == sorted(sizes)
        assert errs == sorted(errs, reverse=True)

    def test_interpolation_experiment(self):
        out = interpolation_experiment(
            "matmul", n_train=256, n_test=128, models=["knn", "mars"],
            scale="smoke", seed=0,
        )
        assert set(out) == {"knn", "mars"}
        assert all(np.isfinite(r.best_error) for r in out.values())


class TestCLI:
    def test_main_runs_table1(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        rc = main(["table1", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mlogq" in out and "exact" in out
        assert (tmp_path / "table1.txt").exists()

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_main_jobs_and_cache_dir(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        cache = tmp_path / "cache"
        assert main(["figure1", "--jobs", "2", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "[runtime] figure1: 3 jobs, 0 cache hits, 3 executed" in out
        # warm rerun: everything answered from the cache, nothing executed
        assert main(["figure1", "--jobs", "2", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "[runtime] figure1: 3 jobs, 3 cache hits, 0 executed" in out

    def test_main_rejects_bad_jobs(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure1", "--jobs", "0"])

"""Cross-module integration tests: full pipelines on every benchmark."""
import numpy as np
import pytest

from repro.apps import get_application
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.experiments.registry import make_model
from repro.metrics import mlogq

ALL_APPS = ["matmul", "qr", "bcast", "exafmm", "amg", "kripke"]

# Loose per-benchmark accuracy gates at small training scale (1024 samples,
# 8 cells/dim, rank 4/8).  These pin that the full pipeline stays healthy;
# the benchmark suite measures real accuracy at proper scales.
_GATES = {
    "matmul": 0.20,
    "qr": 0.30,
    "bcast": 0.35,
    "exafmm": 0.40,
    "amg": 0.35,
    "kripke": 0.40,
}


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_cpr_end_to_end(app_name):
    app = get_application(app_name)
    train = generate_dataset(app, 1024, seed=0)
    test = generate_dataset(app, 256, seed=1)
    rank = 4 if app.space.dimension <= 3 else 8
    model = CPRModel(space=app.space, cells=8, rank=rank,
                     regularization=1e-4, seed=0).fit(train.X, train.y)
    err = model.score(test.X, test.y)
    assert err < _GATES[app_name], f"{app_name}: {err}"


@pytest.mark.parametrize("app_name", ["matmul", "amg"])
def test_amn_end_to_end(app_name):
    app = get_application(app_name)
    train = generate_dataset(app, 1024, seed=0)
    test = generate_dataset(app, 256, seed=1)
    model = CPRModel(space=app.space, cells=6, rank=4, loss="mlogq2",
                     max_sweeps=1, newton_iters=10, seed=0).fit(train.X, train.y)
    err = model.score(test.X, test.y)
    assert err < 2.5 * _GATES[app_name], f"{app_name}: {err}"
    assert np.all(model.predict(test.X) > 0)


class TestClusteredValues:
    """Measured parameter values that cluster (powers of two) leave grid
    rows unobserved; imputation must keep predictions sane (the broadcast
    node-count scenario that motivated ``_impute_unobserved_rows``)."""

    def _clustered_data(self):
        gen = np.random.default_rng(0)
        # x0 only takes powers of two; x1 is continuous.
        x0 = 2.0 ** gen.integers(0, 8, size=2000)
        x1 = np.exp(gen.uniform(0, np.log(100), size=2000))
        X = np.column_stack([x0, x1])
        y = 1e-3 * x0**0.8 * x1
        return X, y

    def test_log_mse_path(self):
        X, y = self._clustered_data()
        m = CPRModel(cells=16, rank=2, seed=0).fit(X, y)
        assert m.score(X, y) < 0.15
        # every factor row is finite and the model predicts between clusters
        q = np.array([[3.0, 10.0]])  # between the 2 and 4 clusters
        assert 1e-3 * 2**0.8 * 10 / 3 < m.predict(q)[0] < 1e-3 * 4**0.8 * 10 * 3

    def test_mlogq2_path(self):
        X, y = self._clustered_data()
        m = CPRModel(cells=16, rank=2, loss="mlogq2", max_sweeps=1,
                     newton_iters=10, seed=0).fit(X, y)
        assert m.score(X, y) < 0.25
        assert all(np.all(f > 0) for f in m.factors_)


class TestRegistryPipelines:
    """Every registry model family survives a categorical-space pipeline."""

    @pytest.mark.parametrize(
        "name", ["cpr", "knn", "mars", "et", "gb", "nn", "gp", "svm", "sgr", "rf"]
    )
    def test_fit_predict_on_amg(self, name):
        app = get_application("amg")
        train = generate_dataset(app, 512, seed=0)
        test = generate_dataset(app, 128, seed=1)
        model = make_model(name, space=app.space, seed=0)
        model.fit(train.X, train.y)
        pred = model.predict(test.X)
        assert np.all(np.isfinite(pred)) and np.all(pred > 0)
        # sanity: no pipeline should be worse than 3x-typical misprediction
        assert mlogq(pred, test.y) < 1.2


def test_extrapolation_pipeline_mm():
    """Figure 8's mm_m scenario end-to-end at tiny scale."""
    app = get_application("matmul")
    ds = generate_dataset(app, 6144, seed=0)
    m_col = ds.X[:, 0]
    train = (m_col < 512)
    test = (m_col >= 2048)
    model = CPRModel(space=app.space, cells=12, rank=2, loss="mlogq2",
                     max_sweeps=1, newton_iters=10, seed=0)
    model.fit(ds.X[train], ds.y[train])
    err = mlogq(model.predict(ds.X[test]), ds.y[test])
    # 4-8x extrapolation in m: the positive model should stay within a
    # ~1.8x typical misprediction factor.
    assert err < 0.6, err

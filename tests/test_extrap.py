"""Tests for Perron rank-1 extraction and mode extrapolators (Section 5.3)."""
import numpy as np
import pytest

from repro.core.extrap import ModeExtrapolator, perron_rank1
from repro.core.grid import LogMode


class TestPerronRank1:
    def test_exact_rank1_recovery(self):
        u = np.array([1.0, 2.0, 4.0])
        v = np.array([3.0, 5.0])
        U = np.outer(u, v)
        uu, sigma, vv = perron_rank1(U)
        np.testing.assert_allclose(np.outer(uu, vv) * sigma, U, rtol=1e-10)

    def test_vectors_positive(self):
        gen = np.random.default_rng(0)
        U = np.exp(gen.normal(0, 1, size=(6, 4)))
        u, sigma, v = perron_rank1(U)
        assert np.all(u > 0) and np.all(v >= 0) and sigma > 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            perron_rank1(np.array([[1.0, -1.0], [1.0, 1.0]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            perron_rank1(np.ones(3))

    def test_best_rank1_error_bound(self):
        """sigma_1 u v^T is the optimal rank-1 approx (Eckart-Young)."""
        gen = np.random.default_rng(1)
        U = np.exp(gen.normal(0, 0.3, size=(8, 5)))
        u, sigma, v = perron_rank1(U)
        s = np.linalg.svd(U, compute_uv=False)
        resid = np.linalg.norm(U - sigma * np.outer(u, v))
        assert resid == pytest.approx(np.linalg.norm(s[1:]), rel=1e-8)


class TestModeExtrapolator:
    def _power_law_factor(self, exponent=1.5, I=12, R=3):
        """Positive factor whose rows scale like midpoint^exponent."""
        mode = LogMode("x", 2.0, 2048.0, I)
        gen = np.random.default_rng(2)
        col = np.exp(gen.normal(0, 0.1, size=R))
        U = (mode.midpoints[:, None] ** exponent) * col[None, :]
        return mode, U

    def test_factor_rows_shape(self):
        mode, U = self._power_law_factor()
        ex = ModeExtrapolator.fit(mode, U)
        rows = ex.factor_rows(np.array([4096.0, 8192.0]))
        assert rows.shape == (2, 3)
        assert np.all(rows > 0)

    def test_power_law_extrapolates(self):
        """Extrapolated rows should continue the power law (log-linear)."""
        mode, U = self._power_law_factor(exponent=2.0)
        ex = ModeExtrapolator.fit(mode, U)
        r1 = ex.factor_rows(np.array([4096.0]))[0]
        r2 = ex.factor_rows(np.array([8192.0]))[0]
        # doubling x should multiply the scale by ~2^2 = 4
        ratio = r2 / r1
        np.testing.assert_allclose(ratio, 4.0, rtol=0.3)

    def test_inside_domain_consistency(self):
        """At grid midpoints the synthesized rows approximate U's rows."""
        mode, U = self._power_law_factor(exponent=1.0)
        ex = ModeExtrapolator.fit(mode, U)
        rows = ex.factor_rows(mode.midpoints)
        rel = np.abs(rows - U) / U
        assert np.median(rel) < 0.25

    def test_few_points_falls_back_to_line(self):
        mode = LogMode("x", 2.0, 32.0, 2)
        U = np.array([[1.0, 2.0], [4.0, 8.0]])
        ex = ModeExtrapolator.fit(mode, U)
        rows = ex.factor_rows(np.array([64.0]))
        assert rows.shape == (1, 2)
        assert np.all(rows > 0)
        assert np.all(np.isfinite(rows))


class TestSlopeEnvelope:
    """The windowed-secant linear extension beyond the fitted range."""

    def _noisy_power_factor(self, exponent=1.0, I=16, R=2, noise=0.15, seed=3):
        from repro.core.grid import LogMode
        import numpy as np

        mode = LogMode("x", 32.0, 1024.0, I)
        gen = np.random.default_rng(seed)
        col = np.exp(gen.normal(0, 0.05, size=R))
        jitter = np.exp(gen.normal(0, noise, size=I))
        U = (mode.midpoints**exponent * jitter)[:, None] * col[None, :]
        return mode, U

    def test_extension_slope_near_trend(self):
        import numpy as np

        mode, U = self._noisy_power_factor(exponent=1.0)
        ex = ModeExtrapolator.fit(mode, U)
        # growth over 2 octaves beyond the domain ~ 4x for exponent 1
        r1 = ex.factor_rows(np.array([2048.0]))[0]
        r2 = ex.factor_rows(np.array([8192.0]))[0]
        ratio = float((r2 / r1)[0])
        assert 2.0 < ratio < 8.0, ratio

    def test_extension_continuous_at_boundary(self):
        import numpy as np

        mode, U = self._noisy_power_factor()
        ex = ModeExtrapolator.fit(mode, U)
        h_hi = ex.h_hi
        just_in = np.exp(h_hi - 1e-9)
        just_out = np.exp(h_hi + 1e-9)
        a = ex.factor_rows(np.array([just_in]))[0, 0]
        b = ex.factor_rows(np.array([just_out]))[0, 0]
        assert abs(np.log(a / b)) < 1e-6

    def test_observed_mask_excludes_imputed_rows(self):
        import numpy as np

        mode, U = self._noisy_power_factor(noise=0.0)
        # corrupt the last two rows as if they were flat imputations
        U2 = U.copy()
        U2[-2:] = U2[-3]
        observed = np.ones(len(U2), dtype=bool)
        observed[-2:] = False
        with_mask = ModeExtrapolator.fit(mode, U2, observed=observed)
        without = ModeExtrapolator.fit(mode, U2)
        q = np.array([8192.0])
        true_growth = ModeExtrapolator.fit(mode, U).factor_rows(q)[0, 0]
        err_with = abs(np.log(with_mask.factor_rows(q)[0, 0] / true_growth))
        err_without = abs(np.log(without.factor_rows(q)[0, 0] / true_growth))
        assert err_with < err_without

"""Tests for sparse-grid basis construction and regression."""
import numpy as np
import pytest

from repro.baselines.sgr import SparseGridBasis, SparseGridRegressor, level_vectors


class TestLevelVectors:
    def test_1d(self):
        assert level_vectors(1, 3) == [(1,), (2,), (3,)]

    def test_2d_count(self):
        # |l|_1 <= level + d - 1 = 4 with l_j >= 1: (1,1),(1,2),(2,1),(1,3),(2,2),(3,1)
        assert len(level_vectors(2, 3)) == 6

    def test_sum_constraint(self):
        for l in level_vectors(3, 4):
            assert sum(l) <= 4 + 3 - 1
            assert all(lj >= 1 for lj in l)

    def test_invalid(self):
        with pytest.raises(ValueError):
            level_vectors(0, 1)


class TestSparseGridBasis:
    def test_regular_point_count_2d(self):
        # level-3 regular sparse grid in 2D: 17 points
        assert len(SparseGridBasis.regular(2, 3)) == 17

    def test_regular_point_count_formula(self):
        # sum over level vectors of prod 2^(l_j - 1)
        for d, n in ((2, 4), (3, 3)):
            basis = SparseGridBasis.regular(d, n)
            expected = sum(
                int(np.prod([2 ** (lj - 1) for lj in l]))
                for l in level_vectors(d, n)
            )
            assert len(basis) == expected

    def test_max_points_guard(self):
        with pytest.raises(MemoryError):
            SparseGridBasis.regular(6, 8, max_points=1000)

    def test_points_in_unit_cube(self):
        basis = SparseGridBasis.regular(3, 4)
        pts = basis.points()
        assert np.all((pts > 0) & (pts < 1))

    def test_no_duplicates(self):
        basis = SparseGridBasis.regular(2, 4)
        keys = {(tuple(l), tuple(i))
                for l, i in zip(basis.levels, basis.indices)}
        assert len(keys) == len(basis)

    def test_add_rejects_invalid(self):
        basis = SparseGridBasis(2)
        with pytest.raises(ValueError):
            basis.add((1, 1), (2, 1))  # even index
        with pytest.raises(ValueError):
            basis.add((1, 1), (3, 1))  # index > 2^l - 1

    def test_children_levels(self):
        basis = SparseGridBasis.regular(2, 2)
        kids = basis.children_of(0)
        assert len(kids) == 4
        for l, i in kids:
            assert sum(l) == sum(basis._levels[0]) + 1

    def test_evaluate_partition_at_level1(self):
        """The level-(1,..,1) hat is 1 at the cube center."""
        basis = SparseGridBasis.regular(2, 1)
        Phi = basis.evaluate(np.array([[0.5, 0.5]]))
        assert Phi.shape == (1, 1)
        assert Phi[0, 0] == pytest.approx(1.0)

    def test_evaluate_at_grid_points_is_lower_triangular_ish(self):
        """phi_b(x_b) == 1 at each basis' own grid point."""
        basis = SparseGridBasis.regular(2, 3)
        Phi = basis.evaluate(basis.points()).toarray()
        np.testing.assert_allclose(np.diag(Phi), 1.0)

    def test_evaluate_row_sparsity(self):
        basis = SparseGridBasis.regular(2, 4)
        Phi = basis.evaluate(np.random.default_rng(0).uniform(size=(50, 2)))
        # at most one active basis per level vector
        assert Phi.getnnz(axis=1).max() <= len(level_vectors(2, 4))


class TestSparseGridRegressor:
    def test_fits_smooth_function(self):
        gen = np.random.default_rng(0)
        X = gen.uniform(size=(800, 2))
        y = np.sin(np.pi * X[:, 0]) * X[:, 1]
        m = SparseGridRegressor(level=5).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 0.01 * np.var(y)

    def test_refinement_adds_points_and_improves_fit(self):
        gen = np.random.default_rng(1)
        X = gen.uniform(size=(800, 2))
        y = np.where(X[:, 0] > 0.7, 5.0, 0.0) + X[:, 1]  # localized feature
        base = SparseGridRegressor(level=3, refinements=0).fit(X, y)
        refined = SparseGridRegressor(level=3, refinements=4,
                                      refine_points=8).fit(X, y)
        assert refined.n_grid_points > base.n_grid_points
        mse_b = np.mean((base.predict(X) - y) ** 2)
        mse_r = np.mean((refined.predict(X) - y) ** 2)
        assert mse_r < mse_b

    def test_predict_clips_out_of_range(self):
        gen = np.random.default_rng(2)
        X = gen.uniform(size=(200, 2))
        y = X[:, 0]
        m = SparseGridRegressor(level=3).fit(X, y)
        pred = m.predict(np.array([[10.0, -5.0]]))
        assert np.isfinite(pred[0])

    def test_level_one_is_coarse(self):
        gen = np.random.default_rng(3)
        X = gen.uniform(size=(100, 2))
        y = X[:, 0]
        m = SparseGridRegressor(level=1).fit(X, y)
        assert m.n_grid_points == 1

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SparseGridRegressor(level=0)
        with pytest.raises(ValueError):
            SparseGridRegressor(refinements=-1)

    def test_size_state(self):
        gen = np.random.default_rng(4)
        X = gen.uniform(size=(300, 2))
        y = X[:, 0]
        m = SparseGridRegressor(level=4).fit(X, y)
        assert 0 < m.size_bytes < 100000

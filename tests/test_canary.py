"""Tests for canary/shadow republish: registry channels, shadow trials,
and the drift-triggered promote/rollback loop.

The invariant chain: ``publish(channel="shadow")`` pins ``name@latest``
at the incumbent, ``promote`` flips it only by explicit decision, and
``rollback`` records the loser without ever having exposed it — so a
drifting stream's refit reaches consumers exactly when it *measured*
better on the live prequential stream, and never otherwise.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.apps import Broadcast
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.serve import ModelRegistry, ModelServer
from repro.stream import (
    DriftingApplication,
    MultiStreamDriver,
    ShadowTrial,
    StreamSession,
    StreamTask,
    replay_application,
)
from repro.stream.drift import DriftMonitor
from repro.stream.runner import make_model_factory
from repro.stream.trainer import IncrementalTrainer


@pytest.fixture(scope="module")
def bcast_data():
    app = Broadcast()
    train = generate_dataset(app, 256, seed=0)
    test = generate_dataset(app, 16, seed=1)
    return app, train, test


def _fit(app, train, seed=0):
    return CPRModel(
        space=app.space, cells=4, rank=2, seed=seed, max_sweeps=5
    ).fit(train.X, train.y)


def _session(registry, name, app, *, margin=0.02, min_scores=16,
             max_scores=96, threshold=0.25, window=48, min_count=24):
    factory = make_model_factory(
        app.space, cells=6, rank=2, max_sweeps=15, seed=0
    )
    monitor = DriftMonitor(window=window, threshold=threshold, min_count=min_count)
    return StreamSession(
        registry, name, factory, monitor=monitor,
        trainer=IncrementalTrainer(factory, monitor=monitor),
        canary=True, canary_margin=margin,
        canary_min_scores=min_scores, canary_max_scores=max_scores,
    )


class TestRegistryChannels:
    def test_shadow_publish_pins_latest_at_incumbent(self, tmp_path, bcast_data):
        app, train, _ = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", _fit(app, train))
        mv = reg.publish("m", _fit(app, train, seed=1), channel="shadow")
        assert mv.version == 2
        assert reg.channels("m") == {"latest": 1, "shadow": 2}
        assert reg.resolve("m").version == 1
        assert reg.resolve("m", channel="shadow").version == 2

    def test_shadow_publish_without_incumbent_refuses(self, tmp_path, bcast_data):
        app, train, _ = bcast_data
        reg = ModelRegistry(tmp_path)
        with pytest.raises(ValueError, match="no incumbent"):
            reg.publish("m", _fit(app, train), channel="shadow")

    def test_promote_flips_latest_and_clears_shadow(self, tmp_path, bcast_data):
        app, train, test = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", _fit(app, train))
        shadow_model = _fit(app, train, seed=1)
        reg.publish("m", shadow_model, channel="shadow")
        mv = reg.promote("m")
        assert mv.version == 2
        assert reg.channels("m") == {"latest": 2, "shadow": None}
        assert reg.resolve("m").version == 2
        # The promoted artifact is the shadow's bytes, exactly.
        model, _ = reg.load_resolved(reg.resolve("m"))
        np.testing.assert_allclose(
            model.predict(test.X), shadow_model.predict(test.X)
        )

    def test_promote_is_visible_immediately(self, tmp_path, bcast_data):
        """The satellite bug: a promote landing inside the mtime settle
        window must not be masked by the pointer cache."""
        app, train, _ = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", _fit(app, train))
        reg.publish("m", _fit(app, train, seed=1), channel="shadow")
        # Prime both pointer caches, then promote back-to-back within
        # one settle window — no sleep between resolve and flip.
        assert reg.resolve("m").version == 1
        reg.promote("m")
        assert reg.resolve("m").version == 2
        reg.publish("m", _fit(app, train, seed=2), channel="shadow")
        assert reg.resolve("m", channel="shadow").version == 3
        reg.rollback("m", reason="test")
        with pytest.raises(KeyError, match="no shadow"):
            reg.resolve("m", channel="shadow")

    def test_rollback_records_loser_and_keeps_incumbent(self, tmp_path, bcast_data):
        app, train, _ = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", _fit(app, train))
        reg.publish("m", _fit(app, train, seed=1), channel="shadow")
        assert reg.rollback("m", reason="lost trial") == 2
        assert reg.channels("m") == {"latest": 1, "shadow": None}
        assert reg.resolve("m").version == 1
        # The loser's blob stays addressable for post-mortems.
        assert reg.resolve("m", version=2).version == 2
        events = [(h["event"], h.get("version")) for h in reg.history("m")]
        assert events == [("shadow", 2), ("rollback", 2)]
        assert reg.history("m")[-1]["reason"] == "lost trial"

    def test_plain_publish_advances_a_pinned_latest(self, tmp_path, bcast_data):
        app, train, _ = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", _fit(app, train))
        reg.publish("m", _fit(app, train, seed=1), channel="shadow")
        reg.rollback("m")
        # channels.json now exists with latest pinned at 1; a plain
        # publish must not hide v3 behind the stale pin.
        reg.publish("m", _fit(app, train, seed=2))
        assert reg.resolve("m").version == 3
        assert reg.channels("m")["latest"] == 3

    def test_fresh_registry_object_sees_the_flip(self, tmp_path, bcast_data):
        app, train, _ = bcast_data
        a = ModelRegistry(tmp_path)
        a.publish("m", _fit(app, train))
        a.publish("m", _fit(app, train, seed=1), channel="shadow")
        b = ModelRegistry(tmp_path)  # a second process, effectively
        assert b.resolve("m").version == 1
        a.promote("m")
        assert b.resolve("m").version == 2

    def test_promote_explicit_version_pins_known_good(self, tmp_path, bcast_data):
        app, train, _ = bcast_data
        reg = ModelRegistry(tmp_path)
        for seed in range(3):
            reg.publish("m", _fit(app, train, seed=seed))
        assert reg.resolve("m").version == 3
        reg.promote("m", version=1)  # operator pin
        assert reg.resolve("m").version == 1

    def test_promote_without_shadow_raises(self, tmp_path, bcast_data):
        app, train, _ = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", _fit(app, train))
        with pytest.raises(KeyError, match="no shadow"):
            reg.promote("m")
        with pytest.raises(KeyError, match="no shadow"):
            reg.rollback("m")


class TestServerChannelRefs:
    def test_name_at_shadow_and_latest_refs(self, tmp_path, bcast_data):
        app, train, test = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", _fit(app, train))
        reg.publish("m", _fit(app, train, seed=1), channel="shadow")
        srv = ModelServer(reg)
        x = test.X[:2].tolist()
        latest = srv.handle({"op": "predict", "model": "m@latest", "x": x})
        shadow = srv.handle({"op": "predict", "model": "m@shadow", "x": x})
        assert latest["ok"] and shadow["ok"]
        assert latest["model"] == "m@v1"
        assert shadow["model"] == "m@v2"
        bad = srv.handle({"op": "predict", "model": "m@nope", "x": x})
        assert not bad["ok"]


class TestShadowTrial:
    def _xy(self, n=32, seed=0):
        rng = np.random.default_rng(seed)
        return rng.random((n, 2)), np.full(n, 1.0)

    class _Fixed:
        def __init__(self, scale):
            self.scale = scale

        def predict(self, X):
            return np.full(len(X), self.scale)

    def test_better_candidate_promotes(self):
        X, y = self._xy()
        trial = ShadowTrial(
            self._Fixed(1.0), self._Fixed(3.0), version=2,
            margin=0.05, min_scores=16,
        )
        assert trial.decision() is None  # no evidence yet
        trial.score(X, y)
        assert trial.decision() == "promote"
        assert trial.candidate_error < trial.incumbent_error

    def test_worse_candidate_rolls_back(self):
        X, y = self._xy()
        trial = ShadowTrial(
            self._Fixed(3.0), self._Fixed(1.0), version=2,
            margin=0.05, min_scores=16,
        )
        trial.score(X, y)
        assert trial.decision() == "rollback"

    def test_tie_exhausts_budget_then_rolls_back(self):
        X, y = self._xy()
        trial = ShadowTrial(
            self._Fixed(2.0), self._Fixed(2.0), version=2,
            margin=0.05, min_scores=16, max_scores=64,
        )
        trial.score(X, y)
        assert trial.decision() is None  # tied, under budget: keep scoring
        trial.score(X, y)
        assert trial.decision() == "rollback"  # budget spent, no win

    def test_min_scores_gate(self):
        X, y = self._xy(n=8)
        trial = ShadowTrial(
            self._Fixed(1.0), self._Fixed(3.0), version=2,
            margin=0.05, min_scores=16,
        )
        trial.score(X, y)
        assert trial.decision() is None

    def test_crashing_predict_counts_against_that_model(self):
        class Broken:
            def predict(self, X):
                raise RuntimeError("boom")

        X, y = self._xy()
        trial = ShadowTrial(
            Broken(), self._Fixed(1.0), version=2, margin=0.05, min_scores=16
        )
        trial.score(X, y)
        assert trial.decision() == "rollback"

    def test_parameter_validation(self):
        m = self._Fixed(1.0)
        with pytest.raises(ValueError, match="margin"):
            ShadowTrial(m, m, 1, margin=1.5)
        with pytest.raises(ValueError, match="min_scores"):
            ShadowTrial(m, m, 1, min_scores=0)
        with pytest.raises(ValueError, match="max_scores"):
            ShadowTrial(m, m, 1, min_scores=8, max_scores=4)


class TestCanarySession:
    def test_drift_refit_promotes_through_shadow(self, tmp_path):
        """A genuine regime change: the refit wins its trial, and only
        then does ``name@latest`` flip — the acceptance scenario."""
        reg = ModelRegistry(tmp_path)
        app = DriftingApplication(Broadcast(), shift_at=150, factor=4.0)
        session = _session(reg, "m", app)
        summary = replay_application(app, session, 400, batch=25, seed=0)
        assert summary["promotions"] >= 1
        assert summary["publish_failures"] == 0
        # Every flip went through a shadow publish + explicit promote.
        events = [h["event"] for h in reg.history("m")]
        assert events.count("promote") == summary["promotions"]
        assert events.count("shadow") >= summary["promotions"]
        # What serves is the pinned winner, never an unreviewed refit.
        assert reg.resolve("m").version == reg.channels("m")["latest"]

    def test_unwinnable_margin_rolls_back_and_keeps_incumbent(self, tmp_path):
        """Stationary data + hair-trigger drift + 90% win margin: refits
        fire but cannot beat the incumbent, so every trial must roll
        back and v1 keeps serving."""
        reg = ModelRegistry(tmp_path)
        app = Broadcast()
        session = _session(
            reg, "m", app, margin=0.9, min_scores=16, max_scores=48,
            threshold=0.05, window=32, min_count=16,
        )
        summary = replay_application(app, session, 300, batch=25, seed=0)
        assert summary["rollbacks"] >= 1
        assert summary["publish_failures"] == 0
        assert summary["rolled_back_versions"]
        # Registry-side audit agrees with the session's loser list.
        losers = [
            h["version"] for h in reg.history("m") if h["event"] == "rollback"
        ]
        assert losers == summary["rolled_back_versions"]
        for v in summary["rolled_back_versions"]:
            assert reg.resolve("m").version != v

    def test_non_canary_session_republishes_directly(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        app = DriftingApplication(Broadcast(), shift_at=100, factor=4.0)
        factory = make_model_factory(
            app.space, cells=6, rank=2, max_sweeps=15, seed=0
        )
        monitor = DriftMonitor(window=48, threshold=0.25, min_count=24)
        session = StreamSession(
            reg, "m", factory, monitor=monitor,
            trainer=IncrementalTrainer(factory, monitor=monitor),
        )
        summary = replay_application(app, session, 300, batch=25, seed=0)
        assert summary["promotions"] == 0 and summary["rollbacks"] == 0
        assert reg.history("m") == []  # no channel machinery engaged
        assert reg.resolve("m").version == max(summary["published_versions"])

    def test_superseding_refit_rolls_back_the_open_trial(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        app = DriftingApplication(Broadcast(), shift_at=120, factor=6.0)
        # max_scores high enough that trials outlive the next refit.
        session = _session(
            reg, "m", app, margin=0.9, min_scores=200, max_scores=400,
            threshold=0.05, window=32, min_count=16,
        )
        summary = replay_application(app, session, 350, batch=25, seed=0)
        superseded = [
            t for t in summary["trials"]
            if t.get("reason") == "superseded by newer refit"
        ]
        assert superseded, "expected at least one mid-trial refit"
        assert summary["publish_failures"] == 0
        # After superseding, the *new* shadow pointer survived intact.
        open_trial = summary["trial_open"]
        if open_trial is not None and open_trial["version"] is not None:
            assert reg.channels("m")["shadow"] == open_trial["version"]


class TestMultiStreamDriver:
    def test_concurrent_drifting_fleet_shares_one_registry(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        tasks = [
            StreamTask(
                "bcast", n=200, batch=25, seed=i, name=f"bcast-{i}",
                shift_at=100, drift_factor=4.0, canary=True,
                canary_margin=0.02, canary_min_scores=16, canary_max_scores=96,
                cells=6, rank=2, max_sweeps=10,
                drift_window=48, drift_threshold=0.25, drift_min_count=24,
            )
            for i in range(3)
        ]
        report = MultiStreamDriver(reg, tasks).run()
        assert report["n_streams"] == 3 and report["failures"] == 0
        assert sorted(report["streams"]) == ["bcast-0", "bcast-1", "bcast-2"]
        for name, summary in report["streams"].items():
            assert summary["published_versions"], name
            # Channel discipline held per name under concurrency.
            assert reg.resolve(name).version == (
                reg.channels(name)["latest"]
                or max(summary["published_versions"])
            )
        assert report["promotions"] == sum(
            s["promotions"] for s in report["streams"].values()
        )

    def test_duplicate_names_refused(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate stream names"):
            MultiStreamDriver(
                ModelRegistry(tmp_path),
                [StreamTask("bcast"), StreamTask("bcast")],
            )

    def test_one_failing_stream_does_not_sink_the_fleet(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        good = StreamTask(
            "bcast", n=60, batch=20, seed=0, name="ok",
            cells=6, rank=2, max_sweeps=10,
        )
        bad = StreamTask(
            "no-such-app", n=60, batch=20, seed=0, name="broken"
        )
        report = MultiStreamDriver(reg, [good, bad]).run()
        assert report["failures"] == 1
        assert "error" in report["streams"]["broken"]
        assert report["streams"]["ok"]["published_versions"]


class TestDriftingApplication:
    def test_row_exact_shift_boundary(self):
        app = DriftingApplication(Broadcast(), shift_at=10, factor=3.0)
        rng = np.random.default_rng(0)
        X = app.space.sample(8, rng=rng)

        plain = Broadcast()
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        y0 = app.measure(X, rng=rng_a, sigma=0)        # rows 0-7: pre-shift
        y0_ref = plain.measure(X, rng=rng_b, sigma=0)
        np.testing.assert_allclose(y0, y0_ref)

        y1 = app.measure(X, rng=rng_a, sigma=0)        # rows 8-15: straddles 10
        y1_ref = plain.measure(X, rng=rng_b, sigma=0)
        np.testing.assert_allclose(y1[:2], y1_ref[:2])          # rows 8, 9
        np.testing.assert_allclose(y1[2:], y1_ref[2:] * 3.0)    # rows 10+

    def test_validation(self):
        with pytest.raises(ValueError, match="shift_at"):
            DriftingApplication(Broadcast(), shift_at=-1)
        with pytest.raises(ValueError, match="factor"):
            DriftingApplication(Broadcast(), shift_at=0, factor=0.0)

"""Tests for domain discretization (modes and tensor grids)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import AMG, ExaFMM, MatMul
from repro.apps.base import Parameter, ParameterSpace
from repro.core.grid import CategoricalMode, LogMode, TensorGrid, UniformMode
from repro.core.model import _grid_from_data


class TestUniformMode:
    def test_edges_and_midpoints(self):
        m = UniformMode("x", 0.0, 10.0, 5)
        np.testing.assert_allclose(m.edges, [0, 2, 4, 6, 8, 10])
        np.testing.assert_allclose(m.midpoints, [1, 3, 5, 7, 9])

    def test_cell_of_interior(self):
        m = UniformMode("x", 0.0, 10.0, 5)
        np.testing.assert_array_equal(m.cell_of([0.5, 2.5, 9.9]), [0, 1, 4])

    def test_cell_of_clips_outside(self):
        m = UniformMode("x", 0.0, 10.0, 5)
        np.testing.assert_array_equal(m.cell_of([-5.0, 15.0]), [0, 4])

    def test_right_edge_belongs_to_last_cell(self):
        m = UniformMode("x", 0.0, 10.0, 5)
        assert m.cell_of([10.0])[0] == 4

    def test_transform_identity(self):
        m = UniformMode("x", 0.0, 10.0, 2)
        np.testing.assert_array_equal(m.transform([1.0, 2.0]), [1.0, 2.0])

    def test_in_domain(self):
        m = UniformMode("x", 2.0, 4.0, 2)
        np.testing.assert_array_equal(
            m.in_domain([1.9, 2.0, 3.0, 4.0, 4.1]),
            [False, True, True, True, False],
        )

    def test_single_cell(self):
        m = UniformMode("x", 0.0, 1.0, 1)
        assert m.n_cells == 1
        assert m.cell_of([0.5])[0] == 0

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            UniformMode("x", 0.0, 1.0, 0)


class TestLogMode:
    def test_geometric_midpoints(self):
        m = LogMode("x", 1.0, 16.0, 4)
        np.testing.assert_allclose(m.edges, [1, 2, 4, 8, 16])
        np.testing.assert_allclose(m.midpoints, [np.sqrt(2), np.sqrt(8), np.sqrt(32), np.sqrt(128)])

    def test_transform_log(self):
        m = LogMode("x", 1.0, 16.0, 2)
        np.testing.assert_allclose(m.transform([np.e]), [1.0])

    def test_transform_rejects_nonpositive(self):
        m = LogMode("x", 1.0, 16.0, 2)
        with pytest.raises(ValueError):
            m.transform([-1.0])

    def test_requires_positive_range(self):
        with pytest.raises(ValueError):
            LogMode("x", 0.0, 8.0, 2)

    def test_cell_of_log_spaced(self):
        m = LogMode("x", 1.0, 16.0, 4)
        np.testing.assert_array_equal(m.cell_of([1.5, 3.0, 6.0, 12.0]), [0, 1, 2, 3])

    def test_midpoints_h_increasing(self):
        m = LogMode("x", 32.0, 4096.0, 16)
        assert np.all(np.diff(m.midpoints_h) > 0)


class TestCategoricalMode:
    def test_basics(self):
        m = CategoricalMode("alg", 4)
        assert m.n_cells == 4 and not m.interpolates
        np.testing.assert_array_equal(m.cell_of([0.0, 3.0]), [0, 3])

    def test_out_of_range_raises(self):
        m = CategoricalMode("alg", 3)
        with pytest.raises(ValueError):
            m.cell_of([3.0])

    def test_rounds_float_indices(self):
        m = CategoricalMode("alg", 3)
        assert m.cell_of([1.4])[0] == 1

    def test_in_domain(self):
        m = CategoricalMode("alg", 3)
        np.testing.assert_array_equal(m.in_domain([-1.0, 0.0, 2.0, 3.0]),
                                      [False, True, True, False])


class TestTensorGridFromSpace:
    def test_matmul_all_log(self):
        grid = TensorGrid.from_space(MatMul().space, 8)
        assert grid.shape == (8, 8, 8)
        assert all(isinstance(m, LogMode) for m in grid.modes)

    def test_amg_mixed_modes(self):
        grid = TensorGrid.from_space(AMG().space, 8)
        # nx, ny, nz log; ct/rt/it categorical with their category counts
        assert grid.shape[3:6] == (7, 10, 14)
        assert isinstance(grid.modes[3], CategoricalMode)

    def test_integer_param_caps_cells(self):
        grid = TensorGrid.from_space(ExaFMM().space, 64)
        tl = grid.modes[3]  # tree level 0..4 -> at most 5 cells
        assert tl.n_cells <= 5

    def test_config_params_linear(self):
        grid = TensorGrid.from_space(ExaFMM().space, 8)
        ppl = grid.modes[2]
        assert isinstance(ppl, UniformMode)

    def test_data_range_shrinks_domain(self):
        space = MatMul().space
        X = np.full((10, 3), 100.0)
        X[:, 0] = np.linspace(50, 200, 10)
        grid = TensorGrid.from_space(space, 4, X=X)
        assert grid.modes[0].low == pytest.approx(50)
        assert grid.modes[0].high == pytest.approx(200)

    def test_cells_dict_and_list(self):
        space = MatMul().space
        g1 = TensorGrid.from_space(space, {"m": 4, "n": 8, "k": 16})
        assert g1.shape == (4, 8, 16)
        g2 = TensorGrid.from_space(space, [2, 3, 4])
        assert g2.shape == (2, 3, 4)

    def test_cells_list_wrong_length(self):
        with pytest.raises(ValueError):
            TensorGrid.from_space(MatMul().space, [2, 3])


class TestDegenerateColumns:
    """Constant data columns must widen into a valid (low < high) range.

    Regression: the old relative widening ``low * (1 + 1e-9) + 1e-12``
    lands *below* ``low`` for negative constants, so ``UniformMode``
    raised "edges must be strictly increasing".
    """

    def _signed_space(self):
        return ParameterSpace(
            [
                Parameter("t", role="config", low=-10.0, high=10.0),
                Parameter("u", role="config", low=0.0, high=5.0),
            ],
            name="signed",
        )

    @pytest.mark.parametrize("const", [-5.0, 0.0, 3.0])
    def test_from_space_constant_column(self, const):
        X = np.column_stack([np.full(20, const), np.linspace(0.1, 4.9, 20)])
        grid = TensorGrid.from_space(self._signed_space(), 4, X=X)
        mode = grid.modes[0]
        assert mode.low == pytest.approx(const)
        assert mode.high > mode.low
        # the constant value itself must land in a valid cell
        assert 0 <= mode.cell_of([const])[0] < mode.n_cells

    @pytest.mark.parametrize("const", [-5.0, 0.0])
    def test_grid_from_data_constant_column(self, const):
        X = np.column_stack([np.full(16, const), np.linspace(1.0, 2.0, 16)])
        grid = _grid_from_data(X, 4)
        mode = grid.modes[0]
        assert mode.low == pytest.approx(const)
        assert mode.high > mode.low

    def test_from_space_constant_positive_log_param(self):
        # Log-scaled parameters keep their relative widening semantics.
        space = MatMul().space
        X = np.full((12, 3), 64.0)
        grid = TensorGrid.from_space(space, 8, X=X)
        for mode in grid.modes:
            assert mode.high > mode.low > 0


class TestTensorGrid:
    def _grid(self):
        return TensorGrid([
            LogMode("a", 1.0, 64.0, 4),
            UniformMode("b", 0.0, 1.0, 2),
            CategoricalMode("c", 3),
        ])

    def test_shape_order_elements(self):
        g = self._grid()
        assert g.shape == (4, 2, 3)
        assert g.order == 3
        assert g.n_elements == 24

    def test_cell_indices_shape(self):
        g = self._grid()
        X = np.array([[2.0, 0.2, 1.0], [50.0, 0.9, 2.0]])
        idx = g.cell_indices(X)
        assert idx.shape == (2, 3)
        np.testing.assert_array_equal(idx[0], [0, 0, 1])
        np.testing.assert_array_equal(idx[1], [3, 1, 2])

    def test_in_domain_per_mode(self):
        g = self._grid()
        X = np.array([[0.5, 0.5, 0.0], [2.0, 2.0, 0.0]])
        dom = g.in_domain(X)
        assert not dom[0, 0] and dom[0, 1] and dom[0, 2]
        assert dom[1, 0] and not dom[1, 1]

    def test_wrong_columns(self):
        with pytest.raises(ValueError):
            self._grid().cell_indices(np.ones((3, 2)))

    def test_empty_modes_rejected(self):
        with pytest.raises(ValueError):
            TensorGrid([])


@settings(max_examples=50, deadline=None)
@given(
    low=st.floats(0.1, 10.0),
    ratio=st.floats(2.0, 1000.0),
    n=st.integers(1, 64),
    q=st.floats(0.0, 1.0),
)
def test_property_midpoint_maps_to_own_cell(low, ratio, n, q):
    """Every midpoint must land in the cell it represents (log spacing)."""
    m = LogMode("x", low, low * ratio, n)
    cells = m.cell_of(m.midpoints)
    np.testing.assert_array_equal(cells, np.arange(n))
    # and an arbitrary in-range point lands in a valid cell
    x = low * ratio**q
    c = m.cell_of([x])[0]
    assert 0 <= c < n
    assert m.edges[c] <= x * (1 + 1e-12) and x <= m.edges[c + 1] * (1 + 1e-12)

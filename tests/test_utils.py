"""Tests for repro.utils: rng, serialization, validation, tables."""
import numpy as np
import pytest

from repro.utils import (
    as_generator,
    check_1d,
    check_2d,
    check_matching_rows,
    check_positive,
    format_table,
    load_model,
    model_size_bytes,
    save_model,
    spawn_rngs,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_deterministic(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_spawn_independent_streams(self):
        r1, r2 = spawn_rngs(7, 2)
        a = r1.random(100)
        b = r2.random(100)
        assert not np.allclose(a, b)

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(3, 4)]
        b = [g.random() for g in spawn_rngs(3, 4)]
        assert a == b

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero_ok(self):
        assert spawn_rngs(0, 0) == []


class TestSerialization:
    def test_size_positive(self):
        assert model_size_bytes({"a": np.zeros(10)}) > 80

    def test_size_hook_respected(self):
        class WithHook:
            payload = np.zeros(10000)

            def __getstate_for_size__(self):
                return {"tiny": 1}

        class NoHook:
            payload = np.zeros(10000)

        assert model_size_bytes(WithHook()) < 200
        # pickling an instance without hook includes the class dict payload
        assert model_size_bytes(NoHook.payload) > 10000 * 8

    def test_save_load_roundtrip(self, tmp_path):
        obj = {"w": np.arange(5.0), "name": "m"}
        path = tmp_path / "model.pkl"
        n = save_model(obj, path)
        assert n == path.stat().st_size
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded["w"], obj["w"])
        assert loaded["name"] == "m"

    def test_canonical_array_preserves_values(self):
        from repro.utils.serialization import canonical_array

        native = np.array([1.0, 2.5, -3.0])
        assert canonical_array(native) is native  # already canonical: no-op
        # A non-native byte order must be *converted*, never reinterpreted
        # (a raw view would silently byteswap the values).
        swapped = native.astype(native.dtype.newbyteorder())
        out = canonical_array(swapped)
        np.testing.assert_array_equal(out, native)
        assert out.dtype is np.dtype("float64")
        ints = np.array([[1, 2], [3, 4]], dtype=np.intp)[:, ::-1]
        out = canonical_array(ints)  # non-contiguous input: compacted copy
        np.testing.assert_array_equal(out, ints)
        assert out.flags["C_CONTIGUOUS"]


class TestValidation:
    def test_check_1d(self):
        out = check_1d([1, 2, 3])
        assert out.shape == (3,) and out.dtype == float

    def test_check_1d_rejects_2d(self):
        with pytest.raises(ValueError):
            check_1d(np.ones((2, 2)))

    def test_check_2d_promotes_1d(self):
        assert check_2d([1.0, 2.0]).shape == (2, 1)

    def test_check_2d_rejects_3d(self):
        with pytest.raises(ValueError):
            check_2d(np.ones((2, 2, 2)))

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive([1.0, 0.0])

    def test_check_positive_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive([1.0, np.nan])

    def test_check_positive_empty_ok(self):
        check_positive(np.array([]))

    def test_matching_rows(self):
        with pytest.raises(ValueError):
            check_matching_rows(np.ones((3, 2)), np.ones(4))


class TestTables:
    def test_basic_render(self):
        s = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]])
        lines = s.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_scientific_formatting(self):
        s = format_table(["x"], [[1.23e-9]])
        assert "e-09" in s

    def test_zero_and_str(self):
        s = format_table(["x", "y"], [[0.0, "hi"]])
        assert "0" in s and "hi" in s

"""Tests for dataset generation and splits."""
import numpy as np
import pytest

from repro.apps import Broadcast, MatMul
from repro.datasets import (
    PAPER_TEST_SIZES,
    Dataset,
    extrapolation_split,
    generate_dataset,
    subsample,
    threshold_mask,
)


class TestDataset:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(np.ones((3, 2)), np.ones(4))

    def test_len_and_select(self):
        ds = Dataset(np.arange(10.0).reshape(5, 2), np.arange(5.0) + 1)
        assert len(ds) == 5
        sub = ds.select([0, 2])
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.y, [1.0, 3.0])


class TestGenerate:
    def test_deterministic(self):
        app = MatMul()
        a = generate_dataset(app, 64, seed=9)
        b = generate_dataset(app, 64, seed=9)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        app = MatMul()
        a = generate_dataset(app, 64, seed=1)
        b = generate_dataset(app, 64, seed=2)
        assert not np.allclose(a.X, b.X)

    def test_sigma_override(self):
        app = MatMul()
        ds = generate_dataset(app, 64, seed=0, sigma=0.0)
        np.testing.assert_allclose(ds.y, app.latent_time(ds.X))

    def test_subsample(self):
        app = MatMul()
        ds = generate_dataset(app, 128, seed=0)
        sub = subsample(ds, 32, seed=1)
        assert len(sub) == 32
        # every subsampled row exists in the pool
        pool = {tuple(r) for r in ds.X}
        assert all(tuple(r) in pool for r in sub.X)

    def test_subsample_too_large(self):
        app = MatMul()
        ds = generate_dataset(app, 16, seed=0)
        with pytest.raises(ValueError):
            subsample(ds, 17)

    def test_paper_test_sizes_recorded(self):
        assert PAPER_TEST_SIZES["kripke"] == 8745
        assert set(PAPER_TEST_SIZES) == {
            "matmul", "qr", "bcast", "exafmm", "amg", "kripke"
        }


class TestSplits:
    def test_threshold_mask(self):
        app = MatMul()
        ds = generate_dataset(app, 512, seed=0)
        mask = threshold_mask(app.space, ds.X, {"m": (2048, 4096)})
        col = app.space.column(ds.X, "m")
        np.testing.assert_array_equal(mask, (col >= 2048) & (col <= 4096))

    def test_extrapolation_split_disjoint_scales(self):
        app = MatMul()
        ds = generate_dataset(app, 4096, seed=0)
        split = extrapolation_split(
            app.space, ds, params=["m"], cutoff=512,
            test_bounds={"m": (2048, 4096)},
        )
        assert np.all(app.space.column(split.train.X, "m") < 512)
        te = app.space.column(split.test.X, "m")
        assert np.all((te >= 2048) & (te <= 4096))
        assert len(split.train) > 0 and len(split.test) > 0

    def test_empty_train_raises(self):
        app = MatMul()
        ds = generate_dataset(app, 256, seed=0)
        with pytest.raises(ValueError):
            extrapolation_split(
                app.space, ds, params=["m"], cutoff=1.0,
                test_bounds={"m": (2048, 4096)},
            )

    def test_empty_test_raises(self):
        app = Broadcast()
        ds = generate_dataset(app, 128, seed=0)
        with pytest.raises(ValueError):
            extrapolation_split(
                app.space, ds, params=["msg"], cutoff=2**20,
                test_bounds={"msg": (2**30, 2**31)},
            )

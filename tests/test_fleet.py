"""Fleet serving: shm model store, multi-process workers, hot-swap, supervision."""
from __future__ import annotations

import http.client
import json
import os
import signal
import time

import numpy as np
import pytest

from repro.apps import Broadcast
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.serve import ModelRegistry, ServeFleet
from repro.serve import shm_store
from repro.serve.fleet import make_worker_server
from repro.utils.serialization import model_digest

pytestmark = pytest.mark.skipif(
    not shm_store.shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fleet workers are forked"
)


@pytest.fixture(scope="module")
def bcast_data():
    app = Broadcast()
    train = generate_dataset(app, 512, seed=0)
    test = generate_dataset(app, 32, seed=1)
    return app, train, test


def _fit(app, train, seed=0, rank=2):
    return CPRModel(
        space=app.space, cells=4, rank=rank, seed=seed, max_sweeps=5
    ).fit(train.X, train.y)


@pytest.fixture(scope="module")
def fitted(bcast_data):
    app, train, _ = bcast_data
    return _fit(app, train)


def _rpc(port, body, timeout=10.0, retries=40):
    """POST one protocol request; retries connection-level failures.

    Retries matter twice here: right after fleet start (workers may not
    be listening yet) and across a worker crash (a SYN racing process
    death can be lost before respawn).
    """
    last = None
    for _ in range(retries):
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
            try:
                conn.request("POST", "/", json.dumps(body))
                response = conn.getresponse()
                return response.status, json.loads(response.read())
            finally:
                conn.close()
        except (ConnectionError, OSError) as exc:
            last = exc
            time.sleep(0.05)
    raise last


# -- shared-memory store -------------------------------------------------------


def test_shm_pack_attach_zero_copy(bcast_data, fitted):
    """Attached models predict identically off read-only shared views."""
    _, _, test = bcast_data
    digest = model_digest(fitted)
    shm = shm_store.pack_model(fitted, digest)
    try:
        model, lease = shm_store.attach_model(digest)
        np.testing.assert_allclose(model.predict(test.X), fitted.predict(test.X))
        # The heavy arrays are views into the segment, not copies.
        assert shm_store.shared_fraction(model) > 0.5
        assert shm_store.shared_fraction(fitted) == 0.0
        del model
        lease.release()
    finally:
        shm.unlink()
        shm.close()
    with pytest.raises(FileNotFoundError):
        shm_store.attach_model(digest)


def test_shm_store_idempotent_and_bounded(fitted):
    import hashlib

    digests = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(3)]
    with shm_store.ShmModelStore(max_segments=2) as store:
        assert store.ensure(digests[0], fitted) is True
        assert store.ensure(digests[0], fitted) is False  # already resident
        store.ensure(digests[1], fitted)
        store.ensure(digests[2], fitted)  # evicts digests[0] (LRU)
        assert store.digests() == [digests[1], digests[2]]
        with pytest.raises(FileNotFoundError):
            shm_store.attach_model(digests[0])
        model, lease = shm_store.attach_model(digests[2])
        del model
        lease.release()
    # close() unlinked the survivors exactly once.
    for digest in digests:
        with pytest.raises(FileNotFoundError):
            shm_store.attach_model(digest)


def test_shm_segment_names_fit_posix_limits():
    digest = "ab" * 32
    name = shm_store.segment_name(digest)
    assert len(name) <= 30  # macOS: 31 chars including the leading slash
    assert name == shm_store.segment_name(digest)  # deterministic rendezvous


# -- worker serving stack, in-process ------------------------------------------


def _worker_cfg(tmp_path, **overrides):
    cfg = {
        "registry_dir": str(tmp_path),
        "host": "127.0.0.1",
        "port": 0,
        "default_model": "m",
        "max_batch": 64,
        "max_delay_ms": 1.0,
        "max_inflight": 8,
        "shm": True,
        "attach_wait_s": 0.2,
    }
    cfg.update(overrides)
    return cfg


def test_worker_server_serves_from_shm(tmp_path, bcast_data, fitted):
    _, _, test = bcast_data
    reg = ModelRegistry(tmp_path)
    mv = reg.publish("m", fitted)
    with shm_store.ShmModelStore() as store:
        store.ensure(mv.digest, fitted)
        server = make_worker_server(_worker_cfg(tmp_path))
        try:
            ping = server.handle({"op": "ping"})
            assert ping == {"ok": True, "op": "ping", "pid": os.getpid()}
            resp = server.handle({"op": "predict", "x": test.X[:4].tolist()})
            assert resp["ok"] and resp["model"] == "m@v1"
            np.testing.assert_allclose(resp["y"], fitted.predict(test.X[:4]))
            stats = server.handle({"op": "stats"})
            assert stats["pid"] == os.getpid()
            assert stats["engines"][0]["source"] == "shm"
            # Worker registries never build a private deserialized cache.
            assert stats["registry"]["capacity"] == 0
        finally:
            server.close()


def test_worker_server_disk_fallback_without_segment(tmp_path, bcast_data, fitted):
    """A worker racing ahead of the packer must serve, not fail."""
    _, _, test = bcast_data
    ModelRegistry(tmp_path).publish("m", fitted)
    server = make_worker_server(_worker_cfg(tmp_path, attach_wait_s=0.0))
    try:
        resp = server.handle({"op": "predict", "x": test.X[:2].tolist()})
        assert resp["ok"]
        np.testing.assert_allclose(resp["y"], fitted.predict(test.X[:2]))
        stats = server.handle({"op": "stats"})
        assert stats["engines"][0]["source"] == "local"
    finally:
        server.close()


# -- the fleet proper ----------------------------------------------------------


@needs_fork
def test_fleet_serves_shared_models_and_hot_swaps(tmp_path, bcast_data, fitted):
    """End-to-end: shm-backed workers on one port, republish hot-swap.

    The acceptance property for the swap: while a cross-process publish
    of v2 propagates, every response is *exactly* v1's or v2's vector
    (matching its reported ref) — never a torn mix — and v2 arrives
    without any restart.
    """
    app, train, test = bcast_data
    ModelRegistry(tmp_path).publish("m", fitted)
    v2_model = _fit(app, train, seed=9, rank=3)
    Xq = test.X[:4]
    expect = {"m@v1": fitted.predict(Xq), "m@v2": v2_model.predict(Xq)}

    fleet = ServeFleet(
        tmp_path, workers=2, default_model="m", poll_interval_s=0.1
    )
    with fleet:
        status, out = _rpc(fleet.port, {"op": "predict", "x": Xq.tolist()})
        assert status == 200 and out["ok"] and out["model"] == "m@v1"
        np.testing.assert_allclose(out["y"], expect["m@v1"])

        # Some worker that has served a predict reports shm-backed bytes
        # and a pid the parent is supervising.
        source = None
        deadline = time.time() + 15
        while time.time() < deadline and source is None:
            _rpc(fleet.port, {"op": "predict", "x": Xq.tolist()})
            _, stats = _rpc(fleet.port, {"op": "stats"})
            assert stats["pid"] in fleet.worker_pids()
            if stats["engines"]:
                source = stats["engines"][0]["source"]
        assert source == "shm"

        # Republish from a *different* registry object (another process,
        # as far as the fleet can tell): only the manifest watch can see
        # it.
        ModelRegistry(tmp_path).publish("m", v2_model)
        served = set()
        deadline = time.time() + 15
        while time.time() < deadline:
            _, out = _rpc(fleet.port, {"op": "predict", "x": Xq.tolist()})
            assert out["ok"]
            served.add(out["model"])
            np.testing.assert_allclose(out["y"], expect[out["model"]])
            if out["model"] == "m@v2":
                break
            time.sleep(0.02)
        assert "m@v2" in served
    assert fleet.worker_pids() == []  # stop() tears every worker down


@needs_fork
def test_fleet_respawns_crashed_worker(tmp_path, bcast_data, fitted):
    _, _, test = bcast_data
    ModelRegistry(tmp_path).publish("m", fitted)
    fleet = ServeFleet(
        tmp_path, workers=2, default_model="m", poll_interval_s=0.05
    )
    with fleet:
        before = fleet.worker_pids()
        assert len(before) == 2
        os.kill(before[0], signal.SIGKILL)
        deadline = time.time() + 15
        while time.time() < deadline:
            if fleet.respawns >= 1 and len(fleet.worker_pids()) == 2:
                break
            time.sleep(0.05)
        after = fleet.worker_pids()
        assert len(after) == 2 and before[0] not in after
        # The fleet keeps answering across the crash (retries absorb the
        # window where a connection lands on the dying socket).
        _, out = _rpc(fleet.port, {"op": "predict", "x": test.X[:2].tolist()})
        assert out["ok"]
        np.testing.assert_allclose(out["y"], fitted.predict(test.X[:2]))


def _pinned_conn(port, timeout=5.0):
    """A persistent connection plus the pid of the worker it landed on.

    With SO_REUSEPORT the kernel assigns each TCP connection to one
    worker's accept queue at connect time, so a keep-alive connection
    keeps talking to that same worker for its whole life — which is what
    lets a test address a *specific* worker through the shared port.
    """
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request("POST", "/", json.dumps({"op": "ping"}))
    out = json.loads(conn.getresponse().read())
    return conn, out["pid"]


@needs_fork
def test_fleet_hang_watchdog_replaces_stopped_worker(tmp_path, bcast_data, fitted):
    """A SIGSTOP'd worker is detected and replaced; survivors' in-flight
    clients see zero errors throughout."""
    _, _, test = bcast_data
    ModelRegistry(tmp_path).publish("m", fitted)
    Xq = test.X[:2]
    expect = fitted.predict(Xq)
    fleet = ServeFleet(
        tmp_path, workers=2, default_model="m", poll_interval_s=0.05,
        hang_timeout_s=1.0,
    )
    with fleet:
        # Pin one persistent connection to each worker.
        conns: dict = {}
        deadline = time.time() + 15
        while len(conns) < 2 and time.time() < deadline:
            try:
                conn, pid = _pinned_conn(fleet.port)
            except (ConnectionError, OSError):
                time.sleep(0.05)
                continue
            if pid in conns:
                conn.close()
            else:
                conns[pid] = conn
        assert len(conns) == 2
        stopped, survivor = list(conns)
        conns[stopped].close()

        os.kill(stopped, signal.SIGSTOP)
        # The survivor's clients must not observe a single failure while
        # the watchdog notices the frozen worker, kills, and replaces it.
        survivor_conn = conns[survivor]
        errors = 0
        deadline = time.time() + 20
        while time.time() < deadline and (
            fleet.hang_kills < 1
            or stopped in fleet.worker_pids()
            or len(fleet.worker_pids()) < 2
        ):
            survivor_conn.request(
                "POST", "/", json.dumps({"op": "predict", "x": Xq.tolist()})
            )
            resp = survivor_conn.getresponse()
            out = json.loads(resp.read())
            if resp.status != 200 or not out.get("ok"):
                errors += 1
            else:
                np.testing.assert_allclose(out["y"], expect)
            time.sleep(0.02)
        survivor_conn.close()
        assert errors == 0
        assert fleet.hang_kills >= 1 and fleet.respawns >= 1
        after = fleet.worker_pids()
        assert len(after) == 2 and stopped not in after
        # And the replacement answers exactly through the shared port.
        _, out = _rpc(fleet.port, {"op": "predict", "x": Xq.tolist()})
        assert out["ok"]
        np.testing.assert_allclose(out["y"], expect)


@needs_fork
def test_fleet_inherited_fd_mode(tmp_path, bcast_data, fitted):
    """The no-SO_REUSEPORT fallback serves from one inherited socket."""
    _, _, test = bcast_data
    ModelRegistry(tmp_path).publish("m", fitted)
    fleet = ServeFleet(
        tmp_path, workers=2, default_model="m", socket_mode="inherit",
        poll_interval_s=0.1,
    )
    with fleet:
        for _ in range(4):
            status, out = _rpc(fleet.port, {"op": "predict", "x": test.X[:3].tolist()})
            assert status == 200 and out["ok"]
            np.testing.assert_allclose(out["y"], fitted.predict(test.X[:3]))


def test_fleet_constructor_validation(tmp_path):
    with pytest.raises(ValueError, match="workers"):
        ServeFleet(tmp_path, workers=0)
    with pytest.raises(ValueError, match="socket_mode"):
        ServeFleet(tmp_path, socket_mode="magic")


def test_cli_workers_requires_http(tmp_path):
    from repro.serve.server import main

    with pytest.raises(SystemExit):
        main(["--registry", str(tmp_path), "--stdin", "--workers", "2"])

"""Tests for the parallel, resumable experiment runtime.

Covers the satellite contract from the runtime PR: content-addressed
hashing, cache hit/miss/invalidation, parallel-vs-sequential result
equality on a Figure-5-style sweep, and resume-after-interrupt.
"""
import json

import numpy as np
import pytest

from repro.runtime import (
    CACHE_SCHEMA_VERSION,
    JobSpec,
    ResultCache,
    Runtime,
    canonical,
    execute,
    to_jsonable,
)
from repro.runtime.spec import resolve_runner

_TUNE = "repro.experiments.harness:run_tune_job"


def tune_spec(**over) -> JobSpec:
    """A small, fast tuning job (KNN on MatMul)."""
    params = dict(
        app="matmul", model="knn", n_train=192, n_test=96,
        grid=[{"k": 1}, {"k": 2}], seed=0,
    )
    params.update(over)
    return JobSpec(_TUNE, params)


def cpr_spec(n_train: int, seed: int = 0) -> JobSpec:
    """A Figure-5-style CPR job: rank grid + density on a fixed pool."""
    return JobSpec(
        _TUNE,
        dict(
            app="matmul", model="cpr", n_train=n_train, n_test=96,
            grid=[{"cells": 4, "rank": r, "regularization": 1e-5} for r in (1, 2)],
            seed=seed, pool_n=512, subsample_seed=seed + n_train,
            density_cells=4,
        ),
    )


class TestCanonical:
    def test_numpy_scalars_normalize(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.bool_(True)) is True
        assert to_jsonable((1, 2)) == [1, 2]
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_canonical_sorts_keys(self):
        assert canonical({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestJobSpec:
    def test_key_is_stable(self):
        assert tune_spec().key == tune_spec().key

    def test_key_ignores_container_flavour(self):
        a = tune_spec(grid=[{"k": 1}], sizes=(1, 2))
        b = tune_spec(grid=[{"k": np.int64(1)}], sizes=[1, 2])
        assert a.key == b.key

    def test_key_changes_with_params(self):
        assert tune_spec(seed=0).key != tune_spec(seed=1).key
        assert tune_spec().key != tune_spec(grid=[{"k": 3}]).key

    def test_key_changes_with_runner(self):
        a = JobSpec("repro.experiments.figure1:run_function_job", {"function": "f1"})
        b = JobSpec("repro.experiments.table1:run_table_job", {"function": "f1"})
        assert a.key != b.key

    def test_bad_fn_rejected(self):
        with pytest.raises(ValueError):
            JobSpec("no_colon_here", {})

    def test_resolve_runner(self):
        fn = resolve_runner(_TUNE)
        assert callable(fn)
        with pytest.raises(ValueError):
            resolve_runner("repro.experiments.harness:not_a_function")

    def test_describe_mentions_model(self):
        assert "knn" in tune_spec().describe()


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(tune_spec()) is None
        assert tune_spec() not in cache

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tune_spec()
        cache.put(spec, {"best_error": 0.25, "params": (1, 2)})
        out = cache.get(spec)
        assert out == {"best_error": 0.25, "params": [1, 2]}
        assert spec in cache and len(cache) == 1

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tune_spec()
        path = cache.put(spec, {"x": 1})
        path.write_text("{not json")
        assert cache.get(spec) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tune_spec()
        path = cache.put(spec, {"x": 1})
        record = json.loads(path.read_text())
        record["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(record))
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(tune_spec(), {"x": 1})
        cache.put(tune_spec(seed=1), {"x": 2})
        assert cache.clear() == 2
        assert len(cache) == 0


class TestRuntime:
    def test_rejects_non_specs(self):
        with pytest.raises(TypeError):
            Runtime().run([{"fn": _TUNE}])

    def test_sequential_executes_and_returns_records(self):
        rt = Runtime(jobs=1)
        (rec,) = rt.run([tune_spec()])
        assert rec["skipped"] is False
        assert rec["model"] == "knn" and rec["best_error"] > 0
        assert rt.executed == 1 and rt.hits == 0

    def test_cache_hit_on_rerun(self, tmp_path):
        rt = Runtime(jobs=1, cache_dir=tmp_path)
        specs = [tune_spec(), tune_spec(seed=1)]
        first = rt.run(specs)
        assert rt.snapshot() == (0, 2)
        second = rt.run(specs)
        assert rt.snapshot() == (2, 2)  # all answered from cache
        assert second == first

    def test_spec_change_invalidates(self, tmp_path):
        rt = Runtime(jobs=1, cache_dir=tmp_path)
        rt.run([tune_spec()])
        rt.run([tune_spec(grid=[{"k": 1}, {"k": 4}])])
        assert rt.snapshot() == (0, 2)  # changed grid -> miss, re-executed

    def test_resume_after_interrupt(self, tmp_path):
        specs = [tune_spec(seed=s) for s in range(4)]
        # "Interrupted" sweep: only the first half completed.
        rt1 = Runtime(jobs=1, cache_dir=tmp_path)
        done = rt1.run(specs[:2])
        # Resumed sweep: completed jobs are skipped, remainder executed.
        rt2 = Runtime(jobs=1, cache_dir=tmp_path)
        full = rt2.run(specs)
        assert rt2.snapshot() == (2, 2)
        assert full[:2] == done

    def test_execute_defaults_to_sequential(self):
        (rec,) = execute([tune_spec()])
        assert rec["model"] == "knn"

    def test_sequential_run_preserves_global_rng(self):
        """Per-job reseeding must not leak into the caller's RNG stream."""
        np.random.seed(123)
        expected = np.random.rand(3)
        np.random.seed(123)
        Runtime(jobs=1).run([tune_spec()])
        np.testing.assert_array_equal(np.random.rand(3), expected)

    def test_completed_jobs_cached_before_failure(self, tmp_path):
        """A failing job must not discard finished work (mid-batch resume)."""
        good = [tune_spec(seed=10), tune_spec(seed=11)]
        bad = JobSpec(_TUNE, {"app": "matmul"})  # missing required kwargs
        rt = Runtime(jobs=2, cache_dir=tmp_path)
        with pytest.raises(TypeError):
            rt.run([*good, bad])
        # resumed sweep: the two good jobs answer from cache
        rt2 = Runtime(jobs=1, cache_dir=tmp_path)
        rt2.run(good)
        assert rt2.snapshot() == (2, 0)

    def test_sequential_failure_keeps_earlier_records(self, tmp_path):
        good = tune_spec(seed=12)
        bad = JobSpec(_TUNE, {"app": "matmul"})
        rt = Runtime(jobs=1, cache_dir=tmp_path)
        with pytest.raises(TypeError):
            rt.run([good, bad])
        rt2 = Runtime(jobs=1, cache_dir=tmp_path)
        rt2.run([good])
        assert rt2.snapshot() == (1, 0)

    def test_cached_elapsed_is_per_job(self, tmp_path):
        from repro.runtime import ResultCache
        import json as _json

        rt = Runtime(jobs=1, cache_dir=tmp_path)
        spec = tune_spec(seed=13)
        rt.run([spec])
        record = _json.loads(ResultCache(tmp_path).path_for(spec).read_text())
        assert record["elapsed_seconds"] > 0


def _strip_times(records: list) -> list:
    """Zero the wall-clock fit timings (the only non-deterministic field)."""
    out = []
    for rec in records:
        rec = dict(rec)
        rec["results"] = [[p, e, s, 0.0] for p, e, s, _ in rec.get("results", [])]
        out.append(rec)
    return out


class TestParallelEquality:
    """Figure-5-style sweep: pool + subsample + density + rank grid."""

    def test_parallel_matches_sequential(self, tmp_path):
        specs = [cpr_spec(n) for n in (96, 128, 192, 256)]
        seq = Runtime(jobs=1).run(specs)
        par = Runtime(jobs=2, cache_dir=tmp_path / "cache").run(specs)
        # Identical numbers regardless of worker count (timings excepted).
        assert _strip_times(par) == _strip_times(seq)
        # Densities and errors are real numbers, not artifacts of transport.
        for rec in seq:
            assert 0 < rec["density"] <= 1
            assert np.isfinite(rec["best_error"])
        # And a warm rerun replays the parallel run's records from disk.
        rt = Runtime(jobs=2, cache_dir=tmp_path / "cache")
        assert rt.run(specs) == par
        assert rt.snapshot() == (4, 0)


class TestRunTuneJob:
    def test_record_contract(self):
        (rec,) = execute([cpr_spec(128)])
        assert rec["app"] == "matmul" and rec["n_train"] == 128
        assert rec["skipped"] is False
        assert isinstance(rec["best_params"], dict)
        assert len(rec["results"]) == 2  # one entry per rank
        assert rec["best_error"] == min(r[1] for r in rec["results"])

    def test_no_density_unless_requested(self):
        (rec,) = execute([tune_spec()])
        assert "density" not in rec

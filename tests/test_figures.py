"""Structural tests for the figure/table experiment drivers.

Full-scale shape assertions live in the benchmark suite; here each driver
is exercised at the smallest useful size and its output contract checked,
plus the cheap scientific invariants (Figure 1 monotonicity, Table 1
equivalences).
"""
import numpy as np

from repro.experiments import figure1, figure8, table1
from repro.experiments.figure1 import FUNCTIONS, build_matrix, svd_mlogq_curve


class TestFigure1:
    def test_output_contract(self):
        out = figure1.run(seed=0)
        assert out["headers"] == ["function", "rank", "mlogq_raw", "mlogq_log"]
        assert len(out["rows"]) == 3 * 6

    def test_log_transform_monotone_decrease(self):
        """The paper's Figure 1 claim, exactly."""
        ranks = [1, 2, 4, 8, 16]
        for name in FUNCTIONS:
            M = build_matrix(name, seed=0)
            errs = svd_mlogq_curve(M, ranks, log_transform=True)
            diffs = np.diff(errs)
            assert np.all(diffs <= 1e-9), f"{name} not monotone: {errs}"

    def test_raw_transform_fails_on_piecewise(self):
        """Raw SVD stagnates/increases for the two-regime function f2."""
        M = build_matrix("f2", seed=0)
        raw = svd_mlogq_curve(M, [1, 2, 4, 8], log_transform=False)
        log = svd_mlogq_curve(M, [1, 2, 4, 8], log_transform=True)
        assert max(np.diff(raw)) > 0  # error increases at some rank
        assert log[-1] < raw[-1]

    def test_matrix_positive(self):
        for name in FUNCTIONS:
            assert np.all(build_matrix(name) > 0)

    def test_noise_only_on_f1_f2(self):
        a = build_matrix("f3", seed=0)
        b = build_matrix("f3", seed=99)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(build_matrix("f1", 100, 0), build_matrix("f1", 100, 99))


class TestTable1:
    def test_exact_rows_machine_precision(self):
        out = table1.run(seed=0)
        for row in out["rows"]:
            name, kind, eps_mag, direct, via, rel_gap = row
            if kind == "exact":
                assert rel_gap < 1e-9, row

    def test_taylor_rows_tighten_with_eps(self):
        out = table1.run(seed=0)
        gaps = {}
        for name, kind, eps_mag, direct, via, rel_gap in out["rows"]:
            if kind == "taylor":
                gaps.setdefault(name, {})[eps_mag] = rel_gap
        for name, by_mag in gaps.items():
            assert by_mag[0.01] < by_mag[0.5], name


class TestFigure8Helpers:
    def test_snap_pow2(self):
        from repro.experiments.figure8 import _snap_pow2

        col = np.array([1.0, 3.0, 100.0, 200.0])
        snapped = _snap_pow2(col, 0, 7)
        np.testing.assert_array_equal(snapped, [1.0, 4.0, 128.0, 128.0])

    def test_build_pool_bcast_snapped(self):
        app, X, y = figure8.build_pool("bcast", 512, seed=0)
        nodes = np.unique(X[:, 0])
        assert set(nodes) <= {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}
        assert np.all(y > 0)

    def test_scenarios_well_formed(self):
        for name, sc in figure8.SCENARIOS.items():
            assert sc["app"] in ("matmul", "bcast")
            assert len(sc["cutoffs"]) >= 2
            assert set(sc["test"]) >= set()

    def test_single_scenario_single_model_runs(self):
        out = figure8.run(scale="smoke", seed=0, models=["knn"],
                          scenarios=["mm_m"])
        assert out["headers"][0] == "scenario"
        assert len(out["rows"]) >= 2
        for row in out["rows"]:
            assert row[0] == "mm_m" and row[2] == "knn"
            assert np.isfinite(row[3])

"""Tests for Parameter / ParameterSpace / Application plumbing."""
import numpy as np
import pytest

from repro.apps.base import Application, Parameter, ParameterSpace


class TestParameter:
    def test_numeric_needs_range(self):
        with pytest.raises(ValueError):
            Parameter("x", role="input")

    def test_bad_role(self):
        with pytest.raises(ValueError):
            Parameter("x", role="wat", low=1, high=2)

    def test_low_ge_high(self):
        with pytest.raises(ValueError):
            Parameter("x", role="input", low=2, high=2)

    def test_log_scale_requires_positive(self):
        with pytest.raises(ValueError):
            Parameter("x", role="input", low=0, high=5)

    def test_zero_low_ok_with_linear(self):
        p = Parameter("x", role="input", low=0, high=5, scale="linear")
        assert p.resolved_scale == "linear"

    def test_auto_scale_by_role(self):
        assert Parameter("a", role="input", low=1, high=2).resolved_scale == "log"
        assert Parameter("b", role="arch", low=1, high=2).resolved_scale == "log"
        assert Parameter("c", role="config", low=1, high=2).resolved_scale == "linear"

    def test_categorical_requires_two(self):
        with pytest.raises(ValueError):
            Parameter("x", categories=("one",))

    def test_categorical_props(self):
        p = Parameter("x", categories=("a", "b", "c"))
        assert p.is_categorical and p.n_categories == 3

    def test_n_categories_on_numeric_raises(self):
        with pytest.raises(ValueError):
            _ = Parameter("x", role="input", low=1, high=2).n_categories

    def test_sample_in_range(self, rng):
        p = Parameter("x", role="input", low=4, high=4096)
        v = p.sample(500, rng)
        assert np.all((v >= 4) & (v <= 4096))

    def test_sample_integer_rounds(self, rng):
        p = Parameter("x", role="config", low=1, high=9, integer=True)
        v = p.sample(200, rng)
        assert np.all(v == np.rint(v))

    def test_log_sampling_covers_decades(self, rng):
        p = Parameter("x", role="input", low=1, high=10000)
        v = p.sample(4000, rng)
        # log-uniform: ~half the samples below sqrt(low*high)=100
        frac_small = np.mean(v < 100)
        assert 0.4 < frac_small < 0.6

    def test_uniform_sampling_not_log(self, rng):
        p = Parameter("x", role="config", low=1, high=10000)
        v = p.sample(4000, rng)
        assert np.mean(v < 100) < 0.05

    def test_categorical_sample_indices(self, rng):
        p = Parameter("x", categories=tuple("abcd"))
        v = p.sample(200, rng)
        assert set(np.unique(v)) <= {0.0, 1.0, 2.0, 3.0}

    def test_contains(self):
        p = Parameter("x", role="input", low=2, high=8)
        np.testing.assert_array_equal(
            p.contains([1, 2, 5, 8, 9]), [False, True, True, True, False]
        )


class TestParameterSpace:
    def _space(self):
        return ParameterSpace(
            [
                Parameter("n", role="input", low=16, high=1024, integer=True),
                Parameter("b", role="config", low=1, high=64, integer=True),
                Parameter("alg", categories=("x", "y", "z")),
            ],
            name="toy",
        )

    def test_duplicate_names_rejected(self):
        p = Parameter("n", role="input", low=1, high=2)
        with pytest.raises(ValueError):
            ParameterSpace([p, p])

    def test_dimension_and_names(self):
        sp = self._space()
        assert sp.dimension == 3
        assert sp.names == ("n", "b", "alg")

    def test_index_and_column(self):
        sp = self._space()
        X = sp.sample(10, np.random.default_rng(0))
        assert sp.index_of("b") == 1
        np.testing.assert_array_equal(sp.column(X, "b"), X[:, 1])
        with pytest.raises(KeyError):
            sp.index_of("zzz")

    def test_getitem(self):
        sp = self._space()
        assert sp["alg"].is_categorical

    def test_sample_shape_and_validity(self):
        sp = self._space()
        X = sp.sample(100, np.random.default_rng(1))
        assert X.shape == (100, 3)
        assert sp.contains(X).all()

    def test_sample_zero(self):
        assert self._space().sample(0).shape == (0, 3)

    def test_constraint_enforced(self):
        sp = ParameterSpace(
            [
                Parameter("a", role="arch", low=1, high=64, integer=True),
                Parameter("b", role="arch", low=1, high=64, integer=True),
            ],
            constraint=lambda X: (X[:, 0] * X[:, 1] >= 64)
            & (X[:, 0] * X[:, 1] <= 128),
        )
        X = sp.sample(200, np.random.default_rng(2))
        prod = X[:, 0] * X[:, 1]
        assert np.all((prod >= 64) & (prod <= 128))

    def test_impossible_constraint_raises(self):
        sp = ParameterSpace(
            [Parameter("a", role="input", low=1, high=2)],
            constraint=lambda X: np.zeros(len(X), dtype=bool),
        )
        with pytest.raises(RuntimeError):
            sp.sample(10, np.random.default_rng(0), max_tries=3)

    def test_validate_shapes(self):
        sp = self._space()
        with pytest.raises(ValueError):
            sp.validate(np.ones((5, 2)))
        assert sp.validate(np.ones(3)).shape == (1, 3)

    def test_contains_flags_bad_rows(self):
        sp = self._space()
        X = sp.sample(5, np.random.default_rng(3))
        X[0, 0] = 1e9
        assert not sp.contains(X)[0]
        assert sp.contains(X)[1:].all()


class TestApplicationBase:
    def test_measure_rejects_nonpositive_latent(self):
        class Bad(Application):
            def __init__(self):
                super().__init__(name="bad")

            @property
            def space(self):
                return ParameterSpace([Parameter("x", role="input", low=1, high=2)])

            def latent_time(self, X):
                return np.zeros(len(X))

        with pytest.raises(RuntimeError):
            Bad().measure(np.array([[1.5]]))

    def test_sigma_zero_is_latent(self, mm_data):
        app, train, _ = mm_data
        t1 = app.measure(train.X[:50], sigma=0)
        t2 = app.latent_time(train.X[:50])
        np.testing.assert_allclose(t1, t2)

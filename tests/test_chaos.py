"""Chaos suite: tier-1 invariants replayed under injected faults.

Every test here follows the same shape: install a deterministic
:class:`repro.faults.FaultPlan` against one or more named injection
sites, run a scenario the ordinary test suite already proves correct,
and assert the *same* invariants hold — exact per-version predictions,
journal-resume bookkeeping, registry cache coherence, no leaked
``/dev/shm/repro-*`` segments — while the fault fires.

Fault classes exercised (the acceptance floor is five):

1. **I/O errors** — registry blob write/read, runtime job execution
   (absorbed by ``retry_call``).
2. **Torn writes** — a version manifest truncated mid-file (latest
   resolution falls back to the newest readable predecessor).
3. **Worker crashes** — a fleet worker ``os._exit``-ing mid-request
   (respawn), and a deterministic boot crash (crash-loop breaker).
4. **Worker hangs** — SIGSTOP via the fault layer (heartbeat watchdog)
   and a wedged predict (per-request 504 + flush-worker replacement).
5. **Refit/publish failures** — the streaming trainer keeps serving the
   incumbent, backs off, and recovers.

``REPRO_CHAOS_SEED`` selects the plan seed (CI pins it; default 0) —
per-site RNG streams are sha256-derived, so a given seed reproduces the
same schedule on any machine.
"""
from __future__ import annotations

import glob
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.apps import Broadcast
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.faults import FaultPlan, retry_call
from repro.runtime import JobSpec, Runtime
from repro.serve import (
    MicroBatcher,
    ModelRegistry,
    ModelServer,
    PredictTimeout,
    ServeFleet,
    shm_store,
)
from repro.serve.fleet import make_worker_server
from repro.serve.server import Overloaded  # noqa: F401  (protocol sibling)
from repro.stream import DriftMonitor, IncrementalTrainer, StreamSession
from repro.stream.buffer import ObservationBuffer
from repro.stream.runner import make_model_factory

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fleet workers are forked"
)
needs_shm = pytest.mark.skipif(
    not shm_store.shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


def plan(**kwargs) -> FaultPlan:
    return FaultPlan(seed=CHAOS_SEED, **kwargs)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """No test may leave a plan installed for its neighbours."""
    yield
    faults.clear()


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/repro-*")) if os.path.isdir("/dev/shm") else set()


@pytest.fixture(scope="module")
def bcast_data():
    app = Broadcast()
    train = generate_dataset(app, 256, seed=0)
    test = generate_dataset(app, 16, seed=1)
    return app, train, test


def _fit(app, train, seed=0, rank=2):
    return CPRModel(
        space=app.space, cells=4, rank=rank, seed=seed, max_sweeps=5
    ).fit(train.X, train.y)


@pytest.fixture(scope="module")
def fitted(bcast_data):
    app, train, _ = bcast_data
    return _fit(app, train)


def _factory(app, **kw):
    params = dict(cells=4, rank=2, max_sweeps=5, seed=0)
    params.update(kw)
    return make_model_factory(app.space, **params)


def _rpc(port, body, timeout=5.0, retries=100):
    """POST one protocol request; retries connection-level failures."""
    last = None
    for _ in range(retries):
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
            try:
                conn.request("POST", "/", json.dumps(body))
                response = conn.getresponse()
                return response.status, json.loads(response.read())
            finally:
                conn.close()
        except (ConnectionError, OSError) as exc:
            last = exc
            time.sleep(0.05)
    raise last


# -- the fault framework itself ------------------------------------------------


class TestFaultPlan:
    def test_disabled_is_inert(self):
        assert faults.active() is None
        faults.fault_point("nowhere")  # no plan: must be a no-op
        assert faults.mangle("nowhere", b"abc") == b"abc"

    def test_deterministic_schedule_per_seed(self):
        def schedule(seed):
            p = FaultPlan(seed=seed).on(
                "x", "error", prob=0.5, max_fires=None
            )
            fired = []
            for _ in range(32):
                try:
                    p.check("x")
                    fired.append(0)
                except OSError:
                    fired.append(1)
            return fired

        assert schedule(CHAOS_SEED) == schedule(CHAOS_SEED)
        assert 0 < sum(schedule(CHAOS_SEED)) < 32  # actually probabilistic
        # The firing stream is site-keyed, not hit-order-keyed: another
        # site's draws cannot perturb this one's.
        p = FaultPlan(seed=CHAOS_SEED)
        p.on("x", "error", prob=0.5, max_fires=None)
        p.on("y", "error", prob=0.5, max_fires=None)
        fired = []
        for _ in range(32):
            try:
                p.check("y")
            except OSError:
                pass
            try:
                p.check("x")
                fired.append(0)
            except OSError:
                fired.append(1)
        assert fired == schedule(CHAOS_SEED)

    def test_after_and_max_fires_budget(self):
        p = plan().on("s", "error", after=2, max_fires=2)
        outcomes = []
        for _ in range(6):
            try:
                p.check("s")
                outcomes.append("ok")
            except OSError:
                outcomes.append("boom")
        assert outcomes == ["ok", "ok", "boom", "boom", "ok", "ok"]
        assert p.hits("s") == 6 and p.fires("s") == 2

    def test_torn_truncates_bytes(self):
        p = plan().on("w", "torn", keep_fraction=0.25)
        data = bytes(range(64))
        torn = p.corrupt("w", data)
        assert torn == data[:16]
        assert p.corrupt("w", data) == data  # budget spent: clean again

    def test_json_roundtrip_and_env_transport(self):
        p = plan().on("a", "error", error="timeout", max_fires=3)
        p.on("b", "hang", delay_s=0.5)
        clone = FaultPlan.from_json(p.to_json())
        assert clone.seed == p.seed and clone.sites() == ["a", "b"]
        try:
            faults.install_from_env({faults.ENV_VAR: p.to_json()})
            assert faults.active().sites() == ["a", "b"]
            with pytest.raises(TimeoutError):
                faults.fault_point("a")
        finally:
            faults.clear()
        assert faults.install_from_env({}) is None
        assert faults.active() is None  # an empty env never clears... or installs

    def test_injected_scopes_and_restores(self):
        outer = faults.install(plan())
        try:
            with faults.injected(plan().on("q", "error")) as inner:
                assert faults.active() is inner
                with pytest.raises(OSError):
                    faults.fault_point("q")
            assert faults.active() is outer
        finally:
            faults.clear()

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="kind"):
            plan().on("s", "melt")
        with pytest.raises(ValueError, match="error class"):
            plan().on("s", "error", error="kernel_panic")
        with pytest.raises(ValueError, match="prob"):
            plan().on("s", "error", prob=1.5)


class TestRetryCall:
    def test_transient_then_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        assert retry_call(flaky, attempts=3, base_delay_s=0.0) == "done"
        assert len(calls) == 3

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def bug():
            calls.append(1)
            raise ValueError("deterministic")

        with pytest.raises(ValueError):
            retry_call(bug, attempts=5, base_delay_s=0.0)
        assert len(calls) == 1

    def test_budget_exhaustion_raises_last(self):
        with pytest.raises(OSError):
            retry_call(
                lambda: (_ for _ in ()).throw(OSError("always")),
                attempts=3, base_delay_s=0.0,
            )

    def test_deadline_cuts_retries_short(self):
        calls = []

        def slow_fail():
            calls.append(1)
            raise OSError("down")

        t0 = time.monotonic()
        with pytest.raises(OSError):
            retry_call(
                slow_fail, attempts=50,
                base_delay_s=0.2, max_delay_s=0.2, deadline_s=0.05, seed=1,
            )
        assert time.monotonic() - t0 < 1.0
        assert len(calls) < 50


# -- fault class 1: I/O errors through the registry ----------------------------


class TestRegistryIOFaults:
    def test_publish_retries_transient_blob_write(self, tmp_path, bcast_data, fitted):
        _, _, test = bcast_data
        reg = ModelRegistry(tmp_path)
        p = plan().on("registry.write", "error", max_fires=1)
        with faults.injected(p):
            mv = reg.publish("m", fitted)
        assert p.fires("registry.write") == 1  # it did fail once
        np.testing.assert_allclose(
            reg.load("m").predict(test.X), fitted.predict(test.X)
        )
        assert mv.version == 1

    def test_persistent_write_failure_propagates_before_any_claim(
        self, tmp_path, fitted
    ):
        reg = ModelRegistry(tmp_path)
        with faults.injected(plan().on("registry.write", "error", max_fires=None)):
            with pytest.raises(OSError):
                reg.publish("m", fitted)
        # No manifest may reference a blob that never landed.
        assert "m" not in reg
        assert list((tmp_path / "models").glob("*/*.json")) == []

    def test_load_retries_transient_blob_read(self, tmp_path, bcast_data, fitted):
        _, _, test = bcast_data
        reg = ModelRegistry(tmp_path, cache_size=0)  # force the disk path
        reg.publish("m", fitted)
        p = plan().on("registry.read", "error", max_fires=1)
        with faults.injected(p):
            model = reg.load("m")
        assert p.fires("registry.read") == 1
        np.testing.assert_allclose(model.predict(test.X), fitted.predict(test.X))

    def test_cache_coherence_after_faulted_load(self, tmp_path, bcast_data, fitted):
        """A load that needed retries must not poison the digest cache."""
        app, train, test = bcast_data
        reg = ModelRegistry(tmp_path, cache_size=4)
        reg.publish("m", fitted)
        with faults.injected(plan().on("registry.read", "error", max_fires=1)):
            reg.load("m")
        v2 = _fit(app, train, seed=9, rank=3)
        reg.publish("m", v2)
        np.testing.assert_allclose(reg.load("m").predict(test.X), v2.predict(test.X))
        np.testing.assert_allclose(
            reg.load("m", version=1).predict(test.X), fitted.predict(test.X)
        )


# -- fault class 2: torn writes ------------------------------------------------


class TestTornManifest:
    def test_latest_falls_back_over_torn_manifest(self, tmp_path, bcast_data, fitted):
        app, train, test = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", fitted)
        v2 = _fit(app, train, seed=9, rank=3)
        with faults.injected(plan().on("registry.manifest", "torn")):
            reg.publish("m", v2)  # v2's manifest lands half-written

        fresh = ModelRegistry(tmp_path)  # no memoized state: reads disk
        mv = fresh.resolve("m")
        assert mv.version == 1  # incumbent, not the torn v2
        np.testing.assert_allclose(
            fresh.load("m").predict(test.X), fitted.predict(test.X)
        )
        with pytest.raises(KeyError):  # explicit version: never silently remapped
            fresh.resolve("m", version=2)
        # A later good publish claims v3 and heals the latest pointer.
        reg2 = ModelRegistry(tmp_path)
        mv3 = reg2.publish("m", v2)
        assert mv3.version == 3
        np.testing.assert_allclose(
            fresh.load("m").predict(test.X), v2.predict(test.X)
        )

    def test_server_keeps_answering_over_torn_latest(
        self, tmp_path, bcast_data, fitted
    ):
        _, _, test = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", fitted)
        with faults.injected(plan().on("registry.manifest", "torn")):
            reg.publish("m", fitted)
        server = ModelServer(ModelRegistry(tmp_path), default_model="m")
        resp = server.handle({"op": "predict", "x": test.X[:4].tolist()})
        assert resp["ok"] and resp["model"] == "m@v1"
        np.testing.assert_allclose(resp["y"], fitted.predict(test.X[:4]))
        server.close()


# -- fault class 1b: I/O errors through the runtime ----------------------------


def _tune_spec(seed=0) -> JobSpec:
    return JobSpec(
        "repro.experiments.harness:run_tune_job",
        dict(
            app="matmul", model="knn", n_train=128, n_test=64,
            grid=[{"k": 1}, {"k": 2}], seed=seed,
        ),
    )


def _strip_times(records: list) -> list:
    """Zero the wall-clock fit timings (the only non-deterministic field)."""
    out = []
    for rec in records:
        if rec is None:
            out.append(None)
            continue
        rec = dict(rec)
        rec["results"] = [[p, e, s, 0.0] for p, e, s, _ in rec.get("results", [])]
        out.append(rec)
    return out


class TestRuntimeFaults:
    def test_transient_failure_retried_with_identical_record(self, tmp_path):
        baseline = Runtime().run([_tune_spec()])
        p = plan().on("runtime.job", "error", max_fires=1)
        with faults.injected(p):
            rt = Runtime(cache_dir=tmp_path, retries=2, retry_delay_s=0.0)
            faulted = rt.run([_tune_spec()])
        assert p.fires("runtime.job") == 1
        # Per-attempt reseeding: the retried job replays the exact run.
        assert _strip_times(faulted) == _strip_times(baseline)
        assert rt.executed == 1 and rt.quarantined == []
        # And the cached record is the real one, not the failed attempt's.
        rt2 = Runtime(cache_dir=tmp_path)
        assert rt2.run([_tune_spec()]) == faulted
        assert rt2.hits == 1

    def test_poison_job_quarantined_sequentially(self, tmp_path):
        specs = [_tune_spec(seed=0), _tune_spec(seed=1), _tune_spec(seed=2)]
        baseline = Runtime().run(specs)
        # ValueError is not in retry_on: job #1 is a deterministic bug.
        p = plan().on("runtime.job", "error", error="value", after=1, max_fires=1)
        with faults.injected(p):
            rt = Runtime(cache_dir=tmp_path, quarantine=True, retry_delay_s=0.0)
            results = rt.run(specs)
        assert _strip_times(results[:1]) == _strip_times(baseline[:1])
        assert _strip_times(results[2:]) == _strip_times(baseline[2:])
        assert results[1] is None
        assert [spec.key for spec, _ in rt.quarantined] == [specs[1].key]
        # The poison job was never cached: a clean rerun executes it.
        rt2 = Runtime(cache_dir=tmp_path)
        healed = rt2.run(specs)
        assert _strip_times(healed) == _strip_times(baseline)
        assert rt2.hits == 2 and rt2.executed == 1

    def test_failure_without_quarantine_still_raises(self):
        with faults.injected(
            plan().on("runtime.job", "error", error="value", max_fires=1)
        ):
            with pytest.raises(ValueError):
                Runtime(retry_delay_s=0.0).run([_tune_spec()])


# -- fault class 5: stream refit / publish failures ----------------------------


class TestStreamDegradation:
    def _session(self, tmp_path, app, train, **trainer_kw):
        factory = _factory(app)
        monitor = DriftMonitor(window=32, threshold=10.0, min_count=10**6)
        trainer = IncrementalTrainer(
            factory, monitor=monitor,
            failure_backoff_s=trainer_kw.pop("failure_backoff_s", 0.05),
            **trainer_kw,
        )
        registry = ModelRegistry(tmp_path / "reg")
        session = StreamSession(
            registry, "m", factory, monitor=monitor, trainer=trainer,
            buffer=ObservationBuffer(window=512),
        )
        session.observe(train.X[:128], train.y[:128])  # initial fit + publish v1
        assert session.published_versions == [1]
        return session, registry

    def test_failed_partial_keeps_incumbent_then_recovers(
        self, tmp_path, bcast_data
    ):
        app, train, test = bcast_data
        session, registry = self._session(tmp_path, app, train)
        incumbent = session.model
        expect = incumbent.predict(test.X)

        with faults.injected(
            plan().on("stream.partial", "error", error="runtime", max_fires=1)
        ):
            rec = session.observe(train.X[128:160], train.y[128:160])
        assert rec["action"] == "failed" and rec["stage"] == "partial"
        assert session.degraded
        # Graceful degradation: the incumbent still serves, bit-exact.
        assert session.model is incumbent
        np.testing.assert_allclose(session.model.predict(test.X), expect)
        np.testing.assert_allclose(
            registry.load("m").predict(test.X), expect
        )

        # Inside the backoff window, updates are deferred, not retried.
        rec = session.observe(train.X[160:168], train.y[160:168])
        assert rec["action"] == "deferred"
        assert session.buffer.n_seen > session.buffer.flushed  # nothing dropped

        time.sleep(0.06)  # let the backoff lapse
        rec = session.observe(train.X[168:200], train.y[168:200])
        # A failed partial may have torn warm-start state: recovery is a
        # full refit from the window, which also republishes.
        assert rec["action"] == "refit" and rec["reason"] == "recover"
        assert rec["published_version"] == 2
        assert not session.degraded
        assert session.buffer.flushed == session.buffer.n_seen
        np.testing.assert_allclose(
            registry.load("m").predict(test.X), session.model.predict(test.X)
        )

    def test_failed_publish_degrades_and_next_refit_heals(
        self, tmp_path, bcast_data
    ):
        app, train, test = bcast_data
        session, registry = self._session(tmp_path, app, train)
        expect_v1 = registry.load("m").predict(test.X)

        # Exhaust the publish retry budget (3 attempts).
        with faults.injected(plan().on("stream.publish", "error", max_fires=3)):
            session.trainer._force_refit = True  # deterministic refit trigger
            rec = session.observe(train.X[128:160], train.y[128:160])
        assert rec["action"] == "refit"
        assert rec["published_version"] is None
        assert "publish_error" in rec
        assert session.degraded and session.publish_failures == 1
        # Consumers keep resolving the incumbent version.
        assert registry.resolve("m").version == 1
        np.testing.assert_allclose(registry.load("m").predict(test.X), expect_v1)

        session.trainer._force_refit = True
        rec = session.observe(train.X[160:200], train.y[160:200])
        assert rec["action"] == "refit" and rec["published_version"] == 2
        assert not session.degraded
        assert session.summary()["publish_failures"] == 1

    def test_transient_publish_failure_absorbed_by_retry(
        self, tmp_path, bcast_data
    ):
        app, train, _ = bcast_data
        factory = _factory(app)
        registry = ModelRegistry(tmp_path / "reg")
        session = StreamSession(registry, "m", factory)
        with faults.injected(plan().on("stream.publish", "error", max_fires=1)):
            rec = session.observe(train.X[:96], train.y[:96])
        assert rec["action"] == "fit" and rec["published_version"] == 1
        assert not session.degraded and session.publish_failures == 0

    def test_journal_resume_exact_after_faulted_run(self, tmp_path, bcast_data):
        """The resume invariant survives a chaotic first run."""
        app, train, _ = bcast_data
        factory = _factory(app)
        registry = ModelRegistry(tmp_path / "reg")
        journal = tmp_path / "m.jsonl"
        buffer = ObservationBuffer(journal=journal, window=512)
        session = StreamSession(registry, "m", factory, buffer=buffer)
        with faults.injected(plan().on("registry.write", "error", max_fires=1)):
            session.observe(train.X[:96], train.y[:96])
        session.observe(train.X[96:128], train.y[96:128])
        seen, flushed = session.buffer.n_seen, session.buffer.flushed
        session.buffer.close()

        with faults.injected(plan().on("registry.read", "error", max_fires=1)):
            resumed = StreamSession.resume(registry, "m", journal, factory)
        assert resumed.resumed_from == registry.resolve("m").meta["stream_seq"]
        assert resumed.buffer.n_seen == seen
        assert resumed.buffer.flushed <= flushed
        resumed.buffer.close()


# -- fault class 4b: wedged predicts -> 504, not a wedged server ---------------


class TestPredictTimeout:
    def test_microbatcher_timeout_and_worker_replacement(self):
        release = threading.Event()
        calls = []

        def flush(batch):
            calls.append(len(batch))
            if len(calls) == 1:
                release.wait(5.0)  # first flush wedges until released
            return np.zeros(len(batch))

        mb = MicroBatcher(flush, max_delay_s=0.0, timeout_s=0.15)
        try:
            with pytest.raises(PredictTimeout):
                mb.submit(np.zeros((1, 2)))
            # The wedged worker was abandoned and replaced: a fresh
            # submit is answered by the replacement while the old flush
            # is still stuck.
            out = mb.submit(np.zeros((2, 2)))
            assert out.shape == (2,)
            assert mb._replacements >= 1
        finally:
            release.set()
            mb.close()

    def test_server_answers_504_then_recovers(self, tmp_path, bcast_data, fitted):
        _, _, test = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", fitted)
        server = ModelServer(
            reg, default_model="m", microbatch=True,
            max_delay_ms=0.0, request_timeout_ms=100.0,
        )
        try:
            with faults.injected(
                plan().on("engine.predict", "hang", delay_s=0.6, max_fires=1)
            ):
                resp = server.handle({"op": "predict", "x": test.X[:2].tolist()})
                assert resp == {"ok": False, "error": "timeout", "code": 504}
                # The flush pipeline is not wedged: the next request (the
                # hang budget is spent) is answered exactly.
                resp = server.handle({"op": "predict", "x": test.X[:2].tolist()})
            assert resp["ok"]
            np.testing.assert_allclose(resp["y"], fitted.predict(test.X[:2]))
        finally:
            server.close()

    def test_no_timeout_configured_waits(self, tmp_path, bcast_data, fitted):
        _, _, test = bcast_data
        reg = ModelRegistry(tmp_path)
        reg.publish("m", fitted)
        server = ModelServer(reg, default_model="m", microbatch=True)
        try:
            with faults.injected(
                plan().on("engine.predict", "hang", delay_s=0.2, max_fires=1)
            ):
                resp = server.handle({"op": "predict", "x": test.X[:2].tolist()})
            assert resp["ok"]  # slow, but answered — historical behaviour
        finally:
            server.close()


# -- shm faults: attach falls back to disk -------------------------------------


@needs_shm
class TestShmFaults:
    def test_attach_failure_falls_back_to_disk(self, tmp_path, bcast_data, fitted):
        _, _, test = bcast_data
        reg = ModelRegistry(tmp_path)
        mv = reg.publish("m", fitted)
        with shm_store.ShmModelStore() as store:
            store.ensure(mv.digest, fitted)
            cfg = {
                "registry_dir": str(tmp_path), "host": "127.0.0.1", "port": 0,
                "default_model": "m", "max_batch": 64, "max_delay_ms": 1.0,
                "max_inflight": 8, "shm": True, "attach_wait_s": 0.0,
            }
            with faults.injected(plan().on("shm.attach", "error", max_fires=None)):
                server = make_worker_server(cfg)
                try:
                    resp = server.handle(
                        {"op": "predict", "x": test.X[:4].tolist()}
                    )
                    assert resp["ok"]
                    np.testing.assert_allclose(
                        resp["y"], fitted.predict(test.X[:4])
                    )
                    stats = server.handle({"op": "stats"})
                    assert stats["engines"][0]["source"] == "local"
                finally:
                    server.close()

    def test_pack_failure_is_contained_by_fleet_hook(
        self, tmp_path, bcast_data, fitted
    ):
        """A failing packer must not fail the publish it observes."""
        before = _shm_segments()
        reg = ModelRegistry(tmp_path)
        fleet = ServeFleet(tmp_path, workers=1, respawn=False)
        fleet.registry.add_publish_hook(fleet._on_publish)  # hook w/o start
        try:
            with faults.injected(plan().on("shm.pack", "error", max_fires=None)):
                mv = fleet.registry.publish("m", fitted)
            assert mv.version == 1  # publish survived the pack failure
            assert fleet.store.digests() == []
        finally:
            fleet.store.close()
        assert _shm_segments() == before


# -- fault classes 3 + 4: fleet worker crash / hang ----------------------------


@needs_shm
@needs_fork
class TestFleetChaos:
    def test_worker_crash_respawn_serves_exact(self, tmp_path, bcast_data, fitted):
        """Workers crash mid-request; the fleet heals and answers exactly."""
        _, _, test = bcast_data
        before = _shm_segments()
        ModelRegistry(tmp_path).publish("m", fitted)
        Xq = test.X[:4]
        expect = fitted.predict(Xq)
        # Workers inherit the plan at fork: each crashes on its first
        # handled request.  The parent clears its copy right after start,
        # so respawned workers fork clean and recovery is provable.
        faults.install(plan().on("fleet.worker.serve", "crash", exit_code=7))
        fleet = ServeFleet(
            tmp_path, workers=2, default_model="m", poll_interval_s=0.05,
            hang_timeout_s=5.0,
        )
        try:
            with fleet:
                faults.clear()
                deadline = time.time() + 20
                ok = 0
                while time.time() < deadline and (ok < 3 or fleet.respawns < 1):
                    status, out = _rpc(
                        fleet.port, {"op": "predict", "x": Xq.tolist()},
                        timeout=2.0,
                    )
                    if status == 200 and out.get("ok"):
                        np.testing.assert_allclose(out["y"], expect)
                        ok += 1
                assert ok >= 3 and fleet.respawns >= 1
                assert not fleet.breaker_open
                # The second respawn may still be in its backoff window.
                while time.time() < deadline and len(fleet.worker_pids()) < 2:
                    time.sleep(0.05)
                assert len(fleet.worker_pids()) == 2
        finally:
            faults.clear()
        assert _shm_segments() == before

    def test_boot_crash_loop_opens_breaker(self, tmp_path, fitted):
        """A deterministic boot crash must not fork-loop forever."""
        before = _shm_segments()
        ModelRegistry(tmp_path).publish("m", fitted)
        # Unlimited fires + an installed parent plan: every fork (initial
        # and respawned) dies at boot.
        faults.install(
            plan().on("fleet.worker.boot", "crash", max_fires=None, exit_code=9)
        )
        fleet = ServeFleet(
            tmp_path, workers=2, default_model="m", poll_interval_s=0.05,
            crash_loop_threshold=3, crash_loop_window_s=30.0,
            respawn_backoff_s=0.01,
        )
        try:
            with fleet:
                deadline = time.time() + 20
                while time.time() < deadline and not fleet.breaker_open:
                    time.sleep(0.05)
                assert fleet.breaker_open
                stabilized = fleet.respawns
                time.sleep(0.5)
                assert fleet.respawns == stabilized  # breaker holds
        finally:
            faults.clear()
        assert _shm_segments() == before

    def test_worker_stop_fault_triggers_watchdog(self, tmp_path, bcast_data, fitted):
        """A worker SIGSTOPs itself mid-request; the watchdog replaces it."""
        _, _, test = bcast_data
        before = _shm_segments()
        ModelRegistry(tmp_path).publish("m", fitted)
        Xq = test.X[:2]
        expect = fitted.predict(Xq)
        faults.install(plan().on("fleet.worker.serve", "stop"))
        fleet = ServeFleet(
            tmp_path, workers=2, default_model="m", poll_interval_s=0.05,
            hang_timeout_s=0.8,
        )
        try:
            with fleet:
                faults.clear()
                initial = set(fleet.worker_pids())
                deadline = time.time() + 25
                ok = 0
                while time.time() < deadline and (
                    fleet.hang_kills < 1 or ok < 3
                ):
                    try:
                        status, out = _rpc(
                            fleet.port, {"op": "predict", "x": Xq.tolist()},
                            timeout=1.5, retries=1,
                        )
                    except (ConnectionError, OSError):
                        continue  # landed on the frozen worker: expected
                    if status == 200 and out.get("ok"):
                        np.testing.assert_allclose(out["y"], expect)
                        ok += 1
                assert fleet.hang_kills >= 1 and ok >= 3
                # Frozen pids are killed and replaced (the second respawn
                # may still be in its backoff window; wait it out).
                while time.time() < deadline and len(fleet.worker_pids()) < 2:
                    time.sleep(0.05)
                pids = set(fleet.worker_pids())
                assert len(pids) == 2
                assert pids != initial  # at least one replacement happened
        finally:
            faults.clear()
        assert _shm_segments() == before

    def test_cli_sigterm_reaps_workers_and_shm(self, tmp_path, fitted):
        """``kill <pid>`` on the CLI fleet parent must not leak anything.

        The default SIGTERM action skips ``finally`` blocks, so without
        ``exit_on_sigterm`` the workers orphan and the creator-owned shm
        segments (creator-only unlink) stay in /dev/shm forever.
        """
        before = _shm_segments()
        ModelRegistry(tmp_path).publish("m", fitted)
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--registry", str(tmp_path),
             "--http", str(port), "--workers", "2", "--model", "m"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Collect both worker pids: fresh connections land on either
            # worker (SO_REUSEPORT), so ping until two distinct answer.
            pids, deadline = set(), time.time() + 20
            while time.time() < deadline and len(pids) < 2:
                try:
                    status, out = _rpc(port, {"op": "ping"}, retries=1)
                except (ConnectionError, OSError):
                    time.sleep(0.1)
                    continue
                if status == 200:
                    pids.add(out["pid"])
            assert len(pids) == 2, pids
            assert _shm_segments() - before  # the published digest is packed
            proc.terminate()  # plain SIGTERM, exactly what `kill` sends
            assert proc.wait(timeout=15) == 128 + signal.SIGTERM
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        # stop() escalation reaped both workers; the shm store unlinked.
        deadline = time.time() + 10
        while time.time() < deadline and _shm_segments() != before:
            time.sleep(0.1)
        assert _shm_segments() == before
        for pid in pids:
            with pytest.raises(OSError):  # ESRCH: no such process
                os.kill(pid, 0)

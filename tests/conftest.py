"""Shared fixtures: small cached datasets and deterministic generators."""
from __future__ import annotations

import numpy as np
import pytest

from repro.apps import ExaFMM, MatMul
from repro.datasets import generate_dataset


@pytest.fixture(autouse=True)
def _isolated_kernel_calibration(tmp_path, monkeypatch):
    """Point the kernel-calibration sidecar at a per-test path.

    Backend selection persists its calibration winner to a JSON sidecar
    (``REPRO_KERNEL_CALIBRATION``); tests must neither read a developer's
    real cache nor write into it.
    """
    monkeypatch.setenv(
        "REPRO_KERNEL_CALIBRATION", str(tmp_path / "kernel_calibration.json")
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def mm_data():
    """A small MatMul train/test pair shared across model tests."""
    app = MatMul()
    train = generate_dataset(app, 1024, seed=0)
    test = generate_dataset(app, 256, seed=1)
    return app, train, test


@pytest.fixture(scope="session")
def fmm_data():
    """A small ExaFMM train/test pair (6 parameters, has a constraint)."""
    app = ExaFMM()
    train = generate_dataset(app, 1024, seed=0)
    test = generate_dataset(app, 256, seed=1)
    return app, train, test


@pytest.fixture()
def smooth_2d():
    """A noise-free separable positive function on a 2-D log-uniform cloud."""
    gen = np.random.default_rng(7)
    X = np.exp(gen.uniform(np.log(1.0), np.log(100.0), size=(2000, 2)))
    y = 1e-3 * X[:, 0] ** 1.5 * X[:, 1] ** 0.5
    return X, y
